//! Equivalence suite for the optimised `Top-k-Pkg` hot path.
//!
//! The arena/incremental-bound implementation behind
//! [`top_k_packages`] must be indistinguishable from its two oracles:
//!
//! * the clone-based reference path ([`top_k_packages_reference`], the
//!   pre-arena implementation kept as the executable specification) — on
//!   *every* profile, weight sign pattern and package-size budget, with the
//!   statistics counters tracking each other tightly (exact equality is
//!   impossible at ηlo-boundary floating-point ties; see the inline comment);
//! * the exhaustive enumeration ([`top_k_packages_exhaustive`]) — on the
//!   workloads where utility-improving expansion is complete: set-monotone
//!   utilities whose strictly-increasing `sum` component makes every package
//!   reachable.  (For general non-monotone utilities the paper's expansion is
//!   a bounded search, not an enumeration; there the suite checks soundness —
//!   reported utilities are genuine and never beat the true optimum — which
//!   is exactly the guarantee the reference path provides.)
//!
//! A regression test also pins the cached-sorted-lists seam: the index an
//! engine builds at construction must equal a freshly built one, and reusing
//! it must not change any search result.

use pkgrec_core::prelude::*;
use pkgrec_core::recommender::per_sample_rankings_indexed;
use pkgrec_core::search::top_k_packages_reference;
use pkgrec_core::{top_k_packages_with_scratch, AggregatedSearchStats, SearchScratch};
use pkgrec_topk::SortedLists;
use proptest::prelude::*;

/// Maps a generated index to an aggregate, covering every kind including
/// `null`.
fn aggregate_of(index: usize) -> AggregateFn {
    match index % 5 {
        0 => AggregateFn::Sum,
        1 => AggregateFn::Avg,
        2 => AggregateFn::Max,
        3 => AggregateFn::Min,
        _ => AggregateFn::Null,
    }
}

fn utility_over(
    rows: &[Vec<f64>],
    aggregates: &[usize],
    weights: Vec<f64>,
    phi: usize,
) -> (Catalog, LinearUtility) {
    let catalog = Catalog::from_rows(rows.to_vec()).unwrap();
    let profile = Profile::new(aggregates.iter().map(|&a| aggregate_of(a)).collect());
    let context = AggregationContext::new(profile, &catalog, phi).unwrap();
    let utility = LinearUtility::new(context, weights).unwrap();
    (catalog, utility)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimised search matches the clone-based reference: identical
    /// packages and utilities (up to floating-point association) and closely
    /// tracking search statistics, across every aggregate kind (set-monotone
    /// or not), null features, zeroed weights and φ ∈ {1..4}.
    #[test]
    fn optimized_search_matches_the_clone_reference(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 3..12),
        aggregates in prop::collection::vec(0usize..5, 3),
        raw_weights in prop::collection::vec(-1.0f64..1.0, 3),
        zero_mask in prop::collection::vec(0usize..4, 3),
        phi in 1usize..5,
        k in 1usize..6,
    ) {
        let weights: Vec<f64> = raw_weights
            .iter()
            .zip(zero_mask.iter())
            .map(|(&w, &m)| if m == 0 { 0.0 } else { w })
            .collect();
        let (catalog, utility) = utility_over(&rows, &aggregates, weights, phi);
        let fast = top_k_packages(&utility, &catalog, k).unwrap();
        let reference = top_k_packages_reference(&utility, &catalog, k).unwrap();
        prop_assert_eq!(fast.packages.len(), reference.packages.len());
        for ((fp, fs), (rp, rs)) in fast.packages.iter().zip(reference.packages.iter()) {
            prop_assert_eq!(fp, rp);
            prop_assert!((fs - rs).abs() < 1e-9, "utilities diverge: {} vs {}", fs, rs);
        }
        // The statistics must describe the same scan, but exact equality is
        // not attainable: τ is assembled from real item values, so a
        // candidate's upper bound can *mathematically* equal ηlo (packing τ
        // reconstructs the incumbent package exactly), and at such ties the
        // two implementations' different floating-point association can keep
        // or drop the candidate differently — changing the counters by a
        // hair without affecting the returned packages.
        let accesses_diff =
            fast.stats.sorted_accesses.abs_diff(reference.stats.sorted_accesses);
        prop_assert!(accesses_diff <= 6, "sorted accesses diverge: {:?} vs {:?}", fast.stats, reference.stats);
        let items_diff = fast.stats.items_accessed.abs_diff(reference.stats.items_accessed);
        prop_assert!(items_diff <= 6, "items accessed diverge: {:?} vs {:?}", fast.stats, reference.stats);
        let candidates_diff =
            fast.stats.candidates_created.abs_diff(reference.stats.candidates_created);
        let tolerance = 4.max(reference.stats.candidates_created / 10);
        prop_assert!(
            candidates_diff <= tolerance,
            "candidates created diverge: {:?} vs {:?}", fast.stats, reference.stats
        );
    }

    /// On set-monotone utilities with a strictly-improving `sum` component the
    /// expansion is complete: the optimised search reproduces the exhaustive
    /// enumeration rank for rank.
    #[test]
    fn optimized_search_matches_exhaustive_on_set_monotone_utilities(
        rows in prop::collection::vec(prop::collection::vec(0.01f64..1.0, 3), 3..10),
        sum_weight in 0.05f64..1.0,
        max_weight in 0.0f64..1.0,
        min_weight in 0.0f64..1.0,
        phi in 1usize..5,
        k in 1usize..6,
    ) {
        let catalog = Catalog::from_rows(rows.to_vec()).unwrap();
        let profile = Profile::new(vec![AggregateFn::Sum, AggregateFn::Max, AggregateFn::Min]);
        let context = AggregationContext::new(profile, &catalog, phi).unwrap();
        // sum/max gain with positive weight, min with negative: set-monotone.
        let utility =
            LinearUtility::new(context, vec![sum_weight, max_weight, -min_weight]).unwrap();
        prop_assert!(utility.is_set_monotone());
        let fast = top_k_packages(&utility, &catalog, k).unwrap();
        let slow = top_k_packages_exhaustive(&utility, &catalog, k).unwrap();
        prop_assert_eq!(fast.packages.len(), slow.len());
        for ((fp, fs), (sp, ss)) in fast.packages.iter().zip(slow.iter()) {
            prop_assert_eq!(fp, sp);
            prop_assert!((fs - ss).abs() < 1e-9, "utilities diverge: {} vs {}", fs, ss);
        }
    }

    /// Sample-parallel discovery (`std::thread::scope` workers, each owning
    /// its candidate arena and scratch buffers) is bit-identical to the
    /// serial path: same rankings, same merged statistics, across thread
    /// counts {1, 2, 4}.
    #[test]
    fn sample_parallel_rankings_are_bit_identical_to_serial(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 4..12),
        aggregates in prop::collection::vec(0usize..5, 3),
        sample_rows in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 3), 1..24),
        phi in 1usize..4,
        depth in 1usize..5,
    ) {
        let catalog = Catalog::from_rows(rows.to_vec()).unwrap();
        let profile = Profile::new(aggregates.iter().map(|&a| aggregate_of(a)).collect());
        let context = AggregationContext::new(profile, &catalog, phi).unwrap();
        let mut pool = SamplePool::new();
        for weights in &sample_rows {
            pool.push_sample(weights, 1.0);
        }
        let lists = SortedLists::new(catalog.rows());
        let (serial, serial_stats) =
            per_sample_rankings_indexed(&context, &catalog, &lists, &pool, depth, 1).unwrap();
        for threads in [2usize, 4] {
            let (parallel, stats) =
                per_sample_rankings_indexed(&context, &catalog, &lists, &pool, depth, threads)
                    .unwrap();
            prop_assert_eq!(&serial, &parallel, "{} threads", threads);
            prop_assert_eq!(serial_stats, stats, "{} threads", threads);
        }
    }

    /// A worker-style reused [`SearchScratch`] replays any sequence of
    /// searches bit-identically to fresh allocations — packages, utilities
    /// and statistics.
    #[test]
    fn scratch_reuse_is_bit_identical_across_a_search_sequence(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 3..10),
        aggregates in prop::collection::vec(0usize..5, 3),
        weight_seq in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 3), 1..8),
        phi in 1usize..4,
        k in 1usize..5,
    ) {
        let catalog = Catalog::from_rows(rows.to_vec()).unwrap();
        let profile = Profile::new(aggregates.iter().map(|&a| aggregate_of(a)).collect());
        let lists = SortedLists::new(catalog.rows());
        let mut scratch = SearchScratch::new();
        for weights in weight_seq {
            let context = AggregationContext::new(profile.clone(), &catalog, phi).unwrap();
            let utility = LinearUtility::new(context, weights).unwrap();
            let fresh = top_k_packages_with_lists(&utility, &catalog, &lists, k).unwrap();
            let reused =
                top_k_packages_with_scratch(&utility, &catalog, &lists, k, &mut scratch).unwrap();
            prop_assert_eq!(fresh, reused);
        }
    }

    /// Whole-engine behaviour is thread-count independent: engines configured
    /// with 1, 2 and 4 worker threads, driven through identical rounds with
    /// identically seeded RNGs, present and recommend exactly the same
    /// packages.
    #[test]
    fn engine_recommendations_are_thread_count_independent(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 2), 5..10),
        seed in 0u64..1000,
        rounds in 1usize..3,
    ) {
        use rand::SeedableRng;
        let mut outputs = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut engine = RecommenderEngine::builder(
                Catalog::from_rows(rows.to_vec()).unwrap(),
                Profile::cost_quality(),
            )
            .max_package_size(2)
            .k(2)
            .num_random(1)
            .num_samples(16)
            .num_threads(threads)
            .build()
            .unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut transcript = Vec::new();
            for _ in 0..rounds {
                let shown = engine.present(&mut rng).unwrap();
                transcript.push(shown.clone());
                // A click on a degenerate random catalog can make the
                // constraint region infeasible (sampling exhausted); the
                // failure is deterministic — independent of the thread count
                // — so every engine stops at the same round and the
                // transcripts stay comparable.
                if engine
                    .record_feedback(&shown, Feedback::Click { index: 0 }, &mut rng)
                    .is_err()
                {
                    break;
                }
            }
            let recommendations = engine.recommend(&mut rng).unwrap();
            outputs.push((transcript, recommendations));
        }
        prop_assert_eq!(&outputs[0], &outputs[1]);
        prop_assert_eq!(&outputs[0], &outputs[2]);
    }

    /// On arbitrary (possibly non-monotone) utilities the optimised search is
    /// sound against the exhaustive oracle: utilities are genuine, never beat
    /// the true optimum, and arrive best-first.
    #[test]
    fn optimized_search_is_sound_against_exhaustive_on_any_profile(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 3..9),
        aggregates in prop::collection::vec(0usize..5, 3),
        weights in prop::collection::vec(-1.0f64..1.0, 3),
        phi in 1usize..4,
        k in 1usize..5,
    ) {
        let (catalog, utility) = utility_over(&rows, &aggregates, weights, phi);
        let fast = top_k_packages(&utility, &catalog, k).unwrap();
        let slow = top_k_packages_exhaustive(&utility, &catalog, k).unwrap();
        for (package, score) in &fast.packages {
            prop_assert!(package.len() <= phi);
            let recomputed = utility.of_package(&catalog, package).unwrap();
            prop_assert!((recomputed - score).abs() < 1e-9);
            prop_assert!(*score <= slow[0].1 + 1e-9);
        }
        for pair in fast.packages.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1 - 1e-12);
        }
    }
}

fn ten_item_catalog() -> Catalog {
    Catalog::from_rows(vec![
        vec![0.6, 0.2],
        vec![0.4, 0.4],
        vec![0.2, 0.4],
        vec![0.9, 0.8],
        vec![0.3, 0.7],
        vec![0.7, 0.1],
        vec![0.1, 0.3],
        vec![0.5, 0.9],
        vec![0.8, 0.5],
        vec![0.2, 0.8],
    ])
    .unwrap()
}

/// Regression: the sorted-lists index the engine caches at construction is
/// exactly the index a fresh build over the catalog produces, and searching
/// through it changes nothing.
#[test]
fn engine_cached_sorted_lists_equal_freshly_built_ones() {
    let catalog = ten_item_catalog();
    let engine = RecommenderEngine::builder(catalog.clone(), Profile::cost_quality())
        .max_package_size(3)
        .k(3)
        .num_samples(20)
        .build()
        .unwrap();
    let fresh = SortedLists::new(catalog.rows());
    assert_eq!(engine.sorted_lists(), &fresh);

    let context = AggregationContext::new(Profile::cost_quality(), &catalog, 3).unwrap();
    let utility = LinearUtility::new(context, vec![-0.4, 0.8]).unwrap();
    let via_cache =
        top_k_packages_with_lists(&utility, &catalog, engine.sorted_lists(), 4).unwrap();
    let via_fresh = top_k_packages(&utility, &catalog, 4).unwrap();
    assert_eq!(via_cache, via_fresh);
}

/// The engine accumulates one search per pool sample per recommendation and
/// exposes the totals through both the accessor and the `Recommender` state.
#[test]
fn engine_aggregates_search_stats_across_recommendations() {
    use rand::SeedableRng;

    let mut engine = RecommenderEngine::builder(ten_item_catalog(), Profile::cost_quality())
        .max_package_size(3)
        .k(3)
        .num_samples(25)
        .build()
        .unwrap();
    assert_eq!(engine.search_stats(), AggregatedSearchStats::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    engine.recommend(&mut rng).unwrap();
    let after_one = engine.search_stats();
    assert_eq!(after_one.searches, 25);
    assert!(after_one.sorted_accesses > 0);
    assert!(after_one.candidates_created > 0);
    engine.recommend(&mut rng).unwrap();
    let after_two = engine.search_stats();
    assert_eq!(after_two.searches, 50);
    let recommender: &dyn Recommender = &engine;
    assert_eq!(recommender.state().search, after_two);
    engine.reset_search_stats();
    assert_eq!(engine.search_stats(), AggregatedSearchStats::default());
}
