//! Property tests over session snapshots: a `snapshot → serde_json →
//! restore` round trip must preserve the preference DAG, the sample pool
//! (weights and importance, bit for bit) and the next-round recommendation.

use pkgrec_core::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

/// Strategy: a small catalog of `n x 2` feature values in (0, 1].
fn catalog_strategy(max_items: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.05f64..1.0, 2), 4..max_items)
}

fn session_after(rows: &[Vec<f64>], hidden: &[f64], clicks: usize, seed: u64) -> RecommenderEngine {
    let catalog = Catalog::from_rows(rows.to_vec()).unwrap();
    let mut engine = RecommenderEngine::builder(catalog.clone(), Profile::cost_quality())
        .max_package_size(2)
        .k(2)
        .num_random(2)
        .num_samples(20)
        .build()
        .unwrap();
    let context = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
    let user = SimulatedUser::new(LinearUtility::new(context, hidden.to_vec()).unwrap());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..clicks {
        let shown = engine.present(&mut rng).unwrap();
        let choice = user.choose(&catalog, &shown, &mut rng).unwrap();
        engine
            .record_feedback(&shown, Feedback::Click { index: choice }, &mut rng)
            .unwrap();
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The JSON round trip preserves the whole session: configuration,
    /// preference DAG, pool weights and the recommendation they induce.
    #[test]
    fn snapshot_json_round_trip_preserves_the_session(
        rows in catalog_strategy(9),
        w0 in -1.0f64..1.0,
        w1 in -1.0f64..1.0,
        clicks in 0usize..3,
        seed in 0u64..500,
    ) {
        let mut engine = session_after(&rows, &[w0, w1], clicks, seed);

        let snapshot = engine.snapshot();
        let json = serde_json::to_string(&snapshot).unwrap();
        let decoded: SessionSnapshot = serde_json::from_str(&json).unwrap();
        // The serde round trip is lossless (floats use shortest-roundtrip
        // formatting), so the decoded snapshot equals the original.
        prop_assert_eq!(&decoded, &snapshot);

        let mut restored = RecommenderEngine::restore(decoded).unwrap();
        prop_assert_eq!(restored.rounds(), engine.rounds());
        prop_assert_eq!(restored.config(), engine.config());
        // Preference DAG: same edges, same packages.
        prop_assert_eq!(restored.preferences().len(), engine.preferences().len());
        prop_assert_eq!(
            restored.preferences().num_packages(),
            engine.preferences().num_packages()
        );
        prop_assert_eq!(
            restored.preferences().preferences(),
            engine.preferences().preferences()
        );
        // Pool: identical weights and importance weights, bit for bit.
        prop_assert_eq!(restored.pool(), engine.pool());
        // And therefore the identical next-round recommendation.  When no
        // click happened yet the pool may be empty; seed both resamples with
        // the same stream so they stay comparable.
        let mut rng_live = rand::rngs::StdRng::seed_from_u64(seed ^ 0xA5A5);
        let mut rng_restored = rand::rngs::StdRng::seed_from_u64(seed ^ 0xA5A5);
        prop_assert_eq!(
            engine.recommend(&mut rng_live).unwrap(),
            restored.recommend(&mut rng_restored).unwrap()
        );
    }
}
