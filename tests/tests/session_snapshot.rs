//! Property tests over session snapshots: a `snapshot → serde_json →
//! restore` round trip must preserve the preference DAG, the sample pool
//! (weights and importance, bit for bit) and the next-round recommendation.
//! Plus the golden wire-format fixture (`fixtures/session_snapshot_v1.json`)
//! that pins `SNAPSHOT_VERSION` 1, and the documented `set_num_threads`
//! behaviour across `restore()`.

use pkgrec_core::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

/// Strategy: a small catalog of `n x 2` feature values in (0, 1].
fn catalog_strategy(max_items: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.05f64..1.0, 2), 4..max_items)
}

fn session_after(rows: &[Vec<f64>], hidden: &[f64], clicks: usize, seed: u64) -> RecommenderEngine {
    let catalog = Catalog::from_rows(rows.to_vec()).unwrap();
    let mut engine = RecommenderEngine::builder(catalog.clone(), Profile::cost_quality())
        .max_package_size(2)
        .k(2)
        .num_random(2)
        .num_samples(20)
        .build()
        .unwrap();
    let context = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
    let user = SimulatedUser::new(LinearUtility::new(context, hidden.to_vec()).unwrap());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..clicks {
        let shown = engine.present(&mut rng).unwrap();
        let choice = user.choose(&catalog, &shown, &mut rng).unwrap();
        engine
            .record_feedback(&shown, Feedback::Click { index: choice }, &mut rng)
            .unwrap();
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The JSON round trip preserves the whole session: configuration,
    /// preference DAG, pool weights and the recommendation they induce.
    #[test]
    fn snapshot_json_round_trip_preserves_the_session(
        rows in catalog_strategy(9),
        w0 in -1.0f64..1.0,
        w1 in -1.0f64..1.0,
        clicks in 0usize..3,
        seed in 0u64..500,
    ) {
        let mut engine = session_after(&rows, &[w0, w1], clicks, seed);

        let snapshot = engine.snapshot();
        let json = serde_json::to_string(&snapshot).unwrap();
        let decoded: SessionSnapshot = serde_json::from_str(&json).unwrap();
        // The serde round trip is lossless (floats use shortest-roundtrip
        // formatting), so the decoded snapshot equals the original.
        prop_assert_eq!(&decoded, &snapshot);

        let mut restored = RecommenderEngine::restore(decoded).unwrap();
        prop_assert_eq!(restored.rounds(), engine.rounds());
        prop_assert_eq!(restored.config(), engine.config());
        // Preference DAG: same edges, same packages.
        prop_assert_eq!(restored.preferences().len(), engine.preferences().len());
        prop_assert_eq!(
            restored.preferences().num_packages(),
            engine.preferences().num_packages()
        );
        prop_assert_eq!(
            restored.preferences().preferences(),
            engine.preferences().preferences()
        );
        // Pool: identical weights and importance weights, bit for bit.
        prop_assert_eq!(restored.pool(), engine.pool());
        // And therefore the identical next-round recommendation.  When no
        // click happened yet the pool may be empty; seed both resamples with
        // the same stream so they stay comparable.
        let mut rng_live = rand::rngs::StdRng::seed_from_u64(seed ^ 0xA5A5);
        let mut rng_restored = rand::rngs::StdRng::seed_from_u64(seed ^ 0xA5A5);
        prop_assert_eq!(
            engine.recommend(&mut rng_live).unwrap(),
            restored.recommend(&mut rng_restored).unwrap()
        );
    }
}

/// The catalog of the checked-in golden fixture (kept in code so the fixture
/// can be regenerated; the JSON on disk is the contract under test).
fn golden_fixture_engine() -> RecommenderEngine {
    let catalog = Catalog::from_rows(vec![
        vec![0.6, 0.2],
        vec![0.4, 0.4],
        vec![0.2, 0.4],
        vec![0.9, 0.8],
        vec![0.3, 0.7],
        vec![0.5, 0.9],
    ])
    .unwrap();
    let mut engine = RecommenderEngine::builder(catalog.clone(), Profile::cost_quality())
        .max_package_size(2)
        .k(2)
        .num_random(2)
        .num_samples(20)
        .build()
        .unwrap();
    let context = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
    let user = SimulatedUser::new(LinearUtility::new(context, vec![-0.7, 0.6]).unwrap());
    let mut rng = rand::rngs::StdRng::seed_from_u64(20140901);
    for _ in 0..2 {
        let shown = engine.present(&mut rng).unwrap();
        let choice = user.choose(&catalog, &shown, &mut rng).unwrap();
        engine
            .record_feedback(&shown, Feedback::Click { index: choice }, &mut rng)
            .unwrap();
    }
    engine
}

const GOLDEN_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/fixtures/session_snapshot_v1.json"
);

/// Wire-format compatibility gate: the checked-in `SNAPSHOT_VERSION` 1
/// snapshot must keep parsing, restoring and re-serialising losslessly.
/// A PR that changes the snapshot layout will fail here and must bump
/// `SNAPSHOT_VERSION` (plus provide a migration or a fresh fixture)
/// deliberately rather than silently.
///
/// Regenerate with
/// `UPDATE_SNAPSHOT_FIXTURE=1 cargo test -p pkgrec-integration-tests golden`.
#[test]
fn golden_snapshot_fixture_stays_restorable() {
    if std::env::var_os("UPDATE_SNAPSHOT_FIXTURE").is_some() {
        let snapshot = golden_fixture_engine().snapshot();
        let json = serde_json::to_string_pretty(&snapshot).unwrap();
        std::fs::write(GOLDEN_FIXTURE, json + "\n").unwrap();
    }
    let json = std::fs::read_to_string(GOLDEN_FIXTURE)
        .expect("golden fixture exists (regenerate with UPDATE_SNAPSHOT_FIXTURE=1)");
    let decoded: SessionSnapshot = serde_json::from_str(&json).expect("fixture parses");
    assert_eq!(decoded.version, SNAPSHOT_VERSION);
    assert_eq!(
        decoded.version, 1,
        "bumping SNAPSHOT_VERSION needs a new fixture"
    );
    assert_eq!(decoded.rounds, 2);
    assert_eq!(decoded.pool.len(), 20);
    assert!(!decoded.preferences.preferences().is_empty());

    let mut restored = RecommenderEngine::restore(decoded.clone()).expect("fixture restores");
    // The restored session re-serialises to the identical snapshot value:
    // nothing of the wire format was lost or reinterpreted.
    assert_eq!(restored.snapshot(), decoded);
    // And it keeps serving: the pool is non-empty, so the recommendation is
    // a pure function of the restored state.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let recs = restored.recommend(&mut rng).unwrap();
    assert_eq!(recs.len(), decoded.config.k);
}

/// Documented behaviour (ROADMAP, `snapshot` module docs): the scoring
/// thread budget is a process property, not session state — snapshots do
/// not capture it, `restore()` resumes serial, and `set_num_threads`
/// re-raises it with bit-identical results.
#[test]
fn num_threads_resumes_serial_and_is_reraisable_after_restore() {
    let catalog = Catalog::from_rows(vec![
        vec![0.6, 0.2],
        vec![0.4, 0.4],
        vec![0.2, 0.4],
        vec![0.9, 0.8],
        vec![0.3, 0.7],
    ])
    .unwrap();
    let mut engine = RecommenderEngine::builder(catalog.clone(), Profile::cost_quality())
        .max_package_size(2)
        .k(2)
        .num_random(2)
        .num_samples(25)
        .num_threads(3)
        .build()
        .unwrap();
    assert_eq!(engine.num_threads(), 3);
    let context = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
    let user = SimulatedUser::new(LinearUtility::new(context, vec![-0.7, 0.6]).unwrap());
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let shown = engine.present(&mut rng).unwrap();
    let choice = user.choose(&catalog, &shown, &mut rng).unwrap();
    engine
        .record_feedback(&shown, Feedback::Click { index: choice }, &mut rng)
        .unwrap();

    let mut restored = RecommenderEngine::restore(engine.snapshot()).unwrap();
    // Restore always resumes serial — the knob is not session state.
    assert_eq!(restored.num_threads(), 1);
    // Re-raising it succeeds and leaves results bit-identical to the live,
    // threaded engine.
    restored.set_num_threads(3).unwrap();
    assert_eq!(restored.num_threads(), 3);
    let mut rng_live = rand::rngs::StdRng::seed_from_u64(11);
    let mut rng_restored = rand::rngs::StdRng::seed_from_u64(11);
    assert_eq!(
        engine.recommend(&mut rng_live).unwrap(),
        restored.recommend(&mut rng_restored).unwrap()
    );
    // The knob itself survives further snapshot cycles of the same engine
    // object (snapshotting does not reset the live engine).
    let _ = restored.snapshot();
    assert_eq!(restored.num_threads(), 3);
}
