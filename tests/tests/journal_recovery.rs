//! Crash-recovery properties of the durable serving journal
//! (`pkgrec-serve`):
//!
//! * the segment wire format v2 is pinned by a golden byte fixture
//!   (`fixtures/journal_segment_v2.bin`) — a PR that changes the framing,
//!   the CRC, or the record JSON must bump `SEGMENT_VERSION` and
//!   regenerate the fixture deliberately,
//! * kill-at-random-offset: truncating the concatenated segment stream at
//!   arbitrary byte offsets and reopening the directory always yields a
//!   store whose every surviving session matches — **bit for bit** — the
//!   snapshot a live, never-killed session had at the same operation
//!   count.

use pkgrec_core::prelude::*;
use pkgrec_integration_tests::unique_temp_dir;
use pkgrec_serve::segment::{
    decode_segment, encode_record, write_header, SEGMENT_HEADER_LEN, SEGMENT_VERSION,
};
use pkgrec_serve::{
    user_rng, CatalogId, DurabilityConfig, RecommenderSpec, SessionConfig, SessionId, SessionStore,
    StoreConfig, WireEvent, WireRecord,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::Path;

// ---------------------------------------------------------------------------
// Golden wire-format fixture
// ---------------------------------------------------------------------------

/// The synthetic records of the checked-in fixture (kept in code so the
/// fixture can be regenerated; the bytes on disk are the contract under
/// test).  One of every record shape: an intern-table catalog definition,
/// a `Created` referencing it by id, the three op events, and an interned
/// `Snapshot` checkpoint.
fn fixture_records() -> Vec<WireRecord> {
    let catalog = Catalog::from_rows(vec![
        vec![0.6, 0.2],
        vec![0.4, 0.4],
        vec![0.2, 0.4],
        vec![0.9, 0.8],
    ])
    .unwrap();
    let session = SessionId(3);
    vec![
        WireRecord::Catalog {
            id: CatalogId(0),
            catalog,
        },
        WireRecord::Event {
            session,
            event: WireEvent::Created {
                catalog: CatalogId(0),
                profile: Profile::cost_quality(),
                max_package_size: 2,
                spec: RecommenderSpec::Engine(EngineConfig {
                    k: 2,
                    num_random: 2,
                    num_samples: 20,
                    ..EngineConfig::default()
                }),
                seed: 41,
            },
        },
        WireRecord::Event {
            session,
            event: WireEvent::Presented,
        },
        WireRecord::Event {
            session,
            event: WireEvent::Feedback(Feedback::Click { index: 1 }),
        },
        WireRecord::Event {
            session,
            event: WireEvent::Recommended,
        },
        WireRecord::Event {
            session,
            event: WireEvent::Snapshot {
                snapshot: serde_json::value_from_str(r#"{"version":1,"catalog":0,"rounds":2}"#)
                    .unwrap(),
                ops: 3,
                last_shown: Vec::new(),
            },
        },
    ]
}

fn fixture_segment_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    write_header(&mut bytes);
    for record in &fixture_records() {
        encode_record(record, &mut bytes).unwrap();
    }
    bytes
}

const GOLDEN_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/fixtures/journal_segment_v2.bin"
);

/// Wire-format compatibility gate for the durable journal.  Regenerate with
/// `UPDATE_SNAPSHOT_FIXTURE=1 cargo test -p pkgrec-integration-tests golden`.
#[test]
fn golden_segment_fixture_stays_decodable() {
    if std::env::var_os("UPDATE_SNAPSHOT_FIXTURE").is_some() {
        std::fs::write(GOLDEN_FIXTURE, fixture_segment_bytes()).unwrap();
    }
    let disk = std::fs::read(GOLDEN_FIXTURE)
        .expect("golden fixture exists (regenerate with UPDATE_SNAPSHOT_FIXTURE=1)");

    // Encoding today must reproduce the checked-in bytes exactly: framing,
    // CRC table, JSON field order and float formatting are all pinned.
    assert_eq!(
        fixture_segment_bytes(),
        disk,
        "segment wire format drifted; bump SEGMENT_VERSION and regenerate the fixture"
    );
    assert_eq!(
        SEGMENT_VERSION, 2,
        "bumping SEGMENT_VERSION needs a new fixture"
    );

    // And the checked-in bytes must decode cleanly back to the records.
    let decoded = decode_segment(&disk).expect("fixture decodes");
    assert!(decoded.torn.is_none(), "fixture has no torn tail");
    assert_eq!(decoded.clean_len as usize, disk.len());
    assert_eq!(decoded.records, fixture_records());
}

// ---------------------------------------------------------------------------
// Kill at a random offset
// ---------------------------------------------------------------------------

const SESSIONS: u64 = 4;
const ROUNDS: usize = 3;

fn store_config() -> StoreConfig {
    StoreConfig {
        shards: 1,
        capacity_per_shard: 8,
    }
}

fn session_config(seed: u64, catalog: &std::sync::Arc<Catalog>) -> SessionConfig {
    SessionConfig {
        catalog: catalog.clone(),
        profile: Profile::cost_quality(),
        max_package_size: 2,
        spec: RecommenderSpec::Engine(EngineConfig {
            k: 2,
            num_random: 2,
            num_samples: 20,
            ..EngineConfig::default()
        }),
        seed,
    }
}

/// Drives a durable store and an identical shadow (memory-only) store
/// through the same operation sequence, recording the shadow's snapshot
/// after **every** operation.  Returns the per-`(session, ops)` snapshot
/// history — the bit-exact reference a recovered session is diffed against.
fn drive_with_history(
    store: &mut SessionStore,
    shadow: &mut SessionStore,
    catalog: &std::sync::Arc<Catalog>,
) -> HashMap<(SessionId, u64), String> {
    let mut history = HashMap::new();
    let mut ids = Vec::new();
    let mut ops: HashMap<SessionId, u64> = HashMap::new();
    for i in 0..SESSIONS {
        let id = store.create(session_config(700 + i, catalog)).unwrap();
        let shadow_id = shadow.create(session_config(700 + i, catalog)).unwrap();
        assert_eq!(id, shadow_id, "both stores assign ids identically");
        ops.insert(id, 0);
        history.insert((id, 0), shadow.snapshot(id).unwrap());
        ids.push(id);
    }
    let record = |shadow: &mut SessionStore,
                  history: &mut HashMap<(SessionId, u64), String>,
                  ops: &mut HashMap<SessionId, u64>,
                  id: SessionId| {
        let n = ops.get_mut(&id).unwrap();
        *n += 1;
        history.insert((id, *n), shadow.snapshot(id).unwrap());
    };
    for _round in 0..ROUNDS {
        for id in &ids {
            let shown = store.present(*id).unwrap();
            assert_eq!(shadow.present(*id).unwrap(), shown);
            record(shadow, &mut history, &mut ops, *id);
            let user = hidden_user(catalog);
            let choice = user.choose(catalog, &shown, &mut user_rng(id.0)).unwrap();
            let feedback = Feedback::Click { index: choice };
            store.feedback(*id, feedback).unwrap();
            shadow.feedback(*id, feedback).unwrap();
            record(shadow, &mut history, &mut ops, *id);
        }
    }
    for id in &ids {
        assert_eq!(
            store.recommend(*id).unwrap(),
            shadow.recommend(*id).unwrap()
        );
        record(shadow, &mut history, &mut ops, *id);
    }
    history
}

fn hidden_user(catalog: &Catalog) -> SimulatedUser {
    let context = AggregationContext::new(Profile::cost_quality(), catalog, 2).unwrap();
    SimulatedUser::new(LinearUtility::new(context, vec![-0.7, 0.6]).unwrap())
}

/// The shard's segment files in sequence order, plus its generation marker.
fn shard_files(shard: &Path) -> (Vec<std::path::PathBuf>, std::path::PathBuf) {
    let mut segments = Vec::new();
    let mut marker = None;
    for entry in std::fs::read_dir(shard).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.starts_with("seg-") {
            segments.push(path);
        } else if name.starts_with("gen-") {
            marker = Some(path);
        }
    }
    segments.sort();
    (segments, marker.expect("committed generation marker"))
}

/// Copies the durable directory into `trial_dir`, truncating the
/// concatenated segment byte stream at `cut` — the moral equivalent of the
/// process dying mid-write at that offset.  Segments wholly past the cut
/// are lost entirely.
fn copy_truncated(root: &Path, trial_dir: &Path, cut: u64) {
    std::fs::create_dir_all(trial_dir.join("shard-0000")).unwrap();
    std::fs::copy(root.join("store.json"), trial_dir.join("store.json")).unwrap();
    let (segments, marker) = shard_files(&root.join("shard-0000"));
    std::fs::copy(
        &marker,
        trial_dir
            .join("shard-0000")
            .join(marker.file_name().unwrap()),
    )
    .unwrap();
    let mut remaining = cut;
    for segment in segments {
        if remaining == 0 {
            break;
        }
        let bytes = std::fs::read(&segment).unwrap();
        let keep = (remaining as usize).min(bytes.len());
        std::fs::write(
            trial_dir
                .join("shard-0000")
                .join(segment.file_name().unwrap()),
            &bytes[..keep],
        )
        .unwrap();
        remaining -= keep as u64;
    }
}

/// The tentpole guarantee: kill the store at ANY byte offset of its
/// durable stream, reopen, and every surviving session is bit-identical to
/// a live session at the same operation count — proven by diffing snapshot
/// strings against the shadow history.
#[test]
fn recovery_from_any_truncation_offset_is_bit_identical() {
    let root = unique_temp_dir("journal-recovery");
    let catalog = std::sync::Arc::new(
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
            vec![0.5, 0.9],
            vec![0.7, 0.1],
            vec![0.1, 0.3],
        ])
        .unwrap(),
    );
    // Write-through commits and tiny segments: every op hits disk and the
    // stream rotates across several files, so cuts land in interesting
    // places (mid-record, mid-header, between segments).
    let mut store = SessionStore::open_with(
        store_config(),
        DurabilityConfig {
            flush_every_ops: 1,
            segment_max_bytes: 2048,
            ..DurabilityConfig::at(&root)
        },
    )
    .unwrap();
    let mut shadow = SessionStore::new(store_config()).unwrap();
    let history = drive_with_history(&mut store, &mut shadow, &catalog);
    store.sync().unwrap();
    // Kill: no destructors run, nothing beyond the explicit sync survives
    // by grace.
    std::mem::forget(store);

    let (segments, _) = shard_files(&root.join("shard-0000"));
    assert!(segments.len() >= 2, "workload must span multiple segments");
    let total: u64 = segments
        .iter()
        .map(|s| std::fs::metadata(s).unwrap().len())
        .sum();

    // Edge offsets plus seeded random interior cuts.
    let mut offsets = vec![0, SEGMENT_HEADER_LEN as u64 - 1, total - 1, total];
    let mut rng = StdRng::seed_from_u64(20140902);
    for _ in 0..12 {
        offsets.push(rng.gen_range(1..total));
    }

    for (trial, cut) in offsets.into_iter().enumerate() {
        let trial_dir = unique_temp_dir(&format!("journal-recovery-t{trial}"));
        copy_truncated(&root, &trial_dir, cut);
        let mut recovered = SessionStore::open(&trial_dir, store_config())
            .unwrap_or_else(|e| panic!("recovery at offset {cut} failed: {e}"));
        if cut == total {
            assert_eq!(
                recovered.len() as u64,
                SESSIONS,
                "full stream recovers everything"
            );
        }
        for id in recovered.session_ids() {
            // The recovered operation count tells us which point of the
            // live timeline this session was cut back to ...
            let replayed = recovered.export_journal().replay(id).unwrap();
            let expected = history
                .get(&(id, replayed.ops))
                .unwrap_or_else(|| panic!("offset {cut}: no history at ({id}, {})", replayed.ops));
            // ... and at that point the recovered state must equal the live
            // state byte for byte.
            let recovered_snapshot = recovered.snapshot(id).unwrap();
            assert_eq!(
                &recovered_snapshot, expected,
                "offset {cut}: recovered {id} diverged at ops {}",
                replayed.ops
            );
        }
        // The recovered store keeps serving.
        if let Some(id) = recovered.session_ids().first().copied() {
            let shown = recovered.present(id).unwrap();
            recovered
                .feedback(id, Feedback::Click { index: 0 })
                .unwrap();
            assert!(!shown.is_empty());
            assert!(!recovered.recommend(id).unwrap().is_empty());
        }
        std::fs::remove_dir_all(&trial_dir).unwrap();
    }
    std::fs::remove_dir_all(&root).unwrap();
}
