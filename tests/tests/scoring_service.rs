//! Integration tests for the cross-shard scoring service and its adaptive
//! admission policy, driven through the store-level batching seam
//! ([`SessionStore::present_many`]) and the serving loop
//! ([`ServingLoop::run_scored`]).
//!
//! The single invariant under test: the batcher may change *when* pending
//! presents are scored — stacked fleet-wide, or serially after an
//! admission decline — but never *what* they compute.  Every test holds
//! the batched path against a serial shadow store, bit for bit, while
//! pinning the admission audit counters for its edge case: a group of
//! one, an all-converged round, a fleet where no group clears the
//! thresholds, content-equal catalogs grouped by the interner, and (as a
//! property) arbitrary scripted admission decision sequences.

use std::sync::Arc;

use pkgrec_core::prelude::*;
use pkgrec_core::{AggregationContext, LinearUtility, SimulatedUser};
use pkgrec_serve::{
    user_rng, AdmissionMode, RecommenderSpec, ScoringConfig, ScoringService, ServingLoop,
    SessionConfig, SessionId, SessionStore, StoreConfig,
};
use proptest::prelude::*;

/// A small deterministic catalog: 2 features in (0, 1), `items` rows.
fn catalog(seed: u64, items: usize) -> Arc<Catalog> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        0.05 + (state % 90) as f64 / 100.0
    };
    let rows = (0..items).map(|_| vec![next(), next()]).collect();
    Arc::new(Catalog::from_rows(rows).expect("test rows are valid items"))
}

/// A cheap engine session over the given catalog.
fn engine_session(catalog: Arc<Catalog>, seed: u64) -> SessionConfig {
    SessionConfig {
        catalog,
        profile: Profile::cost_quality(),
        max_package_size: 2,
        spec: RecommenderSpec::Engine(EngineConfig {
            k: 2,
            num_random: 2,
            num_samples: 20,
            ..EngineConfig::default()
        }),
        seed,
    }
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("test values serialise")
}

/// A deterministic, always-satisfiable click index for the shown list.
fn click(user: &SimulatedUser, catalog: &Catalog, shown: &[Package]) -> usize {
    user.choose(catalog, shown, &mut user_rng(0))
        .expect("shown lists are non-empty")
}

fn store(shards: usize, capacity: usize) -> SessionStore {
    SessionStore::new(StoreConfig {
        shards,
        capacity_per_shard: capacity,
    })
    .expect("memory store opens")
}

/// Drives `rounds` of batched presents (plus one feedback per session, to
/// evolve the engines' constraint state) against a serial shadow, and
/// asserts every shown list is bit-identical.  Returns the batched store
/// for counter assertions.
fn assert_batched_matches_serial(
    sessions: Vec<SessionConfig>,
    service: &ScoringService,
    rounds: usize,
) -> SessionStore {
    let mut batched = store(2, sessions.len().max(1));
    let mut shadow = store(2, sessions.len().max(1));
    let mut ids: Vec<SessionId> = Vec::new();
    let mut users: Vec<SimulatedUser> = Vec::new();
    for config in sessions {
        let context = AggregationContext::new(config.profile.clone(), &config.catalog, 2).unwrap();
        users.push(SimulatedUser::new(
            LinearUtility::new(context, vec![-0.7, 0.6]).unwrap(),
        ));
        let id = batched.create(config.clone()).unwrap();
        assert_eq!(id, shadow.create(config).unwrap());
        ids.push(id);
    }
    for _round in 0..rounds {
        let shown = batched.present_many(&ids, service).unwrap();
        assert_eq!(shown.len(), ids.len());
        for (i, &id) in ids.iter().enumerate() {
            let serial = shadow.present(id).unwrap();
            assert_eq!(
                json(&shown[i]),
                json(&serial),
                "session {i}: batched present diverged from serial"
            );
            let shown_catalog = shadow.session_config(id).unwrap().catalog.clone();
            let index = click(&users[i], &shown_catalog, &serial);
            assert_eq!(
                batched.feedback(id, Feedback::Click { index }).unwrap(),
                shadow.feedback(id, Feedback::Click { index }).unwrap()
            );
        }
    }
    batched
}

/// A group of one never clears the admission floors: every round falls
/// back to serial scoring (audited), batches nothing, and still matches
/// the serial shadow exactly.
#[test]
fn a_group_of_one_falls_back_and_matches_serial() {
    let service = ScoringService::new(ScoringConfig::default());
    let sessions = vec![engine_session(catalog(7, 8), 41)];
    let batched = assert_batched_matches_serial(sessions, &service, 3);
    let stats = batched.stats();
    assert_eq!(stats.batched_sessions, 0, "a singleton must not batch");
    assert_eq!(stats.batched_groups, 0);
    assert!(
        stats.admission_fallbacks >= 3,
        "every declined round must be audited, got {}",
        stats.admission_fallbacks
    );
}

/// A fleet of content-distinct catalogs yields only singleton groups, so
/// no group clears the thresholds even though the queue is deep — every
/// session falls back, and the results still match the serial shadow.
#[test]
fn a_mixed_catalog_fleet_where_no_group_clears_the_floors_falls_back() {
    let service = ScoringService::new(ScoringConfig::default());
    let sessions: Vec<SessionConfig> = (0..4)
        .map(|i| engine_session(catalog(100 + i, 8), 50 + i))
        .collect();
    let batched = assert_batched_matches_serial(sessions, &service, 2);
    let stats = batched.stats();
    assert_eq!(stats.batched_sessions, 0);
    assert_eq!(stats.batched_groups, 0);
    assert!(
        stats.admission_fallbacks >= 8,
        "4 sessions x 2 rounds of declines must be audited, got {}",
        stats.admission_fallbacks
    );
}

/// Content-equal catalogs arriving as distinct `Arc`s (as they do off the
/// wire) are canonicalised by the store's interner, so the batcher groups
/// them — with admission forced on, every session batches and the stacked
/// sweep still matches the serial shadow.
#[test]
fn content_equal_catalogs_group_through_the_interner() {
    let service = ScoringService::new(ScoringConfig {
        mode: AdmissionMode::Always,
        ..ScoringConfig::default()
    });
    // Each call to `catalog(7, _)` builds its own Arc of identical rows.
    let sessions: Vec<SessionConfig> = (0..4)
        .map(|i| engine_session(catalog(7, 8), 60 + i))
        .collect();
    let batched = assert_batched_matches_serial(sessions, &service, 2);
    let stats = batched.stats();
    assert_eq!(
        stats.batched_sessions, 8,
        "every present must have been admitted"
    );
    assert!(
        stats.batched_groups >= 2,
        "each round's fleet must stack into at least one group"
    );
    assert_eq!(stats.admission_fallbacks, 0);
}

/// The scored serving loop terminates when every session converges before
/// the round budget (all-converged rounds submit nothing, which must read
/// as "done", not hang a rendezvous), and its outcomes equal the serial
/// loop's exactly.
#[test]
fn an_all_converged_fleet_terminates_the_scored_loop() {
    let shared = catalog(9, 8);
    let context = AggregationContext::new(Profile::cost_quality(), &shared, 2).unwrap();
    let build_fleet = |store: &mut SessionStore| -> Vec<(SessionId, SimulatedUser)> {
        (0..4)
            .map(|i| {
                let id = store
                    .create(engine_session(shared.clone(), 70 + i))
                    .unwrap();
                let utility = LinearUtility::new(context.clone(), vec![-0.7, 0.6]).unwrap();
                (id, SimulatedUser::new(utility))
            })
            .collect()
    };
    // A generous round budget with a short stability bar: every session
    // converges well before `max_rounds`, so the loop's tail is
    // all-converged rounds.
    let elicitation = ElicitationConfig {
        max_rounds: 12,
        stable_rounds: 1,
    };

    let mut serial_store = store(2, 4);
    let serial_fleet = build_fleet(&mut serial_store);
    let serial = ServingLoop::new(&mut serial_store)
        .run(&serial_fleet, elicitation, 2)
        .unwrap();

    let mut scored_store = store(2, 4);
    let scored_fleet = build_fleet(&mut scored_store);
    let scored = ServingLoop::new(&mut scored_store)
        .run_scored(&scored_fleet, elicitation, 2, &ScoringConfig::default())
        .unwrap();

    assert_eq!(json(&serial), json(&scored));
    assert!(
        scored.iter().all(|outcome| outcome.converged),
        "the short stability bar must converge every session"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any admission decision sequence — arbitrary scripted admit/decline
    /// patterns, cycled over the rounds — yields presents bit-identical
    /// to serial scoring.  Admission is a performance policy, never a
    /// correctness lever.
    #[test]
    fn any_admission_script_is_bit_identical_to_serial(
        script in prop::collection::vec(0u8..2, 0..8),
        sessions in 1usize..4,
        rounds in 1usize..3,
        seed in 0u64..1000,
    ) {
        let script: Vec<bool> = script.into_iter().map(|bit| bit == 1).collect();
        let service = ScoringService::new(ScoringConfig {
            mode: AdmissionMode::Scripted(script),
            ..ScoringConfig::default()
        });
        let configs: Vec<SessionConfig> = (0..sessions)
            .map(|i| engine_session(catalog(seed, 8), seed ^ (i as u64 + 1)))
            .collect();
        // `assert_batched_matches_serial` panics on any divergence, which
        // proptest reports (and shrinks) as a failing case.
        assert_batched_matches_serial(configs, &service, rounds);
    }
}
