//! Cross-crate properties of the serving layer (`pkgrec-serve`):
//!
//! * journal replay is **bit-identical** — for random feedback sequences,
//!   replaying a session's journal reconstructs exactly the state of the
//!   live session, for the engine (compared through the snapshot machinery
//!   of `pkgrec-core`) and for the EM-refit baseline adapter (compared
//!   through its state and next recommendation),
//! * serving outcomes are independent of the store's shard count, the
//!   serving loop's thread count, and capacity pressure (spill/rehydrate
//!   round trips are invisible to sessions).

use pkgrec_baselines::{BaselineSpec, EmRefitConfig, FeatureDirection};
use pkgrec_core::prelude::*;
use pkgrec_serve::{
    op_rng, user_rng, LiveSession, RecommenderSpec, SessionConfig, SessionId, SessionStore,
    StoreConfig,
};
use proptest::prelude::*;

fn catalog_strategy(max_items: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.05f64..1.0, 2), 5..max_items)
}

fn engine_config(rows: &[Vec<f64>], seed: u64) -> SessionConfig {
    SessionConfig {
        catalog: std::sync::Arc::new(Catalog::from_rows(rows.to_vec()).unwrap()),
        profile: Profile::cost_quality(),
        max_package_size: 2,
        spec: RecommenderSpec::Engine(EngineConfig {
            k: 2,
            num_random: 2,
            num_samples: 20,
            ..EngineConfig::default()
        }),
        seed,
    }
}

fn em_refit_config(rows: &[Vec<f64>], seed: u64) -> SessionConfig {
    SessionConfig {
        spec: RecommenderSpec::Baseline(BaselineSpec::EmRefit(EmRefitConfig {
            k: 2,
            num_random: 2,
            num_samples: 15,
            samples_per_refit: 30,
            ..EmRefitConfig::default()
        })),
        ..engine_config(rows, seed)
    }
}

fn hidden_user(catalog: &Catalog, weights: Vec<f64>) -> SimulatedUser {
    let context = AggregationContext::new(Profile::cost_quality(), catalog, 2).unwrap();
    SimulatedUser::new(LinearUtility::new(context, weights).unwrap())
}

/// Drives `rounds` rounds through the store, mixing clicks, pairwise
/// comparisons and skips; the click/preferred index always follows the
/// hidden utility, so the recorded preference set stays satisfiable.
fn drive_rounds(
    store: &mut SessionStore,
    id: SessionId,
    user: &SimulatedUser,
    rounds: usize,
    kinds: &[u8],
) {
    let catalog = store.session_config(id).unwrap().catalog.clone();
    for round in 0..rounds {
        let shown = store.present(id).unwrap();
        let best = user.choose(&catalog, &shown, &mut user_rng(id.0)).unwrap();
        let feedback = match kinds[round % kinds.len()] % 3 {
            0 => Feedback::Click { index: best },
            1 => Feedback::Pairwise {
                preferred: best,
                over: (best + 1) % shown.len(),
            },
            _ => Feedback::Skip,
        };
        store.feedback(id, feedback).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Engine sessions: `replay(journal)` reconstructs the *exact* session —
    /// its snapshot (config + preference DAG + pool, bit for bit) equals the
    /// live one's.
    #[test]
    fn engine_journal_replay_is_bit_identical(
        rows in catalog_strategy(9),
        w0 in -1.0f64..1.0,
        w1 in -1.0f64..1.0,
        rounds in 1usize..4,
        kinds in prop::collection::vec(0u8..3, 4),
        seed in 0u64..1000,
    ) {
        let mut store = SessionStore::new(StoreConfig { shards: 1, capacity_per_shard: 8 }).unwrap();
        let config = engine_config(&rows, seed);
        let user = hidden_user(&config.catalog, vec![w0, w1]);
        let id = store.create(config).unwrap();
        drive_rounds(&mut store, id, &user, rounds, &kinds);

        // Replay the journal as it stands (no checkpoints were written: the
        // store never exceeded capacity), i.e. reconstruct from `Created`.
        let replayed = store.export_journal().replay(id).unwrap();
        let LiveSession::Engine(replica) = &replayed.session else {
            panic!("engine session expected");
        };
        // The live session's snapshot, via the store's snapshot surface.
        let live_json = store.snapshot(id).unwrap();
        let live: SessionSnapshot = serde_json::from_str(&live_json).unwrap();
        prop_assert_eq!(&replica.snapshot(), &live);

        // After eviction the session rehydrates from its checkpoint and
        // keeps recommending exactly what the uninterrupted session would.
        let before = store.recommend(id).unwrap();
        store.evict(id).unwrap();
        prop_assert_eq!(store.recommend(id).unwrap(), before);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The EM-refit baseline adapter: replay rebuilds a session with the
    /// same observable state and the same next recommendation (the adapter
    /// has no snapshot form — the journal *is* its durable form).
    #[test]
    fn em_refit_journal_replay_matches_the_live_session(
        rows in catalog_strategy(8),
        w0 in -1.0f64..1.0,
        w1 in -1.0f64..1.0,
        rounds in 1usize..3,
        kinds in prop::collection::vec(0u8..3, 3),
        seed in 0u64..1000,
    ) {
        let mut store = SessionStore::new(StoreConfig { shards: 1, capacity_per_shard: 8 }).unwrap();
        let config = em_refit_config(&rows, seed);
        let user = hidden_user(&config.catalog, vec![w0, w1]);
        let id = store.create(config).unwrap();
        drive_rounds(&mut store, id, &user, rounds, &kinds);

        let mut replayed = store.export_journal().replay(id).unwrap();
        let live_state = store.state(id).unwrap();
        prop_assert_eq!(replayed.session.inspect().state(), live_state);
        // Same next recommendation under the session's own derived stream.
        let mut rng = op_rng(replayed.config.seed, replayed.ops);
        let replica_recs = replayed.session.recommender().recommend(&mut rng).unwrap();
        prop_assert_eq!(store.recommend(id).unwrap(), replica_recs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Checkpoint-anchored compaction is invisible to sessions: for random
    /// interleavings of rounds, evictions, explicit checkpoints and
    /// compaction passes, a compacting store stays bit-identical to a
    /// shadow store that never compacts — same snapshots, same baseline
    /// state, same recommendations — and its compacted journal still
    /// replays every session exactly.
    #[test]
    fn compaction_preserves_replay_for_random_interleavings(
        rows in catalog_strategy(8),
        w0 in -1.0f64..1.0,
        w1 in -1.0f64..1.0,
        script in prop::collection::vec(0u8..6, 4..16),
        seed in 0u64..1000,
    ) {
        let build = || {
            let mut store =
                SessionStore::new(StoreConfig { shards: 2, capacity_per_shard: 8 }).unwrap();
            let ids = vec![
                store.create(engine_config(&rows, seed)).unwrap(),
                store.create(engine_config(&rows, seed ^ 0xBEEF)).unwrap(),
                store.create(em_refit_config(&rows, seed ^ 0xCAFE)).unwrap(),
            ];
            (store, ids)
        };
        let (mut compacting, ids) = build();
        let (mut shadow, shadow_ids) = build();
        prop_assert_eq!(&ids, &shadow_ids);
        let user = hidden_user(&compacting.session_config(ids[0]).unwrap().catalog.clone(),
                               vec![w0, w1]);

        for (step, action) in script.iter().enumerate() {
            match action {
                // A feedback round on one of the three sessions.
                0..=2 => {
                    let id = ids[*action as usize];
                    let kinds = [*action + step as u8];
                    drive_rounds(&mut compacting, id, &user, 1, &kinds);
                    drive_rounds(&mut shadow, id, &user, 1, &kinds);
                }
                // Spill an engine session (writes a checkpoint) on both.
                3 => {
                    let id = ids[step % 2];
                    if compacting.is_live(id).unwrap() {
                        compacting.evict(id).unwrap();
                    }
                    if shadow.is_live(id).unwrap() {
                        shadow.evict(id).unwrap();
                    }
                }
                // Explicit checkpoint of an engine session on both.
                4 => {
                    let id = ids[step % 2];
                    compacting.snapshot(id).unwrap();
                    shadow.snapshot(id).unwrap();
                }
                // Compact — only the compacting store.  The shadow keeps
                // its full history as the reference.
                _ => {
                    compacting.compact().unwrap();
                }
            }
        }
        compacting.compact().unwrap();

        // The compacted journal never outgrows the full history.
        prop_assert!(compacting.export_journal().len() <= shadow.export_journal().len());

        // Engine sessions: identical snapshots, byte for byte.
        for &id in &ids[..2] {
            prop_assert_eq!(compacting.snapshot(id).unwrap(), shadow.snapshot(id).unwrap());
        }
        // The baseline session: identical observable state.
        prop_assert_eq!(
            compacting.state(ids[2]).unwrap(),
            shadow.state(ids[2]).unwrap()
        );
        // And every session still recommends identically — both live and
        // after replaying the compacted journal into a fresh store.
        let journal = compacting.export_journal();
        let mut replayed = SessionStore::from_journal(
            StoreConfig { shards: 1, capacity_per_shard: 8 },
            &journal,
        ).unwrap();
        for &id in &ids {
            let expected = shadow.recommend(id).unwrap();
            prop_assert_eq!(compacting.recommend(id).unwrap(), expected.clone());
            prop_assert_eq!(replayed.recommend(id).unwrap(), expected);
        }
    }
}

/// Builds one mixed fleet (engine / em-refit / skyline sessions) in a store
/// of the given shape and serves every session to convergence.
fn serve_fleet(
    shards: usize,
    capacity: usize,
    threads: usize,
) -> Vec<pkgrec_serve::SessionOutcome> {
    let rows = vec![
        vec![0.6, 0.2],
        vec![0.4, 0.4],
        vec![0.2, 0.4],
        vec![0.9, 0.8],
        vec![0.3, 0.7],
        vec![0.7, 0.1],
        vec![0.1, 0.3],
        vec![0.5, 0.9],
    ];
    let mut store = SessionStore::new(StoreConfig {
        shards,
        capacity_per_shard: capacity,
    })
    .unwrap();
    let mut sessions = Vec::new();
    for i in 0..9u64 {
        let seed = 400 + i;
        let config = match i % 3 {
            0 => engine_config(&rows, seed),
            1 => em_refit_config(&rows, seed),
            _ => SessionConfig {
                spec: RecommenderSpec::Baseline(BaselineSpec::Skyline {
                    cardinality: 2,
                    directions: vec![FeatureDirection::Minimize, FeatureDirection::Maximize],
                    k: 2,
                }),
                ..engine_config(&rows, seed)
            },
        };
        let catalog = config.catalog.clone();
        let id = store.create(config).unwrap();
        let lean = if i % 2 == 0 { -0.8 } else { 0.4 };
        sessions.push((id, hidden_user(&catalog, vec![lean, 0.6])));
    }
    let elicitation = ElicitationConfig {
        max_rounds: 5,
        stable_rounds: 2,
    };
    pkgrec_serve::ServingLoop::new(&mut store)
        .run(&sessions, elicitation, threads)
        .unwrap()
}

#[test]
fn serving_outcomes_are_shard_and_thread_count_independent() {
    // Ample capacity: full outcome equality (including search counters)
    // across 1 shard vs 4 shards and 1 thread vs 4 threads.
    let baseline = serve_fleet(1, 32, 1);
    assert_eq!(baseline.len(), 9);
    assert!(baseline.iter().any(|o| o.label == "engine"));
    assert!(baseline.iter().any(|o| o.label == "em-refit"));
    assert!(baseline.iter().any(|o| o.label == "skyline"));
    for (shards, threads) in [(4, 1), (4, 4), (2, 2)] {
        let other = serve_fleet(shards, 32, threads);
        assert_eq!(baseline, other, "{shards} shards, {threads} threads");
    }
}

#[test]
fn serving_outcomes_survive_capacity_pressure() {
    // Capacity 1 forces spill/rehydrate on nearly every operation; the
    // per-session elicitation outcomes must not change.  (Search counters
    // are process-local observability and reset on engine rehydration, so
    // they are excluded from this comparison.)
    let ample = serve_fleet(2, 32, 2);
    let starved = serve_fleet(2, 1, 2);
    assert_eq!(ample.len(), starved.len());
    for (a, s) in ample.iter().zip(starved.iter()) {
        assert_eq!(a.id, s.id);
        assert_eq!(a.label, s.label);
        assert_eq!(a.clicks, s.clicks, "session {}", a.id);
        assert_eq!(a.converged, s.converged, "session {}", a.id);
        assert_eq!(a.precision, s.precision, "session {}", a.id);
    }
}
