//! Sanity checks over the committed benchmark artifacts (`BENCH_*.json` at
//! the repository root): every artifact must parse, carry the machine/build
//! environment header, and contain the series its figure is expected to
//! record.  CI runs this suite after the fig smoke set so a bench refresh
//! that drops a field (or a figure that silently stops writing a series)
//! fails the build instead of shipping a hollow artifact.

use serde_json::Value;
use std::path::PathBuf;

fn artifact(name: &str) -> Value {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join(name);
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name} must exist at the repository root: {e}"));
    serde_json::value_from_str(&raw).unwrap_or_else(|e| panic!("{name} must be valid JSON: {e:?}"))
}

fn field<'a>(name: &str, value: &'a Value, key: &str) -> &'a Value {
    value
        .get(key)
        .unwrap_or_else(|| panic!("{name} must carry a `{key}` field"))
}

fn str_field(name: &str, value: &Value, key: &str) -> String {
    field(name, value, key)
        .as_str()
        .unwrap_or_else(|| panic!("{name}: `{key}` must be a string"))
        .to_string()
}

/// Every artifact embeds the environment it was measured under, so a number
/// can always be read next to the hardware that produced it.
fn assert_environment(name: &str, record: &Value) {
    let env = field(name, record, "environment");
    assert!(
        field(name, env, "available_parallelism")
            .as_i128()
            .is_some_and(|p| p >= 1),
        "{name}: environment.available_parallelism must be >= 1"
    );
    for key in ["os", "arch"] {
        assert!(
            !str_field(name, env, key).is_empty(),
            "{name}: environment.{key} must be non-empty"
        );
    }
    assert_eq!(
        str_field(name, env, "build_profile"),
        "release",
        "{name}: committed artifacts must be measured in release builds"
    );
}

fn points<'a>(name: &str, record: &'a Value, key: &str) -> &'a [Value] {
    let list = field(name, record, key)
        .as_array()
        .unwrap_or_else(|| panic!("{name}: `{key}` must be an array"));
    assert!(!list.is_empty(), "{name}: `{key}` must not be empty");
    list
}

fn series_paths(name: &str, record: &Value, key: &str) -> Vec<String> {
    points(name, record, key)
        .iter()
        .map(|p| str_field(name, p, "path"))
        .collect()
}

#[test]
fn scoring_artifact_records_every_kernel_shape() {
    let name = "BENCH_scoring.json";
    let record = artifact(name);
    assert_eq!(str_field(name, &record, "bench"), "fig_scoring");
    assert_environment(name, &record);
    let paths = series_paths(name, &record, "points");
    for required in ["scalar", "lane-blocked", "unrolled"] {
        assert!(
            paths.iter().any(|p| p == required),
            "{name} must record the `{required}` kernel shape, got {paths:?}"
        );
    }
    assert!(
        paths.iter().any(|p| p.starts_with("threaded_")),
        "{name} must record a threaded kernel shape, got {paths:?}"
    );
    for point in points(name, &record, "points") {
        for key in ["mean_ns", "cells_per_sec", "speedup_vs_scalar"] {
            assert!(
                field(name, point, key).as_f64().is_some_and(|v| v > 0.0),
                "{name}: every point needs a positive `{key}`"
            );
        }
    }
}

#[test]
fn serving_artifact_records_the_batched_path() {
    let name = "BENCH_serving.json";
    let record = artifact(name);
    assert_eq!(str_field(name, &record, "bench"), "fig_serving");
    assert_environment(name, &record);
    let paths = series_paths(name, &record, "points");
    for required in [
        "store-hit",
        "batched",
        "batched-xshard",
        "admission-fallback",
        "snapshot-restore",
    ] {
        assert!(
            paths.iter().any(|p| p == required),
            "{name} must record the `{required}` path, got {paths:?}"
        );
    }
    for point in points(name, &record, "points") {
        assert!(
            field(name, point, "sessions_per_sec")
                .as_f64()
                .is_some_and(|v| v > 0.0),
            "{name}: every point needs a positive `sessions_per_sec`"
        );
        let store = field(name, point, "store");
        match str_field(name, point, "path").as_str() {
            "batched" => {
                assert!(
                    field(name, store, "batched_presents")
                        .as_i128()
                        .is_some_and(|n| n > 0),
                    "{name}: batched points must have run batched sweeps"
                );
            }
            // The cross-shard scoring service must have admitted groups ...
            "batched-xshard" => {
                for key in ["batched_sessions", "batched_groups"] {
                    assert!(
                        field(name, store, key).as_i128().is_some_and(|n| n > 0),
                        "{name}: batched-xshard points need a positive `{key}`"
                    );
                }
            }
            // ... and the forced-fallback shape must audit every decline.
            "admission-fallback" => {
                assert!(
                    field(name, store, "admission_fallbacks")
                        .as_i128()
                        .is_some_and(|n| n > 0),
                    "{name}: admission-fallback points must record fallbacks"
                );
                assert_eq!(
                    field(name, store, "batched_sessions").as_i128(),
                    Some(0),
                    "{name}: admission-fallback points must not batch"
                );
            }
            _ => {}
        }
    }
    field(name, &record, "durability");
}

#[test]
fn pkgsearch_artifact_records_the_sweep() {
    let name = "BENCH_pkgsearch.json";
    let record = artifact(name);
    assert_eq!(str_field(name, &record, "bench"), "fig_pkgsearch");
    assert_environment(name, &record);
    for config in points(name, &record, "configs") {
        for key in [
            "features",
            "phi",
            "reference_ns_per_search",
            "arena_ns_per_search",
        ] {
            assert!(
                field(name, config, key).as_i128().is_some_and(|v| v > 0),
                "{name}: every config needs a positive `{key}`"
            );
        }
    }
}

#[test]
fn server_artifact_records_load_levels() {
    let name = "BENCH_server.json";
    let record = artifact(name);
    assert_eq!(str_field(name, &record, "bench"), "fig_server");
    assert_environment(name, &record);
    let levels = points(name, &record, "levels");
    // Every concurrency level runs both request-loop modes, and both must
    // be shadow-clean: neither the wire nor the batcher may be observable.
    for required in ["serial", "batched"] {
        assert!(
            levels
                .iter()
                .any(|l| str_field(name, l, "mode") == required),
            "{name} must record the `{required}` request-loop mode"
        );
    }
    for level in levels {
        let report = field(name, level, "report");
        assert_eq!(
            field(name, report, "mismatches").as_i128(),
            Some(0),
            "{name}: recorded levels must have zero shadow mismatches"
        );
        assert!(
            field(name, report, "sessions_per_sec")
                .as_f64()
                .is_some_and(|v| v > 0.0),
            "{name}: every level needs a positive `sessions_per_sec`"
        );
        let store = field(name, level, "store");
        match str_field(name, level, "mode").as_str() {
            "serial" => {
                assert_eq!(
                    field(name, level, "batch_window_us").as_i128(),
                    Some(0),
                    "{name}: serial levels must run with a zero batch window"
                );
            }
            "batched" => {
                assert!(
                    field(name, level, "batch_window_us")
                        .as_i128()
                        .is_some_and(|w| w > 0),
                    "{name}: batched levels must run with a batch window"
                );
                // Every engine present consulted the admission policy, so
                // its audit counters must have moved.
                let consulted = ["batched_sessions", "admission_fallbacks"]
                    .iter()
                    .map(|key| field(name, store, key).as_i128().unwrap_or(0))
                    .sum::<i128>();
                assert!(
                    consulted > 0,
                    "{name}: batched levels must exercise the admission policy"
                );
            }
            other => panic!("{name}: unknown request-loop mode `{other}`"),
        }
    }
}
