//! Property tests over the batched scoring kernel and the flattened sample
//! pool: `score_batch` must agree with the scalar `dot` path to 1e-12 across
//! random pools and candidates (serial and threaded), and a snapshot of a
//! session whose pool lives in flat storage must restore bit-identically.
//!
//! The engine fixture is built once behind a `OnceLock` so the expensive
//! elicitation rounds run a single time no matter how many tests consume it.

use std::sync::OnceLock;

use pkgrec_core::prelude::*;
use pkgrec_core::sampler::WeightSample;
use pkgrec_core::scoring::{score_batch_threaded, CandidateMatrix, WeightMatrix};
use pkgrec_core::utility::dot;
use pkgrec_core::SessionSnapshot;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every kernel entry equals the scalar dot product of the corresponding
    /// candidate and sample rows, to 1e-12, for the serial and the threaded
    /// split alike.
    #[test]
    fn score_batch_matches_the_scalar_dot_path(
        dim in 1usize..8,
        candidate_cells in prop::collection::vec(-1.0f64..1.0, 8 * 12),
        sample_cells in prop::collection::vec(-1.0f64..1.0, 8 * 20),
        importance_seed in 0u64..1_000,
        threads in 1usize..5,
    ) {
        let candidate_rows: Vec<Vec<f64>> = candidate_cells
            .chunks_exact(dim)
            .map(<[f64]>::to_vec)
            .collect();
        let sample_rows: Vec<Vec<f64>> = sample_cells
            .chunks_exact(dim)
            .map(<[f64]>::to_vec)
            .collect();
        let importances: Vec<f64> = (0..sample_rows.len())
            .map(|i| 0.1 + ((importance_seed + i as u64) % 17) as f64 / 8.0)
            .collect();
        let candidates = CandidateMatrix::from_rows(dim, &candidate_rows);
        let weights = WeightMatrix::from_rows(dim, &sample_rows, &importances);

        let scores = score_batch_threaded(&candidates, &weights, threads);
        prop_assert_eq!(scores.num_candidates(), candidate_rows.len());
        prop_assert_eq!(scores.num_samples(), sample_rows.len());
        for (c, candidate) in candidate_rows.iter().enumerate() {
            for (s, sample) in sample_rows.iter().enumerate() {
                let scalar = dot(candidate, sample);
                prop_assert!(
                    (scores.get(c, s) - scalar).abs() < 1e-12,
                    "candidate {} sample {}: kernel {} vs scalar {}",
                    c, s, scores.get(c, s), scalar
                );
            }
        }
        // The weighted-expectation reduction also matches its scalar form.
        let total: f64 = importances.iter().sum();
        let expectations = scores.weighted_expectations(weights.importances());
        for (c, candidate) in candidate_rows.iter().enumerate() {
            let scalar: f64 = sample_rows
                .iter()
                .zip(importances.iter())
                .map(|(sample, q)| q * dot(candidate, sample))
                .sum::<f64>() / total;
            prop_assert!((expectations[c] - scalar).abs() < 1e-12);
        }
    }

    /// A flattened pool round-trips through its row-oriented wire shape
    /// without losing a bit.
    #[test]
    fn flat_pool_serde_round_trip_is_bit_identical(
        dim in 1usize..6,
        cells in prop::collection::vec(-1.0f64..1.0, 6 * 15),
        importance_seed in 0u64..1_000,
    ) {
        let samples: Vec<WeightSample> = cells
            .chunks_exact(dim)
            .enumerate()
            .map(|(i, row)| WeightSample {
                weights: row.to_vec(),
                importance: 0.5 + ((importance_seed + i as u64) % 13) as f64 / 4.0,
            })
            .collect();
        let pool = SamplePool::from_samples(samples.clone());
        prop_assert_eq!(pool.dim(), dim);
        let json = serde_json::to_string(&pool).unwrap();
        let restored: SamplePool = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&restored, &pool);
        for (original, view) in samples.iter().zip(restored.samples()) {
            prop_assert_eq!(original.weights.as_slice(), view.weights);
            prop_assert_eq!(original.importance, view.importance);
        }
    }
}

/// A session with real feedback whose pool went through sampling and
/// maintenance — shared across the snapshot tests below via `OnceLock` so the
/// elicitation rounds run once.
fn fixture_engine() -> &'static RecommenderEngine {
    static ENGINE: OnceLock<RecommenderEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let catalog = Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
            vec![0.5, 0.9],
            vec![0.1, 0.3],
        ])
        .unwrap();
        let mut engine = RecommenderEngine::builder(catalog.clone(), Profile::cost_quality())
            .max_package_size(2)
            .k(2)
            .num_random(2)
            .num_samples(30)
            .build()
            .unwrap();
        let context = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
        let user = SimulatedUser::new(LinearUtility::new(context, vec![-0.7, 0.6]).unwrap());
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        for _ in 0..3 {
            let shown = engine.present(&mut rng).unwrap();
            let choice = user.choose(engine.catalog(), &shown, &mut rng).unwrap();
            engine
                .record_feedback(&shown, Feedback::Click { index: choice }, &mut rng)
                .unwrap();
        }
        engine
    })
}

#[test]
fn snapshot_of_a_flattened_pool_restores_bit_identically() {
    let engine = fixture_engine();
    assert!(!engine.pool().is_empty());
    let snapshot = engine.snapshot();
    let json = serde_json::to_string(&snapshot).unwrap();
    let decoded: SessionSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(decoded, snapshot);
    let restored = RecommenderEngine::restore(decoded).unwrap();
    // Bit-identical pool: flat weights, importances and dimensionality.
    assert_eq!(restored.pool(), engine.pool());
    assert_eq!(
        restored.pool().weight_matrix().weights_flat(),
        engine.pool().weight_matrix().weights_flat()
    );
    assert_eq!(restored.pool().importances(), engine.pool().importances());
    // Restored sessions resume serial regardless of the live engine's knob.
    assert_eq!(restored.num_threads(), 1);
    // And re-snapshotting reproduces the same JSON bytes.
    assert_eq!(serde_json::to_string(&restored.snapshot()).unwrap(), json);
}

#[test]
fn threaded_recommendations_match_serial_after_restore() {
    let engine = fixture_engine();
    let mut serial = RecommenderEngine::restore(engine.snapshot()).unwrap();
    let mut threaded = RecommenderEngine::restore(engine.snapshot()).unwrap();
    threaded.set_num_threads(4).unwrap();
    let mut rng_a = rand::rngs::StdRng::seed_from_u64(7);
    let mut rng_b = rand::rngs::StdRng::seed_from_u64(7);
    assert_eq!(
        serial.recommend(&mut rng_a).unwrap(),
        threaded.recommend(&mut rng_b).unwrap()
    );
}
