//! Property-based tests over the core invariants the paper relies on.

use pkgrec_core::maintenance::{find_violating, index_pool, MaintenanceStrategy};
use pkgrec_core::prelude::*;
use pkgrec_core::sampler::{SamplePool, WeightSample};
use pkgrec_core::search::{top_k_packages, top_k_packages_exhaustive, upper_exp};
use pkgrec_core::{enumerate_packages, PackageState};
use proptest::prelude::*;

/// Strategy: a small catalog of `n x m` feature values in [0, 1].
fn catalog_strategy(max_items: usize, features: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, features), 2..max_items)
}

/// Strategy: a weight vector in [-1, 1]^m.
fn weights_strategy(features: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0f64..1.0, features)
}

fn cost_quality_context(rows: &[Vec<f64>], phi: usize) -> (Catalog, AggregationContext) {
    let catalog = Catalog::from_rows(rows.to_vec()).unwrap();
    let context = AggregationContext::new(Profile::cost_quality(), &catalog, phi).unwrap();
    (catalog, context)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Definition 1 + normalisation: every normalised package feature value
    /// lies in [0, 1] for packages within the size budget.
    #[test]
    fn normalised_package_vectors_stay_in_unit_range(
        rows in catalog_strategy(8, 2),
        phi in 1usize..4,
    ) {
        let (catalog, context) = cost_quality_context(&rows, phi);
        for package in enumerate_packages(catalog.len(), phi) {
            let v = context.package_vector(&catalog, &package).unwrap();
            for value in v {
                prop_assert!((-1e-12..=1.0 + 1e-9).contains(&value));
            }
        }
    }

    /// Aggregation through the incremental PackageState equals recomputing the
    /// aggregates from scratch.
    #[test]
    fn incremental_aggregation_matches_batch(
        rows in catalog_strategy(8, 2),
        phi in 1usize..4,
    ) {
        let (catalog, context) = cost_quality_context(&rows, phi);
        for package in enumerate_packages(catalog.len(), phi) {
            let mut state = PackageState::empty(2);
            for &id in package.items() {
                state.add_item(catalog.item(id).unwrap());
            }
            let incremental = context.normalized_vector_from_state(&state);
            let batch = context.package_vector(&catalog, &package).unwrap();
            for (a, b) in incremental.iter().zip(batch.iter()) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }

    /// Lemma 2: the set of weight vectors consistent with any preference set is
    /// convex — convex combinations of valid vectors remain valid.
    #[test]
    fn valid_weight_region_is_convex(
        rows in catalog_strategy(8, 2),
        w1 in weights_strategy(2),
        w2 in weights_strategy(2),
        alpha in 0.0f64..1.0,
    ) {
        let (catalog, context) = cost_quality_context(&rows, 2);
        // Preferences oriented by w1 (so w1 is always valid).
        let utility = LinearUtility::new(context.clone(), w1.clone()).unwrap();
        let mut store = PreferenceStore::new();
        let packages = enumerate_packages(catalog.len(), 2);
        for pair in packages.windows(2) {
            let va = context.package_vector(&catalog, &pair[0]).unwrap();
            let vb = context.package_vector(&catalog, &pair[1]).unwrap();
            let (better, worse, bk, wk) = if utility.of_vector(&va) >= utility.of_vector(&vb) {
                (va, vb, pair[0].key(), pair[1].key())
            } else {
                (vb, va, pair[1].key(), pair[0].key())
            };
            let _ = store.add(bk, &better, wk, &worse);
        }
        prop_assert!(store.satisfied_by(&w1));
        if store.satisfied_by(&w2) {
            let mix: Vec<f64> = w1.iter().zip(w2.iter()).map(|(a, b)| alpha * a + (1.0 - alpha) * b).collect();
            prop_assert!(store.satisfied_by(&mix));
        }
    }

    /// Transitive reduction never changes which weight vectors are valid.
    #[test]
    fn transitive_reduction_preserves_validity(
        rows in catalog_strategy(7, 2),
        orientation in weights_strategy(2),
        probe in weights_strategy(2),
    ) {
        let (catalog, context) = cost_quality_context(&rows, 2);
        let utility = LinearUtility::new(context.clone(), orientation).unwrap();
        let mut store = PreferenceStore::new();
        let packages = enumerate_packages(catalog.len(), 2);
        for i in 0..packages.len() {
            for j in (i + 1)..packages.len() {
                let va = context.package_vector(&catalog, &packages[i]).unwrap();
                let vb = context.package_vector(&catalog, &packages[j]).unwrap();
                let (better, worse, bk, wk) = if utility.of_vector(&va) >= utility.of_vector(&vb) {
                    (va, vb, packages[i].key(), packages[j].key())
                } else {
                    (vb, va, packages[j].key(), packages[i].key())
                };
                let _ = store.add(bk, &better, wk, &worse);
            }
        }
        let full = ConstraintChecker::full(&store, 2);
        let reduced = ConstraintChecker::reduced(&store, 2);
        prop_assert!(reduced.len() <= full.len());
        prop_assert_eq!(full.is_valid(&probe), reduced.is_valid(&probe));
    }

    /// Algorithm 1 equivalence: the TA-based and hybrid violation scans find
    /// exactly the same samples as the naive scan.
    #[test]
    fn maintenance_strategies_agree(
        samples in prop::collection::vec(weights_strategy(3), 1..120),
        better in prop::collection::vec(0.0f64..1.0, 3),
        worse in prop::collection::vec(0.0f64..1.0, 3),
        gamma in 0.0f64..0.2,
    ) {
        let pool = SamplePool::from_samples(
            samples.into_iter().map(WeightSample::unweighted).collect(),
        );
        let index = index_pool(&pool);
        let pref = Preference::new(better, worse);
        let naive = find_violating(&pool, None, &pref, MaintenanceStrategy::Naive);
        let ta = find_violating(&pool, Some(&index), &pref, MaintenanceStrategy::TopK);
        let hybrid = find_violating(&pool, Some(&index), &pref, MaintenanceStrategy::Hybrid { gamma });
        prop_assert_eq!(&naive.violating, &ta.violating);
        prop_assert_eq!(&naive.violating, &hybrid.violating);
        // And the violators are exactly the samples violating the constraint.
        let expected: Vec<usize> = pool.violating_indices(|w| pref.satisfied_by(w));
        prop_assert_eq!(&naive.violating, &expected);
    }

    /// Theorem 3: the upper-exp bound from the empty package with a dominating
    /// boundary vector bounds the utility of every package.
    #[test]
    fn upper_bound_dominates_all_packages(
        rows in catalog_strategy(7, 2),
        weights in weights_strategy(2),
        phi in 1usize..4,
    ) {
        let (catalog, context) = cost_quality_context(&rows, phi);
        let utility = LinearUtility::new(context.clone(), weights.clone()).unwrap();
        let tau: Vec<f64> = (0..2)
            .map(|j| {
                let values = catalog.rows().iter().map(|r| r[j]);
                if weights[j] >= 0.0 {
                    values.fold(f64::NEG_INFINITY, f64::max)
                } else {
                    values.fold(f64::INFINITY, f64::min)
                }
            })
            .collect();
        let bound = upper_exp(&utility, &PackageState::empty(2), &tau);
        for package in enumerate_packages(catalog.len(), phi) {
            let value = utility.of_package(&catalog, &package).unwrap();
            prop_assert!(bound + 1e-9 >= value, "bound {} < {}", bound, value);
        }
    }

    /// The Top-k-Pkg search never reports a utility above the exhaustive
    /// optimum and always reports utilities it can justify.
    #[test]
    fn search_results_are_sound(
        rows in catalog_strategy(7, 2),
        weights in weights_strategy(2),
        phi in 1usize..4,
        k in 1usize..5,
    ) {
        let (catalog, context) = cost_quality_context(&rows, phi);
        let utility = LinearUtility::new(context, weights).unwrap();
        let fast = top_k_packages(&utility, &catalog, k).unwrap();
        let slow = top_k_packages_exhaustive(&utility, &catalog, k).unwrap();
        prop_assert!(fast.packages.len() <= k);
        for (package, score) in &fast.packages {
            prop_assert!(package.len() <= phi);
            let recomputed = utility.of_package(&catalog, package).unwrap();
            prop_assert!((recomputed - score).abs() < 1e-9);
            prop_assert!(*score <= slow[0].1 + 1e-9);
        }
        // Results are sorted best-first.
        for pair in fast.packages.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1 - 1e-12);
        }
    }

    /// Incremental resampling honours the `(seed, ops)` RNG derivation
    /// contract of the serving layer: from an empty pool it reproduces the
    /// fresh rebuild bit for bit under the same derived RNG, and after a new
    /// constraint it keeps exactly the still-valid rows (in order, with
    /// their importances) while every re-drawn row satisfies the updated
    /// constraints.
    #[test]
    fn incremental_resample_matches_fresh_rebuild_under_derived_rngs(
        better in prop::collection::vec(0.0f64..1.0, 2),
        worse in prop::collection::vec(0.0f64..1.0, 2),
        n in 1usize..32,
        seed in 0u64..1_000,
        ops in 0u64..64,
    ) {
        use pkgrec_core::sampler::{SamplerKind, WeightSampler};
        use pkgrec_serve::config::op_rng;

        let unconstrained = ConstraintChecker::from_constraints(2, vec![], ConstraintSource::Full);
        let prior = pkgrec_gmm::GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let sampler = SamplerKind::mcmc();

        // Fresh rebuild and incremental fill, both under op_rng(seed, ops).
        let fresh = sampler
            .generate(&prior, &unconstrained, n, &mut op_rng(seed, ops))
            .unwrap()
            .pool;
        let mut pool = SamplePool::new();
        let reused = pool
            .resample(n, &sampler, &prior, &unconstrained, &mut op_rng(seed, ops))
            .unwrap();
        prop_assert_eq!(reused, 0);
        prop_assert_eq!(&pool, &fresh);

        // A new constraint arrives; the next op derives op_rng(seed, ops + 1).
        let pref = Preference::new(better, worse);
        let checker = ConstraintChecker::from_constraints(
            2,
            vec![pref.constraint()],
            ConstraintSource::Full,
        );
        let survivors: Vec<(Vec<f64>, f64)> = fresh
            .samples()
            .filter(|s| checker.is_valid(s.weights))
            .map(|s| (s.weights.to_vec(), s.importance))
            .collect();
        if let Ok(reused) =
            pool.resample(n, &sampler, &prior, &checker, &mut op_rng(seed, ops + 1))
        {
            prop_assert_eq!(reused, survivors.len().min(n));
            prop_assert_eq!(pool.len(), n);
            for (i, (weights, importance)) in survivors.iter().take(n).enumerate() {
                prop_assert_eq!(pool.get(i).weights, &weights[..]);
                prop_assert_eq!(pool.get(i).importance, *importance);
            }
            for s in pool.samples() {
                prop_assert!(checker.is_valid(s.weights));
            }
        }
    }

    /// Rejection sampling only ever emits samples that satisfy every feedback
    /// constraint and lie inside the weight cube.
    #[test]
    fn rejection_samples_are_always_valid(
        better in prop::collection::vec(0.0f64..1.0, 2),
        worse in prop::collection::vec(0.0f64..1.0, 2),
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        use pkgrec_core::sampler::{RejectionSampler, WeightSampler};
        use rand::SeedableRng;
        let pref = Preference::new(better, worse);
        let checker = ConstraintChecker::from_constraints(
            2,
            vec![pref.constraint()],
            ConstraintSource::Full,
        );
        let prior = pkgrec_gmm::GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Ok(outcome) = RejectionSampler::default().generate(&prior, &checker, n, &mut rng) {
            prop_assert_eq!(outcome.pool.len(), n);
            for s in outcome.pool.samples() {
                prop_assert!(checker.is_valid(s.weights));
                prop_assert!(weights_in_range(s.weights));
            }
        }
    }
}
