//! Cross-crate integration tests: generated datasets flow through the
//! recommender engine, samplers, maintenance and baselines end to end.

use pkgrec_baselines::exhaustive::top_k_packages_exhaustive;
use pkgrec_baselines::{EmRefitConfig, EmRefitSession};
use pkgrec_core::prelude::*;
use pkgrec_core::ranking::PerSampleRanking;
use pkgrec_core::search::top_k_packages;
use pkgrec_data::SyntheticFamily;
use pkgrec_integration_tests::{catalog_from_dataset, engine_and_user, integration_profile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_catalog(family: SyntheticFamily, rows: usize, features: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = family.generate(rows, 10, &mut rng).unwrap();
    catalog_from_dataset(&dataset, features)
}

#[test]
fn elicitation_converges_on_every_synthetic_family() {
    for (i, family) in SyntheticFamily::all().into_iter().enumerate() {
        let catalog = small_catalog(family, 60, 3, 100 + i as u64);
        let (mut engine, user) =
            engine_and_user(catalog, 3, vec![-0.5, 0.7, 0.4], RankingSemantics::Exp, 60).unwrap();
        let mut rng = StdRng::seed_from_u64(200 + i as u64);
        let report = run_elicitation(
            &mut engine,
            &user,
            ElicitationConfig {
                max_rounds: 20,
                stable_rounds: 2,
            },
            &mut rng,
        )
        .unwrap();
        assert!(
            report.clicks <= 20,
            "{family:?} used {} clicks",
            report.clicks
        );
        assert_eq!(report.final_top_k.len(), 3, "{family:?}");
        assert!(!report.ground_truth_top_k.is_empty(), "{family:?}");
    }
}

#[test]
fn every_sampler_supports_the_full_engine_loop() {
    let catalog = small_catalog(SyntheticFamily::Uniform, 50, 3, 7);
    for sampler in [
        SamplerKind::rejection(),
        SamplerKind::importance(),
        SamplerKind::mcmc(),
    ] {
        let profile = integration_profile(3);
        let mut engine = RecommenderEngine::builder(catalog.clone(), profile)
            .max_package_size(3)
            .k(3)
            .num_random(2)
            .num_samples(50)
            .sampler(sampler.clone())
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let shown = engine.present(&mut rng).unwrap();
        assert_eq!(shown.len(), 5);
        engine
            .record_feedback(&shown, Feedback::Click { index: 0 }, &mut rng)
            .unwrap();
        let recs = engine.recommend(&mut rng).unwrap();
        assert!(!recs.is_empty(), "{}", sampler.name());
        // The pool respects the feedback after maintenance.
        let checker = engine.checker();
        assert!(engine.pool().samples().all(|s| checker.is_valid(s.weights)));
    }
}

#[test]
fn per_sample_search_agrees_with_exhaustive_on_small_catalogs() {
    let catalog = small_catalog(SyntheticFamily::Correlated, 12, 3, 3);
    let profile = integration_profile(3);
    let context = AggregationContext::new(profile, &catalog, 2).unwrap();
    let prior = pkgrec_gmm::GaussianMixture::default_prior(3, 1, 0.5).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..10 {
        let weights = clamp_weights(&prior.sample(&mut rng));
        let utility = LinearUtility::new(context.clone(), weights.clone()).unwrap();
        let fast = top_k_packages(&utility, &catalog, 3).unwrap();
        let slow = top_k_packages_exhaustive(&utility, &catalog, 3).unwrap();
        // Utilities reported by the search never exceed the true optimum and
        // match re-evaluation exactly.
        for ((package, score), (_, best)) in fast.packages.iter().zip(slow.iter()) {
            assert!(*score <= slow[0].1 + 1e-9);
            assert!((utility.of_package(&catalog, package).unwrap() - score).abs() < 1e-9);
            let _ = best;
        }
    }
}

#[test]
fn ranking_semantics_share_one_sample_pool() {
    let catalog = small_catalog(SyntheticFamily::PowerLaw, 40, 3, 11);
    let profile = integration_profile(3);
    let context = AggregationContext::new(profile, &catalog, 3).unwrap();
    let prior = pkgrec_gmm::GaussianMixture::default_prior(3, 2, 0.5).unwrap();
    let checker = ConstraintChecker::from_constraints(3, vec![], ConstraintSource::Full);
    let mut rng = StdRng::seed_from_u64(13);
    let pool = SamplerKind::mcmc()
        .generate(&prior, &checker, 80, &mut rng)
        .unwrap()
        .pool;
    let rankings: Vec<PerSampleRanking> = pool
        .samples()
        .map(|s| {
            let utility = LinearUtility::new(context.clone(), s.weights.to_vec()).unwrap();
            PerSampleRanking::new(
                s.importance,
                top_k_packages(&utility, &catalog, 4).unwrap().packages,
            )
        })
        .collect();
    for semantics in [
        RankingSemantics::Exp,
        RankingSemantics::Tkp { sigma: 4 },
        RankingSemantics::Mpo,
    ] {
        let top = pkgrec_core::aggregate(semantics, &rankings, 4);
        assert!(!top.is_empty(), "{semantics:?}");
        assert!(top.len() <= 4);
        // Scores are positive, finite and sorted (within each semantics).
        for pair in top.windows(2) {
            assert!(pair[0].score >= pair[1].score || matches!(semantics, RankingSemantics::Mpo));
        }
    }
}

#[test]
fn feedback_maintenance_matches_full_resampling_constraints() {
    // After several clicks, maintaining the pool incrementally must leave it in
    // a state where every sample satisfies the same constraints a fresh
    // resample would satisfy.
    let catalog = small_catalog(SyntheticFamily::AntiCorrelated, 40, 3, 19);
    let (mut engine, user) = engine_and_user(
        catalog.clone(),
        3,
        vec![0.6, -0.4, 0.8],
        RankingSemantics::Exp,
        60,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..3 {
        let shown = engine.present(&mut rng).unwrap();
        let choice = user.choose(&catalog, &shown, &mut rng).unwrap();
        engine
            .record_feedback(&shown, Feedback::Click { index: choice }, &mut rng)
            .unwrap();
    }
    let checker = engine.checker();
    assert!(!engine.preferences().is_empty());
    for sample in engine.pool().samples() {
        assert!(checker.is_valid(sample.weights));
    }
    // A fresh resample satisfies the same constraints.
    engine.resample(&mut rng).unwrap();
    for sample in engine.pool().samples() {
        assert!(checker.is_valid(sample.weights));
    }
}

#[test]
fn serde_round_trips_for_public_configuration_types() {
    let config = EngineConfig::default();
    let json = serde_json::to_string(&config).unwrap();
    let back: EngineConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, config);

    let semantics = RankingSemantics::Tkp { sigma: 7 };
    let json = serde_json::to_string(&semantics).unwrap();
    assert_eq!(
        serde_json::from_str::<RankingSemantics>(&json).unwrap(),
        semantics
    );

    let strategy = MaintenanceStrategy::Hybrid { gamma: 0.05 };
    let json = serde_json::to_string(&strategy).unwrap();
    assert_eq!(
        serde_json::from_str::<MaintenanceStrategy>(&json).unwrap(),
        strategy
    );

    let package = Package::new(vec![3, 1, 4]).unwrap();
    let json = serde_json::to_string(&package).unwrap();
    assert_eq!(serde_json::from_str::<Package>(&json).unwrap(), package);
}

#[test]
fn resumed_session_recommends_identically_to_an_uninterrupted_one() {
    // Run a session for a few rounds, snapshot it through JSON mid-flight,
    // then continue the original and the restored session with identically
    // seeded RNGs: every subsequent presentation and recommendation must
    // match bit for bit.
    let catalog = small_catalog(SyntheticFamily::Uniform, 40, 3, 31);
    let (mut engine, user) = engine_and_user(
        catalog.clone(),
        3,
        vec![-0.6, 0.5, 0.3],
        RankingSemantics::Exp,
        50,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(37);
    for _ in 0..2 {
        let shown = engine.present(&mut rng).unwrap();
        let choice = user.choose(&catalog, &shown, &mut rng).unwrap();
        engine
            .record_feedback(&shown, Feedback::Click { index: choice }, &mut rng)
            .unwrap();
    }

    let json = serde_json::to_string(&engine.snapshot()).unwrap();
    let snapshot: SessionSnapshot = serde_json::from_str(&json).unwrap();
    let mut resumed = RecommenderEngine::restore(snapshot).unwrap();
    assert_eq!(resumed.rounds(), engine.rounds());
    assert_eq!(resumed.pool(), engine.pool());

    let mut rng_live = StdRng::seed_from_u64(4242);
    let mut rng_resumed = StdRng::seed_from_u64(4242);
    for _ in 0..2 {
        assert_eq!(
            engine.recommend(&mut rng_live).unwrap(),
            resumed.recommend(&mut rng_resumed).unwrap()
        );
        let shown_live = engine.present(&mut rng_live).unwrap();
        let shown_resumed = resumed.present(&mut rng_resumed).unwrap();
        assert_eq!(shown_live, shown_resumed);
        let choice = user.choose(&catalog, &shown_live, &mut rng_live).unwrap();
        let choice_resumed = user
            .choose(&catalog, &shown_resumed, &mut rng_resumed)
            .unwrap();
        assert_eq!(choice, choice_resumed);
        engine
            .record_feedback(
                &shown_live,
                Feedback::Click { index: choice },
                &mut rng_live,
            )
            .unwrap();
        resumed
            .record_feedback(
                &shown_resumed,
                Feedback::Click {
                    index: choice_resumed,
                },
                &mut rng_resumed,
            )
            .unwrap();
    }
    assert_eq!(
        engine.recommend(&mut rng_live).unwrap(),
        resumed.recommend(&mut rng_resumed).unwrap()
    );
}

#[test]
fn engine_and_em_refit_share_the_generic_session_loop() {
    // The acceptance scenario of the API redesign: the engine and the
    // EM-refit baseline run as `&mut dyn Recommender` through one loop.
    let catalog = small_catalog(SyntheticFamily::Uniform, 40, 3, 41);
    let profile = integration_profile(3);
    let mut engine = RecommenderEngine::builder(catalog.clone(), profile.clone())
        .max_package_size(3)
        .k(3)
        .num_random(3)
        .num_samples(40)
        .build()
        .unwrap();
    let mut em_refit = EmRefitSession::new(
        catalog.clone(),
        profile.clone(),
        3,
        EmRefitConfig {
            k: 3,
            num_random: 3,
            num_samples: 40,
            samples_per_refit: 80,
            ..EmRefitConfig::default()
        },
    )
    .unwrap();
    let context = AggregationContext::new(profile, &catalog, 3).unwrap();
    let user = SimulatedUser::new(LinearUtility::new(context, vec![0.7, -0.4, 0.5]).unwrap());
    let comparators: [&mut dyn Recommender; 2] = [&mut engine, &mut em_refit];
    for recommender in comparators {
        let label = recommender.state().label;
        let report = run_elicitation(
            recommender,
            &user,
            ElicitationConfig {
                max_rounds: 8,
                stable_rounds: 2,
            },
            &mut StdRng::seed_from_u64(43),
        )
        .unwrap();
        assert!(report.clicks >= 1, "{label}");
        assert_eq!(report.final_top_k.len(), 3, "{label}");
        assert!((0.0..=1.0).contains(&report.precision), "{label}");
        assert!(recommender.state().rounds >= 1, "{label}");
    }
    // Both learned from the same driver, but only the engine holds a DAG.
    assert!(!engine.preferences().is_empty());
}

#[test]
fn skyline_baseline_is_consistent_with_utility_optimum() {
    // The utility-optimal package under any monotone direction assignment must
    // be a skyline package (it cannot be dominated).
    use pkgrec_baselines::skyline::{skyline_packages, FeatureDirection};
    let catalog = small_catalog(SyntheticFamily::Uniform, 12, 2, 29);
    let profile = integration_profile(2);
    let context = AggregationContext::new(profile, &catalog, 2).unwrap();
    let utility = LinearUtility::new(context.clone(), vec![-0.7, 0.5]).unwrap();
    let best = top_k_packages_exhaustive(&utility, &catalog, 20).unwrap();
    let best_two_item = best
        .iter()
        .find(|(p, _)| p.len() == 2)
        .expect("some two-item package exists")
        .0
        .clone();
    let directions = [FeatureDirection::Minimize, FeatureDirection::Maximize];
    let (skyline, _) = skyline_packages(&context, &catalog, 2, &directions).unwrap();
    assert!(
        skyline.iter().any(|(p, _)| *p == best_two_item),
        "the utility-optimal two-item package must be on the skyline"
    );
}
