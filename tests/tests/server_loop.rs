//! The network front door (`pkgrec-server`) under test:
//!
//! * the wire protocol is pinned by a golden byte fixture
//!   (`fixtures/server_frame_v4.bin`) — hello + one frame of every
//!   `Request` and `Response` variant; a PR that changes the framing, the
//!   CRC, or the payload JSON must bump `PROTOCOL_VERSION` and regenerate
//!   the fixture deliberately,
//! * property tests round-trip every enum variant through the codec,
//! * torn, oversized and CRC-corrupted frames are rejected with typed
//!   error replies and never take the accept loop down,
//! * and the headline: a loopback client driving a served, durable store
//!   gets **bit-for-bit** the same presents, recommendations and
//!   snapshots as an in-process shadow store replaying the identical
//!   operations — the determinism contract extends across the wire.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use pkgrec_core::prelude::*;
use pkgrec_integration_tests::unique_temp_dir;
use pkgrec_serve::segment::crc32;
use pkgrec_serve::StoreStats;
use pkgrec_serve::{DurabilityConfig, RecommenderSpec, SessionConfig, SessionStore, StoreConfig};
use pkgrec_server::loadgen::{build_catalog, run as run_load, session_spec, LoadConfig};
use pkgrec_server::protocol::{
    encode_frame, never_stop, read_hello, read_message, write_hello, ErrorKind, FrameError,
    Request, Response, WireError, DEFAULT_MAX_FRAME_LEN, FRAME_PREFIX_LEN, HELLO_LEN,
    PROTOCOL_VERSION,
};
use pkgrec_server::{Client, Server, ServerConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Golden wire-format fixture
// ---------------------------------------------------------------------------

/// The session configuration used by fixture and property frames: small,
/// fully deterministic, engine-flavoured.
fn fixture_config(seed: u64) -> SessionConfig {
    SessionConfig {
        catalog: Arc::new(
            Catalog::from_rows(vec![
                vec![0.6, 0.2],
                vec![0.4, 0.4],
                vec![0.2, 0.4],
                vec![0.9, 0.8],
            ])
            .unwrap(),
        ),
        profile: Profile::cost_quality(),
        max_package_size: 2,
        spec: RecommenderSpec::Engine(EngineConfig {
            k: 2,
            num_random: 2,
            num_samples: 20,
            ..EngineConfig::default()
        }),
        seed,
    }
}

/// One of every request variant, in declaration order.
fn fixture_requests() -> Vec<Request> {
    vec![
        Request::Create {
            config: fixture_config(41),
        },
        Request::Present { session: 3 },
        Request::Feedback {
            session: 3,
            feedback: Feedback::Click { index: 1 },
        },
        Request::Recommend { session: 3 },
        Request::Snapshot { session: 3 },
        Request::Stats,
        Request::Sync,
    ]
}

/// One of every response variant, in declaration order.
fn fixture_responses() -> Vec<Response> {
    let stats = StoreStats {
        created: 1,
        hits: 2,
        journal_events: 4,
        // Pin the v4 cross-shard batching counters.
        batched_sessions: 3,
        admission_fallbacks: 1,
        batch_wait_us: 250,
        ..StoreStats::default()
    };
    vec![
        Response::Created { session: 3 },
        Response::Presented {
            packages: vec![
                Package::new(vec![0, 2]).unwrap(),
                Package::new(vec![1]).unwrap(),
            ],
        },
        Response::FeedbackRecorded { preferences: 1 },
        Response::Recommended {
            ranked: vec![RankedPackage {
                package: Package::new(vec![0, 3]).unwrap(),
                score: 0.625,
            }],
        },
        Response::Snapshotted {
            snapshot: r#"{"version":1,"rounds":2}"#.to_string(),
        },
        Response::Stats { sessions: 1, stats },
        Response::Synced,
        Response::Error(WireError {
            kind: ErrorKind::UnknownSession,
            message: "session 9 is not in the store".to_string(),
            session: Some(9),
            io_kind: None,
            shard: None,
        }),
        // Pin the v3 error payload extensions: a preserved IO error class
        // and a degraded shard attribution.
        Response::Error(WireError {
            kind: ErrorKind::Io,
            message: "journal I/O error (StorageFull): flush".to_string(),
            session: Some(3),
            io_kind: Some("StorageFull".to_string()),
            shard: None,
        }),
        Response::Error(WireError {
            kind: ErrorKind::Degraded,
            message: "shard 1 is degraded (read-only)".to_string(),
            session: Some(3),
            io_kind: None,
            shard: Some(1),
        }),
    ]
}

/// The fixture byte stream: the 11-byte hello followed by one frame per
/// message — exactly what a wire capture of these messages would hold.
fn fixture_frame_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    write_hello(&mut bytes).unwrap();
    for request in fixture_requests() {
        bytes.extend(encode_frame(&request).unwrap());
    }
    for response in fixture_responses() {
        bytes.extend(encode_frame(&response).unwrap());
    }
    bytes
}

const GOLDEN_FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/server_frame_v4.bin");

/// Wire-format compatibility gate for the server protocol.  Regenerate with
/// `UPDATE_SNAPSHOT_FIXTURE=1 cargo test -p pkgrec-integration-tests golden`.
#[test]
fn golden_server_frame_fixture_stays_decodable() {
    if std::env::var_os("UPDATE_SNAPSHOT_FIXTURE").is_some() {
        std::fs::write(GOLDEN_FIXTURE, fixture_frame_bytes()).unwrap();
    }
    let disk = std::fs::read(GOLDEN_FIXTURE)
        .expect("golden fixture exists (regenerate with UPDATE_SNAPSHOT_FIXTURE=1)");

    // The fixture file name pins v4; bump both together, deliberately.
    // (v1 -> v2: the Stats payload gained the batched_presents /
    // batched_groups StoreStats counters.  v2 -> v3: WireError gained
    // io_kind/shard, ErrorKind gained Degraded, and StoreStats gained the
    // injected_faults / degraded_shards / rolled_back_ops counters.
    // v3 -> v4: StoreStats gained the cross-shard scoring-service
    // counters batched_sessions / admission_fallbacks / batch_wait_us.)
    assert_eq!(PROTOCOL_VERSION, 4, "fixture file is named for v4");

    // Encoding today must reproduce the checked-in bytes exactly: hello,
    // framing, CRC table, JSON field order and float formatting.
    assert_eq!(
        fixture_frame_bytes(),
        disk,
        "server wire format drifted; bump PROTOCOL_VERSION and regenerate the fixture"
    );

    // And the checked-in bytes must decode back into the same messages.
    let mut cursor = &disk[..];
    assert_eq!(read_hello(&mut cursor).unwrap(), PROTOCOL_VERSION);
    for expected in fixture_requests() {
        let decoded: Request = read_message(&mut cursor, DEFAULT_MAX_FRAME_LEN, &never_stop)
            .unwrap()
            .unwrap();
        assert_eq!(decoded, expected);
    }
    for expected in fixture_responses() {
        let decoded: Response = read_message(&mut cursor, DEFAULT_MAX_FRAME_LEN, &never_stop)
            .unwrap()
            .unwrap();
        assert_eq!(decoded, expected);
    }
    assert!(cursor.is_empty(), "no trailing bytes in the fixture");
}

// ---------------------------------------------------------------------------
// Property tests: every variant survives the codec
// ---------------------------------------------------------------------------

/// Builds one request variant from plain integers (the vendored proptest
/// has no `prop_oneof`, so selection happens in the test body).
fn arbitrary_request(selector: u8, session: u64, a: usize, b: usize) -> Request {
    match selector % 7 {
        0 => Request::Create {
            config: fixture_config(session),
        },
        1 => Request::Present { session },
        2 => Request::Feedback {
            session,
            feedback: match a % 3 {
                0 => Feedback::Click { index: b % 5 },
                1 => Feedback::Pairwise {
                    preferred: a % 5,
                    over: b % 5,
                },
                _ => Feedback::Skip,
            },
        },
        3 => Request::Recommend { session },
        4 => Request::Snapshot { session },
        5 => Request::Stats,
        _ => Request::Sync,
    }
}

/// Builds one response variant from plain integers.
fn arbitrary_response(selector: u8, session: u64, a: usize, score: f64) -> Response {
    match selector % 8 {
        0 => Response::Created { session },
        1 => Response::Presented {
            packages: vec![Package::new(vec![a % 7, (a % 7) + 1]).unwrap()],
        },
        2 => Response::FeedbackRecorded { preferences: a },
        3 => Response::Recommended {
            ranked: vec![RankedPackage {
                package: Package::new(vec![a % 9]).unwrap(),
                score,
            }],
        },
        4 => Response::Snapshotted {
            snapshot: format!("{{\"ops\":{a}}}"),
        },
        5 => Response::Stats {
            sessions: a,
            stats: StoreStats {
                created: a,
                evictions: a / 2,
                ..StoreStats::default()
            },
        },
        6 => Response::Synced,
        _ => Response::Error(WireError {
            kind: match a % 9 {
                0 => ErrorKind::UnknownSession,
                1 => ErrorKind::InvalidRequest,
                2 => ErrorKind::MalformedFrame,
                3 => ErrorKind::Oversized,
                4 => ErrorKind::Timeout,
                5 => ErrorKind::ShuttingDown,
                6 => ErrorKind::Io,
                7 => ErrorKind::Degraded,
                _ => ErrorKind::Internal,
            },
            message: format!("error {a} on {session}"),
            session: if a.is_multiple_of(2) {
                Some(session)
            } else {
                None
            },
            io_kind: if a.is_multiple_of(3) {
                Some("PermissionDenied".to_string())
            } else {
                None
            },
            shard: if a % 9 == 7 { Some(session % 4) } else { None },
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request variant encodes to one frame and decodes back equal.
    #[test]
    fn request_frames_round_trip(
        selector in 0u8..7,
        session in 0u64..10_000,
        a in 0usize..50,
        b in 0usize..50,
    ) {
        let request = arbitrary_request(selector, session, a, b);
        let frame = encode_frame(&request).unwrap();
        let mut cursor = &frame[..];
        let decoded: Request = read_message(&mut cursor, DEFAULT_MAX_FRAME_LEN, &never_stop)
            .unwrap()
            .unwrap();
        prop_assert_eq!(decoded, request);
        prop_assert!(cursor.is_empty());
    }

    /// Every response variant encodes to one frame and decodes back equal.
    #[test]
    fn response_frames_round_trip(
        selector in 0u8..8,
        session in 0u64..10_000,
        a in 0usize..50,
        score in -1.0f64..1.0,
    ) {
        let response = arbitrary_response(selector, session, a, score);
        let frame = encode_frame(&response).unwrap();
        let mut cursor = &frame[..];
        let decoded: Response = read_message(&mut cursor, DEFAULT_MAX_FRAME_LEN, &never_stop)
            .unwrap()
            .unwrap();
        prop_assert_eq!(decoded, response);
        prop_assert!(cursor.is_empty());
    }

    /// Flipping any single byte of a frame is caught: either the CRC
    /// rejects the payload or the length prefix no longer matches the
    /// stream (torn / oversized) — a corrupted frame never decodes
    /// silently into a different message.
    #[test]
    fn any_single_byte_flip_is_detected(
        session in 0u64..10_000,
        flip in 0usize..200,
    ) {
        let request = Request::Present { session };
        let mut frame = encode_frame(&request).unwrap();
        let index = flip % frame.len();
        frame[index] ^= 0x01;
        let mut cursor = &frame[..];
        match read_message::<_, Request>(&mut cursor, DEFAULT_MAX_FRAME_LEN, &never_stop) {
            Err(FrameError::Corrupt(_)) | Err(FrameError::Oversized { .. }) => {}
            Ok(Ok(decoded)) => prop_assert!(
                false,
                "flipped byte {} decoded into {:?}",
                index,
                decoded
            ),
            Ok(Err(_)) => prop_assert!(
                false,
                "CRC must catch payload corruption before JSON parsing"
            ),
            Err(other) => prop_assert!(false, "unexpected frame error {:?}", other),
        }
    }
}

// ---------------------------------------------------------------------------
// Malformed frames never take the server down
// ---------------------------------------------------------------------------

/// A raw (non-`Client`) connection for speaking broken protocol on purpose.
fn raw_connect(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut hello = [0u8; HELLO_LEN];
    stream.read_exact(&mut hello).expect("hello");
    stream
}

/// Reads one response frame off a raw connection.
fn raw_read_response(stream: &mut TcpStream) -> std::result::Result<Response, FrameError> {
    match read_message::<_, Response>(stream, DEFAULT_MAX_FRAME_LEN, &never_stop) {
        Ok(Ok(response)) => Ok(response),
        Ok(Err(parse)) => panic!("server sent unparseable response: {parse}"),
        Err(e) => Err(e),
    }
}

#[test]
fn malformed_frames_get_typed_errors_and_spare_the_accept_loop() {
    let store = SessionStore::new(StoreConfig {
        shards: 2,
        capacity_per_shard: 8,
    })
    .unwrap();
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let control = server.control();
    let handle = std::thread::spawn(move || {
        let mut store = store;
        server.serve(&mut store).unwrap()
    });

    // 1. CRC corruption: typed MalformedFrame reply, then the connection
    //    closes (a byte stream cannot resync after a bad frame).
    {
        let mut stream = raw_connect(addr);
        let mut frame = encode_frame(&Request::Stats).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        stream.write_all(&frame).unwrap();
        match raw_read_response(&mut stream).unwrap() {
            Response::Error(wire) => assert_eq!(wire.kind, ErrorKind::MalformedFrame),
            other => panic!("expected MalformedFrame error, got {other:?}"),
        }
        assert_eq!(
            raw_read_response(&mut stream),
            Err(FrameError::Closed),
            "server closes the connection after a corrupt frame"
        );
    }

    // 2. Oversized length prefix: typed reply, no allocation, close.
    {
        let mut stream = raw_connect(addr);
        let mut prefix = [0u8; FRAME_PREFIX_LEN];
        prefix[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        stream.write_all(&prefix).unwrap();
        match raw_read_response(&mut stream).unwrap() {
            Response::Error(wire) => assert_eq!(wire.kind, ErrorKind::Oversized),
            other => panic!("expected Oversized error, got {other:?}"),
        }
    }

    // 3. An intact frame with garbage JSON: typed InvalidRequest reply and
    //    the connection SURVIVES — the next request on it still works.
    {
        let mut stream = raw_connect(addr);
        let payload = b"{definitely not a request".to_vec();
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        stream.write_all(&frame).unwrap();
        match raw_read_response(&mut stream).unwrap() {
            Response::Error(wire) => assert_eq!(wire.kind, ErrorKind::InvalidRequest),
            other => panic!("expected InvalidRequest error, got {other:?}"),
        }
        stream
            .write_all(&encode_frame(&Request::Stats).unwrap())
            .unwrap();
        match raw_read_response(&mut stream).unwrap() {
            Response::Stats { sessions, .. } => assert_eq!(sessions, 0),
            other => panic!("expected Stats after the invalid request, got {other:?}"),
        }
    }

    // 4. After all that abuse a well-behaved client is served normally.
    let mut client = Client::connect(addr).unwrap();
    let id = client.create(fixture_config(7)).unwrap();
    assert!(!client.present(id).unwrap().is_empty());
    let (sessions, _) = client.stats().unwrap();
    assert_eq!(sessions, 1);
    drop(client);

    control.shutdown();
    let report = handle.join().unwrap();
    assert!(
        report.malformed_frames >= 2,
        "CRC + oversized both counted: {report:?}"
    );
    assert!(report.invalid_requests >= 1, "{report:?}");
    assert_eq!(report.connections, 4, "{report:?}");
}

// ---------------------------------------------------------------------------
// Loopback equivalence: the wire changes nothing
// ---------------------------------------------------------------------------

/// Wire results must be byte-identical to an in-process shadow store
/// replaying the same operations: session RNG streams derive from
/// `(seed, op index)` alone, so the network boundary, the server's shard
/// routing and its id assignment must all be unobservable in the results.
#[test]
fn loopback_results_equal_in_process_results_bit_for_bit() {
    let dir = unique_temp_dir("server-loop");
    let store = SessionStore::open_with(
        StoreConfig {
            shards: 2,
            capacity_per_shard: 4,
        },
        DurabilityConfig::at(&dir),
    )
    .unwrap();
    // The shadow deliberately uses a different shape (one shard, ample
    // capacity): shard routing and eviction pressure must not show up in
    // results either.
    let mut shadow = SessionStore::new(StoreConfig {
        shards: 1,
        capacity_per_shard: 16,
    })
    .unwrap();

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let control = server.control();
    let handle = std::thread::spawn(move || {
        let mut store = store;
        let report = server.serve(&mut store).unwrap();
        (store, report)
    });
    let mut client = Client::connect(addr).unwrap();

    let catalog = build_catalog(2014, 24).unwrap();
    let profile = Profile::cost_quality();
    const SESSIONS: u64 = 6;
    const ROUNDS: usize = 2;

    let mut pairs: Vec<(u64, pkgrec_serve::SessionId)> = Vec::new();
    for i in 0..SESSIONS {
        let config = SessionConfig {
            catalog: catalog.clone(),
            profile: profile.clone(),
            max_package_size: 2,
            spec: session_spec(i),
            seed: 9_000 + i,
        };
        let wire_id = client.create(config.clone()).unwrap();
        let shadow_id = shadow.create(config).unwrap();
        pairs.push((wire_id, shadow_id));
    }

    for round in 0..ROUNDS {
        for (i, (wire_id, shadow_id)) in pairs.iter().enumerate() {
            let shown = client.present(*wire_id).unwrap();
            let expected = shadow.present(*shadow_id).unwrap();
            assert_eq!(
                serde_json::to_string(&shown).unwrap(),
                serde_json::to_string(&expected).unwrap(),
                "present diverged for session {i} round {round}"
            );
            // Deterministic, session-dependent feedback covering all kinds.
            let feedback = match (i + round) % 3 {
                0 => Feedback::Click {
                    index: i % shown.len(),
                },
                1 if shown.len() >= 2 => Feedback::Pairwise {
                    preferred: 0,
                    over: 1,
                },
                _ => Feedback::Skip,
            };
            let wire_prefs = client.feedback(*wire_id, feedback).unwrap();
            let shadow_prefs = shadow.feedback(*shadow_id, feedback).unwrap();
            assert_eq!(wire_prefs, shadow_prefs, "session {i} round {round}");
        }
    }

    for (i, (wire_id, shadow_id)) in pairs.iter().enumerate() {
        let ranked = client.recommend(*wire_id).unwrap();
        let expected = shadow.recommend(*shadow_id).unwrap();
        assert_eq!(
            serde_json::to_string(&ranked).unwrap(),
            serde_json::to_string(&expected).unwrap(),
            "recommend diverged for session {i}"
        );
        // Engine sessions snapshot; their checkpoints must match too.
        if matches!(session_spec(i as u64), RecommenderSpec::Engine(_)) {
            let wire_snapshot = client.snapshot(*wire_id).unwrap();
            let shadow_snapshot = shadow.snapshot(*shadow_id).unwrap();
            assert_eq!(wire_snapshot, shadow_snapshot, "snapshot diverged for {i}");
        }
    }

    // The error surface crosses the wire typed: unknown ids come back as
    // CoreError::UnknownSession with the id intact.
    match client.present(987_654) {
        Err(CoreError::UnknownSession(id)) => assert_eq!(id, 987_654),
        other => panic!("expected UnknownSession, got {other:?}"),
    }

    let (sessions, stats) = client.stats().unwrap();
    assert_eq!(sessions as u64, SESSIONS);
    assert_eq!(stats.created as u64, SESSIONS);
    client.sync().unwrap();

    drop(client);
    control.shutdown();
    let (store, report) = handle.join().unwrap();
    assert_eq!(store.len() as u64, SESSIONS);
    assert_eq!(report.connections, 1);
    assert_eq!(report.malformed_frames, 0);
    assert_eq!(report.timeouts, 0);
    // create + rounds * (present + feedback) + recommend per session, the
    // snapshots, the failed present, stats and sync.
    assert!(
        report.requests as u64 >= SESSIONS * (2 + 2 * ROUNDS as u64) + 3,
        "{report:?}"
    );

    drop(shadow);
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance proof for the cross-shard scoring service: a server with
/// the batch window enabled serves a concurrent mixed fleet **bit-for-bit**
/// identically to the per-client in-process shadow stores — grouping,
/// admission decisions and serial fallbacks are pure scheduling, invisible
/// in every result.
#[test]
fn batched_request_loop_stays_bit_identical_to_the_shadow_store() {
    let store = SessionStore::new(StoreConfig {
        shards: 2,
        capacity_per_shard: 16,
    })
    .unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            batch_window: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let control = server.control();
    let handle = std::thread::spawn(move || {
        let mut store = store;
        server.serve(&mut store).unwrap()
    });

    let report = run_load(
        addr,
        &LoadConfig {
            clients: 3,
            sessions: 9,
            rounds: 2,
            ..LoadConfig::default()
        },
    )
    .unwrap();
    assert!(report.shadow_checked);
    assert_eq!(
        report.mismatches, 0,
        "batched request loop diverged from the in-process shadow stores"
    );
    assert_eq!(report.sessions, 9);

    // Every engine present went through the scoring service and was either
    // admitted to a shared sweep or declined to the serial fallback — both
    // outcomes are accounted in the store counters.
    let mut client = Client::connect(addr).unwrap();
    let (_, stats) = client.stats().unwrap();
    assert!(
        stats.batched_sessions + stats.admission_fallbacks > 0,
        "no present ever reached the scoring service: {stats:?}"
    );
    drop(client);

    control.shutdown();
    let report = handle.join().unwrap();
    assert_eq!(report.malformed_frames, 0);
}

/// Concurrent same-catalog presents from different connections group into
/// shared sweeps across shard (worker) boundaries: the interned catalog
/// handles match by pointer even though each create carried its own `Arc`,
/// and the batching counters prove a cross-shard group formed.
#[test]
fn concurrent_presents_group_across_shards_over_tcp() {
    let store = SessionStore::new(StoreConfig {
        shards: 2,
        capacity_per_shard: 16,
    })
    .unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            // A generous window so presents issued together reliably meet
            // in one flush even on a loaded machine.
            batch_window: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let control = server.control();
    let handle = std::thread::spawn(move || {
        let mut store = store;
        server.serve(&mut store).unwrap()
    });

    // Four engine sessions over content-equal catalogs (each create ships
    // its own Arc; the store's interner canonicalises them), spread over
    // both shards by the server's id assignment.
    let mut setup = Client::connect(addr).unwrap();
    let sessions: Vec<u64> = (0..4)
        .map(|i| setup.create(fixture_config(20 + i)).unwrap())
        .collect();
    let mut clients: Vec<Client> = sessions
        .iter()
        .map(|_| Client::connect(addr).unwrap())
        .collect();

    let mut grouped = false;
    for _round in 0..10 {
        std::thread::scope(|scope| {
            for (client, &id) in clients.iter_mut().zip(&sessions) {
                scope.spawn(move || {
                    client.present(id).unwrap();
                });
            }
        });
        let (_, stats) = setup.stats().unwrap();
        if stats.batched_sessions > 0 {
            assert!(stats.batched_groups > 0, "{stats:?}");
            assert!(
                stats.batched_presents >= stats.batched_sessions,
                "{stats:?}"
            );
            grouped = true;
            break;
        }
    }
    assert!(
        grouped,
        "ten rounds of concurrent same-catalog presents never formed a group"
    );

    drop(clients);
    drop(setup);
    control.shutdown();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// Client retry: idempotent verbs survive a server restart
// ---------------------------------------------------------------------------

/// A client that loses its server mid-session reconnects (bounded
/// exponential backoff) and resends idempotent verbs transparently: the
/// recommendation served by the *restarted* server over the *same* client
/// handle is bit-for-bit the one the first server would have produced.
#[test]
fn idempotent_verbs_survive_a_server_restart_via_retry() {
    let dir = unique_temp_dir("server-retry");
    let store_config = StoreConfig {
        shards: 2,
        capacity_per_shard: 8,
    };
    let store = SessionStore::open_with(store_config, DurabilityConfig::at(&dir)).unwrap();
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let control = server.control();
    let handle = std::thread::spawn(move || {
        let mut store = store;
        server.serve(&mut store).unwrap();
        store
    });

    let mut client = Client::connect(addr).unwrap();
    let mut shadow = SessionStore::new(store_config).unwrap();
    let config = fixture_config(77);
    let id = client.create(config.clone()).unwrap();
    let shadow_id = shadow.create(config).unwrap();
    client.present(id).unwrap();
    shadow.present(shadow_id).unwrap();
    client.feedback(id, Feedback::Click { index: 0 }).unwrap();
    shadow
        .feedback(shadow_id, Feedback::Click { index: 0 })
        .unwrap();
    client.sync().unwrap();
    assert_eq!(client.retries(), 0, "a healthy connection never retries");

    // Kill the server out from under the connected client...
    control.shutdown();
    let store = handle.join().unwrap();

    // ...and restart it on the same address over the same journal.
    let server = Server::bind(addr, ServerConfig::default()).unwrap();
    let control = server.control();
    let handle = std::thread::spawn(move || {
        let mut store = store;
        server.serve(&mut store).unwrap();
        store
    });

    // The idempotent verb notices the dead connection, reconnects under
    // the backoff policy, resends — and the result is still bit-for-bit
    // the in-process one.
    let ranked = client.recommend(id).unwrap();
    let expected = shadow.recommend(shadow_id).unwrap();
    assert_eq!(
        serde_json::to_string(&ranked).unwrap(),
        serde_json::to_string(&expected).unwrap(),
        "recommendation diverged across the restart"
    );
    assert!(
        client.retries() >= 1,
        "the restart must have cost at least one reconnect"
    );
    let (sessions, _) = client.stats().unwrap();
    assert_eq!(sessions, 1);

    control.shutdown();
    drop(handle.join().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Per-request deadlines: a stalled shard worker cannot hang a connection
// ---------------------------------------------------------------------------

/// A deliberately expensive operation on a server with a tiny request
/// deadline produces the typed `Timeout` wire error — and the connection
/// survives it: later requests on the same stream are served normally
/// once the worker drains.
#[test]
fn stalled_requests_get_typed_timeout_replies_and_the_connection_survives() {
    let store = SessionStore::new(StoreConfig {
        shards: 1,
        capacity_per_shard: 8,
    })
    .unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            request_timeout: Duration::from_millis(10),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let control = server.control();
    let handle = std::thread::spawn(move || {
        let mut store = store;
        server.serve(&mut store).unwrap()
    });

    // A session heavy enough that creating it and presenting from it both
    // dwarf the 10 ms deadline (large catalog × deep sample pool).
    let heavy = SessionConfig {
        catalog: build_catalog(2014, 400).unwrap(),
        profile: Profile::cost_quality(),
        max_package_size: 2,
        spec: RecommenderSpec::Engine(EngineConfig {
            k: 3,
            num_random: 2,
            num_samples: 2_000,
            ..EngineConfig::default()
        }),
        seed: 4,
    };
    let mut stream = raw_connect(addr);
    stream
        .write_all(&encode_frame(&Request::Create { config: heavy }).unwrap())
        .unwrap();
    let create_reply = raw_read_response(&mut stream).unwrap();
    // The server assigns ids from 0, so the session is addressable even if
    // the create itself missed its deadline (the worker still ran it).
    stream
        .write_all(&encode_frame(&Request::Present { session: 0 }).unwrap())
        .unwrap();
    let present_reply = raw_read_response(&mut stream).unwrap();
    let timed_out = [&create_reply, &present_reply]
        .iter()
        .any(|reply| matches!(reply, Response::Error(wire) if wire.kind == ErrorKind::Timeout));
    assert!(
        timed_out,
        "neither heavy request missed the 10 ms deadline: {create_reply:?} / {present_reply:?}"
    );

    // The connection survives the timeout: once the worker drains, Stats
    // on the very same stream answers normally.
    let mut served = false;
    for _ in 0..600 {
        stream
            .write_all(&encode_frame(&Request::Stats).unwrap())
            .unwrap();
        match raw_read_response(&mut stream).unwrap() {
            Response::Stats { sessions, .. } => {
                assert_eq!(sessions, 1, "the timed-out create still executed");
                served = true;
                break;
            }
            Response::Error(wire) => {
                assert_eq!(wire.kind, ErrorKind::Timeout, "only timeouts expected");
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("expected Stats or Timeout, got {other:?}"),
        }
    }
    assert!(served, "the worker never drained the stalled requests");

    drop(stream);
    control.shutdown();
    let report = handle.join().unwrap();
    assert!(report.timeouts >= 1, "{report:?}");
}

// ---------------------------------------------------------------------------
// Degraded shards speak the wire protocol
// ---------------------------------------------------------------------------

/// A shard whose durable appends keep failing degrades to read-only — and
/// the client sees exactly that: the injected IO class crosses the wire
/// typed, the degraded state arrives as `CoreError::Degraded` with the
/// shard attribution intact, reads keep serving, and a successful `sync`
/// re-arms the shard.
#[test]
fn degraded_shard_surfaces_as_a_typed_wire_error() {
    use pkgrec_serve::{FaultKind, FaultPlan, FaultSite, PlannedFault};

    let dir = unique_temp_dir("server-degraded");
    let durability = DurabilityConfig {
        flush_every_ops: 1,
        append_retry_budget: 1,
        // Flush hits 0-1 carry Created/Presented; hits 2 and 3 fail, then
        // the "disk" recovers.
        fault_plan: FaultPlan::default().and(PlannedFault {
            site: FaultSite::Flush,
            after: 2,
            count: 2,
            kind: FaultKind::StorageFull,
        }),
        ..DurabilityConfig::at(&dir)
    };
    let store = SessionStore::open_with(
        StoreConfig {
            shards: 1,
            capacity_per_shard: 8,
        },
        durability,
    )
    .unwrap();
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let control = server.control();
    let handle = std::thread::spawn(move || {
        let mut store = store;
        server.serve(&mut store).unwrap();
        store
    });

    let mut client = Client::connect(addr).unwrap();
    let id = client.create(fixture_config(55)).unwrap();
    client.present(id).unwrap();

    // The poisoned append crosses the wire with its IO class preserved —
    // callers match on the kind, not on message strings.
    match client.present(id) {
        Err(CoreError::Io { kind, .. }) => assert_eq!(kind, std::io::ErrorKind::StorageFull),
        other => panic!("expected the injected StorageFull fault, got {other:?}"),
    }
    // The budget (1) is spent: the shard is degraded and says so, typed.
    match client.present(id) {
        Err(CoreError::Degraded { shard, reason }) => {
            assert_eq!(shard, 0);
            assert!(!reason.is_empty());
        }
        other => panic!("expected CoreError::Degraded, got {other:?}"),
    }
    // Reads still serve while degraded, and the state is observable.
    let (sessions, stats) = client.stats().unwrap();
    assert_eq!(sessions, 1);
    assert_eq!(stats.degraded_shards, 1);
    assert!(stats.injected_faults >= 1);
    assert!(stats.rolled_back_ops >= 1);

    // The fault cleared (count: 2 also covered the degraded-refused hit?
    // no — refused ops never reach the log, so hit 3 is still pending);
    // sync() succeeds (nothing buffered), re-arms the shard, and the next
    // present burns fault hit 3 before service resumes for good.
    client.sync().unwrap();
    let (_, stats) = client.stats().unwrap();
    assert_eq!(stats.degraded_shards, 0, "sync re-arms the shard");
    assert!(matches!(client.present(id), Err(CoreError::Io { .. })));
    client.sync().unwrap();
    let shown = client.present(id).unwrap();
    assert!(!shown.is_empty(), "service resumes once the fault clears");

    drop(client);
    control.shutdown();
    drop(handle.join().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}
