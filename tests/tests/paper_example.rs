//! End-to-end reproduction of the paper's running example (Figures 1 and 2)
//! exercised through the public API of the workspace crates.

use pkgrec_core::prelude::*;
use pkgrec_core::ranking::{aggregate_exp, aggregate_mpo, aggregate_tkp, PerSampleRanking};
use pkgrec_core::search::top_k_packages_exhaustive;

fn figure1_catalog() -> Catalog {
    Catalog::new(
        vec!["cost".into(), "rating".into()],
        vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.2, 0.4]],
    )
    .unwrap()
}

fn figure1_context() -> AggregationContext {
    AggregationContext::new(Profile::cost_quality(), &figure1_catalog(), 2).unwrap()
}

/// The discrete weight distribution of Figure 2(a).
const WEIGHTS: [(f64, [f64; 2]); 3] = [(0.3, [0.5, 0.1]), (0.4, [0.1, 0.5]), (0.3, [0.1, 0.1])];

fn per_weight_rankings(k: usize) -> Vec<PerSampleRanking> {
    let catalog = figure1_catalog();
    let context = figure1_context();
    WEIGHTS
        .iter()
        .map(|(prob, w)| {
            let utility = LinearUtility::new(context.clone(), w.to_vec()).unwrap();
            let search = top_k_packages(&utility, &catalog, k).unwrap();
            PerSampleRanking::new(*prob, search.packages)
        })
        .collect()
}

#[test]
fn package_space_of_figure1_has_six_members_up_to_size_two() {
    assert_eq!(pkgrec_core::package_space_size(3, 2), 6);
    assert_eq!(pkgrec_core::enumerate_packages(3, 2).len(), 6);
}

#[test]
fn top2_lists_per_weight_vector_match_figure_2d() {
    let rankings = per_weight_rankings(2);
    let lists: Vec<Vec<Package>> = rankings
        .iter()
        .map(|r| r.ranked.iter().map(|(p, _)| p.clone()).collect())
        .collect();
    let p = |items: &[usize]| Package::new(items.to_vec()).unwrap();
    assert_eq!(lists[0], vec![p(&[0, 1]), p(&[0, 2])]); // w1: p4, p6
    assert_eq!(lists[1], vec![p(&[1, 2]), p(&[1])]); // w2: p5, p2
    assert_eq!(lists[2], vec![p(&[0, 1]), p(&[1, 2])]); // w3: p4, p5
}

#[test]
fn search_and_exhaustive_agree_on_the_running_example() {
    let catalog = figure1_catalog();
    let context = figure1_context();
    for (_, w) in WEIGHTS {
        let utility = LinearUtility::new(context.clone(), w.to_vec()).unwrap();
        let fast = top_k_packages(&utility, &catalog, 6).unwrap();
        let slow = top_k_packages_exhaustive(&utility, &catalog, 6).unwrap();
        // Same packages in the same order; utilities agree up to the
        // floating-point association difference between the search's
        // incremental evaluation and the exhaustive recomputation.
        assert_eq!(fast.packages.len(), slow.len(), "weights {w:?}");
        for ((fp, fs), (sp, ss)) in fast.packages.iter().zip(slow.iter()) {
            assert_eq!(fp, sp, "weights {w:?}");
            assert!((fs - ss).abs() < 1e-12, "weights {w:?}: {fs} vs {ss}");
        }
    }
}

#[test]
fn exp_semantics_reproduces_example_1() {
    // Expected utility of p1 is 0.262 and the EXP top-2 is p4, p5.
    let rankings = per_weight_rankings(6);
    let ranked = aggregate_exp(&rankings, 6);
    let p1 = ranked
        .iter()
        .find(|r| r.package == Package::new(vec![0]).unwrap())
        .expect("p1 appears in the full ranking");
    assert!((p1.score - 0.262).abs() < 1e-9);
    let top2 = aggregate_exp(&rankings, 2);
    assert_eq!(top2[0].package, Package::new(vec![0, 1]).unwrap());
    assert_eq!(top2[1].package, Package::new(vec![1, 2]).unwrap());
}

#[test]
fn tkp_semantics_reproduces_example_2() {
    // P(p5 in top-2) = 0.7, P(p4 in top-2) = 0.6.
    let rankings = per_weight_rankings(2);
    let top2 = aggregate_tkp(&rankings, 2, 2);
    assert_eq!(top2[0].package, Package::new(vec![1, 2]).unwrap());
    assert!((top2[0].score - 0.7).abs() < 1e-12);
    assert_eq!(top2[1].package, Package::new(vec![0, 1]).unwrap());
    assert!((top2[1].score - 0.6).abs() < 1e-12);
}

#[test]
fn mpo_semantics_reproduces_example_3() {
    // The most probable complete top-2 list is (p5, p2) with probability 0.4.
    let rankings = per_weight_rankings(2);
    let best = aggregate_mpo(&rankings, 2);
    assert_eq!(best[0].package, Package::new(vec![1, 2]).unwrap());
    assert_eq!(best[1].package, Package::new(vec![1]).unwrap());
    assert!((best[0].score - 0.4).abs() < 1e-12);
}

#[test]
fn the_three_semantics_disagree_exactly_as_the_paper_summarises() {
    // "the top-2 packages for EXP, TKP, and MPO respectively are p4, p5;
    // p5, p4; and p5, p2."
    let rankings2 = per_weight_rankings(2);
    let rankings_full = per_weight_rankings(6);
    let ids = |v: Vec<pkgrec_core::RankedPackage>| -> Vec<Package> {
        v.into_iter().map(|r| r.package).collect()
    };
    let p = |items: &[usize]| Package::new(items.to_vec()).unwrap();
    assert_eq!(
        ids(aggregate_exp(&rankings_full, 2)),
        vec![p(&[0, 1]), p(&[1, 2])]
    );
    assert_eq!(
        ids(aggregate_tkp(&rankings2, 2, 2)),
        vec![p(&[1, 2]), p(&[0, 1])]
    );
    assert_eq!(ids(aggregate_mpo(&rankings2, 2)), vec![p(&[1, 2]), p(&[1])]);
}

#[test]
fn preference_on_figure1_packages_constrains_the_weight_space_correctly() {
    // A click on p5 = {t2, t3} over p4 = {t1, t2} means the user values
    // quality over (negated) cost; weight vectors preferring low cost and low
    // quality must be rejected.
    let catalog = figure1_catalog();
    let context = figure1_context();
    let mut store = PreferenceStore::new();
    let p5 = Package::new(vec![1, 2]).unwrap();
    let p4 = Package::new(vec![0, 1]).unwrap();
    store
        .add_packages(&context, &catalog, &p5, &p4)
        .expect("consistent preference");
    // p5 = (0.6, 1.0), p4 = (1.0, 0.75): the constraint is -0.4*w1 + 0.25*w2 >= 0.
    assert!(store.satisfied_by(&[0.0, 1.0]));
    assert!(store.satisfied_by(&[-1.0, 0.0]));
    assert!(!store.satisfied_by(&[1.0, 0.0]));
    assert_eq!(store.violation_count(&[1.0, -1.0]), 1);
}
