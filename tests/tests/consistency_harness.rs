//! The adversarial consistency harness: deterministic fault injection plus
//! a seeded schedule fuzzer for the durable [`SessionStore`].
//!
//! Two instruments share one oracle — *the journal is the database*:
//!
//! * **Fault matrix** — for every IO site in the durable path
//!   ([`FaultSite::ALL`]) and a sweep of hit coordinates, a planned fault
//!   fires exactly once mid-script.  The failing operation must surface
//!   the injected [`std::io::ErrorKind`] typed, roll back completely
//!   (later operations match a shadow store that never saw the fault,
//!   bit for bit), leave memory replay-equal to the store's own journal,
//!   and survive a crash + reopen with the RNG streams intact.
//! * **Schedule fuzzer** — seeded random interleavings of
//!   present/feedback/recommend/snapshot across shard-parallel worker
//!   threads, with coordinator-level sync/compact/evict/restore, crash
//!   points (drop the store, reopen from disk), reshards, and
//!   batched-presents phases (a random subset of sessions scored
//!   cross-shard through the [`ScoringService`], admission mode cycling
//!   with the seed) between rounds.  Because every session's RNG stream
//!   derives from `(seed, op index)` alone, the observed history must
//!   equal a single-threaded replay of the same per-session operation
//!   sequences on a fresh in-memory store — every individual result,
//!   bit for bit.  The replay scores serially, so the batcher and its
//!   admission policy must be invisible in results.
//!
//! The default corpus (32 seeds × {1,4} shards × {1,4} threads, small
//! catalogs) is the reduced CI matrix; set `CONSISTENCY_SEEDS` to widen
//! it locally.

use std::sync::Arc;

use pkgrec_core::prelude::*;
use pkgrec_core::{AggregationContext, LinearUtility, SimulatedUser};
use pkgrec_integration_tests::unique_temp_dir;
use pkgrec_serve::{
    shard_of, user_rng, AdmissionMode, DurabilityConfig, FaultKind, FaultPlan, FaultSite,
    RecommenderSpec, ScoringConfig, ScoringService, SessionConfig, SessionId, SessionStore, Shard,
    StoreConfig,
};

// ---------------------------------------------------------------------------
// Deterministic scaffolding
// ---------------------------------------------------------------------------

/// SplitMix64: a tiny, deterministic schedule RNG (test-local so schedules
/// never depend on any library's stream evolution).
struct Mix(u64);

impl Mix {
    fn new(seed: u64) -> Mix {
        Mix(seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A small random catalog: 2 features in (0, 1), `items` rows.
fn harness_catalog(seed: u64, items: usize) -> Arc<Catalog> {
    let mut rng = Mix::new(seed);
    let rows = (0..items)
        .map(|_| {
            vec![
                0.05 + rng.below(90) as f64 / 100.0,
                0.05 + rng.below(90) as f64 / 100.0,
            ]
        })
        .collect();
    Arc::new(Catalog::from_rows(rows).expect("harness rows are valid items"))
}

/// A cheap engine session over the harness catalog.
fn harness_session(catalog: Arc<Catalog>, seed: u64) -> SessionConfig {
    SessionConfig {
        catalog,
        profile: Profile::cost_quality(),
        max_package_size: 2,
        spec: RecommenderSpec::Engine(EngineConfig {
            k: 2,
            num_random: 2,
            num_samples: 20,
            ..EngineConfig::default()
        }),
        seed,
    }
}

/// Bit-for-bit comparisons happen on canonical JSON.
fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("harness values serialise")
}

/// The session's *logical* state: progress and pool, with the physical
/// search instrumentation zeroed.  Search counters tally work actually
/// performed — including work burned by rolled-back ops and rehydration
/// replays — so they legitimately differ between a store and its replay
/// while every observable result stays bit-identical.
fn logical_state(store: &mut SessionStore, id: SessionId) -> String {
    let mut state = store.state(id).expect("session known");
    state.search = Default::default();
    json(&state)
}

/// The injected fault must cross every layer with its IO class intact.
fn assert_injected(error: &CoreError, kind: FaultKind) {
    match error {
        CoreError::Io { kind: k, .. } => assert_eq!(
            *k,
            kind.error_kind(),
            "injected fault surfaced with the wrong IO class: {error}"
        ),
        other => panic!("expected the injected {kind:?} fault, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Part 1: the per-site fault matrix
// ---------------------------------------------------------------------------

/// One scripted step; session operands index into the ids created so far.
#[derive(Clone, Copy, Debug)]
enum Step {
    Create(u64),
    Present(usize),
    Feedback(usize),
    Recommend(usize),
    Evict(usize),
    Restore(usize),
    Sync,
    Compact,
}

/// The fixed script every `(site, after)` cell runs: enough traffic to
/// reach every failpoint (group commits, rotation under a tiny segment
/// cap, checkpoints via evict, a compaction rewrite, explicit syncs).
const SCRIPT: [Step; 16] = [
    Step::Create(11),
    Step::Create(12),
    Step::Present(0),
    Step::Present(1),
    Step::Feedback(0),
    Step::Present(0),
    Step::Sync,
    Step::Evict(0),
    Step::Restore(0),
    Step::Compact,
    Step::Present(1),
    Step::Recommend(0),
    Step::Feedback(1),
    Step::Present(0),
    Step::Recommend(1),
    Step::Sync,
];

/// For every durable-path IO site and a sweep of hit coordinates: inject
/// one fault, and prove the op that absorbed it rolled back to a store
/// bit-for-bit replay-equal to an unfaulted shadow — memory, journal and
/// post-crash recovery all agree, and the RNG streams resume in lockstep.
#[test]
fn every_failpoint_site_rolls_back_to_a_replay_equal_store() {
    let kinds = [
        FaultKind::StorageFull,
        FaultKind::PermissionDenied,
        FaultKind::WriteZero,
        FaultKind::Other,
    ];
    let store_config = StoreConfig {
        shards: 2,
        capacity_per_shard: 4,
    };
    for (s, site) in FaultSite::ALL.into_iter().enumerate() {
        if site == FaultSite::Manifest {
            continue; // open-time site: its own test below
        }
        let mut fired_total = 0usize;
        for after in 0..8u64 {
            let kind = kinds[(s + after as usize) % kinds.len()];
            let dir = unique_temp_dir(&format!("fault-matrix-{s}-{after}"));
            let clean = || DurabilityConfig {
                flush_every_ops: 2,
                segment_max_bytes: 256, // rotate early and often
                ..DurabilityConfig::at(&dir)
            };
            let durability = DurabilityConfig {
                fault_plan: FaultPlan::once(site, after, kind),
                ..clean()
            };

            // Some sites (first-segment rotation, the gen-0 marker) are
            // reached while the store is still opening: the open itself
            // must then fail typed, and a clean reopen must serve.
            let mut store = match SessionStore::open_with(store_config, durability) {
                Ok(store) => store,
                Err(error) => {
                    assert_injected(&error, kind);
                    drop(SessionStore::open_with(store_config, clean()).unwrap());
                    fired_total += 1;
                    std::fs::remove_dir_all(&dir).ok();
                    continue;
                }
            };
            let mut shadow = SessionStore::new(store_config).unwrap();
            let catalog = harness_catalog(900 + s as u64, 8);
            let context = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
            let user = SimulatedUser::new(LinearUtility::new(context, vec![-0.7, 0.6]).unwrap());
            let mut ids: Vec<SessionId> = Vec::new();
            let mut last_shown: std::collections::HashMap<SessionId, Vec<Package>> =
                std::collections::HashMap::new();

            // Run the script.  An op that absorbs the fault must fail with
            // the injected kind and leave no trace: the shadow simply skips
            // it, and every *successful* op must keep matching the shadow.
            for step in SCRIPT {
                match step {
                    Step::Create(seed) => {
                        let config = harness_session(catalog.clone(), seed);
                        match store.create(config.clone()) {
                            Ok(id) => {
                                assert_eq!(id, shadow.create(config).unwrap());
                                ids.push(id);
                            }
                            Err(e) => assert_injected(&e, kind),
                        }
                    }
                    Step::Present(i) => {
                        let Some(&id) = ids.get(i) else { continue };
                        match store.present(id) {
                            Ok(shown) => {
                                assert_eq!(json(&shown), json(&shadow.present(id).unwrap()));
                                last_shown.insert(id, shown);
                            }
                            Err(e) => assert_injected(&e, kind),
                        }
                    }
                    Step::Feedback(i) => {
                        let Some(&id) = ids.get(i) else { continue };
                        // Feedback needs a successful prior present (a
                        // faulted present rolled back on both sides, so
                        // the tracked shown list is authoritative), and
                        // the click must stay jointly satisfiable.
                        let Some(shown) = last_shown.get(&id) else {
                            continue;
                        };
                        let index = click_index(&user, &catalog, shown);
                        match store.feedback(id, Feedback::Click { index }) {
                            Ok(added) => assert_eq!(
                                added,
                                shadow.feedback(id, Feedback::Click { index }).unwrap()
                            ),
                            Err(e) => assert_injected(&e, kind),
                        }
                    }
                    Step::Recommend(i) => {
                        let Some(&id) = ids.get(i) else { continue };
                        match store.recommend(id) {
                            Ok(ranked) => {
                                assert_eq!(json(&ranked), json(&shadow.recommend(id).unwrap()))
                            }
                            Err(e) => assert_injected(&e, kind),
                        }
                    }
                    Step::Evict(i) => {
                        let Some(&id) = ids.get(i) else { continue };
                        // Spilling journals a checkpoint; a faulted spill
                        // is safe (the journal stays authoritative) but
                        // then the shadow must not spill either.
                        match store.evict(id) {
                            Ok(()) => shadow.evict(id).unwrap(),
                            Err(e) => assert_injected(&e, kind),
                        }
                    }
                    Step::Restore(i) => {
                        let Some(&id) = ids.get(i) else { continue };
                        match store.restore(id) {
                            Ok(()) => shadow.restore(id).unwrap(),
                            Err(e) => assert_injected(&e, kind),
                        }
                    }
                    Step::Sync => {
                        if let Err(e) = store.sync() {
                            assert_injected(&e, kind);
                        }
                    }
                    Step::Compact => {
                        // The shadow never compacts: compaction must not
                        // change any observable result either way.
                        if let Err(e) = store.compact() {
                            assert_injected(&e, kind);
                        }
                    }
                }
            }
            fired_total += store.stats().injected_faults;

            // Oracle 1: memory ↔ journal coherence.  Replaying the store's
            // own journal reconstructs every session bit-identically.
            let mut rebuilt =
                SessionStore::from_journal(store_config, &store.export_journal()).unwrap();
            for &id in &ids {
                assert_eq!(
                    logical_state(&mut rebuilt, id),
                    logical_state(&mut store, id),
                    "{site:?}/after={after}: journal replay diverged from memory"
                );
            }

            // Oracle 2: crash + reopen.  Flush first — retried, because a
            // single-shot fault the script never reached can fire during
            // the sync itself (or during its own retry, on a later hit of
            // the same site) before the plan runs dry.
            let mut synced = false;
            for _ in 0..10 {
                match store.sync() {
                    Ok(()) => {
                        synced = true;
                        break;
                    }
                    Err(e) => assert_injected(&e, kind),
                }
            }
            assert!(
                synced,
                "{site:?}/after={after}: sync never drained the one-shot plan"
            );
            let expected: Vec<String> = ids
                .iter()
                .map(|&id| logical_state(&mut store, id))
                .collect();
            std::mem::forget(store);
            let mut reopened = SessionStore::open(&dir, store_config).unwrap();
            for (&id, want) in ids.iter().zip(&expected) {
                assert_eq!(
                    &logical_state(&mut reopened, id),
                    want,
                    "{site:?}/after={after}: recovery diverged from the pre-crash state"
                );
            }
            // Oracle 3: the RNG streams resume exactly where the shadow's
            // are — the fault burned no op index anywhere.
            for &id in &ids {
                assert_eq!(
                    json(&reopened.present(id).unwrap()),
                    json(&shadow.present(id).unwrap()),
                    "{site:?}/after={after}: post-recovery presents diverged"
                );
            }
            drop(reopened);
            std::fs::remove_dir_all(&dir).ok();
        }
        assert!(
            fired_total >= 1,
            "the {site:?} failpoint was never exercised by the matrix script"
        );
    }
}

/// The manifest site fires while the store is opening: the open fails
/// loudly with the injected class, nothing half-written survives, and a
/// clean reopen serves operations identical to a memory-only shadow.
#[test]
fn manifest_faults_fail_the_open_loudly_then_recover() {
    let store_config = StoreConfig {
        shards: 2,
        capacity_per_shard: 4,
    };
    for (i, kind) in [
        FaultKind::StorageFull,
        FaultKind::PermissionDenied,
        FaultKind::Other,
    ]
    .into_iter()
    .enumerate()
    {
        let dir = unique_temp_dir(&format!("fault-manifest-{i}"));
        let faulted = DurabilityConfig {
            fault_plan: FaultPlan::once(FaultSite::Manifest, 0, kind),
            ..DurabilityConfig::at(&dir)
        };
        match SessionStore::open_with(store_config, faulted) {
            Err(error) => assert_injected(&error, kind),
            Ok(_) => panic!("the manifest fault did not fail the open"),
        }

        let mut store = SessionStore::open_with(store_config, DurabilityConfig::at(&dir)).unwrap();
        let mut shadow = SessionStore::new(store_config).unwrap();
        let catalog = harness_catalog(77, 8);
        let id = store.create(harness_session(catalog.clone(), 5)).unwrap();
        assert_eq!(id, shadow.create(harness_session(catalog, 5)).unwrap());
        assert_eq!(
            json(&store.present(id).unwrap()),
            json(&shadow.present(id).unwrap())
        );
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Part 2: the schedule fuzzer
// ---------------------------------------------------------------------------

/// One in-round session operation (the shard-parallel vocabulary).
#[derive(Clone, Copy, Debug)]
enum Op {
    Present,
    Feedback,
    Recommend,
    Snapshot,
}

/// One session's slice of a round: its tracking index, its id, the ops
/// generated for it, and the shown list it enters the round with.
type RoundWork = (usize, SessionId, Vec<Op>, Vec<Package>);

/// The satisfiable-click chooser: a fixed hidden utility picks the
/// clicked index from the currently-shown list, so the pairwise
/// constraints accumulated over many rounds never contradict each other
/// (arbitrary clicks would run the engine's constrained samplers dry).
/// Deterministic: the same shown list yields the same index on the
/// observed and the replay side.
fn click_index(user: &SimulatedUser, catalog: &Catalog, shown: &[Package]) -> usize {
    user.choose(catalog, shown, &mut user_rng(0))
        .expect("feedback is only generated after a present")
}

/// Runs `op` against the shard that owns `id`, rendering the result as
/// the canonical JSON the oracle compares.  `shown` tracks the session's
/// last presented list (feedback targets it).
fn run_on_shard(
    shard: &mut Shard,
    id: SessionId,
    op: Op,
    shown: &mut Vec<Package>,
    user: &SimulatedUser,
    catalog: &Catalog,
) -> String {
    match op {
        Op::Present => {
            let packages = shard.op_present(id).unwrap();
            *shown = packages.clone();
            json(&packages)
        }
        Op::Feedback => {
            let index = click_index(user, catalog, shown);
            json(&shard.op_feedback(id, Feedback::Click { index }).unwrap())
        }
        Op::Recommend => json(&shard.op_recommend(id).unwrap()),
        Op::Snapshot => shard.snapshot_now(id).unwrap(),
    }
}

/// The single-threaded replay of the same op, through the store-level
/// verbs of a fresh in-memory store.
fn run_on_store(
    store: &mut SessionStore,
    id: SessionId,
    op: Op,
    shown: &mut Vec<Package>,
    user: &SimulatedUser,
    catalog: &Catalog,
) -> String {
    match op {
        Op::Present => {
            let packages = store.present(id).unwrap();
            *shown = packages.clone();
            json(&packages)
        }
        Op::Feedback => {
            let index = click_index(user, catalog, shown);
            json(&store.feedback(id, Feedback::Click { index }).unwrap())
        }
        Op::Recommend => json(&store.recommend(id).unwrap()),
        Op::Snapshot => store.snapshot(id).unwrap(),
    }
}

/// One seeded schedule: derive the topology from the seed, run 4 rounds
/// of shard-parallel traffic with batched-presents phases and coordinator
/// chaos between rounds, then hold the observed history against the
/// single-threaded replay.
fn run_schedule(seed: u64) {
    let mut rng = Mix::new(0xC0FFEE ^ seed.wrapping_mul(7919));
    let mut shards: usize = if seed.is_multiple_of(2) { 1 } else { 4 };
    let threads: usize = if (seed / 2).is_multiple_of(2) { 1 } else { 4 };
    let capacity = if (seed / 4).is_multiple_of(2) { 2 } else { 8 }; // 2 = spill pressure
    let flush_every = if seed.is_multiple_of(3) { 1 } else { 4 };

    let dir = unique_temp_dir(&format!("schedule-{seed}"));
    let store_config = |shards: usize| StoreConfig {
        shards,
        capacity_per_shard: capacity,
    };
    let durability = || DurabilityConfig {
        flush_every_ops: flush_every,
        segment_max_bytes: 4096,
        ..DurabilityConfig::at(&dir)
    };
    let mut store = SessionStore::open_with(store_config(shards), durability()).unwrap();
    let catalog = harness_catalog(seed, 8);
    let context = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
    let user = SimulatedUser::new(LinearUtility::new(context, vec![-0.7, 0.6]).unwrap());

    // The coordinator's cross-shard batcher for the batched-presents
    // phases.  The admission mode cycles with the seed so the corpus
    // covers adaptive, forced-on and forced-off admission; the oracle is
    // indifferent — admission may change *when* work is scored, never
    // *what* it computes.
    let service = ScoringService::new(ScoringConfig {
        mode: match seed % 3 {
            0 => AdmissionMode::Adaptive,
            1 => AdmissionMode::Always,
            _ => AdmissionMode::Never,
        },
        ..ScoringConfig::default()
    });

    // Per-session records: config (for the replay store), the op-tag
    // history, the observed JSON results, whether a present happened
    // (feedback is only valid after one), and the last shown list
    // (feedback clicks target it).
    let mut configs: Vec<SessionConfig> = Vec::new();
    let mut ids: Vec<SessionId> = Vec::new();
    let mut history: Vec<Vec<Op>> = Vec::new();
    let mut observed: Vec<Vec<String>> = Vec::new();
    let mut has_shown: Vec<bool> = Vec::new();
    let mut shown_lists: Vec<Vec<Package>> = Vec::new();

    let add_session = |store: &mut SessionStore,
                       configs: &mut Vec<SessionConfig>,
                       ids: &mut Vec<SessionId>,
                       history: &mut Vec<Vec<Op>>,
                       observed: &mut Vec<Vec<String>>,
                       has_shown: &mut Vec<bool>,
                       shown_lists: &mut Vec<Vec<Package>>,
                       session_seed: u64| {
        let config = harness_session(catalog.clone(), session_seed);
        ids.push(store.create(config.clone()).unwrap());
        configs.push(config);
        history.push(Vec::new());
        observed.push(Vec::new());
        has_shown.push(false);
        shown_lists.push(Vec::new());
    };
    for i in 0..(shards * 3).max(4) {
        add_session(
            &mut store,
            &mut configs,
            &mut ids,
            &mut history,
            &mut observed,
            &mut has_shown,
            &mut shown_lists,
            seed * 131 + i as u64,
        );
    }

    for _round in 0..4 {
        // Generate this round's per-session op lists (independent of any
        // execution result — that is what makes the replay exact).
        let mut buckets: Vec<Vec<RoundWork>> = vec![Vec::new(); shards];
        for sid in 0..configs.len() {
            let mut ops = Vec::new();
            for _ in 0..=rng.below(2) {
                let op = match rng.below(8) {
                    0..=3 => Op::Present,
                    4 => {
                        if has_shown[sid] {
                            Op::Feedback
                        } else {
                            Op::Present
                        }
                    }
                    5 => Op::Recommend,
                    6 => Op::Snapshot,
                    _ => Op::Recommend,
                };
                if matches!(op, Op::Present) {
                    has_shown[sid] = true;
                }
                ops.push(op);
            }
            history[sid].extend(ops.iter().copied());
            buckets[shard_of(ids[sid], shards)].push((
                sid,
                ids[sid],
                ops,
                shown_lists[sid].clone(),
            ));
        }

        // Execute shard-parallel: split the shards across worker threads
        // (each owns its chunk `&mut`, the serving-loop discipline) and
        // run every session's ops in order on its owning shard.
        let chunk = shards.div_ceil(threads);
        let user_ref = &user;
        let catalog_ref: &Catalog = &catalog;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard_chunk, bucket_chunk) in store
                .shards_mut()
                .chunks_mut(chunk)
                .zip(buckets.chunks(chunk))
            {
                handles.push(scope.spawn(move || {
                    let mut out: Vec<(usize, String)> = Vec::new();
                    let mut shown_out: Vec<(usize, Vec<Package>)> = Vec::new();
                    for (shard, bucket) in shard_chunk.iter_mut().zip(bucket_chunk) {
                        for (sid, id, ops, shown) in bucket {
                            let mut shown = shown.clone();
                            for &op in ops {
                                out.push((
                                    *sid,
                                    run_on_shard(shard, *id, op, &mut shown, user_ref, catalog_ref),
                                ));
                            }
                            shown_out.push((*sid, shown));
                        }
                    }
                    (out, shown_out)
                }));
            }
            for handle in handles {
                let (out, shown_out) = handle.join().unwrap();
                for (sid, rendered) in out {
                    observed[sid].push(rendered);
                }
                for (sid, shown) in shown_out {
                    shown_lists[sid] = shown;
                }
            }
        });

        // Batched-presents coordinator phase: every other round, a random
        // subset of sessions takes one extra present through the
        // cross-shard scoring service.  The history records these as
        // plain presents — the single-threaded replay scores them
        // serially, so the batcher (stacking, grouping, admission
        // verdicts and serial fallbacks alike) must be bit-invisible.
        if rng.below(2) == 0 {
            let subset: Vec<usize> = (0..configs.len()).filter(|_| rng.below(2) == 0).collect();
            if !subset.is_empty() {
                let batch_ids: Vec<SessionId> = subset.iter().map(|&sid| ids[sid]).collect();
                let batch_shown = store.present_many(&batch_ids, &service).unwrap();
                for (&sid, shown) in subset.iter().zip(batch_shown) {
                    history[sid].push(Op::Present);
                    observed[sid].push(json(&shown));
                    has_shown[sid] = true;
                    shown_lists[sid] = shown;
                }
            }
        }

        // Coordinator chaos between rounds: maintenance, crash points and
        // reshards — none of which may perturb any session's stream.
        match rng.below(6) {
            0 => store.sync().unwrap(),
            1 => {
                store.compact().unwrap();
            }
            2 => {
                let sid = rng.below(ids.len() as u64) as usize;
                store.evict(ids[sid]).unwrap();
            }
            3 => {
                let sid = rng.below(ids.len() as u64) as usize;
                store.restore(ids[sid]).unwrap();
            }
            4 => {
                // Crash: everything flushed is all that exists; reopen.
                store.sync().unwrap();
                std::mem::forget(store);
                store = SessionStore::open_with(store_config(shards), durability()).unwrap();
            }
            _ => {
                // Reshard: reopen under the other shard count; sessions
                // re-route but their histories must not notice.
                store.sync().unwrap();
                std::mem::forget(store);
                shards = if shards == 1 { 4 } else { 1 };
                store = SessionStore::open_with(store_config(shards), durability()).unwrap();
            }
        }
        if rng.below(2) == 0 {
            let session_seed = seed * 977 + configs.len() as u64;
            add_session(
                &mut store,
                &mut configs,
                &mut ids,
                &mut history,
                &mut observed,
                &mut has_shown,
                &mut shown_lists,
                session_seed,
            );
        }
    }

    // Verdict 1: the observed concurrent history equals the single-threaded
    // replay of the same per-session op sequences — every result, bit for
    // bit, on a fresh memory-only store.
    let mut replay = SessionStore::new(StoreConfig {
        shards: 1,
        capacity_per_shard: configs.len().max(1),
    })
    .unwrap();
    let replay_ids: Vec<SessionId> = configs
        .iter()
        .map(|config| replay.create(config.clone()).unwrap())
        .collect();
    let mut replay_shown: Vec<Vec<Package>> = vec![Vec::new(); configs.len()];
    for sid in 0..configs.len() {
        assert_eq!(history[sid].len(), observed[sid].len());
        for (i, (&op, want)) in history[sid].iter().zip(&observed[sid]).enumerate() {
            let got = run_on_store(
                &mut replay,
                replay_ids[sid],
                op,
                &mut replay_shown[sid],
                &user,
                &catalog,
            );
            assert_eq!(
                &got, want,
                "seed {seed}: session {sid} op {i} ({op:?}) diverged from the replay"
            );
        }
    }

    // Verdict 2: final states agree between the served store, the replay
    // store, and a rebuild from the served store's own exported journal.
    let mut from_log =
        SessionStore::from_journal(store_config(shards), &store.export_journal()).unwrap();
    for sid in 0..configs.len() {
        let state = logical_state(&mut store, ids[sid]);
        assert_eq!(state, logical_state(&mut replay, replay_ids[sid]));
        assert_eq!(state, logical_state(&mut from_log, ids[sid]));
    }

    // Verdict 3: crash at the end, recover from disk, and take one more
    // step everywhere — the recovered RNG streams stay in lockstep.
    store.sync().unwrap();
    std::mem::forget(store);
    let mut reopened = SessionStore::open(&dir, store_config(shards)).unwrap();
    for sid in 0..configs.len() {
        assert_eq!(
            json(&reopened.present(ids[sid]).unwrap()),
            json(&replay.present(replay_ids[sid]).unwrap()),
            "seed {seed}: post-recovery present diverged"
        );
    }
    drop(reopened);
    std::fs::remove_dir_all(&dir).ok();
}

/// The reduced CI corpus: 32 seeded schedules cycling shard counts
/// {1, 4}, worker threads {1, 4}, capacity pressure and group-commit
/// windows.  `CONSISTENCY_SEEDS=512` (or any count) widens the corpus
/// for a local soak.
#[test]
fn seeded_schedules_replay_bit_for_bit() {
    let seeds: u64 = std::env::var("CONSISTENCY_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    for seed in 0..seeds {
        run_schedule(seed);
    }
}
