//! Cross-crate integration-test support for the `pkgrec` workspace.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only provides the
//! small shared fixtures they use (catalogs, engines and ground-truth users
//! wired together across `pkgrec-data`, `pkgrec-core` and `pkgrec-baselines`).

use pkgrec_core::{
    AggregationContext, Catalog, LinearUtility, Profile, RankingSemantics, RecommenderEngine,
    Result, SimulatedUser,
};
use pkgrec_data::Dataset;

/// A unique scratch directory under the system temp dir for durable-store
/// tests: namespaced by process id and tag so `cargo test` stays
/// parallel-safe, created empty.  Callers remove it when the test passes.
pub fn unique_temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pkgrec-test-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir removable");
    }
    std::fs::create_dir_all(&dir).expect("scratch dir creatable");
    dir
}

/// Builds a normalised catalog from the first `features` columns of a dataset.
pub fn catalog_from_dataset(dataset: &Dataset, features: usize) -> Catalog {
    let projected = dataset
        .project_features(features)
        .expect("requested features exist")
        .normalized();
    Catalog::from_rows(projected.rows().to_vec()).expect("dataset rows are valid items")
}

/// The cost/quality-style profile used by most integration scenarios:
/// feature 0 is summed, every other feature is averaged.
pub fn integration_profile(features: usize) -> Profile {
    Profile::new(
        (0..features)
            .map(|j| {
                if j == 0 {
                    pkgrec_core::AggregateFn::Sum
                } else {
                    pkgrec_core::AggregateFn::Avg
                }
            })
            .collect(),
    )
}

/// Builds an engine plus a simulated user with the given hidden weights.
pub fn engine_and_user(
    catalog: Catalog,
    max_package_size: usize,
    hidden_weights: Vec<f64>,
    semantics: RankingSemantics,
    num_samples: usize,
) -> Result<(RecommenderEngine, SimulatedUser)> {
    let profile = integration_profile(catalog.num_features());
    let engine = RecommenderEngine::builder(catalog.clone(), profile.clone())
        .max_package_size(max_package_size)
        .k(3)
        .num_random(3)
        .num_samples(num_samples)
        .semantics(semantics)
        .build()?;
    let context = AggregationContext::new(profile, &catalog, max_package_size)?;
    let user = SimulatedUser::new(LinearUtility::new(context, hidden_weights)?);
    Ok((engine, user))
}
