//! End-to-end experiment runner.
//!
//! Reproduces every figure of the paper's evaluation section and prints the
//! resulting tables (GitHub markdown, ready to paste into `EXPERIMENTS.md`).
//! Individual experiments can be selected by name; `--quick` shrinks the
//! workloads so the whole suite finishes in a couple of minutes.
//!
//! ```text
//! cargo run --release -p pkgrec-bench --bin experiments -- [--quick] [fig4 fig5 fig6 fig7 fig8 quality serving]
//! ```
//!
//! With `--json <path>` the raw measurements are also written as JSON.

use std::collections::BTreeMap;

use pkgrec_bench::workload::DatasetId;
use pkgrec_bench::{fig4, fig5, fig6, fig7, fig8, quality, serving};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && Some(a.as_str()) != json_path.as_deref())
        .cloned()
        .collect();
    let wants = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);

    let mut json = BTreeMap::new();

    if wants("fig4") {
        let config = if quick {
            fig4::Fig4Config {
                samples: 100,
                rows: 500,
                ..fig4::Fig4Config::default()
            }
        } else {
            fig4::Fig4Config::default()
        };
        let result = fig4::run(&config);
        println!("{}", result.table());
        json.insert("fig4".to_string(), serde_json::to_value(&result).unwrap());
    }

    if wants("fig5") {
        let config = if quick {
            fig5::Fig5Config {
                preferences: 1_000,
                samples: 300,
                rows: 1_000,
                sample_sweep: vec![100, 300],
                feature_sweep: vec![3, 5, 7],
                gaussian_sweep: vec![1, 3, 5],
                ..fig5::Fig5Config::default()
            }
        } else {
            fig5::Fig5Config::default()
        };
        let result = fig5::run(&config);
        for table in result.tables() {
            println!("{table}");
        }
        json.insert("fig5".to_string(), serde_json::to_value(&result).unwrap());
    }

    if wants("fig6") {
        let config = if quick {
            fig6::Fig6Config {
                datasets: vec![DatasetId::Uni, DatasetId::Nba],
                rows: 2_000,
                sample_sweep: vec![200, 500],
                feature_sweep: vec![2, 6, 10],
                default_samples: 200,
                k: 3,
                // The top-k phase cost explodes with φ at the high end of the
                // feature sweep; quick mode trades package size, not
                // coverage, for wall time.
                max_package_size: 3,
                ..fig6::Fig6Config::default()
            }
        } else {
            fig6::Fig6Config::default()
        };
        let result = fig6::run(&config);
        for table in result.tables() {
            println!("{table}");
        }
        json.insert("fig6".to_string(), serde_json::to_value(&result).unwrap());
    }

    if wants("fig7") {
        let config = if quick {
            fig7::Fig7Config {
                pool_size: 2_000,
                preferences: 200,
                ..fig7::Fig7Config::default()
            }
        } else {
            fig7::Fig7Config::default()
        };
        let result = fig7::run(&config);
        for table in result.tables() {
            println!("{table}");
        }
        json.insert("fig7".to_string(), serde_json::to_value(&result).unwrap());
    }

    if wants("fig8") {
        let config = if quick {
            // Quick mode smoke-tests the generic session loop (now two
            // systems), so it runs on a small synthetic catalog; the NBA-scale
            // study of the paper stays behind the full (non-quick) run.
            fig8::Fig8Config {
                dataset: DatasetId::Uni,
                rows: 800,
                feature_sweep: vec![2, 4],
                ground_truths: 3,
                k: 3,
                num_random: 3,
                num_samples: 40,
                max_package_size: 3,
                max_rounds: 12,
                ..fig8::Fig8Config::default()
            }
        } else {
            fig8::Fig8Config::default()
        };
        let result = fig8::run(&config);
        println!("{}", result.table());
        json.insert("fig8".to_string(), serde_json::to_value(&result).unwrap());
    }

    if wants("quality") {
        let config = if quick {
            quality::QualityConfig {
                samples: 500,
                rows: 1_000,
                ..quality::QualityConfig::default()
            }
        } else {
            quality::QualityConfig::default()
        };
        let result = quality::run(&config);
        for table in result.tables() {
            println!("{table}");
        }
        json.insert(
            "quality".to_string(),
            serde_json::to_value(&result).unwrap(),
        );
    }

    if wants("serving") {
        let config = if quick {
            serving::ServingConfig {
                sessions: 12,
                rows: 240,
                num_samples: 25,
                max_rounds: 4,
                ..serving::ServingConfig::default()
            }
        } else {
            serving::ServingConfig::default()
        };
        let result = serving::run(&config).expect("the serving fleet runs to completion");
        println!("{}", result.table());
        println!("{}", result.durability_table());
        json.insert(
            "serving".to_string(),
            serde_json::to_value(&result).unwrap(),
        );
    }

    if let Some(path) = json_path {
        let payload = serde_json::to_string_pretty(&json).expect("results serialise");
        std::fs::write(&path, payload).expect("write JSON results");
        eprintln!("raw results written to {path}");
    }
}
