//! Figure 8 — effectiveness of the preference-elicitation loop.
//!
//! The paper generates 100 random hidden ground-truth utility functions over
//! the NBA dataset, runs the elicitation loop (5 recommended + 5 random
//! packages per round, MCMC sampling, EXP semantics) and reports the number of
//! clicks needed before the recommended top-k list stabilises, as a function
//! of the number of features (2–10).  Only a few clicks are needed throughout.
//!
//! Every system is driven through the *same* generic session loop
//! ([`run_elicitation`] over `&mut dyn Recommender`): the sample-maintenance
//! engine of the paper and the EM-refit baseline it dismisses as too
//! expensive (Section 2.1), so their click counts are comparable round for
//! round.

use pkgrec_baselines::{EmRefitConfig, EmRefitSession};
use pkgrec_core::elicitation::{
    random_ground_truth_weights, run_elicitation, ElicitationConfig, SimulatedUser,
};
use pkgrec_core::engine::RecommenderEngine;
use pkgrec_core::ranking::RankingSemantics;
use pkgrec_core::recommender::Recommender;
use pkgrec_core::sampler::SamplerKind;
use pkgrec_core::LinearUtility;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::workload::{build_dataset, dataset_catalog, experiment_profile, DatasetId};

/// The recommender systems the Figure 8 study drives through the generic
/// session loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig8System {
    /// The paper's sample-maintenance elicitation engine.
    Engine,
    /// The EM-refit elicitation baseline (Section 2.1's expensive
    /// alternative).
    EmRefit,
}

impl Fig8System {
    /// Short label used in tables and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            Fig8System::Engine => "engine",
            Fig8System::EmRefit => "em-refit",
        }
    }
}

/// Configuration of the Figure 8 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Config {
    /// Dataset (paper: NBA).
    pub dataset: DatasetId,
    /// Number of rows for synthetic datasets (ignored for NBA).
    pub rows: usize,
    /// Feature counts swept (paper: 2–10).
    pub feature_sweep: Vec<usize>,
    /// Systems compared through the generic session loop.
    pub systems: Vec<Fig8System>,
    /// Number of random ground-truth utility functions per point (paper: 100).
    pub ground_truths: usize,
    /// Number of recommended packages per round (paper: 5).
    pub k: usize,
    /// Number of random exploration packages per round (paper: 5).
    pub num_random: usize,
    /// Number of weight samples maintained per round.
    pub num_samples: usize,
    /// Maximum package size φ.
    pub max_package_size: usize,
    /// Maximum rounds before a session is declared non-converged.
    pub max_rounds: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            dataset: DatasetId::Nba,
            rows: 3_705,
            feature_sweep: vec![2, 4, 6, 8, 10],
            systems: vec![Fig8System::Engine, Fig8System::EmRefit],
            ground_truths: 100,
            k: 5,
            num_random: 5,
            num_samples: 200,
            max_package_size: 5,
            max_rounds: 25,
            seed: 8,
        }
    }
}

/// One point of the Figure 8 curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElicitationPoint {
    /// The system the sessions ran on.
    pub system: String,
    /// Number of features.
    pub features: usize,
    /// Mean number of clicks to convergence across ground truths.
    pub mean_clicks: f64,
    /// Maximum number of clicks observed.
    pub max_clicks: usize,
    /// Fraction of sessions that converged within the round budget.
    pub converged_fraction: f64,
    /// Mean precision of the final list against the ground-truth top-k.
    pub mean_precision: f64,
    /// Mean `Top-k-Pkg` runs per session (0 for search-free baselines).
    pub mean_searches: f64,
    /// Mean sorted accesses per session across the aggregated search runs.
    pub mean_sorted_accesses: f64,
    /// Mean candidates created per session across the aggregated search runs.
    pub mean_candidates: f64,
    /// Fraction of search runs that terminated early on the bound test.
    pub early_termination_rate: f64,
}

/// Full result of the Figure 8 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// One point per (system, feature count) pair.
    pub points: Vec<ElicitationPoint>,
}

fn build_recommender(
    system: Fig8System,
    config: &Fig8Config,
    catalog: &pkgrec_core::Catalog,
    profile: &pkgrec_core::Profile,
) -> Box<dyn Recommender> {
    match system {
        Fig8System::Engine => Box::new(
            RecommenderEngine::builder(catalog.clone(), profile.clone())
                .max_package_size(config.max_package_size)
                .k(config.k)
                .num_random(config.num_random)
                .num_samples(config.num_samples)
                .semantics(RankingSemantics::Exp)
                .sampler(SamplerKind::mcmc())
                .build()
                .expect("valid engine configuration"),
        ),
        Fig8System::EmRefit => Box::new(
            EmRefitSession::new(
                catalog.clone(),
                profile.clone(),
                config.max_package_size,
                EmRefitConfig {
                    k: config.k,
                    num_random: config.num_random,
                    num_samples: config.num_samples,
                    samples_per_refit: config.num_samples,
                    ..EmRefitConfig::default()
                },
            )
            .expect("valid EM-refit configuration"),
        ),
    }
}

/// Runs the Figure 8 experiment.
pub fn run(config: &Fig8Config) -> Fig8Result {
    let dataset = build_dataset(config.dataset, config.rows, config.seed);
    let mut points = Vec::new();
    for &system in &config.systems {
        for &features in &config.feature_sweep {
            let catalog = dataset_catalog(&dataset, features);
            let profile = experiment_profile(catalog.num_features());
            let context = pkgrec_core::AggregationContext::new(
                profile.clone(),
                &catalog,
                config.max_package_size,
            )
            .expect("profile matches the catalog");
            let mut clicks_sum = 0usize;
            let mut clicks_max = 0usize;
            let mut converged = 0usize;
            let mut precision_sum = 0.0;
            let mut search = pkgrec_core::AggregatedSearchStats::default();
            for trial in 0..config.ground_truths {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    config.seed ^ (features as u64) << 32 ^ trial as u64,
                );
                let mut recommender = build_recommender(system, config, &catalog, &profile);
                let truth = random_ground_truth_weights(catalog.num_features(), &mut rng);
                let utility = LinearUtility::new(context.clone(), truth)
                    .expect("ground truth matches the catalog");
                let user = SimulatedUser::new(utility);
                let report = run_elicitation(
                    recommender.as_mut(),
                    &user,
                    ElicitationConfig {
                        max_rounds: config.max_rounds,
                        stable_rounds: 2,
                    },
                    &mut rng,
                )
                .expect("elicitation sessions cannot fail on this workload");
                clicks_sum += report.clicks;
                clicks_max = clicks_max.max(report.clicks);
                if report.converged {
                    converged += 1;
                }
                precision_sum += report.precision;
                search.merge(&report.search);
            }
            let n = config.ground_truths.max(1) as f64;
            points.push(ElicitationPoint {
                system: system.label().to_string(),
                features,
                mean_clicks: clicks_sum as f64 / n,
                max_clicks: clicks_max,
                converged_fraction: converged as f64 / n,
                mean_precision: precision_sum / n,
                mean_searches: search.searches as f64 / n,
                mean_sorted_accesses: search.sorted_accesses as f64 / n,
                mean_candidates: search.candidates_created as f64 / n,
                early_termination_rate: search.early_termination_rate(),
            });
        }
    }
    Fig8Result { points }
}

impl Fig8Result {
    /// Renders the curve as a table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Figure 8: clicks needed before the top-k list stabilises",
            &[
                "system",
                "features",
                "mean clicks",
                "max clicks",
                "converged",
                "mean precision",
                "searches/session",
                "sorted accesses/session",
                "early term",
            ],
        );
        for p in &self.points {
            table.push_row(vec![
                p.system.clone(),
                p.features.to_string(),
                format!("{:.2}", p.mean_clicks),
                p.max_clicks.to_string(),
                format!("{:.0}%", p.converged_fraction * 100.0),
                format!("{:.2}", p.mean_precision),
                format!("{:.0}", p.mean_searches),
                format!("{:.0}", p.mean_sorted_accesses),
                format!("{:.0}%", p.early_termination_rate * 100.0),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_elicitation_study_compares_engine_and_em_refit() {
        let result = run(&Fig8Config {
            dataset: DatasetId::Uni,
            rows: 60,
            feature_sweep: vec![2, 4],
            systems: vec![Fig8System::Engine, Fig8System::EmRefit],
            ground_truths: 3,
            k: 3,
            num_random: 3,
            num_samples: 40,
            max_package_size: 3,
            max_rounds: 20,
            seed: 81,
        });
        // One point per (system, feature count) pair.
        assert_eq!(result.points.len(), 4);
        for p in &result.points {
            assert!(p.mean_clicks <= 20.0, "{}: {p:?}", p.system);
            assert!(p.mean_precision >= 0.0 && p.mean_precision <= 1.0);
        }
        // The paper's engine converges on this tiny workload and surfaces its
        // per-session search counters.
        for p in result.points.iter().filter(|p| p.system == "engine") {
            assert!(
                p.converged_fraction > 0.0,
                "no engine session converged for {} features",
                p.features
            );
            assert!(p.mean_searches > 0.0, "{p:?}");
            assert!(p.mean_sorted_accesses > 0.0, "{p:?}");
        }
        assert_eq!(result.table().rows.len(), 4);
    }
}
