//! Section 5.4 — sample quality: agreement of the top-5 package lists across
//! sampling methods and ranking semantics.
//!
//! The paper reports that, with enough samples, the top-package lists produced
//! by the different sampling strategies become very similar, and that TKP and
//! MPO tend to agree with each other more than with EXP.  The harness measures
//! exactly that: Jaccard overlap of the top-5 sets between every pair of
//! samplers (per semantics) and between every pair of semantics (per sampler).
//!
//! The experiment drives the public engine surface: one engine per sampler is
//! restored from a [`SessionSnapshot`] carrying the workload's pre-generated
//! preference set (the state-injection seam a serving layer would use), and
//! the per-sample rankings come from
//! [`RecommenderEngine::per_sample_rankings`].

use std::collections::HashMap;

use pkgrec_core::engine::EngineConfig;
use pkgrec_core::ranking::{aggregate, RankingSemantics};
use pkgrec_core::sampler::{
    ImportanceSampler, McmcSampler, RejectionSampler, SamplePool, SamplerKind,
};
use pkgrec_core::snapshot::{SessionSnapshot, SNAPSHOT_VERSION};
use pkgrec_core::{Package, PreferenceStore, RecommenderEngine};
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::workload::{Workload, WorkloadConfig};

/// Configuration of the sample-quality experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityConfig {
    /// Number of samples per sampler (paper: 5000).
    pub samples: usize,
    /// Number of preferences received (paper: 1000; scaled down by default).
    pub preferences: usize,
    /// Number of features (paper: 4).
    pub features: usize,
    /// Number of Gaussians in the prior (paper: 2).
    pub gaussians: usize,
    /// Catalog size.
    pub rows: usize,
    /// Size of the compared top lists (paper: 5).
    pub k: usize,
    /// σ used by the TKP semantics.
    pub sigma: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            samples: 2_000,
            preferences: 20,
            features: 4,
            gaussians: 2,
            rows: 5_000,
            k: 5,
            sigma: 5,
            seed: 54,
        }
    }
}

/// Top-k lists per (sampler, semantics) pair plus pairwise overlaps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityResult {
    /// Top-k package keys per sampler per semantics.
    pub lists: HashMap<String, Vec<String>>,
    /// Jaccard overlap between samplers under the same semantics.
    pub sampler_agreement: Vec<(String, String, f64)>,
    /// Jaccard overlap between semantics under the same sampler.
    pub semantics_agreement: Vec<(String, String, f64)>,
}

fn jaccard(a: &[Package], b: &[Package]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<&Package> = a.iter().collect();
    let sb: std::collections::HashSet<&Package> = b.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// Runs the sample-quality experiment.
pub fn run(config: &QualityConfig) -> QualityResult {
    let workload = Workload::build(WorkloadConfig {
        rows: config.rows,
        features: config.features,
        preferences: config.preferences,
        gaussians: config.gaussians,
        seed: config.seed,
        ..WorkloadConfig::default()
    });
    // Inject the workload's pre-generated preferences through the session-
    // snapshot seam.  Each preference links two fresh nodes, so the reduced
    // constraint set equals the workload's full constraint set.
    let mut store = PreferenceStore::new();
    for (i, p) in workload.preferences.iter().enumerate() {
        store
            .add(format!("b{i}"), &p.better, format!("w{i}"), &p.worse)
            .expect("workload preferences are acyclic by construction");
    }
    let samplers: Vec<(&str, SamplerKind)> = vec![
        ("RS", SamplerKind::Rejection(RejectionSampler::default())),
        ("IS", SamplerKind::Importance(ImportanceSampler::default())),
        ("MS", SamplerKind::Mcmc(McmcSampler::default())),
    ];
    let semantics = [
        ("EXP", RankingSemantics::Exp),
        (
            "TKP",
            RankingSemantics::Tkp {
                sigma: config.sigma,
            },
        ),
        ("MPO", RankingSemantics::Mpo),
    ];

    let mut top_lists: HashMap<(String, String), Vec<Package>> = HashMap::new();
    for (sampler_name, sampler) in &samplers {
        let snapshot = SessionSnapshot {
            version: SNAPSHOT_VERSION,
            config: EngineConfig {
                k: config.k,
                num_random: 0,
                num_samples: config.samples,
                // TKP's σ forces the per-sample search depth to max(k, σ), so
                // one ranking pass serves all three semantics below.
                semantics: RankingSemantics::Tkp {
                    sigma: config.sigma,
                },
                sampler: sampler.clone(),
                prior_components: config.gaussians,
                prior_sigma: workload.config.prior_sigma,
                ..EngineConfig::default()
            },
            profile: workload.context.profile().clone(),
            max_package_size: workload.context.max_package_size(),
            catalog: workload.catalog.clone(),
            preferences: store.clone(),
            pool: SamplePool::new(),
            rounds: 0,
        };
        let mut engine = RecommenderEngine::restore(snapshot).expect("snapshot parts are valid");
        let mut rng = workload.rng(31);
        if engine.resample(&mut rng).is_err() {
            continue; // e.g. IS refused in high dimension
        }
        let rankings = engine.per_sample_rankings().expect("search succeeds");
        for (sem_name, sem) in &semantics {
            let top: Vec<Package> = aggregate(*sem, &rankings, config.k)
                .into_iter()
                .map(|r| r.package)
                .collect();
            top_lists.insert((sampler_name.to_string(), sem_name.to_string()), top);
        }
    }

    let mut sampler_agreement = Vec::new();
    for (sem_name, _) in &semantics {
        for i in 0..samplers.len() {
            for j in (i + 1)..samplers.len() {
                let a = top_lists.get(&(samplers[i].0.to_string(), sem_name.to_string()));
                let b = top_lists.get(&(samplers[j].0.to_string(), sem_name.to_string()));
                if let (Some(a), Some(b)) = (a, b) {
                    sampler_agreement.push((
                        format!("{} vs {} ({})", samplers[i].0, samplers[j].0, sem_name),
                        sem_name.to_string(),
                        jaccard(a, b),
                    ));
                }
            }
        }
    }
    let mut semantics_agreement = Vec::new();
    for (sampler_name, _) in &samplers {
        for i in 0..semantics.len() {
            for j in (i + 1)..semantics.len() {
                let a = top_lists.get(&(sampler_name.to_string(), semantics[i].0.to_string()));
                let b = top_lists.get(&(sampler_name.to_string(), semantics[j].0.to_string()));
                if let (Some(a), Some(b)) = (a, b) {
                    semantics_agreement.push((
                        format!(
                            "{} vs {} ({})",
                            semantics[i].0, semantics[j].0, sampler_name
                        ),
                        sampler_name.to_string(),
                        jaccard(a, b),
                    ));
                }
            }
        }
    }
    let lists = top_lists
        .into_iter()
        .map(|((sampler, sem), packages)| {
            (
                format!("{sampler}/{sem}"),
                packages.iter().map(Package::key).collect(),
            )
        })
        .collect();
    QualityResult {
        lists,
        sampler_agreement,
        semantics_agreement,
    }
}

impl QualityResult {
    /// Renders the agreement measurements as tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut a = Table::new(
            "Section 5.4: top-5 agreement between sampling methods",
            &["pair", "semantics", "jaccard"],
        );
        for (pair, sem, j) in &self.sampler_agreement {
            a.push_row(vec![pair.clone(), sem.clone(), format!("{j:.2}")]);
        }
        let mut b = Table::new(
            "Section 5.4: top-5 agreement between ranking semantics",
            &["pair", "sampler", "jaccard"],
        );
        for (pair, sampler, j) in &self.semantics_agreement {
            b.push_row(vec![pair.clone(), sampler.clone(), format!("{j:.2}")]);
        }
        vec![a, b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_overlap_basics() {
        let p = |items: &[usize]| Package::new(items.to_vec()).unwrap();
        let a = vec![p(&[0]), p(&[1])];
        let b = vec![p(&[1]), p(&[2])];
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn small_quality_run_produces_lists_and_agreements() {
        let result = run(&QualityConfig {
            samples: 150,
            preferences: 5,
            rows: 200,
            features: 3,
            gaussians: 1,
            k: 3,
            sigma: 3,
            seed: 99,
        });
        // 3 samplers x 3 semantics lists.
        assert_eq!(result.lists.len(), 9);
        assert_eq!(result.sampler_agreement.len(), 9);
        assert_eq!(result.semantics_agreement.len(), 9);
        for (_, _, j) in result
            .sampler_agreement
            .iter()
            .chain(&result.semantics_agreement)
        {
            assert!((0.0..=1.0).contains(j));
        }
        assert_eq!(result.tables().len(), 2);
    }

    #[test]
    fn samplers_largely_agree_given_enough_samples() {
        // The paper's observation: with enough samples the sampling strategies
        // produce very similar top lists.  Expect a healthy mean overlap.
        let result = run(&QualityConfig {
            samples: 600,
            preferences: 8,
            rows: 300,
            features: 3,
            gaussians: 1,
            k: 3,
            sigma: 3,
            seed: 7,
        });
        let mean: f64 = result
            .sampler_agreement
            .iter()
            .map(|(_, _, j)| *j)
            .sum::<f64>()
            / result.sampler_agreement.len() as f64;
        assert!(mean > 0.3, "mean sampler agreement {mean}");
    }
}
