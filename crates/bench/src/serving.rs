//! Serving-layer throughput experiment: many concurrent elicitation
//! sessions through the sharded, journal-backed `pkgrec-serve` store.
//!
//! The experiment builds a fleet of sessions (the engine plus baseline
//! adapters, mirroring a mixed production workload), pairs each with a
//! hidden-utility simulated user, and serves the whole fleet to convergence
//! through [`ServingLoop`].  Two store shapes are measured:
//!
//! * **store-hit** — per-shard capacity covers the fleet, so every
//!   operation finds its session live in memory,
//! * **snapshot-restore** — per-shard capacity 1 forces a spill/rehydrate
//!   round trip (snapshot checkpoint + journal replay) on nearly every
//!   operation, exercising the store's cold path.
//!
//! The summary table surfaces the store's hit/evict/restore counters next
//! to the fleet's aggregated `Top-k-Pkg` search statistics — the
//! observability seam future serving-performance PRs regress against.

use std::time::Instant;

use pkgrec_baselines::{BaselineSpec, EmRefitConfig, FeatureDirection};
use pkgrec_core::{
    random_ground_truth_weights, AggregatedSearchStats, AggregationContext, CoreError,
    ElicitationConfig, EngineConfig, LinearUtility, Profile, Result, SimulatedUser,
};
use pkgrec_serve::{
    CompactionStats, DurabilityConfig, RecommenderSpec, ScoringConfig, ServingLoop, SessionConfig,
    SessionId, SessionStore, StoreConfig, StoreStats,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::workload::{build_dataset, dataset_catalog, DatasetId};

/// Configuration of the serving experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Number of concurrent sessions in the fleet.
    pub sessions: usize,
    /// Catalog rows (UNI synthetic dataset, 2 features, cost/quality).
    pub rows: usize,
    /// Weight samples per engine session.
    pub num_samples: usize,
    /// Packages recommended per round.
    pub k: usize,
    /// Random exploration packages per round.
    pub num_random: usize,
    /// Maximum package size φ.
    pub max_package_size: usize,
    /// Elicitation round budget per session.
    pub max_rounds: usize,
    /// Shards of the measured store.
    pub shards: usize,
    /// Serving threads (clamped to the shard count).
    pub threads: usize,
    /// Whether the fleet mixes baseline sessions in (every third/fourth
    /// session) or is engine-only.
    pub mixed: bool,
    /// Base random seed.
    pub seed: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            sessions: 48,
            rows: 600,
            num_samples: 50,
            k: 3,
            num_random: 3,
            max_package_size: 3,
            max_rounds: 5,
            shards: 4,
            threads: 4,
            mixed: true,
            seed: 20140902,
        }
    }
}

/// Builds the session fleet: a memory-only store of the given shape
/// populated with `sessions` sessions, plus one hidden-utility user per
/// session.
pub fn build_fleet(
    config: &ServingConfig,
    capacity_per_shard: usize,
) -> Result<(SessionStore, Vec<(SessionId, SimulatedUser)>)> {
    let store = SessionStore::new(StoreConfig {
        shards: config.shards,
        capacity_per_shard,
    })?;
    populate_fleet(store, config)
}

/// Builds the same fleet on top of a durable store rooted at
/// `durability.dir`, so every event lands in the segmented journal.
pub fn build_durable_fleet(
    config: &ServingConfig,
    capacity_per_shard: usize,
    durability: DurabilityConfig,
) -> Result<(SessionStore, Vec<(SessionId, SimulatedUser)>)> {
    let store = SessionStore::open_with(
        StoreConfig {
            shards: config.shards,
            capacity_per_shard,
        },
        durability,
    )?;
    populate_fleet(store, config)
}

fn populate_fleet(
    mut store: SessionStore,
    config: &ServingConfig,
) -> Result<(SessionStore, Vec<(SessionId, SimulatedUser)>)> {
    let dataset = build_dataset(DatasetId::Uni, config.rows, config.seed);
    let catalog = std::sync::Arc::new(dataset_catalog(&dataset, 2));
    let profile = Profile::cost_quality();
    let context = AggregationContext::new(profile.clone(), &catalog, config.max_package_size)?;
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5E55_1011);
    let mut fleet = Vec::with_capacity(config.sessions);
    for i in 0..config.sessions {
        let spec = if config.mixed && i % 4 == 2 {
            RecommenderSpec::Baseline(BaselineSpec::EmRefit(EmRefitConfig {
                k: config.k,
                num_random: config.num_random,
                num_samples: config.num_samples.min(40),
                samples_per_refit: (config.num_samples * 2).min(80),
                ..EmRefitConfig::default()
            }))
        } else if config.mixed && i % 4 == 3 {
            RecommenderSpec::Baseline(BaselineSpec::Skyline {
                cardinality: config.max_package_size.min(2),
                directions: vec![FeatureDirection::Minimize, FeatureDirection::Maximize],
                k: config.k,
            })
        } else {
            RecommenderSpec::Engine(EngineConfig {
                k: config.k,
                num_random: config.num_random,
                num_samples: config.num_samples,
                ..EngineConfig::default()
            })
        };
        let id = store.create(SessionConfig {
            catalog: catalog.clone(),
            profile: profile.clone(),
            max_package_size: config.max_package_size,
            spec,
            seed: config.seed.wrapping_add(i as u64),
        })?;
        let weights = random_ground_truth_weights(context.dim(), &mut rng);
        let user = SimulatedUser::new(LinearUtility::new(context.clone(), weights)?);
        fleet.push((id, user));
    }
    Ok((store, fleet))
}

/// One measured store shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingPoint {
    /// Human label of the path exercised ("store-hit" / "snapshot-restore").
    pub path: String,
    /// Shards of the measured store.
    pub shards: usize,
    /// Live sessions allowed per shard.
    pub capacity_per_shard: usize,
    /// Fleet size.
    pub sessions: usize,
    /// Sessions whose top-k stabilised within the round budget.
    pub converged: usize,
    /// Mean clicks per session.
    pub mean_clicks: f64,
    /// Mean final precision against the hidden utilities.
    pub mean_precision: f64,
    /// Wall-clock seconds serving the fleet.
    pub elapsed_secs: f64,
    /// Fleet throughput (sessions served to convergence per second).
    pub sessions_per_sec: f64,
    /// Store counters accumulated while serving.
    pub store: StoreStats,
    /// `Top-k-Pkg` statistics summed over the fleet's reports.
    pub search: AggregatedSearchStats,
}

/// Serves one fleet through one store shape and measures it.
pub fn serve_point(
    config: &ServingConfig,
    path: &str,
    capacity_per_shard: usize,
) -> Result<ServingPoint> {
    let (mut store, fleet) = build_fleet(config, capacity_per_shard)?;
    serve_fleet(
        &mut store,
        &fleet,
        config,
        path,
        capacity_per_shard,
        DriveMode::Serial,
    )
}

/// [`serve_point`] through [`ServingLoop::run_batched`]: each shard drives
/// its sessions in lockstep rounds so same-catalog engine sessions share one
/// batched kernel sweep per round.  Outcomes are identical to the serial
/// paths (the fleet's interned catalog makes every engine session groupable);
/// only the throughput changes.
pub fn serve_point_batched(
    config: &ServingConfig,
    path: &str,
    capacity_per_shard: usize,
) -> Result<ServingPoint> {
    let (mut store, fleet) = build_fleet(config, capacity_per_shard)?;
    serve_fleet(
        &mut store,
        &fleet,
        config,
        path,
        capacity_per_shard,
        DriveMode::Lockstep,
    )
}

/// [`serve_point`] through [`ServingLoop::run_scored`]: shard workers submit
/// pending presents to a shared cross-shard [`ScoringService`](pkgrec_serve::ScoringService) whose batcher
/// stacks same-catalog submissions fleet-wide into one kernel sweep per
/// group, gated by the adaptive admission policy in `scoring`.  Outcomes
/// stay bit-identical to the serial paths; the admission counters
/// (`batched_sessions` / `admission_fallbacks` / `batch_wait_us`) land in
/// the point's [`StoreStats`].
pub fn serve_point_scored(
    config: &ServingConfig,
    path: &str,
    capacity_per_shard: usize,
    scoring: &ScoringConfig,
) -> Result<ServingPoint> {
    let (mut store, fleet) = build_fleet(config, capacity_per_shard)?;
    serve_fleet(
        &mut store,
        &fleet,
        config,
        path,
        capacity_per_shard,
        DriveMode::Scored(scoring),
    )
}

/// How [`serve_fleet`] drives the fleet through [`ServingLoop`].
enum DriveMode<'a> {
    /// Per-session serial serving ([`ServingLoop::run`]).
    Serial,
    /// Per-shard lockstep rounds ([`ServingLoop::run_batched`]).
    Lockstep,
    /// Cross-shard scoring service ([`ServingLoop::run_scored`]).
    Scored(&'a ScoringConfig),
}

/// The measurement half of [`serve_point`]: drives an already-built fleet
/// to convergence through the given store and summarises the run.
fn serve_fleet(
    store: &mut SessionStore,
    fleet: &[(SessionId, SimulatedUser)],
    config: &ServingConfig,
    path: &str,
    capacity_per_shard: usize,
    mode: DriveMode<'_>,
) -> Result<ServingPoint> {
    let elicitation = ElicitationConfig {
        max_rounds: config.max_rounds,
        stable_rounds: 2,
    };
    let start = Instant::now();
    let mut serving = ServingLoop::new(store);
    let outcomes = match mode {
        DriveMode::Serial => serving.run(fleet, elicitation, config.threads)?,
        DriveMode::Lockstep => serving.run_batched(fleet, elicitation, config.threads)?,
        DriveMode::Scored(scoring) => {
            serving.run_scored(fleet, elicitation, config.threads, scoring)?
        }
    };
    let elapsed = start.elapsed();

    let mut search = AggregatedSearchStats::default();
    let mut clicks = 0usize;
    let mut precision = 0.0f64;
    let mut converged = 0usize;
    for outcome in &outcomes {
        search.merge(&outcome.search);
        clicks += outcome.clicks;
        precision += outcome.precision;
        converged += usize::from(outcome.converged);
    }
    let n = outcomes.len().max(1);
    Ok(ServingPoint {
        path: path.to_string(),
        shards: config.shards,
        capacity_per_shard,
        sessions: outcomes.len(),
        converged,
        mean_clicks: clicks as f64 / n as f64,
        mean_precision: precision / n as f64,
        elapsed_secs: elapsed.as_secs_f64(),
        sessions_per_sec: outcomes.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        store: store.stats(),
        search,
    })
}

/// The durability experiment: the fleet served through a durable
/// (segmented, interned) store, then compacted, killed and recovered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurabilityPoint {
    /// The serving measurement of the durable shape (path `durable-log`).
    pub serving: ServingPoint,
    /// Bytes of the v1 (uninterned, uncompacted) journal serialisation —
    /// the wire format the store shipped before the segmented log.
    pub v1_journal_bytes: usize,
    /// Segment bytes on disk after serving, before compaction.
    pub segment_bytes_before: u64,
    /// Segment bytes on disk after checkpoint-anchored compaction.
    pub segment_bytes_after: u64,
    /// `v1_journal_bytes / sessions`.
    pub v1_bytes_per_session: f64,
    /// `segment_bytes_after / sessions`.
    pub segment_bytes_per_session: f64,
    /// `v1_journal_bytes / segment_bytes_after` — the interning +
    /// compaction cut.
    pub reduction_factor: f64,
    /// What the compaction pass accomplished.
    pub compaction: CompactionStats,
    /// Milliseconds to rebuild every session from the segments alone.
    pub recovery_ms: f64,
    /// Sessions alive in the recovered store.
    pub recovered_sessions: usize,
    /// Counters of the recovered store (`recovery_replays` counts the
    /// sessions rebuilt from segments).
    pub recovered: StoreStats,
}

/// Serves the fleet through a durable store, then measures the journal's
/// disk footprint before/after compaction and the cost of crash recovery.
///
/// The "kill" is a [`std::mem::forget`] of the live store — no graceful
/// shutdown, no final flush beyond the explicit [`SessionStore::sync`] a
/// careful server would issue — and recovery is a plain
/// [`SessionStore::open_with`] over the surviving segments.  Probe sessions
/// must recommend identically before and after, which the function asserts.
pub fn durability_point(config: &ServingConfig) -> Result<DurabilityPoint> {
    let dir = std::env::temp_dir().join(format!(
        "pkgrec-bench-durability-{}-{}-{}",
        std::process::id(),
        config.seed,
        config.sessions
    ));
    if dir.exists() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Serve under memory pressure so cold sessions spill checkpoints into
    // the journal as they would in production — each spill supersedes the
    // session's previous checkpoint, which is exactly what compaction
    // reclaims.
    let capacity = (config.sessions / (config.shards.max(1) * 2)).max(1);
    let (mut store, fleet) = build_durable_fleet(config, capacity, DurabilityConfig::at(&dir))?;
    let serving = serve_fleet(
        &mut store,
        &fleet,
        config,
        "durable-log",
        capacity,
        DriveMode::Serial,
    )?;

    // Footprints: the v1 serialisation embeds a full catalog copy per
    // `Created` event; the segmented log interns it and, after compaction,
    // keeps only each session's checkpoint tail.
    store.sync()?;
    let v1_journal_bytes = serde_json::to_string(&store.export_journal())
        .map_err(|e| CoreError::io_data(format!("v1 journal serialisation: {e}")))?
        .len();
    let segment_bytes_before = store.durable_bytes()?;
    let compaction = store.compact()?;
    let segment_bytes_after = store.durable_bytes()?;

    // Kill and recover: remember what a handful of probe sessions would
    // recommend, drop the store without running destructors, and demand the
    // recovered store agree byte for byte.
    let stride = (fleet.len() / 8).max(1);
    let mut probes = Vec::new();
    for (id, _) in fleet.iter().step_by(stride) {
        probes.push((*id, store.recommend(*id)?));
    }
    store.sync()?;
    std::mem::forget(store);

    let start = Instant::now();
    let mut recovered = SessionStore::open_with(
        StoreConfig {
            shards: config.shards,
            capacity_per_shard: capacity,
        },
        DurabilityConfig::at(&dir),
    )?;
    let recovery_ms = start.elapsed().as_secs_f64() * 1e3;
    let recovered_sessions = recovered.len();
    for (id, expected) in &probes {
        if recovered.recommend(*id)? != *expected {
            return Err(CoreError::InvalidConfig(format!(
                "recovered store diverged from the killed store for {id}"
            )));
        }
    }
    let recovered_stats = recovered.stats();
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    let n = config.sessions.max(1) as f64;
    Ok(DurabilityPoint {
        serving,
        v1_journal_bytes,
        segment_bytes_before,
        segment_bytes_after,
        v1_bytes_per_session: v1_journal_bytes as f64 / n,
        segment_bytes_per_session: segment_bytes_after as f64 / n,
        reduction_factor: v1_journal_bytes as f64 / (segment_bytes_after as f64).max(1.0),
        compaction,
        recovery_ms,
        recovered_sessions,
        recovered: recovered_stats,
    })
}

/// Result of the serving experiment: the memory store shapes plus the
/// durable-log shape with its compaction/recovery measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingResult {
    /// The measured store shapes.
    pub points: Vec<ServingPoint>,
    /// The durable-log measurement.
    pub durability: DurabilityPoint,
}

impl ServingResult {
    /// The summary table: serving throughput plus store, durability and
    /// search counters per measured shape (the durable-log shape rides
    /// along as the last row; its durability columns are non-zero).
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Serving layer: store paths, store counters and search statistics",
            &[
                "path",
                "shards",
                "cap/shard",
                "sessions",
                "converged",
                "clicks",
                "precision",
                "time (s)",
                "sessions/s",
                "hits",
                "evictions",
                "restores",
                "batched sess",
                "fallbacks",
                "snapshots",
                "segments",
                "appended KB",
                "commits",
                "searches",
                "sorted acc",
                "early-term %",
            ],
        );
        for p in self
            .points
            .iter()
            .chain(std::iter::once(&self.durability.serving))
        {
            table.push_row(vec![
                p.path.clone(),
                p.shards.to_string(),
                p.capacity_per_shard.to_string(),
                p.sessions.to_string(),
                p.converged.to_string(),
                format!("{:.2}", p.mean_clicks),
                format!("{:.2}", p.mean_precision),
                format!("{:.3}", p.elapsed_secs),
                format!("{:.2}", p.sessions_per_sec),
                p.store.hits.to_string(),
                p.store.evictions.to_string(),
                p.store.restores.to_string(),
                p.store.batched_sessions.to_string(),
                p.store.admission_fallbacks.to_string(),
                p.store.snapshots.to_string(),
                p.store.segments_written.to_string(),
                format!("{:.1}", p.store.bytes_appended as f64 / 1024.0),
                p.store.group_commits.to_string(),
                p.search.searches.to_string(),
                p.search.sorted_accesses.to_string(),
                format!("{:.1}", p.search.early_termination_rate() * 100.0),
            ]);
        }
        table
    }

    /// The durability table: journal footprint before/after interning +
    /// compaction, and the cost of crash recovery.
    pub fn durability_table(&self) -> Table {
        let mut table = Table::new(
            "Serving durability: interned segments, compaction and recovery",
            &[
                "sessions",
                "v1 KB",
                "segments KB",
                "compacted KB",
                "KB/session",
                "cut",
                "checkpoints",
                "dropped",
                "reclaimed KB",
                "recovery ms",
                "recovered",
                "replays",
            ],
        );
        let d = &self.durability;
        table.push_row(vec![
            d.serving.sessions.to_string(),
            format!("{:.1}", d.v1_journal_bytes as f64 / 1024.0),
            format!("{:.1}", d.segment_bytes_before as f64 / 1024.0),
            format!("{:.1}", d.segment_bytes_after as f64 / 1024.0),
            format!("{:.2}", d.segment_bytes_per_session / 1024.0),
            format!("{:.1}x", d.reduction_factor),
            d.compaction.checkpoints_written.to_string(),
            d.compaction.events_dropped.to_string(),
            format!("{:.1}", d.compaction.bytes_reclaimed as f64 / 1024.0),
            format!("{:.2}", d.recovery_ms),
            d.recovered_sessions.to_string(),
            d.recovered.recovery_replays.to_string(),
        ]);
        table
    }
}

/// Runs the serving experiment: the same fleet through the store-hit,
/// batched (per-shard lockstep), batched-xshard (cross-shard scoring
/// service), admission-fallback (the same service with admission forced
/// off, measuring the fallback path) and snapshot-restore memory paths,
/// then through the durable segmented log (with compaction and
/// kill/recover measurements).
pub fn run(config: &ServingConfig) -> Result<ServingResult> {
    use pkgrec_serve::AdmissionMode;
    let ample = config.sessions.max(1);
    let hit = serve_point(config, "store-hit", ample)?;
    let batched = serve_point_batched(config, "batched", ample)?;
    let xshard = serve_point_scored(config, "batched-xshard", ample, &ScoringConfig::default())?;
    let fallback = serve_point_scored(
        config,
        "admission-fallback",
        ample,
        &ScoringConfig {
            mode: AdmissionMode::Never,
            ..ScoringConfig::default()
        },
    )?;
    let restore = serve_point(config, "snapshot-restore", 1)?;
    let durability = durability_point(config)?;
    Ok(ServingResult {
        points: vec![hit, batched, xshard, fallback, restore],
        durability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServingConfig {
        ServingConfig {
            sessions: 6,
            rows: 120,
            num_samples: 20,
            max_rounds: 3,
            shards: 2,
            threads: 2,
            ..ServingConfig::default()
        }
    }

    #[test]
    fn serving_experiment_runs_and_reports() {
        let result = run(&tiny()).unwrap();
        assert_eq!(result.points.len(), 5);
        let hit = &result.points[0];
        let batched = &result.points[1];
        let xshard = &result.points[2];
        let fallback = &result.points[3];
        let restore = &result.points[4];
        assert_eq!(hit.path, "store-hit");
        assert_eq!(batched.path, "batched");
        assert_eq!(xshard.path, "batched-xshard");
        assert_eq!(fallback.path, "admission-fallback");
        assert_eq!(restore.path, "snapshot-restore");
        assert_eq!(hit.sessions, 6);
        // The ample store never rehydrates; the starved store must.
        assert_eq!(hit.store.restores, 0);
        assert!(restore.store.restores > 0);
        assert!(restore.store.evictions > 0);
        // Same fleet, same deterministic outcomes on every path — including
        // the lockstep batched one and both scoring-service shapes.
        for point in [restore, batched, xshard, fallback] {
            assert_eq!(hit.mean_clicks, point.mean_clicks, "{}", point.path);
            assert_eq!(hit.converged, point.converged, "{}", point.path);
            assert_eq!(hit.mean_precision, point.mean_precision, "{}", point.path);
        }
        // The interned catalog makes engine sessions groupable, so the
        // batched path actually ran shared kernel sweeps.
        assert!(batched.store.batched_presents > 0);
        assert!(batched.store.batched_groups > 0);
        assert!(batched.store.batched_presents > batched.store.batched_groups);
        // The cross-shard point routed sessions through the scoring service
        // (round one admits optimistically, so the counters must move) ...
        assert!(xshard.store.batched_sessions > 0);
        assert!(xshard.store.batched_groups > 0);
        assert!(xshard.store.batched_presents >= xshard.store.batched_sessions);
        // ... and the forced-fallback point records every declined group
        // while batching nothing.
        assert!(fallback.store.admission_fallbacks > 0);
        assert_eq!(fallback.store.batched_sessions, 0);
        assert_eq!(fallback.store.batched_groups, 0);
        assert!(hit.search.searches > 0);
        let markdown = result.table().to_markdown();
        assert!(markdown.contains("store-hit"));
        assert!(markdown.contains("batched"));
        assert!(markdown.contains("batched-xshard"));
        assert!(markdown.contains("admission-fallback"));
        assert!(markdown.contains("snapshot-restore"));
        assert!(markdown.contains("durable-log"));

        // The durable shape serves the same fleet to the same outcomes,
        // interning + compaction shrink the on-disk journal versus the v1
        // serialisation, and every session survives the kill.
        let d = &result.durability;
        assert_eq!(d.serving.mean_clicks, hit.mean_clicks);
        assert_eq!(d.serving.converged, hit.converged);
        assert!(d.serving.store.segments_written > 0);
        assert!(d.serving.store.group_commits > 0);
        assert!(d.segment_bytes_after < d.segment_bytes_before);
        assert!(d.reduction_factor > 1.0, "cut {:.2}", d.reduction_factor);
        assert_eq!(d.recovered_sessions, 6);
        assert_eq!(d.recovered.recovery_replays, 6);
        let durability_markdown = result.durability_table().to_markdown();
        assert!(durability_markdown.contains("recovery"));
    }
}
