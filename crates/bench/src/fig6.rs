//! Figure 6 — overall time performance of sample generation and top-k package
//! search across the five datasets.
//!
//! The paper's Figure 6 plots, per dataset, the wall-clock cost of (a)
//! generating the required number of valid weight samples with RS / IS / MS
//! and (b) generating the top-k packages from those samples, while sweeping
//! the number of samples (1000–5000, sub-figures a–e) and the number of
//! features (2–10, sub-figures f–j, importance sampling excluded above five
//! features because its grid is exponential in the dimensionality).

use pkgrec_core::ranking::{aggregate, RankingSemantics};
use pkgrec_core::recommender::per_sample_rankings_indexed;
use pkgrec_core::sampler::{
    ImportanceSampler, McmcSampler, RejectionSampler, SamplePool, SamplerKind, WeightSampler,
};
use pkgrec_core::AggregatedSearchStats;
use serde::{Deserialize, Serialize};

use crate::report::{seconds, timed, Table};
use crate::workload::{DatasetId, Workload, WorkloadConfig};

/// Configuration of the Figure 6 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Config {
    /// Datasets to run (all five by default).
    pub datasets: Vec<DatasetId>,
    /// Number of rows for synthetic datasets (paper: 100 000).
    pub rows: usize,
    /// Sample counts swept in Figure 6(a)–(e).
    pub sample_sweep: Vec<usize>,
    /// Feature counts swept in Figure 6(f)–(j).
    pub feature_sweep: Vec<usize>,
    /// Default number of samples for the feature sweep.
    pub default_samples: usize,
    /// Default number of features for the sample sweep (paper default: 5).
    pub default_features: usize,
    /// Number of pairwise preferences constraining the weight region.
    pub preferences: usize,
    /// k of the generated top-k package list.
    pub k: usize,
    /// Maximum package size φ (paper default: 5).  The top-k phase cost
    /// explodes with φ at high feature counts, so quick/test configurations
    /// lower it.
    pub max_package_size: usize,
    /// Features above which importance sampling is skipped (paper: 5).
    pub importance_feature_limit: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            datasets: DatasetId::all().to_vec(),
            rows: 20_000,
            sample_sweep: vec![1_000, 2_000, 3_000, 4_000, 5_000],
            feature_sweep: vec![2, 4, 6, 8, 10],
            default_samples: 1_000,
            default_features: 5,
            preferences: 10,
            k: 5,
            max_package_size: 5,
            importance_feature_limit: 5,
            seed: 6,
        }
    }
}

/// One measured point: a dataset, a sampler, a swept value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverallPoint {
    /// Dataset short name.
    pub dataset: String,
    /// Sampler short name (RS / IS / MS).
    pub sampler: String,
    /// The swept value (number of samples or number of features).
    pub x: usize,
    /// Seconds spent generating the valid samples.
    pub sample_generation_secs: f64,
    /// Seconds spent generating the top-k packages from the samples.
    pub top_k_secs: f64,
    /// Aggregated `Top-k-Pkg` counters of the top-k phase (sorted accesses,
    /// candidates created, early-termination rate) — the baseline future
    /// search-performance work compares against.
    pub top_k_search: AggregatedSearchStats,
    /// Whether the sampler was skipped (importance sampling above its feature
    /// limit, or a sampler error).
    pub skipped: bool,
}

/// Full result of the Figure 6 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Figure 6(a)–(e): sweeping the number of samples.
    pub by_samples: Vec<OverallPoint>,
    /// Figure 6(f)–(j): sweeping the number of features.
    pub by_features: Vec<OverallPoint>,
}

fn samplers() -> Vec<(&'static str, SamplerKind)> {
    vec![
        ("RS", SamplerKind::Rejection(RejectionSampler::default())),
        ("IS", SamplerKind::Importance(ImportanceSampler::default())),
        ("MS", SamplerKind::Mcmc(McmcSampler::default())),
    ]
}

/// Generates the top-k packages for every sample in the pool and aggregates
/// them under EXP — the "Top-k Pkg" cost component of Figure 6.  The phase
/// runs through the engine's shared batched ranking step
/// ([`per_sample_rankings_indexed`]) over the workload's cached sorted lists,
/// so the figure times the same columnar kernel and catalog index the serving
/// path uses; the aggregated search counters of every run are returned
/// alongside the list length.
pub fn top_k_phase(
    workload: &Workload,
    pool: &SamplePool,
    k: usize,
) -> (usize, AggregatedSearchStats) {
    let (results, stats) = per_sample_rankings_indexed(
        &workload.context,
        &workload.catalog,
        &workload.sorted_lists,
        pool,
        k,
        1,
    )
    .expect("samples share the catalog dimensionality");
    (aggregate(RankingSemantics::Exp, &results, k).len(), stats)
}

fn measure_point(
    workload: &Workload,
    sampler_name: &str,
    sampler: &SamplerKind,
    samples: usize,
    k: usize,
    x: usize,
) -> OverallPoint {
    let checker = workload.checker();
    let mut rng = workload.rng(17);
    let (outcome, generation_time) =
        timed(|| sampler.generate(&workload.prior, &checker, samples, &mut rng));
    match outcome {
        Err(_) => OverallPoint {
            dataset: workload.config.dataset.name().to_string(),
            sampler: sampler_name.to_string(),
            x,
            sample_generation_secs: generation_time.as_secs_f64(),
            top_k_secs: 0.0,
            top_k_search: AggregatedSearchStats::default(),
            skipped: true,
        },
        Ok(outcome) => {
            let ((_, search), topk_time) = timed(|| top_k_phase(workload, &outcome.pool, k));
            OverallPoint {
                dataset: workload.config.dataset.name().to_string(),
                sampler: sampler_name.to_string(),
                x,
                sample_generation_secs: generation_time.as_secs_f64(),
                top_k_secs: topk_time.as_secs_f64(),
                top_k_search: search,
                skipped: false,
            }
        }
    }
}

/// Runs the Figure 6 experiment.
pub fn run(config: &Fig6Config) -> Fig6Result {
    let mut by_samples = Vec::new();
    let mut by_features = Vec::new();
    for &dataset in &config.datasets {
        // Sweep the number of samples at the default feature count.
        let workload = Workload::build(WorkloadConfig {
            dataset,
            rows: config.rows,
            features: config.default_features,
            max_package_size: config.max_package_size,
            preferences: config.preferences,
            seed: config.seed,
            ..WorkloadConfig::default()
        });
        for &samples in &config.sample_sweep {
            for (name, sampler) in samplers() {
                by_samples.push(measure_point(
                    &workload, name, &sampler, samples, config.k, samples,
                ));
            }
        }
        // Sweep the number of features at the default sample count.
        for &features in &config.feature_sweep {
            let workload = Workload::build(WorkloadConfig {
                dataset,
                rows: config.rows,
                features,
                max_package_size: config.max_package_size,
                preferences: config.preferences,
                seed: config.seed,
                ..WorkloadConfig::default()
            });
            for (name, sampler) in samplers() {
                if name == "IS" && features > config.importance_feature_limit {
                    by_features.push(OverallPoint {
                        dataset: dataset.name().to_string(),
                        sampler: name.to_string(),
                        x: features,
                        sample_generation_secs: 0.0,
                        top_k_secs: 0.0,
                        top_k_search: AggregatedSearchStats::default(),
                        skipped: true,
                    });
                    continue;
                }
                by_features.push(measure_point(
                    &workload,
                    name,
                    &sampler,
                    config.default_samples,
                    config.k,
                    features,
                ));
            }
        }
    }
    Fig6Result {
        by_samples,
        by_features,
    }
}

fn points_table(title: &str, x_name: &str, points: &[OverallPoint]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "dataset",
            "sampler",
            x_name,
            "sample generation (s)",
            "top-k packages (s)",
            "sorted accesses",
            "candidates",
            "early term",
            "skipped",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.dataset.clone(),
            p.sampler.clone(),
            p.x.to_string(),
            seconds(std::time::Duration::from_secs_f64(p.sample_generation_secs)),
            seconds(std::time::Duration::from_secs_f64(p.top_k_secs)),
            p.top_k_search.sorted_accesses.to_string(),
            p.top_k_search.candidates_created.to_string(),
            format!("{:.0}%", p.top_k_search.early_termination_rate() * 100.0),
            if p.skipped { "yes".into() } else { "no".into() },
        ]);
    }
    table
}

impl Fig6Result {
    /// Renders the two sweeps as tables.
    pub fn tables(&self) -> Vec<Table> {
        vec![
            points_table(
                "Figure 6(a)-(e): overall time, varying number of samples",
                "samples",
                &self.by_samples,
            ),
            points_table(
                "Figure 6(f)-(j): overall time, varying number of features",
                "features",
                &self.by_features,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Fig6Config {
        Fig6Config {
            datasets: vec![DatasetId::Uni],
            rows: 300,
            sample_sweep: vec![50],
            feature_sweep: vec![2, 6],
            default_samples: 50,
            default_features: 3,
            preferences: 3,
            k: 3,
            // The top-k phase explodes with φ at 6 features; the measured
            // φ-shrink keeps this fixture's single shared run fast.
            max_package_size: 3,
            ..Fig6Config::default()
        }
    }

    /// The tiny workload still takes minutes of sampling + search; run it once
    /// and let every test assert against the shared result.
    fn tiny_result() -> &'static Fig6Result {
        static RESULT: std::sync::OnceLock<Fig6Result> = std::sync::OnceLock::new();
        RESULT.get_or_init(|| run(&tiny_config()))
    }

    #[test]
    fn produces_points_for_every_sampler_and_sweep_value() {
        let result = tiny_result();
        // 1 dataset x 1 sample value x 3 samplers.
        assert_eq!(result.by_samples.len(), 3);
        // 1 dataset x 2 feature values x 3 samplers.
        assert_eq!(result.by_features.len(), 6);
        assert_eq!(result.tables().len(), 2);
    }

    #[test]
    fn importance_sampling_is_skipped_above_the_feature_limit() {
        let result = tiny_result();
        let is_high_dim = result
            .by_features
            .iter()
            .find(|p| p.sampler == "IS" && p.x == 6)
            .unwrap();
        assert!(is_high_dim.skipped);
        let is_low_dim = result
            .by_features
            .iter()
            .find(|p| p.sampler == "IS" && p.x == 2)
            .unwrap();
        assert!(!is_low_dim.skipped);
    }

    #[test]
    fn measured_times_are_non_negative_and_topk_runs_for_unskipped_points() {
        let result = tiny_result();
        for p in result.by_samples.iter().chain(&result.by_features) {
            assert!(p.sample_generation_secs >= 0.0);
            assert!(p.top_k_secs >= 0.0);
            if !p.skipped {
                assert!(p.top_k_secs > 0.0, "{p:?}");
                // One Top-k-Pkg run per pool sample, with live counters.
                assert_eq!(p.top_k_search.searches, 50, "{p:?}");
                assert!(p.top_k_search.sorted_accesses > 0, "{p:?}");
                assert!(p.top_k_search.candidates_created > 0, "{p:?}");
            }
        }
    }
}
