//! Figure 5 — efficiency of the transitive-reduction pruning strategy.
//!
//! The experiment measures the total time needed to check a pool of sampled
//! weight vectors against all received preference constraints, before and
//! after the preference DAG is transitively reduced (Section 3.3).  The paper
//! sweeps the number of features (3–7), the number of samples (1000–5000) and
//! the number of Gaussians in the prior (1–5) while the remaining parameters
//! stay at their defaults (10 000 preferences, 5000 packages, 1 Gaussian,
//! 5 features, 1000 samples) and reports ≥10% improvement throughout.
//!
//! Redundant preferences only exist if the feedback contains chains
//! (`a ≻ b ≻ c` plus `a ≻ c`), so the workload generates clicks over rounds of
//! presented packages exactly like the elicitation loop does: each click on a
//! package that also appears in a later round's comparisons produces the
//! transitive chains the reduction removes.

use pkgrec_core::constraints::ConstraintChecker;
use pkgrec_core::preferences::PreferenceStore;
use pkgrec_core::sampler::{RejectionSampler, WeightSampler};
use pkgrec_core::LinearUtility;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::report::{seconds, timed, Table};
use crate::workload::{random_package, Workload, WorkloadConfig};

/// Configuration of the Figure 5 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Config {
    /// Default number of preferences (paper: 10 000).
    pub preferences: usize,
    /// Default number of samples to check (paper: 1000).
    pub samples: usize,
    /// Default number of features (paper: 5).
    pub features: usize,
    /// Default number of Gaussians (paper: 1).
    pub gaussians: usize,
    /// Catalog size used to build packages (paper: 5000 packages).
    pub rows: usize,
    /// Feature counts swept in Figure 5(a).
    pub feature_sweep: Vec<usize>,
    /// Sample counts swept in Figure 5(b).
    pub sample_sweep: Vec<usize>,
    /// Gaussian counts swept in Figure 5(c).
    pub gaussian_sweep: Vec<usize>,
    /// Random seed.
    pub seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            preferences: 10_000,
            samples: 1_000,
            features: 5,
            gaussians: 1,
            rows: 5_000,
            feature_sweep: vec![3, 4, 5, 6, 7],
            sample_sweep: vec![1_000, 2_000, 3_000, 4_000, 5_000],
            gaussian_sweep: vec![1, 2, 3, 4, 5],
            seed: 5,
        }
    }
}

/// One measured point of the pruning experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruningPoint {
    /// The swept parameter's value (features, samples or Gaussians).
    pub x: usize,
    /// Constraints before transitive reduction.
    pub constraints_before: usize,
    /// Constraints after transitive reduction.
    pub constraints_after: usize,
    /// Checking time over all samples, before pruning (seconds).
    pub time_before: f64,
    /// Checking time over all samples, after pruning (seconds).
    pub time_after: f64,
}

impl PruningPoint {
    /// Relative improvement of the pruned checker (`1 - after/before`).
    pub fn improvement(&self) -> f64 {
        if self.time_before <= 0.0 {
            0.0
        } else {
            1.0 - self.time_after / self.time_before
        }
    }
}

/// Full result of the Figure 5 experiment: one series per swept parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Figure 5(a): varying the number of features.
    pub by_features: Vec<PruningPoint>,
    /// Figure 5(b): varying the number of samples.
    pub by_samples: Vec<PruningPoint>,
    /// Figure 5(c): varying the number of Gaussians in the prior.
    pub by_gaussians: Vec<PruningPoint>,
}

/// Builds a preference store containing transitive chains: packages are
/// compared in rounds, and each round's winner is also preferred to the
/// packages of the next round, creating redundant shortcut edges.
fn chained_preference_store(
    workload: &Workload,
    count: usize,
    rng: &mut impl Rng,
) -> PreferenceStore {
    let utility = LinearUtility::new(workload.context.clone(), workload.ground_truth.clone())
        .expect("ground truth matches the catalog");
    let mut store = PreferenceStore::new();
    let phi = workload.context.max_package_size();
    // Build a pool of candidate packages ranked by the ground-truth utility.
    let pool_size = (count / 2).clamp(16, 512);
    let mut pool: Vec<(pkgrec_core::Package, Vec<f64>, f64)> = Vec::with_capacity(pool_size);
    while pool.len() < pool_size {
        let p = random_package(workload.catalog.len(), phi, rng);
        if pool.iter().any(|(q, _, _)| *q == p) {
            continue;
        }
        let v = workload
            .context
            .package_vector(&workload.catalog, &p)
            .expect("random packages respect φ");
        let u = utility.of_vector(&v);
        pool.push((p, v, u));
    }
    pool.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    // Preferences: better-ranked pool entries over worse-ranked ones, drawn at
    // random; chains arise naturally and many of them are redundant.
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < count && guard < count * 20 {
        guard += 1;
        let i = rng.gen_range(0..pool.len());
        let j = rng.gen_range(0..pool.len());
        if i == j {
            continue;
        }
        let (hi, lo) = if pool[i].2 > pool[j].2 {
            (i, j)
        } else {
            (j, i)
        };
        if pool[hi].2 <= pool[lo].2 {
            continue;
        }
        match store.add(pool[hi].0.key(), &pool[hi].1, pool[lo].0.key(), &pool[lo].1) {
            Ok(true) => added += 1,
            _ => continue,
        }
    }
    store
}

fn measure(workload: &Workload, store: &PreferenceStore, samples: usize, x: usize) -> PruningPoint {
    let dim = workload.catalog.num_features();
    // The samples to check are drawn from the unconstrained prior: the cost
    // being measured is the validity check itself.
    let sampler = RejectionSampler::default();
    let empty =
        ConstraintChecker::from_constraints(dim, vec![], pkgrec_core::ConstraintSource::Full);
    let mut rng = workload.rng(7);
    let pool = sampler
        .generate(&workload.prior, &empty, samples, &mut rng)
        .expect("unconstrained sampling cannot fail")
        .pool;

    let full = ConstraintChecker::full(store, dim);
    let reduced = ConstraintChecker::reduced(store, dim);
    let (_, time_before) = timed(|| pool.samples().filter(|s| full.is_valid(s.weights)).count());
    let (_, time_after) = timed(|| {
        pool.samples()
            .filter(|s| reduced.is_valid(s.weights))
            .count()
    });
    PruningPoint {
        x,
        constraints_before: full.len(),
        constraints_after: reduced.len(),
        time_before: time_before.as_secs_f64(),
        time_after: time_after.as_secs_f64(),
    }
}

/// Runs the Figure 5 experiment.
pub fn run(config: &Fig5Config) -> Fig5Result {
    let base = |features: usize, gaussians: usize| WorkloadConfig {
        rows: config.rows,
        features,
        gaussians,
        preferences: 0, // preferences are generated by chained_preference_store
        seed: config.seed,
        ..WorkloadConfig::default()
    };

    let mut by_features = Vec::new();
    for &features in &config.feature_sweep {
        let workload = Workload::build(base(features, config.gaussians));
        let mut rng = workload.rng(11);
        let store = chained_preference_store(&workload, config.preferences, &mut rng);
        by_features.push(measure(&workload, &store, config.samples, features));
    }

    let workload = Workload::build(base(config.features, config.gaussians));
    let mut rng = workload.rng(12);
    let store = chained_preference_store(&workload, config.preferences, &mut rng);
    let mut by_samples = Vec::new();
    for &samples in &config.sample_sweep {
        by_samples.push(measure(&workload, &store, samples, samples));
    }

    let mut by_gaussians = Vec::new();
    for &gaussians in &config.gaussian_sweep {
        let workload = Workload::build(base(config.features, gaussians));
        let mut rng = workload.rng(13);
        let store = chained_preference_store(&workload, config.preferences, &mut rng);
        by_gaussians.push(measure(&workload, &store, config.samples, gaussians));
    }

    Fig5Result {
        by_features,
        by_samples,
        by_gaussians,
    }
}

fn series_table(title: &str, x_name: &str, points: &[PruningPoint]) -> Table {
    let mut table = Table::new(
        title,
        &[
            x_name,
            "constraints before",
            "constraints after",
            "time before (s)",
            "time after (s)",
            "improvement",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.x.to_string(),
            p.constraints_before.to_string(),
            p.constraints_after.to_string(),
            seconds(std::time::Duration::from_secs_f64(p.time_before)),
            seconds(std::time::Duration::from_secs_f64(p.time_after)),
            format!("{:.1}%", p.improvement() * 100.0),
        ]);
    }
    table
}

impl Fig5Result {
    /// Renders the three sub-figures as tables.
    pub fn tables(&self) -> Vec<Table> {
        vec![
            series_table(
                "Figure 5(a): varying number of features",
                "features",
                &self.by_features,
            ),
            series_table(
                "Figure 5(b): varying number of samples",
                "samples",
                &self.by_samples,
            ),
            series_table(
                "Figure 5(c): varying number of Gaussians",
                "gaussians",
                &self.by_gaussians,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Fig5Config {
        Fig5Config {
            preferences: 200,
            samples: 100,
            rows: 100,
            feature_sweep: vec![3, 4],
            sample_sweep: vec![50, 100],
            gaussian_sweep: vec![1, 2],
            ..Fig5Config::default()
        }
    }

    #[test]
    fn produces_all_three_series() {
        let result = run(&tiny_config());
        assert_eq!(result.by_features.len(), 2);
        assert_eq!(result.by_samples.len(), 2);
        assert_eq!(result.by_gaussians.len(), 2);
        assert_eq!(result.tables().len(), 3);
    }

    #[test]
    fn transitive_reduction_removes_constraints() {
        let result = run(&tiny_config());
        for p in result
            .by_features
            .iter()
            .chain(&result.by_samples)
            .chain(&result.by_gaussians)
        {
            assert!(p.constraints_after <= p.constraints_before);
            assert!(p.constraints_before > 0);
        }
        // At least one point should show a genuine reduction (the chained
        // click workload always contains redundant shortcut edges).
        assert!(result
            .by_features
            .iter()
            .any(|p| p.constraints_after < p.constraints_before));
    }

    #[test]
    fn improvement_is_computed_from_times() {
        let p = PruningPoint {
            x: 5,
            constraints_before: 100,
            constraints_after: 60,
            time_before: 2.0,
            time_after: 1.5,
        };
        assert!((p.improvement() - 0.25).abs() < 1e-12);
        let degenerate = PruningPoint {
            time_before: 0.0,
            ..p
        };
        assert_eq!(degenerate.improvement(), 0.0);
    }
}
