//! Figure 4 — behaviour of the three sampling methods.
//!
//! The paper's Figure 4 is a scatter plot of 100 valid two-dimensional weight
//! samples (plus the rejected proposals) under rejection, importance and
//! MCMC-based sampling, given 5000 packages and 2 random preferences.  The
//! harness reproduces the quantitative content of that figure: for each
//! sampler the number of proposals needed for 100 valid samples, the
//! acceptance rate and the effective sample size, plus the raw accepted points
//! so a plot can be regenerated from the JSON output.

use pkgrec_core::sampler::{
    ImportanceSampler, McmcSampler, RejectionSampler, SamplerKind, WeightSampler,
};
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::workload::{Workload, WorkloadConfig};

/// Configuration of the Figure 4 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Config {
    /// Number of valid samples to draw (the paper plots 100).
    pub samples: usize,
    /// Number of random preferences constraining the region (the paper uses 2).
    pub preferences: usize,
    /// Number of items in the catalog used to form the candidate packages.
    pub rows: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            samples: 100,
            preferences: 2,
            rows: 2_000,
            seed: 4,
        }
    }
}

/// Per-sampler measurements for Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplerBehaviour {
    /// Sampler short name (RS / IS / MS).
    pub sampler: String,
    /// Proposals generated to obtain the requested valid samples.
    pub proposals: usize,
    /// Proposals rejected.
    pub rejected: usize,
    /// Acceptance rate.
    pub acceptance_rate: f64,
    /// Effective sample size of the accepted pool.
    pub effective_sample_size: f64,
    /// The accepted two-dimensional sample points (for re-plotting).
    pub accepted: Vec<Vec<f64>>,
}

/// Full result of the Figure 4 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// One entry per sampling strategy.
    pub samplers: Vec<SamplerBehaviour>,
}

/// Runs the Figure 4 experiment.
pub fn run(config: &Fig4Config) -> Fig4Result {
    let workload = Workload::build(WorkloadConfig {
        rows: config.rows,
        features: 2,
        preferences: config.preferences,
        seed: config.seed,
        ..WorkloadConfig::default()
    });
    let checker = workload.checker();
    let samplers: Vec<(String, SamplerKind)> = vec![
        (
            "RS".into(),
            SamplerKind::Rejection(RejectionSampler::default()),
        ),
        (
            "IS".into(),
            SamplerKind::Importance(ImportanceSampler::default()),
        ),
        ("MS".into(), SamplerKind::Mcmc(McmcSampler::default())),
    ];
    let mut out = Vec::new();
    for (name, sampler) in samplers {
        let mut rng = workload.rng(1);
        let outcome = sampler
            .generate(&workload.prior, &checker, config.samples, &mut rng)
            .expect("figure-4 workloads always admit valid samples");
        out.push(SamplerBehaviour {
            sampler: name,
            proposals: outcome.proposals,
            rejected: outcome.rejected,
            acceptance_rate: outcome.acceptance_rate(),
            effective_sample_size: outcome.pool.effective_sample_size(),
            accepted: outcome.pool.weight_rows(),
        });
    }
    Fig4Result { samplers: out }
}

impl Fig4Result {
    /// Renders the result as the table recorded in EXPERIMENTS.md.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Figure 4: sampling-method behaviour (100 valid 2-d samples, 2 preferences)",
            &[
                "sampler",
                "proposals",
                "rejected",
                "acceptance rate",
                "effective sample size",
            ],
        );
        for s in &self.samplers {
            table.push_row(vec![
                s.sampler.clone(),
                s.proposals.to_string(),
                s.rejected.to_string(),
                format!("{:.3}", s.acceptance_rate),
                format!("{:.1}", s.effective_sample_size),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Fig4Config {
        Fig4Config {
            samples: 50,
            rows: 200,
            ..Fig4Config::default()
        }
    }

    #[test]
    fn produces_one_entry_per_sampler_with_requested_samples() {
        let result = run(&small_config());
        assert_eq!(result.samplers.len(), 3);
        for s in &result.samplers {
            assert_eq!(s.accepted.len(), 50, "{}", s.sampler);
            assert!(s.proposals >= 50);
            assert!(s.acceptance_rate > 0.0 && s.acceptance_rate <= 1.0);
        }
    }

    #[test]
    fn importance_sampling_wastes_fewer_proposals_than_rejection() {
        let result = run(&Fig4Config {
            samples: 100,
            preferences: 3,
            rows: 300,
            seed: 11,
        });
        let by_name = |n: &str| result.samplers.iter().find(|s| s.sampler == n).unwrap();
        let rs = by_name("RS");
        let is = by_name("IS");
        let ms = by_name("MS");
        // The region-centred proposal of importance sampling lands inside the
        // valid region far more often than proposals from the prior do —
        // Figure 4(b) vs Figure 4(a).
        assert!(
            is.acceptance_rate >= rs.acceptance_rate,
            "IS {} vs RS {}",
            is.acceptance_rate,
            rs.acceptance_rate
        );
        // Every MCMC sample is valid by construction; the chain's samples are
        // unweighted so its effective sample size equals the pool size
        // (Figure 4(c) has no wasted accepted samples).
        assert!((ms.effective_sample_size - 100.0).abs() < 1e-9);
    }

    #[test]
    fn table_has_a_row_per_sampler() {
        let result = run(&small_config());
        let table = result.table();
        assert_eq!(table.rows.len(), 3);
        assert!(table.to_markdown().contains("RS"));
    }
}
