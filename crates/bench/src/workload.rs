//! Workload builders shared by all experiments.
//!
//! The paper's experiments combine
//!
//! * a dataset (UNI / PWR / COR / ANT synthetic families or the NBA catalog),
//! * an aggregation profile over its features,
//! * a hidden ground-truth weight vector used to orient preferences,
//! * a set of pairwise package preferences consistent with that ground truth
//!   (so the feedback region is never empty), and
//! * a Gaussian-mixture prior over weight vectors.
//!
//! [`Workload`] bundles those pieces and every experiment module builds its
//! variations through [`WorkloadConfig`].

use pkgrec_core::constraints::{ConstraintChecker, ConstraintSource};
use pkgrec_core::preferences::Preference;
use pkgrec_core::profile::{AggregateFn, AggregationContext, Profile};
use pkgrec_core::{Catalog, LinearUtility, Package};
use pkgrec_data::{synthetic_nba, Dataset, SyntheticFamily};
use pkgrec_gmm::GaussianMixture;
use pkgrec_topk::SortedLists;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// The datasets of Section 5: four synthetic families plus the NBA catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// Independent uniform features.
    Uni,
    /// Independent power-law features (α = 2.5).
    Pwr,
    /// Correlated features.
    Cor,
    /// Anti-correlated features.
    Ant,
    /// Synthetic NBA career statistics (3705 × 10).
    Nba,
}

impl DatasetId {
    /// All five datasets in the order the paper's figures present them.
    pub fn all() -> [DatasetId; 5] {
        [
            DatasetId::Uni,
            DatasetId::Pwr,
            DatasetId::Cor,
            DatasetId::Ant,
            DatasetId::Nba,
        ]
    }

    /// The dataset's short name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Uni => "UNI",
            DatasetId::Pwr => "PWR",
            DatasetId::Cor => "COR",
            DatasetId::Ant => "ANT",
            DatasetId::Nba => "NBA",
        }
    }
}

/// Generates the raw dataset for a [`DatasetId`].
///
/// `rows` is ignored for NBA (which always has 3705 rows, like the original);
/// synthetic datasets are generated with 10 features and trimmed later.
pub fn build_dataset(id: DatasetId, rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    match id {
        DatasetId::Uni => SyntheticFamily::Uniform
            .generate(rows, 10, &mut rng)
            .expect("valid shape"),
        DatasetId::Pwr => SyntheticFamily::PowerLaw
            .generate(rows, 10, &mut rng)
            .expect("valid shape"),
        DatasetId::Cor => SyntheticFamily::Correlated
            .generate(rows, 10, &mut rng)
            .expect("valid shape"),
        DatasetId::Ant => SyntheticFamily::AntiCorrelated
            .generate(rows, 10, &mut rng)
            .expect("valid shape"),
        DatasetId::Nba => synthetic_nba(&mut rng).expect("valid shape"),
    }
}

/// Converts a dataset (restricted to its first `features` columns) into a
/// normalised item catalog.
pub fn dataset_catalog(dataset: &Dataset, features: usize) -> Catalog {
    let projected = dataset
        .project_features(features.min(dataset.num_features()))
        .expect("at least one feature requested");
    let normalized = projected.normalized();
    Catalog::from_rows(normalized.rows().to_vec()).expect("datasets are non-empty")
}

/// Configuration of a benchmark workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Which dataset to use.
    pub dataset: DatasetId,
    /// Number of rows for synthetic datasets.
    pub rows: usize,
    /// Number of features (2–10).
    pub features: usize,
    /// Maximum package size φ.
    pub max_package_size: usize,
    /// Number of pairwise preferences to generate.
    pub preferences: usize,
    /// Number of Gaussians in the prior mixture.
    pub gaussians: usize,
    /// Standard deviation of each prior component.
    pub prior_sigma: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            dataset: DatasetId::Uni,
            rows: 10_000,
            features: 5,
            max_package_size: 5,
            preferences: 10,
            gaussians: 1,
            prior_sigma: 0.5,
            seed: 20140901,
        }
    }
}

/// A fully materialised experiment workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The configuration it was built from.
    pub config: WorkloadConfig,
    /// The normalised item catalog.
    pub catalog: Catalog,
    /// The aggregation context (profile + normalisers + φ).
    pub context: AggregationContext,
    /// The hidden ground-truth weight vector.
    pub ground_truth: Vec<f64>,
    /// Pairwise package preferences consistent with the ground truth.
    pub preferences: Vec<Preference>,
    /// The Gaussian-mixture prior over weight vectors.
    pub prior: GaussianMixture,
    /// Catalog-cached per-feature sorted lists: the weight-independent index
    /// every `Top-k-Pkg` run over this workload shares (built once here, like
    /// the engine caches its own copy).
    pub sorted_lists: SortedLists,
}

/// The profile the experiments use: alternating `sum` / `avg` aggregates, the
/// two aggregation styles the paper's examples rely on.
pub fn experiment_profile(features: usize) -> Profile {
    Profile::new(
        (0..features)
            .map(|j| {
                if j % 2 == 0 {
                    AggregateFn::Sum
                } else {
                    AggregateFn::Avg
                }
            })
            .collect(),
    )
}

/// Generates `count` pairwise preferences between random packages, oriented by
/// the ground-truth utility so that the induced constraint region is never
/// empty (the ground truth itself always satisfies them).
pub fn consistent_preferences(
    context: &AggregationContext,
    catalog: &Catalog,
    ground_truth: &[f64],
    count: usize,
    rng: &mut dyn RngCore,
) -> Vec<Preference> {
    let utility = LinearUtility::new(context.clone(), ground_truth.to_vec())
        .expect("ground truth has the catalog dimensionality");
    let phi = context.max_package_size().min(catalog.len());
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let a = random_package(catalog.len(), phi, rng);
        let b = random_package(catalog.len(), phi, rng);
        if a == b {
            continue;
        }
        let va = context.package_vector(catalog, &a).expect("package fits φ");
        let vb = context.package_vector(catalog, &b).expect("package fits φ");
        let ua = utility.of_vector(&va);
        let ub = utility.of_vector(&vb);
        if (ua - ub).abs() < 1e-12 {
            continue;
        }
        let (better, worse) = if ua > ub { (va, vb) } else { (vb, va) };
        out.push(Preference::new(better, worse));
    }
    out
}

/// Draws a uniformly random package of size `1..=phi`.
pub fn random_package(n: usize, phi: usize, rng: &mut dyn RngCore) -> Package {
    pkgrec_core::package::random_package(n, phi, rng)
}

impl Workload {
    /// Builds the workload described by `config`.
    pub fn build(config: WorkloadConfig) -> Workload {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let dataset = build_dataset(config.dataset, config.rows, config.seed);
        let catalog = dataset_catalog(&dataset, config.features);
        let profile = experiment_profile(catalog.num_features());
        let context = AggregationContext::new(profile, &catalog, config.max_package_size)
            .expect("profile matches catalog");
        let ground_truth: Vec<f64> = (0..catalog.num_features())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let preferences = consistent_preferences(
            &context,
            &catalog,
            &ground_truth,
            config.preferences,
            &mut rng,
        );
        let prior = GaussianMixture::default_prior(
            catalog.num_features(),
            config.gaussians.max(1),
            config.prior_sigma,
        )
        .expect("valid prior configuration");
        let sorted_lists = SortedLists::new(catalog.rows());
        Workload {
            config,
            catalog,
            context,
            ground_truth,
            preferences,
            prior,
            sorted_lists,
        }
    }

    /// A constraint checker over the full preference set.
    pub fn checker(&self) -> ConstraintChecker {
        ConstraintChecker::from_constraints(
            self.catalog.num_features(),
            self.preferences
                .iter()
                .map(Preference::constraint)
                .collect(),
            ConstraintSource::Full,
        )
    }

    /// A seeded RNG derived from the workload seed (offset so different call
    /// sites do not reuse the generation stream).
    pub fn rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add(0x9E3779B9)
                .wrapping_add(stream),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_names_and_order() {
        assert_eq!(DatasetId::all().len(), 5);
        assert_eq!(DatasetId::Uni.name(), "UNI");
        assert_eq!(DatasetId::Nba.name(), "NBA");
    }

    #[test]
    fn build_dataset_shapes() {
        let uni = build_dataset(DatasetId::Uni, 200, 1);
        assert_eq!(uni.len(), 200);
        assert_eq!(uni.num_features(), 10);
        let nba = build_dataset(DatasetId::Nba, 42, 1);
        assert_eq!(nba.len(), 3705);
    }

    #[test]
    fn catalog_projection_and_normalisation() {
        let d = build_dataset(DatasetId::Cor, 100, 2);
        let catalog = dataset_catalog(&d, 4);
        assert_eq!(catalog.num_features(), 4);
        assert_eq!(catalog.len(), 100);
        for max in catalog.feature_maxima() {
            assert!(max <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn consistent_preferences_are_satisfied_by_the_ground_truth() {
        let workload = Workload::build(WorkloadConfig {
            rows: 200,
            features: 4,
            preferences: 50,
            ..WorkloadConfig::default()
        });
        assert_eq!(workload.preferences.len(), 50);
        for p in &workload.preferences {
            assert!(
                p.satisfied_by(&workload.ground_truth),
                "ground truth violates a generated preference"
            );
        }
        let checker = workload.checker();
        assert!(checker.is_valid(&workload.ground_truth));
    }

    #[test]
    fn experiment_profile_alternates_sum_and_avg() {
        let p = experiment_profile(4);
        assert_eq!(p.aggregate(0), AggregateFn::Sum);
        assert_eq!(p.aggregate(1), AggregateFn::Avg);
        assert_eq!(p.aggregate(2), AggregateFn::Sum);
        assert_eq!(p.aggregate(3), AggregateFn::Avg);
    }

    #[test]
    fn random_packages_have_valid_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = random_package(20, 4, &mut rng);
            assert!(!p.is_empty() && p.len() <= 4);
        }
    }

    #[test]
    fn workload_is_reproducible() {
        let a = Workload::build(WorkloadConfig {
            rows: 100,
            features: 3,
            preferences: 5,
            ..WorkloadConfig::default()
        });
        let b = Workload::build(WorkloadConfig {
            rows: 100,
            features: 3,
            preferences: 5,
            ..WorkloadConfig::default()
        });
        assert_eq!(a.ground_truth, b.ground_truth);
        assert_eq!(a.preferences.len(), b.preferences.len());
        assert_eq!(a.catalog.rows(), b.catalog.rows());
    }
}
