//! Figure 7 — cost of the sample-maintenance strategies.
//!
//! Figure 7(a) buckets maintenance cost by the number of samples a new
//! preference invalidates (0, 1, 5, 20, 50, 200, 1000) and compares naive
//! scanning, the TA-based scan and the hybrid of Algorithm 1 over a pool of
//! 10 000 previously generated samples.  Figure 7(b) sweeps the hybrid's
//! fallback parameter γ ∈ {0, 0.025, 0.05, 0.075, 0.1} and reports each
//! strategy's cost as a ratio of the naive cost.

use pkgrec_core::maintenance::{find_violating, index_pool, MaintenanceStrategy};
use pkgrec_core::preferences::Preference;
use pkgrec_core::sampler::{SamplePool, WeightSample};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::report::{timed, Table};
use crate::workload::{Workload, WorkloadConfig};

/// Configuration of the Figure 7 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Config {
    /// Number of samples in the maintained pool (paper: 10 000).
    pub pool_size: usize,
    /// Number of random preferences evaluated (paper: 1000).
    pub preferences: usize,
    /// Number of features.
    pub features: usize,
    /// Bucket upper bounds on the number of violating samples (paper buckets).
    pub buckets: Vec<usize>,
    /// γ values swept in Figure 7(b).
    pub gammas: Vec<f64>,
    /// γ used for the hybrid strategy in Figure 7(a).
    pub default_gamma: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            pool_size: 10_000,
            preferences: 1_000,
            features: 5,
            buckets: vec![0, 1, 5, 20, 50, 200, 1_000],
            gammas: vec![0.0, 0.025, 0.05, 0.075, 0.1],
            default_gamma: 0.025,
            seed: 7,
        }
    }
}

/// Aggregate cost of the three strategies within one violation bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketCost {
    /// Upper bound of the bucket (maximum number of violating samples).
    pub max_violations: usize,
    /// Number of preferences that fell into this bucket.
    pub count: usize,
    /// Mean naive-scan time in seconds.
    pub naive_secs: f64,
    /// Mean TA-scan time in seconds.
    pub topk_secs: f64,
    /// Mean hybrid-scan time in seconds.
    pub hybrid_secs: f64,
}

/// Cost ratios of the TA and hybrid strategies relative to the naive scan for
/// one γ value (Figure 7(b)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GammaRatio {
    /// The γ value.
    pub gamma: f64,
    /// `topk_cost / naive_cost` over the whole preference set.
    pub topk_ratio: f64,
    /// `hybrid_cost / naive_cost` over the whole preference set.
    pub hybrid_ratio: f64,
}

/// Full result of the Figure 7 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Figure 7(a): per-bucket mean costs.
    pub buckets: Vec<BucketCost>,
    /// Figure 7(b): cost ratios as γ varies.
    pub gamma_sweep: Vec<GammaRatio>,
}

/// Builds the sample pool and the random preference stream of the experiment.
fn build_pool_and_preferences(config: &Fig7Config) -> (SamplePool, Vec<Preference>, Workload) {
    let workload = Workload::build(WorkloadConfig {
        rows: 2_000,
        features: config.features,
        preferences: 0,
        seed: config.seed,
        ..WorkloadConfig::default()
    });
    // The maintained pool: samples from the unconstrained prior, as after an
    // initial sampling round.
    let mut rng = workload.rng(3);
    let samples: Vec<WeightSample> = (0..config.pool_size)
        .map(|_| {
            WeightSample::unweighted(
                (0..config.features)
                    .map(|_| rng.gen_range(-1.0f64..1.0))
                    .collect(),
            )
        })
        .collect();
    let pool = SamplePool::from_samples(samples);
    // Random package preferences; their violation counts vary wildly, which is
    // exactly what populates the different buckets.
    let preferences = crate::workload::consistent_preferences(
        &workload.context,
        &workload.catalog,
        &workload.ground_truth,
        config.preferences,
        &mut rng,
    );
    (pool, preferences, workload)
}

/// Runs the Figure 7 experiment.
pub fn run(config: &Fig7Config) -> Fig7Result {
    let (pool, preferences, _workload) = build_pool_and_preferences(config);
    let index = index_pool(&pool);

    // Figure 7(a): bucket by the number of violating samples.
    let mut bucket_acc: Vec<(usize, f64, f64, f64)> =
        config.buckets.iter().map(|&b| (b, 0.0, 0.0, 0.0)).collect();
    let mut bucket_counts = vec![0usize; config.buckets.len()];
    let mut total_naive = 0.0;
    let mut total_topk = 0.0;
    let mut gamma_totals: Vec<f64> = vec![0.0; config.gammas.len()];

    for pref in &preferences {
        let (naive_out, naive_t) =
            timed(|| find_violating(&pool, None, pref, MaintenanceStrategy::Naive));
        let (_, topk_t) =
            timed(|| find_violating(&pool, Some(&index), pref, MaintenanceStrategy::TopK));
        let (_, hybrid_t) = timed(|| {
            find_violating(
                &pool,
                Some(&index),
                pref,
                MaintenanceStrategy::Hybrid {
                    gamma: config.default_gamma,
                },
            )
        });
        for (gi, &gamma) in config.gammas.iter().enumerate() {
            let (_, t) = timed(|| {
                find_violating(
                    &pool,
                    Some(&index),
                    pref,
                    MaintenanceStrategy::Hybrid { gamma },
                )
            });
            gamma_totals[gi] += t.as_secs_f64();
        }
        total_naive += naive_t.as_secs_f64();
        total_topk += topk_t.as_secs_f64();

        let violations = naive_out.violating.len();
        // Results go into "the bucket with the smallest qualifying label".
        let bucket = config
            .buckets
            .iter()
            .position(|&b| violations <= b)
            .unwrap_or(config.buckets.len() - 1);
        bucket_counts[bucket] += 1;
        bucket_acc[bucket].1 += naive_t.as_secs_f64();
        bucket_acc[bucket].2 += topk_t.as_secs_f64();
        bucket_acc[bucket].3 += hybrid_t.as_secs_f64();
    }

    let buckets = bucket_acc
        .into_iter()
        .zip(bucket_counts.iter())
        .map(|((max_violations, naive, topk, hybrid), &count)| {
            let d = count.max(1) as f64;
            BucketCost {
                max_violations,
                count,
                naive_secs: naive / d,
                topk_secs: topk / d,
                hybrid_secs: hybrid / d,
            }
        })
        .collect();

    let gamma_sweep = config
        .gammas
        .iter()
        .zip(gamma_totals.iter())
        .map(|(&gamma, &hybrid_total)| GammaRatio {
            gamma,
            topk_ratio: if total_naive > 0.0 {
                total_topk / total_naive
            } else {
                0.0
            },
            hybrid_ratio: if total_naive > 0.0 {
                hybrid_total / total_naive
            } else {
                0.0
            },
        })
        .collect();

    Fig7Result {
        buckets,
        gamma_sweep,
    }
}

impl Fig7Result {
    /// Renders the two sub-figures as tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut a = Table::new(
            "Figure 7(a): maintenance cost by number of violating samples",
            &[
                "max violations",
                "preferences",
                "naive (s)",
                "top-k (s)",
                "hybrid (s)",
            ],
        );
        for b in &self.buckets {
            a.push_row(vec![
                b.max_violations.to_string(),
                b.count.to_string(),
                format!("{:.6}", b.naive_secs),
                format!("{:.6}", b.topk_secs),
                format!("{:.6}", b.hybrid_secs),
            ]);
        }
        let mut b = Table::new(
            "Figure 7(b): cost ratio versus naive checking as γ varies",
            &["γ", "top-k / naive", "hybrid / naive"],
        );
        for g in &self.gamma_sweep {
            b.push_row(vec![
                format!("{}", g.gamma),
                format!("{:.3}", g.topk_ratio),
                format!("{:.3}", g.hybrid_ratio),
            ]);
        }
        vec![a, b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Fig7Config {
        Fig7Config {
            pool_size: 500,
            preferences: 40,
            features: 3,
            gammas: vec![0.0, 0.05],
            ..Fig7Config::default()
        }
    }

    #[test]
    fn buckets_cover_every_preference() {
        let result = run(&tiny_config());
        let total: usize = result.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 40);
        assert_eq!(result.gamma_sweep.len(), 2);
        assert_eq!(result.tables().len(), 2);
    }

    #[test]
    fn costs_are_non_negative_and_ratios_positive() {
        let result = run(&tiny_config());
        for b in &result.buckets {
            assert!(b.naive_secs >= 0.0 && b.topk_secs >= 0.0 && b.hybrid_secs >= 0.0);
        }
        for g in &result.gamma_sweep {
            assert!(g.topk_ratio > 0.0);
            assert!(g.hybrid_ratio > 0.0);
        }
    }

    #[test]
    fn strategies_agree_on_the_violating_sets() {
        // Not a timing property: re-check that the three strategies find the
        // same violators on this workload (correctness backing for the cost
        // comparison).
        let config = tiny_config();
        let (pool, preferences, _) = build_pool_and_preferences(&config);
        let index = index_pool(&pool);
        for pref in preferences.iter().take(10) {
            let naive = find_violating(&pool, None, pref, MaintenanceStrategy::Naive);
            let topk = find_violating(&pool, Some(&index), pref, MaintenanceStrategy::TopK);
            let hybrid = find_violating(
                &pool,
                Some(&index),
                pref,
                MaintenanceStrategy::Hybrid { gamma: 0.025 },
            );
            assert_eq!(naive.violating, topk.violating);
            assert_eq!(naive.violating, hybrid.violating);
        }
    }
}
