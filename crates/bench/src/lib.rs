//! Experiment harness reproducing the evaluation section (Section 5) of
//! *Generating Top-k Packages via Preference Elicitation*.
//!
//! Each experiment of the paper has a module here that generates the workload,
//! runs the relevant algorithms and returns the measured series in a
//! table-friendly form:
//!
//! | module | paper artefact |
//! |---|---|
//! | [`fig4`] | Figure 4 — behaviour of the three sampling methods (accept/reject counts, ENS) |
//! | [`fig5`] | Figure 5 — constraint-checking time before/after transitive-reduction pruning |
//! | [`fig6`] | Figure 6 — overall time: sample generation vs top-k package search across datasets |
//! | [`fig7`] | Figure 7 — sample-maintenance strategies (naive / top-k / hybrid, γ sweep) |
//! | [`fig8`] | Figure 8 — elicitation effectiveness (clicks to convergence vs #features) |
//! | [`quality`] | Section 5.4 — agreement of top-5 lists across samplers and semantics |
//! | [`serving`] | beyond the paper — fleet throughput of the sharded session store (`pkgrec-serve`) |
//!
//! The `experiments` binary runs them end to end and prints the tables
//! recorded in `EXPERIMENTS.md`; the Criterion benches reuse the same workload
//! builders for statistically sound timing of the inner loops.
//!
//! The experiments keep the paper's parameter *structure* (numbers of samples,
//! features, Gaussians, γ values, datasets) but default to moderately smaller
//! workload sizes so the whole suite completes in minutes on a laptop; every
//! size is configurable from the binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod quality;
pub mod report;
pub mod serving;
pub mod workload;

pub use report::Table;
pub use workload::{
    build_dataset, consistent_preferences, dataset_catalog, DatasetId, Workload, WorkloadConfig,
};
