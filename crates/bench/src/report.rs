//! Minimal tabular reporting for experiment output.

use serde::{Deserialize, Serialize};

/// A simple named table: a header row plus data rows, printable as GitHub
/// markdown so experiment output can be pasted into `EXPERIMENTS.md` verbatim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Figure 5(a): varying number of features"`).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count must match the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match the table header"
        );
        self.rows.push(cells);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

/// The machine/build context a benchmark artifact was produced under.
///
/// Every `BENCH_*.json` embeds one of these so a number can be read next to
/// the hardware that produced it — a throughput figure from a 2-core CI
/// runner and one from a 32-core workstation are not comparable, and the
/// header makes the difference visible instead of silent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEnvironment {
    /// `std::thread::available_parallelism()` at measurement time (1 when
    /// the query fails).
    pub available_parallelism: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// `"release"` or `"debug"` — debug numbers are never comparable.
    pub build_profile: String,
}

/// Captures the current [`BenchEnvironment`].
pub fn bench_environment() -> BenchEnvironment {
    BenchEnvironment {
        available_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        os: std::env::consts::OS.to_string(),
        arch: std::env::consts::ARCH.to_string(),
        build_profile: if cfg!(debug_assertions) {
            "debug".to_string()
        } else {
            "release".to_string()
        },
    }
}

/// Formats a duration in seconds with three significant decimals, matching the
/// paper's "overall processing time (s)" axes.
pub fn seconds(duration: std::time::Duration) -> String {
    format!("{:.4}", duration.as_secs_f64())
}

/// Times a closure, returning its result and the wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let start = std::time::Instant::now();
    let value = f();
    (value, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_includes_title_header_and_rows() {
        let mut t = Table::new("Example", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["3".into(), "4".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Example"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 3 | 4 |"));
        assert_eq!(format!("{t}"), md);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("Example", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn environment_header_is_well_formed() {
        let env = bench_environment();
        assert!(env.available_parallelism >= 1);
        assert!(!env.os.is_empty());
        assert!(!env.arch.is_empty());
        assert!(env.build_profile == "release" || env.build_profile == "debug");
        let json = serde_json::to_string(&env).unwrap();
        let back: BenchEnvironment = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn timing_helpers() {
        let (value, duration) = timed(|| 21 * 2);
        assert_eq!(value, 42);
        let rendered = seconds(duration);
        assert!(rendered.parse::<f64>().unwrap() >= 0.0);
    }
}
