//! `fig_pkgsearch` — the package-search fast path, old vs new.
//!
//! Races the clone-based pre-arena `Top-k-Pkg` (`top_k_packages_reference`:
//! per-call sorted lists, cloned candidates, state-cloning bounds, dedup map)
//! against the optimised path (`top_k_packages_with_lists`: catalog-cached
//! sorted lists, arena candidates with parent-pointer chains, incremental
//! τ-scalar bounds) over a features × φ sweep, checking along the way that
//! both paths return identical packages and utilities.
//!
//! Outside `-- --test` smoke mode the measured means are also written to
//! `BENCH_pkgsearch.json` at the repository root, so the recorded numbers can
//! be refreshed by simply re-running the bench.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pkgrec_bench::report::{bench_environment, BenchEnvironment};
use pkgrec_bench::workload::{DatasetId, Workload, WorkloadConfig};
use pkgrec_core::{
    top_k_packages_reference, top_k_packages_with_lists, LinearUtility, SearchResult,
};
use serde::Serialize;

/// `(features, φ)` sweep: the last configurations are the multi-feature,
/// φ ≥ 4 regime the optimisation targets.
const SWEEP: &[(usize, usize)] = &[(2, 3), (3, 4), (4, 4), (4, 5)];

const ROWS: usize = 1_200;
const K: usize = 5;

/// One measured sweep point, serialised into `BENCH_pkgsearch.json`.
#[derive(Debug, Serialize)]
struct SweepRecord {
    features: usize,
    phi: usize,
    reference_ns_per_search: u64,
    arena_ns_per_search: u64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchRecord {
    bench: &'static str,
    environment: BenchEnvironment,
    dataset: &'static str,
    rows: usize,
    k: usize,
    weight_vectors_per_point: usize,
    iterations_per_path: u32,
    configs: Vec<SweepRecord>,
}

/// Weight vectors exercised per sweep point: the workload's hidden ground
/// truth plus deterministic uniform draws (mixing set-monotone and
/// non-monotone sign patterns).
fn weight_vectors(workload: &Workload) -> Vec<Vec<f64>> {
    use rand::Rng;
    let mut rng = workload.rng(42);
    let dim = workload.catalog.num_features();
    let mut vectors = vec![workload.ground_truth.clone()];
    for _ in 0..2 {
        vectors.push((0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect());
    }
    vectors
}

/// Mean wall-clock per search of `f` over `iters` passes of all utilities.
fn measure<F: FnMut(&LinearUtility) -> SearchResult>(
    utilities: &[LinearUtility],
    iters: u32,
    mut f: F,
) -> u64 {
    let start = Instant::now();
    for _ in 0..iters {
        for utility in utilities {
            black_box(f(utility));
        }
    }
    (start.elapsed().as_nanos() / (u128::from(iters) * utilities.len() as u128)) as u64
}

fn bench_pkgsearch(_c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let iters: u32 = if test_mode { 1 } else { 5 };
    let mut records = Vec::new();
    for &(features, phi) in SWEEP {
        let workload = Workload::build(WorkloadConfig {
            dataset: DatasetId::Uni,
            rows: ROWS,
            features,
            max_package_size: phi,
            preferences: 5,
            seed: 20140901 + features as u64,
            ..WorkloadConfig::default()
        });
        let utilities: Vec<LinearUtility> = weight_vectors(&workload)
            .into_iter()
            .map(|w| {
                LinearUtility::new(workload.context.clone(), w)
                    .expect("weights match the workload dimensionality")
            })
            .collect();

        // Equivalence sanity check before timing anything.
        for utility in &utilities {
            let reference = top_k_packages_reference(utility, &workload.catalog, K)
                .expect("reference search succeeds");
            let arena =
                top_k_packages_with_lists(utility, &workload.catalog, &workload.sorted_lists, K)
                    .expect("arena search succeeds");
            assert_eq!(
                reference.packages.len(),
                arena.packages.len(),
                "result sizes diverge at {features} features, phi {phi}"
            );
            for ((rp, rs), (ap, as_)) in reference.packages.iter().zip(arena.packages.iter()) {
                assert_eq!(rp, ap, "packages diverge at {features} features, phi {phi}");
                assert!(
                    (rs - as_).abs() < 1e-9,
                    "utilities diverge at {features} features, phi {phi}: {rs} vs {as_}"
                );
            }
        }

        let reference_ns = measure(&utilities, iters, |utility| {
            top_k_packages_reference(utility, &workload.catalog, K).expect("search succeeds")
        });
        let arena_ns = measure(&utilities, iters, |utility| {
            top_k_packages_with_lists(utility, &workload.catalog, &workload.sorted_lists, K)
                .expect("search succeeds")
        });
        let speedup = reference_ns as f64 / arena_ns.max(1) as f64;
        println!(
            "bench: fig_pkgsearch/{features}f_phi{phi}/reference {reference_ns:>12} ns/search"
        );
        println!(
            "bench: fig_pkgsearch/{features}f_phi{phi}/arena     {arena_ns:>12} ns/search  ({speedup:.2}x)"
        );
        records.push(SweepRecord {
            features,
            phi,
            reference_ns_per_search: reference_ns,
            arena_ns_per_search: arena_ns,
            speedup,
        });
    }

    if !test_mode {
        let record = BenchRecord {
            bench: "fig_pkgsearch",
            environment: bench_environment(),
            dataset: "UNI",
            rows: ROWS,
            k: K,
            weight_vectors_per_point: 3,
            iterations_per_path: iters,
            configs: records,
        };
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pkgsearch.json");
        let payload = serde_json::to_string_pretty(&record).expect("records serialise");
        std::fs::write(path, payload + "\n").expect("write BENCH_pkgsearch.json");
        println!("fig_pkgsearch: measurements written to BENCH_pkgsearch.json");
    }
}

criterion_group!(benches, bench_pkgsearch);
criterion_main!(benches);
