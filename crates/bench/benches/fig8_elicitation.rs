//! Criterion benchmark behind Figure 8: the cost of one full elicitation
//! session (present → click → learn until the top-k list stabilises) against
//! a hidden ground-truth utility.  The workload is a scaled-down UNI catalog
//! so the session fits a micro-benchmark; the full NBA-scale study is run by
//! the `experiments fig8` harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pkgrec_bench::workload::{build_dataset, dataset_catalog, experiment_profile, DatasetId};
use pkgrec_core::elicitation::{
    random_ground_truth_weights, run_elicitation, ElicitationConfig, SimulatedUser,
};
use pkgrec_core::engine::RecommenderEngine;
use pkgrec_core::LinearUtility;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig8(c: &mut Criterion) {
    let dataset = build_dataset(DatasetId::Uni, 800, 8);
    let mut group = c.benchmark_group("fig8_elicitation_session");
    group.sample_size(10);
    for features in [2usize, 6] {
        let catalog = dataset_catalog(&dataset, features);
        let profile = experiment_profile(catalog.num_features());
        group.bench_with_input(
            BenchmarkId::new("session", features),
            &features,
            |b, &features| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(800 + features as u64);
                    let mut engine = RecommenderEngine::builder(catalog.clone(), profile.clone())
                        .max_package_size(3)
                        .k(5)
                        .num_random(5)
                        .num_samples(40)
                        .build()
                        .expect("valid configuration");
                    let truth = random_ground_truth_weights(catalog.num_features(), &mut rng);
                    let utility = LinearUtility::new(engine.context().clone(), truth)
                        .expect("dimensions match");
                    let user = SimulatedUser::new(utility);
                    run_elicitation(
                        &mut engine,
                        &user,
                        ElicitationConfig {
                            max_rounds: 6,
                            stable_rounds: 2,
                        },
                        &mut rng,
                    )
                    .expect("session runs")
                    .clicks
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
