//! Criterion benchmark behind Figure 5: checking a pool of sampled weight
//! vectors against the feedback constraints before and after transitive
//! reduction of the preference DAG.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pkgrec_bench::workload::{consistent_preferences, Workload, WorkloadConfig};
use pkgrec_core::constraints::{ConstraintChecker, ConstraintSource};
use pkgrec_core::preferences::PreferenceStore;
use pkgrec_core::sampler::{RejectionSampler, WeightSampler};

fn bench_fig5(c: &mut Criterion) {
    let workload = Workload::build(WorkloadConfig {
        rows: 1_000,
        features: 5,
        preferences: 0,
        seed: 5,
        ..WorkloadConfig::default()
    });
    // Build a preference store with redundant chains: pairwise preferences
    // among a ranked pool of packages.
    let mut rng = workload.rng(2);
    let raw = consistent_preferences(
        &workload.context,
        &workload.catalog,
        &workload.ground_truth,
        400,
        &mut rng,
    );
    let mut store = PreferenceStore::new();
    for (i, p) in raw.iter().enumerate() {
        // Key packages by their position so chains can share endpoints.
        let better_key = format!("p{}", i % 40);
        let worse_key = format!("p{}", 40 + (i % 60));
        let _ = store.add(better_key, &p.better, worse_key, &p.worse);
    }
    let sampler = RejectionSampler::default();
    let empty = ConstraintChecker::from_constraints(5, vec![], ConstraintSource::Full);
    let mut rng = workload.rng(3);
    let pool = sampler
        .generate(&workload.prior, &empty, 1_000, &mut rng)
        .expect("unconstrained sampling succeeds")
        .pool;

    let full = ConstraintChecker::full(&store, 5);
    let reduced = ConstraintChecker::reduced(&store, 5);
    let mut group = c.benchmark_group("fig5_constraint_pruning");
    for (name, checker) in [("before_pruning", &full), ("after_pruning", &reduced)] {
        group.bench_with_input(BenchmarkId::new(name, pool.len()), checker, |b, ch| {
            b.iter(|| pool.samples().filter(|s| ch.is_valid(s.weights)).count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
