//! Criterion benchmark behind Figure 7: locating the samples a new preference
//! invalidates, with the naive scan, the TA scan and the hybrid of
//! Algorithm 1, in the two regimes the paper contrasts (few vs many
//! violations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pkgrec_core::maintenance::{find_violating, index_pool, MaintenanceStrategy};
use pkgrec_core::preferences::Preference;
use pkgrec_core::sampler::{SamplePool, WeightSample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pool(n: usize, dim: usize, seed: u64) -> SamplePool {
    let mut rng = StdRng::seed_from_u64(seed);
    SamplePool::from_samples(
        (0..n)
            .map(|_| WeightSample::unweighted((0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()))
            .collect(),
    )
}

fn bench_fig7(c: &mut Criterion) {
    let pool = pool(10_000, 5, 7);
    let index = index_pool(&pool);
    // Few violations: the "better" package dominates, so almost every sample
    // already agrees with the preference.
    let few = Preference::new(vec![0.9, 0.9, 0.9, 0.9, 0.9], vec![0.1, 0.1, 0.1, 0.1, 0.1]);
    // Many violations: the preference contradicts most of the random pool.
    let many = Preference::new(vec![0.1, 0.1, 0.1, 0.1, 0.1], vec![0.9, 0.9, 0.9, 0.9, 0.9]);

    let strategies = [
        ("naive", MaintenanceStrategy::Naive),
        ("topk", MaintenanceStrategy::TopK),
        ("hybrid", MaintenanceStrategy::Hybrid { gamma: 0.025 }),
    ];
    let mut group = c.benchmark_group("fig7_sample_maintenance");
    for (regime, pref) in [("few_violations", &few), ("many_violations", &many)] {
        for (name, strategy) in &strategies {
            group.bench_with_input(
                BenchmarkId::new(*name, regime),
                &(pref, strategy),
                |b, (pref, strategy)| {
                    b.iter(|| {
                        find_violating(&pool, Some(&index), pref, **strategy)
                            .violating
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
