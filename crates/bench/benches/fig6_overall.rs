//! Criterion benchmark behind Figure 6: the two cost components of one
//! recommendation round — generating valid weight samples and generating the
//! top-k packages from them — per sampling strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pkgrec_bench::fig6::top_k_phase;
use pkgrec_bench::workload::{DatasetId, Workload, WorkloadConfig};
use pkgrec_core::sampler::{McmcSampler, RejectionSampler, SamplerKind, WeightSampler};

fn bench_fig6(c: &mut Criterion) {
    let workload = Workload::build(WorkloadConfig {
        dataset: DatasetId::Uni,
        rows: 1_000,
        features: 4,
        max_package_size: 3,
        preferences: 5,
        seed: 6,
        ..WorkloadConfig::default()
    });
    let checker = workload.checker();
    let samplers = vec![
        ("RS", SamplerKind::Rejection(RejectionSampler::default())),
        ("MS", SamplerKind::Mcmc(McmcSampler::default())),
    ];

    let mut group = c.benchmark_group("fig6_sample_generation");
    group.sample_size(10);
    for (name, sampler) in &samplers {
        group.bench_with_input(BenchmarkId::new(*name, "200_samples"), sampler, |b, s| {
            b.iter(|| {
                let mut rng = workload.rng(4);
                s.generate(&workload.prior, &checker, 200, &mut rng)
                    .expect("sampling succeeds")
                    .pool
                    .len()
            })
        });
    }
    group.finish();

    // The top-k package phase over a fixed pool of 20 samples.
    let mut rng = workload.rng(5);
    let pool = SamplerKind::Mcmc(McmcSampler::default())
        .generate(&workload.prior, &checker, 20, &mut rng)
        .expect("sampling succeeds")
        .pool;
    let mut group = c.benchmark_group("fig6_top_k_packages");
    group.sample_size(10);
    group.bench_function("EXP_top5_over_20_samples", |b| {
        b.iter(|| top_k_phase(&workload, &pool, 5).0)
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
