//! `fig_serving` — throughput of the sharded session-serving layer.
//!
//! Serves the same mixed fleet of elicitation sessions (engine + baseline
//! adapters, one hidden-utility user each) through `{1, N}` shards ×
//! `{store-hit, batched, batched-xshard, admission-fallback,
//! snapshot-restore}` paths.  The hit path keeps every session live; the
//! batched path additionally drives each shard's sessions in lockstep so
//! same-catalog engine sessions share one kernel sweep per round; the
//! batched-xshard path routes every shard worker's pending presents
//! through the cross-shard `ScoringService`, whose batcher stacks
//! same-catalog submissions fleet-wide into one kernel sweep per group
//! under the adaptive admission policy; the admission-fallback path runs
//! the same service with admission forced off, measuring the audited
//! serial-fallback seam; the restore path caps each shard at one live
//! session, so nearly every operation pays a spill (snapshot checkpoint)
//! plus a rehydrate (journal replay).  Per-session outcomes are identical
//! across all shapes — the serving layer's core guarantee — and the
//! bench asserts it before timing anything.
//!
//! Outside `-- --test` smoke mode the measured throughputs are written to
//! `BENCH_serving.json` at the repository root.  Note the CI container
//! exposes a single CPU: the multi-shard rows measure the sharding
//! overhead there, not a speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use pkgrec_bench::report::{bench_environment, BenchEnvironment};
use pkgrec_bench::serving::{
    durability_point, serve_point, serve_point_batched, serve_point_scored, DurabilityPoint,
    ServingConfig, ServingPoint,
};
use pkgrec_serve::{AdmissionMode, ScoringConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct BenchRecord {
    bench: &'static str,
    environment: BenchEnvironment,
    dataset: &'static str,
    rows: usize,
    sessions: usize,
    max_rounds: usize,
    mixed_fleet: bool,
    points: Vec<ServingPoint>,
    durability: DurabilityPoint,
}

fn bench_serving(_c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let config = if test_mode {
        ServingConfig {
            sessions: 8,
            rows: 160,
            num_samples: 20,
            max_rounds: 3,
            ..ServingConfig::default()
        }
    } else {
        ServingConfig::default()
    };

    let fallback_scoring = ScoringConfig {
        mode: AdmissionMode::Never,
        ..ScoringConfig::default()
    };
    enum Path {
        Serial,
        Lockstep,
        Scored(ScoringConfig),
    }
    let mut points = Vec::new();
    for shards in [1usize, config.shards.max(2)] {
        let shaped = ServingConfig {
            shards,
            threads: shards,
            ..config.clone()
        };
        let ample = shaped.sessions.max(1);
        for (path, capacity, mode) in [
            ("store-hit", ample, Path::Serial),
            ("batched", ample, Path::Lockstep),
            (
                "batched-xshard",
                ample,
                Path::Scored(ScoringConfig::default()),
            ),
            (
                "admission-fallback",
                ample,
                Path::Scored(fallback_scoring.clone()),
            ),
            ("snapshot-restore", 1usize, Path::Serial),
        ] {
            let point = match &mode {
                Path::Serial => serve_point(&shaped, path, capacity),
                Path::Lockstep => serve_point_batched(&shaped, path, capacity),
                Path::Scored(scoring) => serve_point_scored(&shaped, path, capacity, scoring),
            }
            .expect("serving fleet runs to completion");
            println!(
                "bench: fig_serving/{}shard/{:<18} {:>8.2} sessions/s  ({} sessions, {} evictions, {} restores, {} batched sess, {} fallbacks)",
                shards, path, point.sessions_per_sec, point.sessions,
                point.store.evictions, point.store.restores,
                point.store.batched_sessions, point.store.admission_fallbacks
            );
            points.push(point);
        }
    }

    // The serving layer's guarantee: identical per-session outcomes on
    // every shape (same fleet, same seeds — scheduling and capacity
    // pressure are invisible).
    for point in &points[1..] {
        assert_eq!(point.mean_clicks, points[0].mean_clicks, "{}", point.path);
        assert_eq!(point.converged, points[0].converged, "{}", point.path);
        assert_eq!(
            point.mean_precision, points[0].mean_precision,
            "{}",
            point.path
        );
    }
    // Every batched point must have actually run shared kernel sweeps
    // (the fleet's single interned catalog makes engine sessions groupable).
    for point in points.iter().filter(|p| p.path == "batched") {
        assert!(
            point.store.batched_presents > 0,
            "batched path never batched"
        );
        assert!(
            point.store.batched_presents > point.store.batched_groups,
            "batched sweeps should cover more sessions than kernel calls"
        );
    }
    // The cross-shard scoring service must have actually admitted groups
    // (round one admits optimistically, so a silent all-fallback run is a
    // policy bug, not a slow day) ...
    for point in points.iter().filter(|p| p.path == "batched-xshard") {
        assert!(
            point.store.batched_sessions > 0 && point.store.batched_groups > 0,
            "cross-shard scoring service never admitted a group"
        );
    }
    // ... and the forced-fallback shape must audit every declined group
    // while batching nothing.
    for point in points.iter().filter(|p| p.path == "admission-fallback") {
        assert!(
            point.store.admission_fallbacks > 0,
            "forced fallback recorded no admission fallbacks"
        );
        assert_eq!(
            point.store.batched_sessions, 0,
            "AdmissionMode::Never must not batch"
        );
    }
    // Outside smoke mode, batching must pay for itself: at least parity
    // with the per-session store-hit path, and strictly better when real
    // cores are available (the batched kernel amortises sweep setup and
    // feeds wider score matrices to the lane-blocked kernel).  The same
    // bar applies to the cross-shard scoring service.
    if !test_mode {
        let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
        for group in points.chunks(5) {
            let hit = &group[0];
            for batched in [&group[1], &group[2]] {
                if parallelism > 1 {
                    assert!(
                        batched.sessions_per_sec > hit.sessions_per_sec,
                        "{} ({:.2}/s) must beat store-hit ({:.2}/s) on {} cores",
                        batched.path,
                        batched.sessions_per_sec,
                        hit.sessions_per_sec,
                        parallelism
                    );
                } else {
                    assert!(
                        batched.sessions_per_sec >= hit.sessions_per_sec * 0.95,
                        "{} ({:.2}/s) must hold parity with store-hit ({:.2}/s) on 1 core",
                        batched.path,
                        batched.sessions_per_sec,
                        hit.sessions_per_sec
                    );
                }
            }
        }
    }

    // Durability series: the 100-session workload served through the
    // segmented durable log, then compacted, killed and recovered.
    // `durability_point` itself asserts probe sessions recommend
    // identically across the kill; here we pin the interning + compaction
    // byte cut versus the v1 (uninterned) journal serialisation.
    let durability_config = if test_mode {
        ServingConfig {
            sessions: 24,
            rows: 160,
            num_samples: 20,
            max_rounds: 2,
            ..ServingConfig::default()
        }
    } else {
        ServingConfig {
            sessions: 100,
            rows: 600,
            num_samples: 30,
            max_rounds: 2,
            ..ServingConfig::default()
        }
    };
    let durability =
        durability_point(&durability_config).expect("the durable fleet serves and recovers");
    println!(
        "bench: fig_serving/durability          v1 {:>8.1} KB -> segments {:>7.1} KB -> compacted {:>7.1} KB ({:.1}x cut)",
        durability.v1_journal_bytes as f64 / 1024.0,
        durability.segment_bytes_before as f64 / 1024.0,
        durability.segment_bytes_after as f64 / 1024.0,
        durability.reduction_factor,
    );
    println!(
        "bench: fig_serving/recovery            {} sessions rebuilt from segments in {:.2} ms",
        durability.recovered_sessions, durability.recovery_ms,
    );
    let floor = if test_mode { 2.0 } else { 5.0 };
    assert!(
        durability.reduction_factor >= floor,
        "interning + compaction must cut journal bytes by >= {floor}x, got {:.2}x",
        durability.reduction_factor
    );
    assert_eq!(
        durability.recovered_sessions, durability_config.sessions,
        "every session must survive the kill"
    );

    if !test_mode {
        let record = BenchRecord {
            bench: "fig_serving",
            environment: bench_environment(),
            dataset: "UNI",
            rows: config.rows,
            sessions: config.sessions,
            max_rounds: config.max_rounds,
            mixed_fleet: config.mixed,
            points,
            durability,
        };
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
        let payload = serde_json::to_string_pretty(&record).expect("records serialise");
        std::fs::write(path, payload + "\n").expect("write BENCH_serving.json");
        println!("fig_serving: measurements written to BENCH_serving.json");
    }
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
