//! `fig_server` — closed-loop load on the network front door.
//!
//! For each concurrency level, starts a `pkgrec-server` over a fresh
//! durable store on a loopback ephemeral port and drives a mixed fleet of
//! elicitation sessions through it with the crate's closed-loop load
//! generator: `clients` connections, each completing its sessions'
//! `create → (present → feedback)* → recommend` chains back-to-back.
//! Every level runs twice: once with the request loop scoring presents
//! inline (`serial`), and once with the cross-shard scoring service
//! enabled (`batched`), where shard workers drain consecutive presents
//! from their queues and submit them to a shared batcher that stacks
//! same-catalog work fleet-wide into one kernel sweep per admitted group.
//! Every wire call's latency feeds a log-linear histogram (p50/p99/p999),
//! and every wire result is compared byte-for-byte against a per-client
//! in-process shadow store — the bench asserts zero mismatches on both
//! paths, i.e. neither the network boundary nor the batcher is observable
//! in results.  Each level also records the served store's counters, so
//! the artifact pins how many sessions the admission policy batched
//! versus deliberately fell back to serial scoring.
//!
//! Outside `-- --test` smoke mode the per-level reports are written to
//! `BENCH_server.json` at the repository root.  The CI container exposes a
//! single CPU: higher concurrency measures queueing behaviour under
//! closed-loop load there, not a parallel speedup.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pkgrec_bench::report::{bench_environment, BenchEnvironment};
use pkgrec_serve::{DurabilityConfig, SessionStore, StoreConfig, StoreStats};
use pkgrec_server::loadgen::{self, LoadConfig, LoadReport};
use pkgrec_server::{Server, ServerConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct BenchRecord {
    bench: &'static str,
    environment: BenchEnvironment,
    dataset: &'static str,
    catalog_items: usize,
    rounds: usize,
    shards: usize,
    levels: Vec<ServerLevel>,
}

/// One measured level: the load generator's report plus the request-loop
/// mode it ran under and the served store's counters.
#[derive(Debug, Serialize)]
struct ServerLevel {
    /// `"serial"` (presents scored inline by the shard worker) or
    /// `"batched"` (presents routed through the cross-shard scoring
    /// service).
    mode: &'static str,
    /// The scoring-service flush window, microseconds (0 when serial).
    batch_window_us: u64,
    /// Counters of the served store after the run, including the
    /// admission audit trail (`batched_sessions` / `admission_fallbacks`
    /// / `batch_wait_us`).
    store: StoreStats,
    /// The closed-loop load generator's measurement of this level.
    report: LoadReport,
}

/// One concurrency level: fresh durable store, fresh server, one load run.
fn level(clients: usize, load: &LoadConfig, shards: usize, batch_window: Duration) -> ServerLevel {
    let mode = if batch_window.is_zero() {
        "serial"
    } else {
        "batched"
    };
    let dir = std::env::temp_dir().join(format!(
        "pkgrec-fig-server-{}-c{clients}-{mode}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SessionStore::open_with(
        StoreConfig {
            shards,
            capacity_per_shard: load.sessions.max(1),
        },
        DurabilityConfig::at(&dir),
    )
    .expect("durable store opens");

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            batch_window,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr().expect("bound address");
    let control = server.control();
    let handle = std::thread::spawn(move || {
        let mut store = store;
        let report = server.serve(&mut store).expect("server serves");
        (store, report)
    });

    let config = LoadConfig { clients, ..*load };
    let report = loadgen::run(addr, &config).expect("load generation completes");

    control.shutdown();
    let (store, serve_report) = handle.join().expect("server thread joins");
    assert_eq!(
        store.len(),
        report.sessions,
        "the served store holds every load-generated session"
    );
    assert_eq!(serve_report.malformed_frames, 0);
    let stats = store.stats();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    ServerLevel {
        mode,
        batch_window_us: batch_window.as_micros() as u64,
        store: stats,
        report,
    }
}

fn bench_server(_c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (load, levels, shards, batch_window) = if test_mode {
        (
            LoadConfig {
                sessions: 8,
                rounds: 2,
                catalog_items: 32,
                timeout: Duration::from_secs(120),
                ..LoadConfig::default()
            },
            vec![1usize, 2],
            2usize,
            Duration::from_millis(2),
        )
    } else {
        (
            LoadConfig {
                sessions: 48,
                rounds: 3,
                catalog_items: 60,
                timeout: Duration::from_secs(300),
                ..LoadConfig::default()
            },
            vec![2usize, 8],
            4usize,
            Duration::from_micros(500),
        )
    };

    let mut reports: Vec<ServerLevel> = Vec::new();
    for clients in levels {
        for window in [Duration::ZERO, batch_window] {
            let level = level(clients, &load, shards, window);
            println!(
                "bench: fig_server/{clients}clients/{:<7} {:>7.2} sessions/s  {:>8.1} req/s  \
                 p50 {:>6} us  p99 {:>7} us  ({} requests, {} mismatches, \
                 {} batched sess, {} fallbacks, {} us waited)",
                level.mode,
                level.report.sessions_per_sec,
                level.report.requests_per_sec,
                level.report.p50_us,
                level.report.p99_us,
                level.report.requests,
                level.report.mismatches,
                level.store.batched_sessions,
                level.store.admission_fallbacks,
                level.store.batch_wait_us,
            );
            // The determinism contract extends across the wire and through
            // the batcher: any divergence from the in-process shadow
            // stores is a bug, not a data point.
            assert!(level.report.shadow_checked, "shadow comparison must run");
            assert_eq!(
                level.report.mismatches, 0,
                "wire results diverged from shadow ({})",
                level.mode
            );
            assert_eq!(
                level.report.sessions, load.sessions,
                "every session completes"
            );
            // Every engine present on the batched path passed through the
            // scoring service, so its audit counters must have moved —
            // either sessions were batched or the policy recorded why not.
            if level.mode == "batched" {
                assert!(
                    level.store.batched_sessions + level.store.admission_fallbacks > 0,
                    "batched level never consulted the admission policy"
                );
            }
            reports.push(level);
        }
    }

    // Outside smoke mode the scoring service must pay for itself at the
    // highest concurrency level (where the queues are deep enough to
    // group): strictly faster than the serial request loop when real
    // cores are available.  On a single CPU the batching window is pure
    // added latency in a closed loop — there is no second core to overlap
    // the stacked sweep with — so the bar there is a bounded overhead
    // (the window waits are visible in `batch_wait_us`), not parity.
    if !test_mode {
        let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
        let (serial, batched) = (&reports[reports.len() - 2], &reports[reports.len() - 1]);
        assert_eq!((serial.mode, batched.mode), ("serial", "batched"));
        if parallelism > 1 {
            assert!(
                batched.report.sessions_per_sec > serial.report.sessions_per_sec,
                "batched ({:.2}/s) must beat serial ({:.2}/s) on {} cores",
                batched.report.sessions_per_sec,
                serial.report.sessions_per_sec,
                parallelism
            );
        } else {
            assert!(
                batched.report.sessions_per_sec >= serial.report.sessions_per_sec * 0.70,
                "batched ({:.2}/s) regressed more than the windowing bound vs serial ({:.2}/s) on 1 core",
                batched.report.sessions_per_sec,
                serial.report.sessions_per_sec
            );
        }
    }

    if !test_mode {
        let record = BenchRecord {
            bench: "fig_server",
            environment: bench_environment(),
            dataset: "UNI",
            catalog_items: load.catalog_items,
            rounds: load.rounds,
            shards,
            levels: reports,
        };
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
        let payload = serde_json::to_string_pretty(&record).expect("records serialise");
        std::fs::write(path, payload + "\n").expect("write BENCH_server.json");
        println!("fig_server: measurements written to BENCH_server.json");
    }
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
