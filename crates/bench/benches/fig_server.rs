//! `fig_server` — closed-loop load on the network front door.
//!
//! For each concurrency level, starts a `pkgrec-server` over a fresh
//! durable store on a loopback ephemeral port and drives a mixed fleet of
//! elicitation sessions through it with the crate's closed-loop load
//! generator: `clients` connections, each completing its sessions'
//! `create → (present → feedback)* → recommend` chains back-to-back.
//! Every wire call's latency feeds a log-linear histogram (p50/p99/p999),
//! and every wire result is compared byte-for-byte against a per-client
//! in-process shadow store — the bench asserts zero mismatches, i.e. the
//! network boundary is unobservable in results.
//!
//! Outside `-- --test` smoke mode the per-level reports are written to
//! `BENCH_server.json` at the repository root.  The CI container exposes a
//! single CPU: higher concurrency measures queueing behaviour under
//! closed-loop load there, not a parallel speedup.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pkgrec_bench::report::{bench_environment, BenchEnvironment};
use pkgrec_serve::{DurabilityConfig, SessionStore, StoreConfig};
use pkgrec_server::loadgen::{self, LoadConfig, LoadReport};
use pkgrec_server::{Server, ServerConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct BenchRecord {
    bench: &'static str,
    environment: BenchEnvironment,
    dataset: &'static str,
    catalog_items: usize,
    rounds: usize,
    shards: usize,
    levels: Vec<LoadReport>,
}

/// One concurrency level: fresh durable store, fresh server, one load run.
fn level(clients: usize, load: &LoadConfig, shards: usize) -> LoadReport {
    let dir = std::env::temp_dir().join(format!(
        "pkgrec-fig-server-{}-c{clients}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SessionStore::open_with(
        StoreConfig {
            shards,
            capacity_per_shard: load.sessions.max(1),
        },
        DurabilityConfig::at(&dir),
    )
    .expect("durable store opens");

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("server binds");
    let addr = server.local_addr().expect("bound address");
    let control = server.control();
    let handle = std::thread::spawn(move || {
        let mut store = store;
        let report = server.serve(&mut store).expect("server serves");
        (store, report)
    });

    let config = LoadConfig { clients, ..*load };
    let report = loadgen::run(addr, &config).expect("load generation completes");

    control.shutdown();
    let (store, serve_report) = handle.join().expect("server thread joins");
    assert_eq!(
        store.len(),
        report.sessions,
        "the served store holds every load-generated session"
    );
    assert_eq!(serve_report.malformed_frames, 0);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn bench_server(_c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (load, levels, shards) = if test_mode {
        (
            LoadConfig {
                sessions: 8,
                rounds: 2,
                catalog_items: 32,
                timeout: Duration::from_secs(120),
                ..LoadConfig::default()
            },
            vec![1usize, 2],
            2usize,
        )
    } else {
        (
            LoadConfig {
                sessions: 48,
                rounds: 3,
                catalog_items: 60,
                timeout: Duration::from_secs(300),
                ..LoadConfig::default()
            },
            vec![2usize, 8],
            4usize,
        )
    };

    let mut reports = Vec::new();
    for clients in levels {
        let report = level(clients, &load, shards);
        println!(
            "bench: fig_server/{clients}clients  {:>7.2} sessions/s  {:>8.1} req/s  \
             p50 {:>6} us  p99 {:>7} us  p999 {:>7} us  ({} requests, {} mismatches)",
            report.sessions_per_sec,
            report.requests_per_sec,
            report.p50_us,
            report.p99_us,
            report.p999_us,
            report.requests,
            report.mismatches,
        );
        // The determinism contract extends across the wire: any divergence
        // from the in-process shadow stores is a bug, not a data point.
        assert!(report.shadow_checked, "shadow comparison must run");
        assert_eq!(report.mismatches, 0, "wire results diverged from shadow");
        assert_eq!(report.sessions, load.sessions, "every session completes");
        reports.push(report);
    }

    if !test_mode {
        let record = BenchRecord {
            bench: "fig_server",
            environment: bench_environment(),
            dataset: "UNI",
            catalog_items: load.catalog_items,
            rounds: load.rounds,
            shards,
            levels: reports,
        };
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
        let payload = serde_json::to_string_pretty(&record).expect("records serialise");
        std::fs::write(path, payload + "\n").expect("write BENCH_server.json");
        println!("fig_server: measurements written to BENCH_server.json");
    }
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
