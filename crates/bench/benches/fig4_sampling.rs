//! Criterion benchmark behind Figure 4: cost of drawing valid weight samples
//! under rejection, importance and MCMC sampling, for a fixed small feedback
//! set in two dimensions (the regime the paper's scatter plots illustrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pkgrec_bench::workload::{Workload, WorkloadConfig};
use pkgrec_core::sampler::{
    ImportanceSampler, McmcSampler, RejectionSampler, SamplerKind, WeightSampler,
};

fn samplers() -> Vec<(&'static str, SamplerKind)> {
    vec![
        ("RS", SamplerKind::Rejection(RejectionSampler::default())),
        ("IS", SamplerKind::Importance(ImportanceSampler::default())),
        ("MS", SamplerKind::Mcmc(McmcSampler::default())),
    ]
}

fn bench_fig4(c: &mut Criterion) {
    let workload = Workload::build(WorkloadConfig {
        rows: 1_000,
        features: 2,
        preferences: 2,
        seed: 4,
        ..WorkloadConfig::default()
    });
    let checker = workload.checker();
    let mut group = c.benchmark_group("fig4_sampling_methods");
    for (name, sampler) in samplers() {
        group.bench_with_input(
            BenchmarkId::new(name, "100_valid_samples"),
            &sampler,
            |b, s| {
                b.iter(|| {
                    let mut rng = workload.rng(1);
                    s.generate(&workload.prior, &checker, 100, &mut rng)
                        .expect("figure-4 workloads admit valid samples")
                        .pool
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
