//! Criterion benchmark for the batched scoring kernel: the candidate ×
//! sample utility evaluation that dominates every elicitation round, measured
//! scalar (row-at-a-time over per-sample `Vec`s, the pre-columnar code shape)
//! versus batched ([`score_batch`]) versus threaded
//! ([`score_batch_threaded`]), on a Figure-8-scale workload (5 features,
//! a full candidate slate, thousands of pooled samples).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pkgrec_bench::workload::{Workload, WorkloadConfig};
use pkgrec_core::constraints::{ConstraintChecker, ConstraintSource};
use pkgrec_core::sampler::{RejectionSampler, WeightSampler};
use pkgrec_core::scoring::{score_batch, score_batch_threaded, CandidateMatrix};
use pkgrec_core::utility::dot;
use pkgrec_core::{package_space_size, random_package};

const CANDIDATES: usize = 256;
const SAMPLES: usize = 2_000;

/// The row-at-a-time baseline this PR removed: iterate the pool sample by
/// sample (each a separate `Vec<f64>`), materialise every sample's candidate
/// scores in its own `Vec` — the shape the old per-sample ranking loops
/// produced — then reduce to weighted expectations per candidate.
fn scalar_phase(
    candidate_rows: &[Vec<f64>],
    sample_rows: &[Vec<f64>],
    importances: &[f64],
) -> Vec<f64> {
    let per_sample: Vec<Vec<f64>> = sample_rows
        .iter()
        .map(|sample| candidate_rows.iter().map(|c| dot(c, sample)).collect())
        .collect();
    let total: f64 = importances.iter().sum();
    (0..candidate_rows.len())
        .map(|c| {
            per_sample
                .iter()
                .zip(importances)
                .map(|(scores, q)| scores[c] * q)
                .sum::<f64>()
                / total
        })
        .collect()
}

fn bench_fig_scoring(c: &mut Criterion) {
    let workload = Workload::build(WorkloadConfig {
        rows: 2_000,
        features: 5,
        preferences: 0,
        seed: 9,
        ..WorkloadConfig::default()
    });
    // A fig8-scale pool: thousands of posterior samples from the prior.
    let empty = ConstraintChecker::from_constraints(5, vec![], ConstraintSource::Full);
    let mut rng = workload.rng(1);
    let pool = RejectionSampler::default()
        .generate(&workload.prior, &empty, SAMPLES, &mut rng)
        .expect("unconstrained sampling succeeds")
        .pool;
    // A slate of distinct candidate packages with their feature vectors.
    let phi = workload.context.max_package_size();
    assert!(package_space_size(workload.catalog.len(), phi) >= CANDIDATES as u128);
    let mut packages = Vec::with_capacity(CANDIDATES);
    while packages.len() < CANDIDATES {
        let p = random_package(workload.catalog.len(), phi, &mut rng);
        if !packages.contains(&p) {
            packages.push(p);
        }
    }
    let candidate_rows: Vec<Vec<f64>> = packages
        .iter()
        .map(|p| {
            workload
                .context
                .package_vector(&workload.catalog, p)
                .expect("random packages respect φ")
        })
        .collect();
    let candidates = CandidateMatrix::from_rows(5, &candidate_rows);
    let sample_rows = pool.weight_rows();
    let importances = pool.importances().to_vec();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(8);
    let mut group = c.benchmark_group("fig_scoring_kernel");
    let shape = format!("{CANDIDATES}x{SAMPLES}");
    group.bench_with_input(BenchmarkId::new("scalar", &shape), &(), |b, ()| {
        b.iter(|| {
            black_box(scalar_phase(
                black_box(&candidate_rows),
                black_box(&sample_rows),
                &importances,
            ))
        })
    });
    group.bench_with_input(BenchmarkId::new("batched", &shape), &(), |b, ()| {
        b.iter(|| {
            let scores = score_batch(black_box(&candidates), black_box(pool.weight_matrix()));
            black_box(scores.weighted_expectations(&importances))
        })
    });
    group.bench_with_input(
        BenchmarkId::new(format!("threaded_{threads}"), &shape),
        &(),
        |b, ()| {
            b.iter(|| {
                let scores = score_batch_threaded(
                    black_box(&candidates),
                    black_box(pool.weight_matrix()),
                    threads,
                );
                black_box(scores.weighted_expectations(&importances))
            })
        },
    );
    group.finish();

    // Correctness backing for the timing: the three paths agree to 1e-12.
    let scalar = scalar_phase(&candidate_rows, &sample_rows, &importances);
    let batched =
        score_batch(&candidates, pool.weight_matrix()).weighted_expectations(&importances);
    let threaded = score_batch_threaded(&candidates, pool.weight_matrix(), threads)
        .weighted_expectations(&importances);
    assert_eq!(batched, threaded);
    for (s, b) in scalar.iter().zip(batched.iter()) {
        assert!((s - b).abs() < 1e-12, "scalar {s} vs batched {b}");
    }
}

criterion_group!(benches, bench_fig_scoring);
criterion_main!(benches);
