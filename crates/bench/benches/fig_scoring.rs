//! Criterion benchmark for the batched scoring kernel: the candidate ×
//! sample utility evaluation that dominates every elicitation round, measured
//! scalar (row-at-a-time over per-sample `Vec`s, the pre-columnar code shape)
//! versus lane-blocked ([`score_batch`]) versus manually unrolled
//! ([`score_batch_unrolled`]) versus threaded ([`score_batch_threaded`]), on
//! a Figure-8-scale workload (5 features, a full candidate slate, thousands
//! of pooled samples).
//!
//! Besides the Criterion groups, the bench manually times one sweep per
//! kernel shape and — outside `-- --test` smoke mode — writes the series to
//! `BENCH_scoring.json` at the repository root, with the machine/build
//! environment header every benchmark artifact carries.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pkgrec_bench::report::{bench_environment, BenchEnvironment};
use pkgrec_bench::workload::{Workload, WorkloadConfig};
use pkgrec_core::constraints::{ConstraintChecker, ConstraintSource};
use pkgrec_core::sampler::{RejectionSampler, WeightSampler};
use pkgrec_core::scoring::{
    score_batch, score_batch_threaded, score_batch_unrolled, CandidateMatrix,
};
use pkgrec_core::utility::dot;
use pkgrec_core::{package_space_size, random_package};
use serde::Serialize;
use std::time::Instant;

/// One manually timed kernel shape in `BENCH_scoring.json`.
#[derive(Debug, Serialize)]
struct ScoringPoint {
    /// Kernel shape ("scalar" / "lane-blocked" / "unrolled" / "threaded_N").
    path: String,
    /// Mean nanoseconds per full candidate × sample sweep.
    mean_ns: f64,
    /// Score-matrix cells produced per second.
    cells_per_sec: f64,
    /// Throughput relative to the scalar row (scalar = 1.0).
    speedup_vs_scalar: f64,
}

#[derive(Debug, Serialize)]
struct BenchRecord {
    bench: &'static str,
    environment: BenchEnvironment,
    candidates: usize,
    samples: usize,
    features: usize,
    points: Vec<ScoringPoint>,
}

/// Times `iters` full sweeps of `f` after one warmup call, returning the
/// mean seconds per sweep.
fn time_sweeps(mut f: impl FnMut(), iters: usize) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

const CANDIDATES: usize = 256;
const SAMPLES: usize = 2_000;

/// The row-at-a-time baseline this PR removed: iterate the pool sample by
/// sample (each a separate `Vec<f64>`), materialise every sample's candidate
/// scores in its own `Vec` — the shape the old per-sample ranking loops
/// produced — then reduce to weighted expectations per candidate.
fn scalar_phase(
    candidate_rows: &[Vec<f64>],
    sample_rows: &[Vec<f64>],
    importances: &[f64],
) -> Vec<f64> {
    let per_sample: Vec<Vec<f64>> = sample_rows
        .iter()
        .map(|sample| candidate_rows.iter().map(|c| dot(c, sample)).collect())
        .collect();
    let total: f64 = importances.iter().sum();
    (0..candidate_rows.len())
        .map(|c| {
            per_sample
                .iter()
                .zip(importances)
                .map(|(scores, q)| scores[c] * q)
                .sum::<f64>()
                / total
        })
        .collect()
}

fn bench_fig_scoring(c: &mut Criterion) {
    let workload = Workload::build(WorkloadConfig {
        rows: 2_000,
        features: 5,
        preferences: 0,
        seed: 9,
        ..WorkloadConfig::default()
    });
    // A fig8-scale pool: thousands of posterior samples from the prior.
    let empty = ConstraintChecker::from_constraints(5, vec![], ConstraintSource::Full);
    let mut rng = workload.rng(1);
    let pool = RejectionSampler::default()
        .generate(&workload.prior, &empty, SAMPLES, &mut rng)
        .expect("unconstrained sampling succeeds")
        .pool;
    // A slate of distinct candidate packages with their feature vectors.
    let phi = workload.context.max_package_size();
    assert!(package_space_size(workload.catalog.len(), phi) >= CANDIDATES as u128);
    let mut packages = Vec::with_capacity(CANDIDATES);
    while packages.len() < CANDIDATES {
        let p = random_package(workload.catalog.len(), phi, &mut rng);
        if !packages.contains(&p) {
            packages.push(p);
        }
    }
    let candidate_rows: Vec<Vec<f64>> = packages
        .iter()
        .map(|p| {
            workload
                .context
                .package_vector(&workload.catalog, p)
                .expect("random packages respect φ")
        })
        .collect();
    let candidates = CandidateMatrix::from_rows(5, &candidate_rows);
    let sample_rows = pool.weight_rows();
    let importances = pool.importances().to_vec();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(8);
    let mut group = c.benchmark_group("fig_scoring_kernel");
    let shape = format!("{CANDIDATES}x{SAMPLES}");
    group.bench_with_input(BenchmarkId::new("scalar", &shape), &(), |b, ()| {
        b.iter(|| {
            black_box(scalar_phase(
                black_box(&candidate_rows),
                black_box(&sample_rows),
                &importances,
            ))
        })
    });
    group.bench_with_input(BenchmarkId::new("batched", &shape), &(), |b, ()| {
        b.iter(|| {
            let scores = score_batch(black_box(&candidates), black_box(pool.weight_matrix()));
            black_box(scores.weighted_expectations(&importances))
        })
    });
    group.bench_with_input(
        BenchmarkId::new(format!("threaded_{threads}"), &shape),
        &(),
        |b, ()| {
            b.iter(|| {
                let scores = score_batch_threaded(
                    black_box(&candidates),
                    black_box(pool.weight_matrix()),
                    threads,
                );
                black_box(scores.weighted_expectations(&importances))
            })
        },
    );
    group.finish();

    // Correctness backing for the timing: all four paths agree (the
    // blocked/unrolled/threaded kernels bit-identically, the scalar shape to
    // 1e-12 — it sums in a different association order).
    let scalar = scalar_phase(&candidate_rows, &sample_rows, &importances);
    let batched =
        score_batch(&candidates, pool.weight_matrix()).weighted_expectations(&importances);
    let unrolled =
        score_batch_unrolled(&candidates, pool.weight_matrix()).weighted_expectations(&importances);
    let threaded = score_batch_threaded(&candidates, pool.weight_matrix(), threads)
        .weighted_expectations(&importances);
    assert_eq!(batched, threaded);
    assert_eq!(batched, unrolled);
    for (s, b) in scalar.iter().zip(batched.iter()) {
        assert!((s - b).abs() < 1e-12, "scalar {s} vs batched {b}");
    }

    // The recorded series: one manually timed sweep per kernel shape.
    let test_mode = std::env::args().any(|a| a == "--test");
    let iters = if test_mode { 3 } else { 50 };
    let timed: Vec<(String, f64)> = vec![
        (
            "scalar".to_string(),
            time_sweeps(
                || {
                    black_box(scalar_phase(
                        black_box(&candidate_rows),
                        black_box(&sample_rows),
                        &importances,
                    ));
                },
                iters,
            ),
        ),
        (
            "lane-blocked".to_string(),
            time_sweeps(
                || {
                    black_box(score_batch(
                        black_box(&candidates),
                        black_box(pool.weight_matrix()),
                    ));
                },
                iters,
            ),
        ),
        (
            "unrolled".to_string(),
            time_sweeps(
                || {
                    black_box(score_batch_unrolled(
                        black_box(&candidates),
                        black_box(pool.weight_matrix()),
                    ));
                },
                iters,
            ),
        ),
        (
            format!("threaded_{threads}"),
            time_sweeps(
                || {
                    black_box(score_batch_threaded(
                        black_box(&candidates),
                        black_box(pool.weight_matrix()),
                        threads,
                    ));
                },
                iters,
            ),
        ),
    ];
    let cells = (CANDIDATES * SAMPLES) as f64;
    let scalar_secs = timed[0].1;
    let points: Vec<ScoringPoint> = timed
        .into_iter()
        .map(|(path, secs)| ScoringPoint {
            path,
            mean_ns: secs * 1e9,
            cells_per_sec: cells / secs.max(1e-12),
            speedup_vs_scalar: scalar_secs / secs.max(1e-12),
        })
        .collect();
    for p in &points {
        println!(
            "bench: fig_scoring/{:<14} {:>10.1} us/sweep  {:>8.1} Mcells/s  ({:.2}x vs scalar)",
            p.path,
            p.mean_ns / 1e3,
            p.cells_per_sec / 1e6,
            p.speedup_vs_scalar
        );
    }

    if !test_mode {
        let record = BenchRecord {
            bench: "fig_scoring",
            environment: bench_environment(),
            candidates: CANDIDATES,
            samples: SAMPLES,
            features: 5,
            points,
        };
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scoring.json");
        let payload = serde_json::to_string_pretty(&record).expect("records serialise");
        std::fs::write(path, payload + "\n").expect("write BENCH_scoring.json");
        println!("fig_scoring: measurements written to BENCH_scoring.json");
    }
}

criterion_group!(benches, bench_fig_scoring);
criterion_main!(benches);
