//! Manifest smoke test: builds a tiny figure workload and renders a report
//! table, the two entry points every experiment module goes through.

use pkgrec_bench::{Table, Workload, WorkloadConfig};

#[test]
fn workload_and_table_smoke() {
    let workload = Workload::build(WorkloadConfig {
        rows: 60,
        features: 2,
        preferences: 2,
        seed: 3,
        ..WorkloadConfig::default()
    });
    let checker = workload.checker();
    assert!(checker.is_valid(&workload.ground_truth));

    let mut table = Table::new("smoke", &["metric", "value"]);
    table.push_row(vec!["rows".into(), workload.catalog.len().to_string()]);
    let markdown = table.to_markdown();
    assert!(markdown.contains("metric"));
    assert!(markdown.contains("60"));
}
