//! The `pkgrec` wire protocol: a length-prefixed, CRC32-framed JSON codec.
//!
//! The framing deliberately reuses the durable journal's record idiom
//! ([`pkgrec_serve::segment`]): every message travels as
//!
//! ```text
//! [payload len: u32 LE][crc32(payload): u32 LE][payload: JSON bytes]
//! ```
//!
//! so the same [`crc32`] implementation guards bytes at rest and bytes in
//! flight.  A connection opens with an 11-byte hello —
//! [`HELLO_MAGIC`] (`PKGSRV\0`) followed by [`PROTOCOL_VERSION`] as u32 LE
//! — written by the server and verified by the client, which pins the
//! protocol the way the segment header pins the journal format.
//!
//! Payloads are serde JSON renderings of [`Request`] and [`Response`]:
//! one enum variant per store operation, plus a typed [`WireError`] reply
//! that survives the round trip back into a
//! [`CoreError`] on the client.
//!
//! [`read_frame`] is written for a server that must never die from client
//! bytes: a torn prefix, an oversized length, or a CRC mismatch comes back
//! as a typed [`FrameError`] — the connection replies and/or closes, the
//! accept loop never notices.

use std::io::{Read, Write};
use std::time::Duration;

use pkgrec_core::{CoreError, Feedback, Package, RankedPackage, Result};
use pkgrec_serve::segment::crc32;
use pkgrec_serve::{SessionConfig, StoreStats};
use serde::{Deserialize, Serialize};

/// First bytes of every connection: `PKGSRV\0`.
pub const HELLO_MAGIC: [u8; 7] = *b"PKGSRV\0";

/// Wire protocol version, bumped on any framing or payload schema change.
/// v4 grew [`StoreStats`] with the cross-shard batching counters
/// (`batched_sessions`, `admission_fallbacks`, `batch_wait_us`).
pub const PROTOCOL_VERSION: u32 = 4;

/// Hello length: magic + u32 LE version.
pub const HELLO_LEN: usize = HELLO_MAGIC.len() + 4;

/// Frame prefix length: u32 LE payload length + u32 LE CRC32.
pub const FRAME_PREFIX_LEN: usize = 8;

/// Default ceiling on a single frame's payload (8 MiB) — a catalog of
/// tens of thousands of items fits with room to spare, while a hostile
/// length prefix cannot make the server allocate unbounded memory.
pub const DEFAULT_MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// One client request: the session-store surface, one variant per op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Create a session from its full (serde) configuration.
    Create {
        /// Catalog, profile, φ, recommender recipe and seed.
        config: SessionConfig,
    },
    /// Build one presentation round for the session.
    Present {
        /// Target session id.
        session: u64,
    },
    /// Record typed feedback against the session's last presented list.
    Feedback {
        /// Target session id.
        session: u64,
        /// The user's reaction to the last presented round.
        feedback: Feedback,
    },
    /// The session's current top-k recommendation.
    Recommend {
        /// Target session id.
        session: u64,
    },
    /// Serialise the session's snapshot, journaling it as a checkpoint.
    Snapshot {
        /// Target session id.
        session: u64,
    },
    /// Counters summed across all shards, plus the live session count.
    Stats,
    /// Force every shard's buffered journal bytes to disk.
    Sync,
}

impl Request {
    /// The session this request addresses, if it addresses one (`Create`,
    /// `Stats` and `Sync` route by other means).
    pub fn session(&self) -> Option<u64> {
        match self {
            Request::Present { session }
            | Request::Feedback { session, .. }
            | Request::Recommend { session }
            | Request::Snapshot { session } => Some(*session),
            Request::Create { .. } | Request::Stats | Request::Sync => None,
        }
    }
}

/// One server reply: the success variant mirrors its request, and any
/// failure comes back as a typed [`WireError`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// `Create` succeeded: the assigned session id.
    Created {
        /// Newly assigned session id.
        session: u64,
    },
    /// `Present` succeeded: the packages shown this round.
    Presented {
        /// The presented packages, in display order.
        packages: Vec<Package>,
    },
    /// `Feedback` succeeded.
    FeedbackRecorded {
        /// Number of pairwise preferences derived from the feedback.
        preferences: usize,
    },
    /// `Recommend` succeeded: the session's current top-k.
    Recommended {
        /// Ranked packages, best first.
        ranked: Vec<RankedPackage>,
    },
    /// `Snapshot` succeeded: the checkpoint JSON.
    Snapshotted {
        /// The session snapshot, exactly as journaled.
        snapshot: String,
    },
    /// `Stats` succeeded.
    Stats {
        /// Sessions currently resident across all shards.
        sessions: usize,
        /// Counters summed across all shards.
        stats: StoreStats,
    },
    /// `Sync` succeeded on every shard.
    Synced,
    /// The request failed; the error is typed enough to reconstruct a
    /// [`CoreError`] client-side.
    Error(WireError),
}

/// Classifies a [`WireError`] without parsing its message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The addressed session does not exist.
    UnknownSession,
    /// The frame decoded but the payload was not a valid request, or the
    /// request's configuration was rejected.
    InvalidRequest,
    /// The frame itself was torn or failed its CRC; the server closes the
    /// connection after this reply because the stream cannot resync.
    MalformedFrame,
    /// The frame's length prefix exceeded the server's ceiling; the
    /// connection closes after this reply.
    Oversized,
    /// The request missed its deadline inside the server.
    Timeout,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// An I/O failure inside the store (durable journal).
    Io,
    /// The addressed shard is in read-only degraded mode after persistent
    /// durable-IO failure; mutating requests are refused until a
    /// successful `Sync` re-arms it.
    Degraded,
    /// Any other store-side failure; `message` carries the rendered error.
    Internal,
}

/// A typed error reply that round-trips the store's error surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable classification.
    pub kind: ErrorKind,
    /// Human-readable rendering of the underlying error.
    pub message: String,
    /// The session the failing request addressed, when known.
    pub session: Option<u64>,
    /// For [`ErrorKind::Io`]: the `std::io::ErrorKind` name (its `Debug`
    /// rendering), so clients assert on the fault class, not the message.
    pub io_kind: Option<String>,
    /// For [`ErrorKind::Degraded`]: the index of the degraded shard.
    pub shard: Option<u64>,
}

impl WireError {
    /// Builds an error reply from kind + message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> WireError {
        WireError {
            kind,
            message: message.into(),
            session: None,
            io_kind: None,
            shard: None,
        }
    }

    /// Attaches the addressed session id.
    pub fn with_session(mut self, session: u64) -> WireError {
        self.session = Some(session);
        self
    }

    /// Attaches the I/O fault class (for [`ErrorKind::Io`]).
    pub fn with_io_kind(mut self, kind: std::io::ErrorKind) -> WireError {
        self.io_kind = Some(format!("{kind:?}"));
        self
    }

    /// Attaches the degraded shard index (for [`ErrorKind::Degraded`]).
    pub fn with_shard(mut self, shard: usize) -> WireError {
        self.shard = Some(shard as u64);
        self
    }

    /// Maps a store error onto the wire, preserving the variants a client
    /// can act on (`UnknownSession`, `InvalidConfig`, `Io`, `Degraded`).
    pub fn from_core(error: &CoreError) -> WireError {
        match error {
            CoreError::UnknownSession(id) => {
                WireError::new(ErrorKind::UnknownSession, error.to_string()).with_session(*id)
            }
            CoreError::InvalidConfig(_) => {
                WireError::new(ErrorKind::InvalidRequest, error.to_string())
            }
            CoreError::Io { kind, message } => {
                WireError::new(ErrorKind::Io, message.clone()).with_io_kind(*kind)
            }
            CoreError::Degraded { shard, reason } => {
                WireError::new(ErrorKind::Degraded, reason.clone()).with_shard(*shard)
            }
            other => WireError::new(ErrorKind::Internal, other.to_string()),
        }
    }

    /// Reconstructs the closest [`CoreError`] client-side, so code written
    /// against the in-process store keeps matching on the same variants.
    pub fn to_core(&self) -> CoreError {
        match self.kind {
            ErrorKind::UnknownSession => {
                CoreError::UnknownSession(self.session.unwrap_or(u64::MAX))
            }
            ErrorKind::InvalidRequest => CoreError::InvalidConfig(self.message.clone()),
            ErrorKind::Io => CoreError::io(
                self.io_kind
                    .as_deref()
                    .map(parse_io_kind)
                    .unwrap_or(std::io::ErrorKind::Other),
                self.message.clone(),
            ),
            ErrorKind::Degraded => CoreError::Degraded {
                shard: self.shard.unwrap_or(u64::MAX) as usize,
                reason: self.message.clone(),
            },
            _ => CoreError::io(
                std::io::ErrorKind::Other,
                format!("server error ({:?}): {}", self.kind, self.message),
            ),
        }
    }
}

/// Parses a `std::io::ErrorKind` back from its `Debug` name (the inverse
/// of [`WireError::with_io_kind`]); unknown names collapse to `Other`.
pub fn parse_io_kind(name: &str) -> std::io::ErrorKind {
    use std::io::ErrorKind::*;
    match name {
        "NotFound" => NotFound,
        "PermissionDenied" => PermissionDenied,
        "ConnectionRefused" => ConnectionRefused,
        "ConnectionReset" => ConnectionReset,
        "ConnectionAborted" => ConnectionAborted,
        "NotConnected" => NotConnected,
        "AddrInUse" => AddrInUse,
        "AddrNotAvailable" => AddrNotAvailable,
        "BrokenPipe" => BrokenPipe,
        "AlreadyExists" => AlreadyExists,
        "WouldBlock" => WouldBlock,
        "InvalidInput" => InvalidInput,
        "InvalidData" => InvalidData,
        "TimedOut" => TimedOut,
        "WriteZero" => WriteZero,
        "StorageFull" => StorageFull,
        "QuotaExceeded" => QuotaExceeded,
        "Interrupted" => Interrupted,
        "Unsupported" => Unsupported,
        "UnexpectedEof" => UnexpectedEof,
        "OutOfMemory" => OutOfMemory,
        _ => Other,
    }
}

/// How reading one frame off a connection can end short of a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Clean EOF on a frame boundary — the peer hung up between requests.
    Closed,
    /// The stop callback fired while waiting (shutdown, client deadline).
    Stopped,
    /// EOF mid-frame, or a CRC mismatch: the stream cannot resync.
    Corrupt(String),
    /// The length prefix exceeded the configured ceiling.
    Oversized {
        /// The length the prefix claimed.
        len: usize,
    },
    /// A hard I/O error (not a read timeout) on the socket.
    Io {
        /// The OS error class, preserved for retry decisions.
        kind: std::io::ErrorKind,
        /// Rendered error.
        message: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Stopped => write!(f, "stopped while waiting for a frame"),
            FrameError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
            FrameError::Oversized { len } => write!(f, "oversized frame: {len} bytes"),
            FrameError::Io { message, .. } => write!(f, "i/o error: {message}"),
        }
    }
}

impl FrameError {
    /// Renders this as the store's error type (for client-side bubbling),
    /// mapping each framing failure onto the I/O class a caller would
    /// retry on: a clean hang-up is `ConnectionAborted`, a deadline is
    /// `TimedOut`, torn or mismatched bytes are `InvalidData`.
    pub fn into_core(self) -> CoreError {
        let kind = match &self {
            FrameError::Closed => std::io::ErrorKind::ConnectionAborted,
            FrameError::Stopped => std::io::ErrorKind::TimedOut,
            FrameError::Corrupt(_) => std::io::ErrorKind::InvalidData,
            FrameError::Oversized { .. } => std::io::ErrorKind::InvalidData,
            FrameError::Io { kind, .. } => *kind,
        };
        CoreError::io(kind, self.to_string())
    }
}

/// Encodes a value as one frame: `[len|crc32|JSON]`.
pub fn encode_frame<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    let payload = serde_json::to_vec(value)
        .map_err(|e| CoreError::io_data(format!("frame encode failed: {e}")))?;
    let mut frame = Vec::with_capacity(FRAME_PREFIX_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Writes one framed value to the stream and flushes it.
pub fn write_frame<W: Write, T: Serialize>(writer: &mut W, value: &T) -> Result<()> {
    let frame = encode_frame(value)?;
    writer
        .write_all(&frame)
        .and_then(|()| writer.flush())
        .map_err(|e| CoreError::io(e.kind(), format!("frame write failed: {e}")))
}

/// Writes the 11-byte hello (magic + version) that opens a connection.
pub fn write_hello<W: Write>(writer: &mut W) -> Result<()> {
    let mut hello = [0u8; HELLO_LEN];
    hello[..HELLO_MAGIC.len()].copy_from_slice(&HELLO_MAGIC);
    hello[HELLO_MAGIC.len()..].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    writer
        .write_all(&hello)
        .and_then(|()| writer.flush())
        .map_err(|e| CoreError::io(e.kind(), format!("hello write failed: {e}")))
}

/// Reads and verifies the hello, returning the server's protocol version.
/// Rejects a foreign magic or an unknown version.
pub fn read_hello<R: Read>(reader: &mut R) -> Result<u32> {
    let mut hello = [0u8; HELLO_LEN];
    reader
        .read_exact(&mut hello)
        .map_err(|e| CoreError::io(e.kind(), format!("hello read failed: {e}")))?;
    if hello[..HELLO_MAGIC.len()] != HELLO_MAGIC {
        return Err(CoreError::io_data("not a pkgrec server (bad hello magic)"));
    }
    let version = u32::from_le_bytes(hello[HELLO_MAGIC.len()..].try_into().expect("4 bytes"));
    if version != PROTOCOL_VERSION {
        return Err(CoreError::io_data(format!(
            "protocol version mismatch: server speaks v{version}, client speaks v{PROTOCOL_VERSION}"
        )));
    }
    Ok(version)
}

/// Reads exactly `buf.len()` bytes, treating read timeouts as "poll the
/// stop callback and retry".  `at_frame_start` selects the clean-EOF
/// interpretation: a peer that hangs up *between* frames is [`Closed`],
/// one that hangs up *inside* a frame left it torn ([`Corrupt`]).
///
/// [`Closed`]: FrameError::Closed
/// [`Corrupt`]: FrameError::Corrupt
fn read_exact_polling<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    at_frame_start: bool,
    stop: &dyn Fn() -> bool,
) -> std::result::Result<(), FrameError> {
    let mut got = 0usize;
    while got < buf.len() {
        match reader.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if at_frame_start && got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Corrupt(format!("eof after {got} of {} expected bytes", buf.len()))
                });
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                if stop() {
                    return Err(FrameError::Stopped);
                }
            }
            Err(e) => {
                return Err(FrameError::Io {
                    kind: e.kind(),
                    message: e.to_string(),
                })
            }
        }
    }
    Ok(())
}

/// Reads one frame's payload bytes off the stream.
///
/// The stream should carry a read timeout (e.g.
/// [`std::net::TcpStream::set_read_timeout`]); each timeout tick polls
/// `stop` so a blocked reader notices shutdown or a client deadline.  All
/// failure shapes are typed — see [`FrameError`] — and a CRC mismatch is
/// detected *before* the payload is parsed.
pub fn read_frame<R: Read>(
    reader: &mut R,
    max_len: usize,
    stop: &dyn Fn() -> bool,
) -> std::result::Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; FRAME_PREFIX_LEN];
    read_exact_polling(reader, &mut prefix, true, stop)?;
    let len = u32::from_le_bytes(prefix[0..4].try_into().expect("4 bytes")) as usize;
    let expected_crc = u32::from_le_bytes(prefix[4..8].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len];
    read_exact_polling(reader, &mut payload, false, stop)?;
    let actual_crc = crc32(&payload);
    if actual_crc != expected_crc {
        return Err(FrameError::Corrupt(format!(
            "crc mismatch: frame says {expected_crc:#010x}, payload hashes to {actual_crc:#010x}"
        )));
    }
    Ok(payload)
}

/// Reads one frame and parses it as `T`.  Framing failures surface as
/// [`FrameError`]; a frame whose bytes are intact but whose JSON does not
/// parse comes back as `Ok(Err(message))` so the caller can reply
/// [`ErrorKind::InvalidRequest`] and keep the connection open.
pub fn read_message<R: Read, T: Deserialize>(
    reader: &mut R,
    max_len: usize,
    stop: &dyn Fn() -> bool,
) -> std::result::Result<std::result::Result<T, String>, FrameError> {
    let payload = read_frame(reader, max_len, stop)?;
    Ok(serde_json::from_slice(&payload).map_err(|e| e.to_string()))
}

/// A `stop` callback for [`read_frame`] that never stops (blocking reads
/// with no deadline).
pub fn never_stop() -> bool {
    false
}

/// Builds a `stop` callback that fires once `timeout` has elapsed.
pub fn deadline_stop(timeout: Duration) -> impl Fn() -> bool {
    let deadline = std::time::Instant::now() + timeout;
    move || std::time::Instant::now() >= deadline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let request = Request::Present { session: 42 };
        let frame = encode_frame(&request).unwrap();
        assert_eq!(
            u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize,
            frame.len() - FRAME_PREFIX_LEN
        );
        let mut cursor = &frame[..];
        let parsed: Request = read_message(&mut cursor, DEFAULT_MAX_FRAME_LEN, &never_stop)
            .unwrap()
            .unwrap();
        assert_eq!(parsed, request);
    }

    #[test]
    fn bad_crc_is_corrupt() {
        let mut frame = encode_frame(&Request::Stats).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        let mut cursor = &frame[..];
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN, &never_stop) {
            Err(FrameError::Corrupt(msg)) => assert!(msg.contains("crc mismatch"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_corrupt_and_empty_stream_is_closed() {
        let frame = encode_frame(&Request::Sync).unwrap();
        let mut torn = &frame[..frame.len() - 2];
        match read_frame(&mut torn, DEFAULT_MAX_FRAME_LEN, &never_stop) {
            Err(FrameError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let mut empty: &[u8] = &[];
        assert_eq!(
            read_frame(&mut empty, DEFAULT_MAX_FRAME_LEN, &never_stop),
            Err(FrameError::Closed)
        );
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let mut frame = encode_frame(&Request::Stats).unwrap();
        frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = &frame[..];
        assert_eq!(
            read_frame(&mut cursor, 1024, &never_stop),
            Err(FrameError::Oversized {
                len: u32::MAX as usize
            })
        );
    }

    #[test]
    fn hello_round_trip_and_rejections() {
        let mut buf = Vec::new();
        write_hello(&mut buf).unwrap();
        assert_eq!(buf.len(), HELLO_LEN);
        assert_eq!(read_hello(&mut &buf[..]).unwrap(), PROTOCOL_VERSION);

        let mut wrong_magic = buf.clone();
        wrong_magic[0] = b'X';
        assert!(read_hello(&mut &wrong_magic[..]).is_err());

        let mut wrong_version = buf.clone();
        wrong_version[HELLO_MAGIC.len()..].copy_from_slice(&99u32.to_le_bytes());
        assert!(read_hello(&mut &wrong_version[..]).is_err());
    }

    #[test]
    fn wire_error_round_trips_core_variants() {
        let unknown = CoreError::UnknownSession(7);
        assert_eq!(WireError::from_core(&unknown).to_core(), unknown);
        let invalid = CoreError::InvalidConfig("k must be positive".into());
        assert_eq!(
            WireError::from_core(&invalid).to_core(),
            CoreError::InvalidConfig(invalid.to_string())
        );
        match WireError::from_core(&CoreError::EmptyCatalog).kind {
            ErrorKind::Internal => {}
            kind => panic!("expected Internal, got {kind:?}"),
        }
    }

    #[test]
    fn wire_error_round_trips_io_kind_and_degraded_shard() {
        let io = CoreError::io(std::io::ErrorKind::StorageFull, "segment write: disk full");
        let wire = WireError::from_core(&io);
        assert_eq!(wire.kind, ErrorKind::Io);
        assert_eq!(wire.io_kind.as_deref(), Some("StorageFull"));
        assert_eq!(wire.to_core(), io);

        let degraded = CoreError::Degraded {
            shard: 3,
            reason: "append retry budget exhausted".into(),
        };
        let wire = WireError::from_core(&degraded);
        assert_eq!(wire.kind, ErrorKind::Degraded);
        assert_eq!(wire.shard, Some(3));
        assert_eq!(wire.to_core(), degraded);
    }

    #[test]
    fn io_kind_names_parse_back_to_themselves() {
        use std::io::ErrorKind::*;
        for kind in [
            NotFound,
            PermissionDenied,
            ConnectionReset,
            ConnectionAborted,
            BrokenPipe,
            InvalidData,
            TimedOut,
            WriteZero,
            StorageFull,
            Interrupted,
            UnexpectedEof,
            Other,
        ] {
            assert_eq!(parse_io_kind(&format!("{kind:?}")), kind);
        }
        assert_eq!(parse_io_kind("SomeFutureKind"), Other);
    }

    #[test]
    fn invalid_json_in_valid_frame_keeps_framing_errors_separate() {
        let payload = b"{not json".to_vec();
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut cursor = &frame[..];
        let parsed: std::result::Result<Request, String> =
            read_message(&mut cursor, DEFAULT_MAX_FRAME_LEN, &never_stop).unwrap();
        assert!(parsed.is_err(), "intact frame with bad JSON parses to Err");
    }
}
