//! A blocking client for the `pkgrec` wire protocol.
//!
//! [`Client`] exposes the same verbs as the in-process
//! [`SessionStore`](pkgrec_serve::SessionStore) — `create`, `present`,
//! `feedback`, `recommend`, `snapshot`, `stats`, `sync` — with identical
//! result types, so code written against the store ports to the wire by
//! swapping the receiver.  Typed [`WireError`](crate::protocol::WireError)
//! replies are mapped back into [`CoreError`]
//! variants (`UnknownSession` keeps its id through the round trip).

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use pkgrec_core::{CoreError, Feedback, Package, RankedPackage, Result};
use pkgrec_serve::{SessionConfig, StoreStats};

use crate::protocol::{
    read_hello, read_message, write_frame, Request, Response, DEFAULT_MAX_FRAME_LEN,
};

/// A blocking connection to a [`Server`](crate::Server).
pub struct Client {
    stream: TcpStream,
    max_frame_len: usize,
    timeout: Duration,
}

impl Client {
    /// Connects with defaults: 30 s per request, 8 MiB frames.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        Client::connect_with(addr, Duration::from_secs(30), DEFAULT_MAX_FRAME_LEN)
    }

    /// Connects, verifies the server hello, and configures limits.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
        max_frame_len: usize,
    ) -> Result<Client> {
        let stream =
            TcpStream::connect(addr).map_err(|e| CoreError::Io(format!("connect failed: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| CoreError::Io(format!("set_nodelay failed: {e}")))?;
        // The hello is raw bytes (not framed): give it one blocking read
        // bounded by the full request timeout, then drop to the short
        // polling timeout the frame reader expects.
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| CoreError::Io(format!("set_read_timeout failed: {e}")))?;
        let mut stream = stream;
        read_hello(&mut stream)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(5)))
            .map_err(|e| CoreError::Io(format!("set_read_timeout failed: {e}")))?;
        Ok(Client {
            stream,
            max_frame_len,
            timeout,
        })
    }

    /// Sends one request and awaits its reply (bounded by the timeout).
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        write_frame(&mut self.stream, request)?;
        self.read_reply::<Response>()
    }

    fn read_reply<T: serde::Deserialize>(&mut self) -> Result<T> {
        let stop = crate::protocol::deadline_stop(self.timeout);
        match read_message::<_, T>(&mut self.stream, self.max_frame_len, &stop) {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(parse_error)) => Err(CoreError::Io(format!(
                "unparseable server reply: {parse_error}"
            ))),
            Err(frame_error) => Err(frame_error.into_core()),
        }
    }

    /// Creates a session on the server, returning its assigned id.
    pub fn create(&mut self, config: SessionConfig) -> Result<u64> {
        match self.request(&Request::Create { config })? {
            Response::Created { session } => Ok(session),
            other => unexpected("Create", other),
        }
    }

    /// Builds one presentation round for the session.
    pub fn present(&mut self, session: u64) -> Result<Vec<Package>> {
        match self.request(&Request::Present { session })? {
            Response::Presented { packages } => Ok(packages),
            other => unexpected("Present", other),
        }
    }

    /// Records typed feedback; returns the pairwise preferences derived.
    pub fn feedback(&mut self, session: u64, feedback: Feedback) -> Result<usize> {
        match self.request(&Request::Feedback { session, feedback })? {
            Response::FeedbackRecorded { preferences } => Ok(preferences),
            other => unexpected("Feedback", other),
        }
    }

    /// The session's current top-k recommendation.
    pub fn recommend(&mut self, session: u64) -> Result<Vec<RankedPackage>> {
        match self.request(&Request::Recommend { session })? {
            Response::Recommended { ranked } => Ok(ranked),
            other => unexpected("Recommend", other),
        }
    }

    /// Serialises the session's snapshot, journaling it as a checkpoint.
    pub fn snapshot(&mut self, session: u64) -> Result<String> {
        match self.request(&Request::Snapshot { session })? {
            Response::Snapshotted { snapshot } => Ok(snapshot),
            other => unexpected("Snapshot", other),
        }
    }

    /// Store-wide counters plus the resident session count.
    pub fn stats(&mut self) -> Result<(usize, StoreStats)> {
        match self.request(&Request::Stats)? {
            Response::Stats { sessions, stats } => Ok((sessions, stats)),
            other => unexpected("Stats", other),
        }
    }

    /// Forces every shard's buffered journal bytes to disk.
    pub fn sync(&mut self) -> Result<()> {
        match self.request(&Request::Sync)? {
            Response::Synced => Ok(()),
            other => unexpected("Sync", other),
        }
    }
}

/// Collapses a mismatched reply: error replies become their `CoreError`,
/// anything else is a protocol violation.
fn unexpected<T>(verb: &str, response: Response) -> Result<T> {
    match response {
        Response::Error(wire) => Err(wire.to_core()),
        other => Err(CoreError::Io(format!(
            "protocol violation: {verb} answered with {other:?}"
        ))),
    }
}
