//! A blocking client for the `pkgrec` wire protocol.
//!
//! [`Client`] exposes the same verbs as the in-process
//! [`SessionStore`](pkgrec_serve::SessionStore) — `create`, `present`,
//! `feedback`, `recommend`, `snapshot`, `stats`, `sync` — with identical
//! result types, so code written against the store ports to the wire by
//! swapping the receiver.  Typed [`WireError`](crate::protocol::WireError)
//! replies are mapped back into [`CoreError`]
//! variants (`UnknownSession` keeps its id through the round trip).
//!
//! ## Retries
//!
//! *Idempotent* verbs — [`Client::recommend`], [`Client::snapshot`],
//! [`Client::stats`] — transparently survive a lost connection: on a
//! connection-loss error class the client reconnects to the resolved
//! address with bounded exponential backoff ([`RetryPolicy`]) and resends
//! the request.  Mutating verbs (`create`, `present`, `feedback`) never
//! retry automatically — a resend could double-apply the operation — so
//! their connection-loss errors surface to the caller.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use pkgrec_core::{CoreError, Feedback, Package, RankedPackage, Result};
use pkgrec_serve::{SessionConfig, StoreStats};

use crate::protocol::{
    read_hello, read_message, write_frame, Request, Response, DEFAULT_MAX_FRAME_LEN,
};

/// Bounded exponential backoff for reconnect-and-resend of idempotent
/// requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Reconnect attempts per request beyond the first try (0 disables
    /// retries entirely).
    pub attempts: usize,
    /// Backoff before the first reconnect; doubles per attempt.
    pub initial_backoff: Duration,
    /// Ceiling the doubling backoff saturates at.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// Whether an error means "the connection is gone" (worth a reconnect)
/// rather than "the server answered with an error" (never retried).
fn is_connection_loss(error: &CoreError) -> bool {
    use std::io::ErrorKind;
    matches!(
        error,
        CoreError::Io { kind, .. } if matches!(
            kind,
            ErrorKind::BrokenPipe
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::ConnectionRefused
                | ErrorKind::NotConnected
                | ErrorKind::UnexpectedEof
        )
    )
}

/// A blocking connection to a [`Server`](crate::Server).
pub struct Client {
    stream: TcpStream,
    /// The resolved address, kept for reconnects.
    addr: SocketAddr,
    max_frame_len: usize,
    timeout: Duration,
    retry: RetryPolicy,
    retries: u64,
}

impl Client {
    /// Connects with defaults: 30 s per request, 8 MiB frames.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        Client::connect_with(addr, Duration::from_secs(30), DEFAULT_MAX_FRAME_LEN)
    }

    /// Connects, verifies the server hello, and configures limits.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
        max_frame_len: usize,
    ) -> Result<Client> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| CoreError::io(e.kind(), format!("resolve failed: {e}")))?
            .next()
            .ok_or_else(|| CoreError::io_data("address resolved to nothing"))?;
        let stream = Client::open_stream(addr, timeout)?;
        Ok(Client {
            stream,
            addr,
            max_frame_len,
            timeout,
            retry: RetryPolicy::default(),
            retries: 0,
        })
    }

    /// Dials the resolved address, verifies the hello, sets the timeouts.
    fn open_stream(addr: SocketAddr, timeout: Duration) -> Result<TcpStream> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| CoreError::io(e.kind(), format!("connect failed: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| CoreError::io(e.kind(), format!("set_nodelay failed: {e}")))?;
        // The hello is raw bytes (not framed): give it one blocking read
        // bounded by the full request timeout, then drop to the short
        // polling timeout the frame reader expects.
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| CoreError::io(e.kind(), format!("set_read_timeout failed: {e}")))?;
        let mut stream = stream;
        read_hello(&mut stream)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(5)))
            .map_err(|e| CoreError::io(e.kind(), format!("set_read_timeout failed: {e}")))?;
        Ok(stream)
    }

    /// Replaces the default [`RetryPolicy`] for the idempotent verbs.
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Reconnect attempts made so far (successful or not) — one per
    /// connection-loss retry of an idempotent request.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Sends one request and awaits its reply (bounded by the timeout).
    /// Never retries: use the typed verbs to get retry semantics.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        write_frame(&mut self.stream, request)?;
        self.read_reply::<Response>()
    }

    /// [`Client::request`] for idempotent verbs: a connection-loss error
    /// triggers reconnect-and-resend under the bounded backoff policy.
    fn request_idempotent(&mut self, request: &Request) -> Result<Response> {
        let mut backoff = self.retry.initial_backoff;
        let mut attempt = 0;
        loop {
            let error = match self.request(request) {
                Ok(response) => return Ok(response),
                Err(e) if is_connection_loss(&e) => e,
                Err(e) => return Err(e),
            };
            if attempt >= self.retry.attempts {
                return Err(error);
            }
            attempt += 1;
            self.retries += 1;
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(self.retry.max_backoff);
            // A failed reconnect keeps the dead stream; the next loop
            // iteration fails fast and consumes another attempt.
            if let Ok(stream) = Client::open_stream(self.addr, self.timeout) {
                self.stream = stream;
            }
        }
    }

    fn read_reply<T: serde::Deserialize>(&mut self) -> Result<T> {
        let stop = crate::protocol::deadline_stop(self.timeout);
        match read_message::<_, T>(&mut self.stream, self.max_frame_len, &stop) {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(parse_error)) => Err(CoreError::io_data(format!(
                "unparseable server reply: {parse_error}"
            ))),
            Err(frame_error) => Err(frame_error.into_core()),
        }
    }

    /// Creates a session on the server, returning its assigned id.
    pub fn create(&mut self, config: SessionConfig) -> Result<u64> {
        match self.request(&Request::Create { config })? {
            Response::Created { session } => Ok(session),
            other => unexpected("Create", other),
        }
    }

    /// Builds one presentation round for the session.
    pub fn present(&mut self, session: u64) -> Result<Vec<Package>> {
        match self.request(&Request::Present { session })? {
            Response::Presented { packages } => Ok(packages),
            other => unexpected("Present", other),
        }
    }

    /// Records typed feedback; returns the pairwise preferences derived.
    pub fn feedback(&mut self, session: u64, feedback: Feedback) -> Result<usize> {
        match self.request(&Request::Feedback { session, feedback })? {
            Response::FeedbackRecorded { preferences } => Ok(preferences),
            other => unexpected("Feedback", other),
        }
    }

    /// The session's current top-k recommendation.  Idempotent: survives
    /// a lost connection by reconnecting under the [`RetryPolicy`].
    pub fn recommend(&mut self, session: u64) -> Result<Vec<RankedPackage>> {
        match self.request_idempotent(&Request::Recommend { session })? {
            Response::Recommended { ranked } => Ok(ranked),
            other => unexpected("Recommend", other),
        }
    }

    /// Serialises the session's snapshot, journaling it as a checkpoint.
    /// Idempotent (a re-sent checkpoint replays identically): survives a
    /// lost connection by reconnecting under the [`RetryPolicy`].
    pub fn snapshot(&mut self, session: u64) -> Result<String> {
        match self.request_idempotent(&Request::Snapshot { session })? {
            Response::Snapshotted { snapshot } => Ok(snapshot),
            other => unexpected("Snapshot", other),
        }
    }

    /// Store-wide counters plus the resident session count.  Idempotent:
    /// survives a lost connection by reconnecting under the
    /// [`RetryPolicy`].
    pub fn stats(&mut self) -> Result<(usize, StoreStats)> {
        match self.request_idempotent(&Request::Stats)? {
            Response::Stats { sessions, stats } => Ok((sessions, stats)),
            other => unexpected("Stats", other),
        }
    }

    /// Forces every shard's buffered journal bytes to disk.
    pub fn sync(&mut self) -> Result<()> {
        match self.request(&Request::Sync)? {
            Response::Synced => Ok(()),
            other => unexpected("Sync", other),
        }
    }
}

/// Collapses a mismatched reply: error replies become their `CoreError`,
/// anything else is a protocol violation.
fn unexpected<T>(verb: &str, response: Response) -> Result<T> {
    match response {
        Response::Error(wire) => Err(wire.to_core()),
        other => Err(CoreError::io_data(format!(
            "protocol violation: {verb} answered with {other:?}"
        ))),
    }
}
