//! A closed-loop load generator for the wire protocol.
//!
//! `clients` threads each hold one connection and drive a disjoint slice
//! of elicitation sessions through `create → (present → feedback)* →
//! recommend`, closed-loop: the next request leaves only after the reply
//! lands.  Every wire call's latency feeds a log-linear
//! [`LatencyHistogram`] (p50/p99/p999 without storing samples), and the
//! run's throughput and tail latencies come back as a serialisable
//! [`LoadReport`] — the payload of `BENCH_server.json`.
//!
//! The shadow check is the point: each client keeps a private, memory-only
//! [`SessionStore`] and replays every operation against it.  Because a
//! session's RNG streams derive from `(seed, op index)` alone — never the
//! session id or the process — the wire results must be *byte-identical*
//! to the in-process ones; any divergence increments
//! [`LoadReport::mismatches`], which benches assert to be zero.  This
//! extends the store's determinism contract across the network boundary.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pkgrec_baselines::{BaselineSpec, EmRefitConfig, FeatureDirection};
use pkgrec_core::prelude::*;
use pkgrec_serve::{user_rng, RecommenderSpec, SessionConfig, SessionStore, StoreConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::client::Client;

/// Shape of one load-generation run.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent connections (threads), each driving its own sessions.
    pub clients: usize,
    /// Total sessions across all clients (session `i` belongs to client
    /// `i % clients`).
    pub sessions: usize,
    /// Present+feedback rounds per session before the final recommend.
    pub rounds: usize,
    /// Catalog size (items with price/rating features).
    pub catalog_items: usize,
    /// Maximum package size φ.
    pub max_package_size: usize,
    /// Master seed: catalog, ground-truth users and session seeds all
    /// derive from it.
    pub seed: u64,
    /// Replay every op against a per-client in-process shadow store and
    /// count divergences.
    pub shadow_check: bool,
    /// Per-request timeout handed to each [`Client`].
    pub timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 2,
            sessions: 8,
            rounds: 2,
            catalog_items: 40,
            max_package_size: 2,
            seed: 2014,
            shadow_check: true,
            timeout: Duration::from_secs(60),
        }
    }
}

/// Number of leading one-microsecond-exact buckets (also the sub-bucket
/// resolution above them: ~1.6% relative error).
const LINEAR_BUCKETS: u64 = 64;
/// 58 power-of-two groups of 64 sub-buckets cover all of `u64`.
const TOTAL_BUCKETS: usize = (LINEAR_BUCKETS as usize) * 59;

/// A log-linear latency histogram in microseconds: exact below 64 µs,
/// 64 sub-buckets per power of two above (HDR-style, fixed memory).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; TOTAL_BUCKETS],
            total: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    fn bucket_of(us: u64) -> usize {
        if us < LINEAR_BUCKETS {
            us as usize
        } else {
            let exp = 63 - u64::from(us.leading_zeros()); // ≥ 6
            let group = exp - 5;
            let offset = (us >> (exp - 6)) - LINEAR_BUCKETS;
            (group * LINEAR_BUCKETS + offset) as usize
        }
    }

    /// Lower bound (µs) of the bucket at `index` — what quantiles report.
    fn bucket_low(index: usize) -> u64 {
        let index = index as u64;
        if index < LINEAR_BUCKETS {
            index
        } else {
            let group = index / LINEAR_BUCKETS - 1;
            let offset = index % LINEAR_BUCKETS;
            (LINEAR_BUCKETS + offset) << group
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.counts[Self::bucket_of(us)] += 1;
        self.total += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest sample (µs).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean latency (µs); 0 when empty.
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64
        }
    }

    /// The latency (µs, bucket lower bound) below which a fraction `q`
    /// of samples fall.  `q` is clamped to `[0, 1]`; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_low(index);
            }
        }
        self.max_us
    }
}

/// The outcome of one load run — serialised into `BENCH_server.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Concurrent connections driven.
    pub clients: usize,
    /// Sessions completed.
    pub sessions: usize,
    /// Present+feedback rounds per session.
    pub rounds: usize,
    /// Wire requests issued (create/present/feedback/recommend).
    pub requests: usize,
    /// Reconnect-and-resend attempts the clients' idempotent verbs made
    /// after a lost connection (0 against a healthy server).
    pub retries: u64,
    /// Wire results that diverged from the in-process shadow store
    /// (must be 0: the determinism contract extends across the wire).
    pub mismatches: usize,
    /// Whether the shadow comparison ran.
    pub shadow_checked: bool,
    /// Wall-clock for the whole run.
    pub elapsed_secs: f64,
    /// Completed sessions per second of wall-clock.
    pub sessions_per_sec: f64,
    /// Wire requests per second of wall-clock.
    pub requests_per_sec: f64,
    /// Median request latency (µs).
    pub p50_us: u64,
    /// 99th-percentile request latency (µs).
    pub p99_us: u64,
    /// 99.9th-percentile request latency (µs).
    pub p999_us: u64,
    /// Worst request latency (µs).
    pub max_us: u64,
    /// Mean request latency (µs).
    pub mean_us: f64,
}

/// What one client thread brings home.
struct ClientOutcome {
    histogram: LatencyHistogram,
    requests: usize,
    mismatches: usize,
    sessions: usize,
    retries: u64,
}

/// Builds the deterministic storefront catalog every load-generated
/// session shops from (shared by the bench and the demo).
pub fn build_catalog(seed: u64, items: usize) -> Result<Arc<Catalog>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..items)
        .map(|_| {
            let price: f64 = rng.gen_range(0.05..1.0f64).powf(1.3);
            let rating: f64 = rng.gen_range(0.3..1.0);
            vec![price, rating]
        })
        .collect();
    Ok(Arc::new(Catalog::from_rows(rows)?))
}

/// The mixed-fleet recommender recipe for session `i` — the same blend of
/// engine and baseline sessions the serving bench drives.
pub fn session_spec(i: u64) -> RecommenderSpec {
    match i % 4 {
        2 => RecommenderSpec::Baseline(BaselineSpec::EmRefit(EmRefitConfig {
            k: 3,
            num_random: 2,
            num_samples: 20,
            samples_per_refit: 40,
            ..EmRefitConfig::default()
        })),
        3 => RecommenderSpec::Baseline(BaselineSpec::Skyline {
            cardinality: 2,
            directions: vec![FeatureDirection::Minimize, FeatureDirection::Maximize],
            k: 3,
        }),
        _ => RecommenderSpec::Engine(EngineConfig {
            k: 3,
            num_random: 2,
            num_samples: 24,
            ..EngineConfig::default()
        }),
    }
}

/// Runs one closed-loop load generation against a listening server.
///
/// Spawns `config.clients` threads; thread `c` drives sessions
/// `{i : i % clients == c}` to completion and measures every wire call.
/// Returns the merged report.  Fails if any connection fails — a load
/// run against a dead or misbehaving server is not a result.
pub fn run(addr: SocketAddr, config: &LoadConfig) -> Result<LoadReport> {
    if config.clients == 0 || config.sessions == 0 {
        return Err(CoreError::InvalidConfig(
            "load generation needs at least one client and one session".into(),
        ));
    }
    let catalog = build_catalog(config.seed, config.catalog_items)?;
    let profile = Profile::cost_quality();
    let context = AggregationContext::new(profile.clone(), &catalog, config.max_package_size)?;

    let started = Instant::now();
    let outcomes: Vec<Result<ClientOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let catalog = catalog.clone();
                let profile = profile.clone();
                let context = context.clone();
                scope.spawn(move || drive_client(c, addr, config, &catalog, &profile, &context))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                Err(_) => Err(CoreError::io(
                    std::io::ErrorKind::Other,
                    "load client thread panicked",
                )),
            })
            .collect()
    });

    let elapsed = started.elapsed();
    let mut histogram = LatencyHistogram::new();
    let mut requests = 0usize;
    let mut mismatches = 0usize;
    let mut sessions = 0usize;
    let mut retries = 0u64;
    for outcome in outcomes {
        let outcome = outcome?;
        histogram.merge(&outcome.histogram);
        requests += outcome.requests;
        mismatches += outcome.mismatches;
        sessions += outcome.sessions;
        retries += outcome.retries;
    }
    let secs = elapsed.as_secs_f64().max(1e-9);
    Ok(LoadReport {
        clients: config.clients,
        sessions,
        rounds: config.rounds,
        requests,
        retries,
        mismatches,
        shadow_checked: config.shadow_check,
        elapsed_secs: secs,
        sessions_per_sec: sessions as f64 / secs,
        requests_per_sec: requests as f64 / secs,
        p50_us: histogram.quantile(0.50),
        p99_us: histogram.quantile(0.99),
        p999_us: histogram.quantile(0.999),
        max_us: histogram.max_us(),
        mean_us: histogram.mean_us(),
    })
}

/// One client thread: connect once, drive this client's sessions.
fn drive_client(
    client_index: usize,
    addr: SocketAddr,
    config: &LoadConfig,
    catalog: &Arc<Catalog>,
    profile: &Profile,
    context: &AggregationContext,
) -> Result<ClientOutcome> {
    let mut wire =
        Client::connect_with(addr, config.timeout, crate::protocol::DEFAULT_MAX_FRAME_LEN)?;
    // The shadow: a private, memory-only store.  Session ids differ from
    // the server's (each client's shadow numbers its own sessions from 0)
    // but results cannot: every op's RNG derives from (seed, op index).
    let mut shadow = if config.shadow_check {
        Some(SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: config.sessions.max(1),
        })?)
    } else {
        None
    };

    let mut outcome = ClientOutcome {
        histogram: LatencyHistogram::new(),
        requests: 0,
        mismatches: 0,
        sessions: 0,
        retries: 0,
    };

    for i in (0..config.sessions as u64).filter(|i| *i as usize % config.clients == client_index) {
        let session_seed = config.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1));
        let session_config = SessionConfig {
            catalog: catalog.clone(),
            profile: profile.clone(),
            max_package_size: config.max_package_size,
            spec: session_spec(i),
            seed: session_seed,
        };
        // The hidden user behind this session, deterministic in (seed, i).
        let mut taste_rng = user_rng(session_seed);
        let weights = random_ground_truth_weights(context.dim(), &mut taste_rng);
        let user = SimulatedUser::new(LinearUtility::new(context.clone(), weights)?);
        let mut choice_rng = user_rng(session_seed ^ 0x5ee5);

        let wire_id = timed(&mut outcome, |_| wire.create(session_config.clone()))?;
        let shadow_id = match &mut shadow {
            Some(store) => Some(store.create(session_config.clone())?),
            None => None,
        };

        for _round in 0..config.rounds {
            let shown = timed(&mut outcome, |_| wire.present(wire_id))?;
            if let (Some(store), Some(sid)) = (&mut shadow, shadow_id) {
                let expected = store.present(sid)?;
                if serde_json::to_string(&shown) != serde_json::to_string(&expected) {
                    outcome.mismatches += 1;
                }
            }
            let choice = user.choose(catalog, &shown, &mut choice_rng)?;
            let feedback = Feedback::Click { index: choice };
            timed(&mut outcome, |_| wire.feedback(wire_id, feedback))?;
            if let (Some(store), Some(sid)) = (&mut shadow, shadow_id) {
                store.feedback(sid, feedback)?;
            }
        }

        let ranked = timed(&mut outcome, |_| wire.recommend(wire_id))?;
        if let (Some(store), Some(sid)) = (&mut shadow, shadow_id) {
            let expected = store.recommend(sid)?;
            if serde_json::to_string(&ranked) != serde_json::to_string(&expected) {
                outcome.mismatches += 1;
            }
        }
        outcome.sessions += 1;
    }
    outcome.retries = wire.retries();
    Ok(outcome)
}

/// Times one wire call into the outcome's histogram.
fn timed<T>(
    outcome: &mut ClientOutcome,
    call: impl FnOnce(&mut ClientOutcome) -> Result<T>,
) -> Result<T> {
    let start = Instant::now();
    let result = call(outcome);
    outcome.histogram.record(start.elapsed());
    outcome.requests += 1;
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_exact_below_64us() {
        let mut h = LatencyHistogram::new();
        for us in [0u64, 1, 5, 63] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.total(), 4);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.max_us(), 63);
    }

    #[test]
    fn histogram_buckets_invert() {
        for us in [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            4096,
            1_000_000,
            u64::MAX / 2,
        ] {
            let bucket = LatencyHistogram::bucket_of(us);
            let low = LatencyHistogram::bucket_low(bucket);
            assert!(low <= us, "bucket_low({bucket})={low} must be ≤ {us}");
            // The bucket's relative width is ≤ 1/64 above the linear range.
            if us >= LINEAR_BUCKETS {
                assert!(
                    us - low <= us / LINEAR_BUCKETS,
                    "bucket too wide at {us}: low {low}"
                );
            } else {
                assert_eq!(low, us);
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_monotonic_and_merge_adds() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..1000u64 {
            a.record(Duration::from_micros(i));
            b.record(Duration::from_micros(10 * i));
        }
        let (p50, p99, p999) = (a.quantile(0.5), a.quantile(0.99), a.quantile(0.999));
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        // p50 of 0..1000 µs lands on the bucket holding ~500 µs.
        assert!((400..=520).contains(&p50), "p50 {p50}");

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total(), 2000);
        assert_eq!(merged.max_us(), b.max_us());
        assert!(merged.quantile(0.5) >= a.quantile(0.5));
    }
}
