//! # pkgrec-server
//!
//! The network front door of the `pkgrec` workspace: a TCP server, wire
//! protocol and client that put a [`SessionStore`](pkgrec_serve::SessionStore)
//! behind a socket without giving up any of its guarantees.
//!
//! Three layers compose the crate:
//!
//! * [`protocol`] — a length-prefixed, CRC32-framed JSON codec
//!   (`[len|crc32|payload]`, the durable journal's own record idiom) with a
//!   versioned `PKGSRV\0` hello; [`Request`]/[`Response`] mirror the store
//!   surface verb for verb, and failures travel as typed
//!   [`WireError`](protocol::WireError) replies that reconstruct
//!   [`CoreError`](pkgrec_core::CoreError) variants client-side.
//! * [`Server`] — an accept loop in front of per-shard worker threads.
//!   Requests route by [`shard_of`](pkgrec_serve::shard_of)`(session)`
//!   over bounded channels to the worker that owns that shard `&mut`
//!   exclusively (the [`ServingLoop`](pkgrec_serve::ServingLoop) ownership
//!   discipline, so connections never contend on a lock).  Each request
//!   runs under a deadline; malformed frames are rejected without
//!   disturbing other connections; shutdown drains and `sync()`s the
//!   durable log.  With [`ServerConfig::batch_window`] set, the workers
//!   stop scoring presents inline: each drains the consecutive Present
//!   jobs at the head of its queue (per-connection FIFO survives —
//!   the drain stops at the first other verb), prepares them, and
//!   submits to a shared cross-shard
//!   [`ScoringService`](pkgrec_serve::ScoringService) whose
//!   window-bounded flush stacks same-catalog presents from *all*
//!   shards into one kernel sweep, subject to the adaptive admission
//!   policy — declined or unbatchable work falls back to serial
//!   scoring with byte-identical wire results, and the store's
//!   [`StoreStats`](pkgrec_serve::StoreStats) audits every decision.
//! * [`loadgen`] — a closed-loop load generator whose clients replay every
//!   wire operation against private in-process shadow stores: because
//!   session RNG streams derive from `(seed, op index)` alone, wire
//!   results must be byte-identical to in-process ones, and the generator
//!   counts every divergence while recording p50/p99/p999 latencies.
//!
//! ## Quick start: a store behind a socket
//!
//! ```
//! use std::sync::Arc;
//!
//! use pkgrec_core::prelude::*;
//! use pkgrec_serve::{RecommenderSpec, SessionConfig, SessionStore, StoreConfig};
//! use pkgrec_server::{Client, Server, ServerConfig};
//!
//! // An in-memory store (open a directory instead for durability).
//! let store = SessionStore::new(StoreConfig { shards: 2, capacity_per_shard: 8 }).unwrap();
//!
//! // Bind an ephemeral port, keep a control handle, serve on a thread.
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! let control = server.control();
//! let handle = std::thread::spawn(move || {
//!     let mut store = store;
//!     let report = server.serve(&mut store).unwrap();
//!     (store, report)
//! });
//!
//! // A client drives the same verbs the in-process store exposes.
//! let mut client = Client::connect(addr).unwrap();
//! let catalog = Arc::new(Catalog::from_rows(vec![
//!     vec![0.6, 0.2],
//!     vec![0.4, 0.4],
//!     vec![0.2, 0.4],
//!     vec![0.9, 0.8],
//! ]).unwrap());
//! let id = client.create(SessionConfig {
//!     catalog,
//!     profile: Profile::cost_quality(),
//!     max_package_size: 2,
//!     spec: RecommenderSpec::Engine(EngineConfig {
//!         k: 2,
//!         num_random: 2,
//!         num_samples: 20,
//!         ..EngineConfig::default()
//!     }),
//!     seed: 7,
//! }).unwrap();
//! let shown = client.present(id).unwrap();
//! assert!(!shown.is_empty());
//! client.feedback(id, Feedback::Click { index: 0 }).unwrap();
//! let ranked = client.recommend(id).unwrap();
//! assert!(!ranked.is_empty());
//!
//! // Graceful shutdown: the store comes back with the session in it.
//! drop(client);
//! control.shutdown();
//! let (store, report) = handle.join().unwrap();
//! assert_eq!(store.len(), 1);
//! assert_eq!(report.requests, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::{Client, RetryPolicy};
pub use loadgen::{LatencyHistogram, LoadConfig, LoadReport};
pub use protocol::{Request, Response};
pub use server::{ServeReport, Server, ServerConfig, ServerControl};
