//! The sharded request loop: a TCP accept loop in front of per-shard
//! worker threads.
//!
//! Ownership discipline mirrors [`pkgrec_serve::ServingLoop`]: the store's
//! shards are split via [`SessionStore::shards_mut`] and each worker
//! thread owns its shard `&mut` exclusively, so no session operation ever
//! contends with another thread — connections only *route*.  A connection
//! thread parses frames, computes [`shard_of`]`(session)` and pushes a job
//! down that shard's bounded channel, then awaits the reply under the
//! request deadline.  `Stats` and `Sync` broadcast to every shard and
//! merge the replies.
//!
//! Shutdown is graceful by construction: [`ServerControl::shutdown`] flips
//! a flag, the accept loop drains, connection threads notice on their next
//! read-timeout tick, and each worker `sync()`s its shard's durable log
//! when its channel closes — then [`Server::serve`] itself syncs the store
//! once more before returning.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use pkgrec_core::{Feedback, Result};
use pkgrec_serve::{
    shard_of, PendingPresent, ScoringConfig, ScoringService, SessionConfig, SessionId,
    SessionStore, Shard, StoreStats, Verdict,
};
use serde::{Deserialize, Serialize};

use crate::protocol::{
    read_message, write_frame, write_hello, ErrorKind, FrameError, Request, Response, WireError,
    DEFAULT_MAX_FRAME_LEN,
};

/// Tunables for [`Server`]; `Default` suits tests and examples.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Bound of each per-shard job queue; a full queue applies
    /// backpressure to connections rather than growing without limit.
    pub queue_depth: usize,
    /// Deadline for one request, measured from frame parse to reply.
    pub request_timeout: Duration,
    /// Ceiling on a single frame's payload length.
    pub max_frame_len: usize,
    /// Read-timeout granularity: how often blocked readers poll for
    /// shutdown.  Smaller shuts down faster; larger spins less.
    pub poll_interval: Duration,
    /// Cross-shard `Present` batching: when non-zero, each shard worker
    /// opportunistically drains consecutive `Present` jobs off its queue
    /// and submits the prepared work to a fleet-wide
    /// [`ScoringService`] whose open-mode
    /// flush waits up to this window for other shards' work — so
    /// same-catalog sessions on different shards share one kernel sweep
    /// per flush, with the service's admission policy falling back to
    /// serial scoring when a group is too small to pay.  Results are
    /// bit-identical either way.  `Duration::ZERO` (the default) scores
    /// every present inline on its own shard, exactly as before.
    pub batch_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            queue_depth: 64,
            request_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            poll_interval: Duration::from_millis(5),
            batch_window: Duration::ZERO,
        }
    }
}

/// What one [`Server::serve`] run saw, counter by counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: usize,
    /// Well-formed requests executed (error replies included).
    pub requests: usize,
    /// Frames rejected before parsing (torn, bad CRC, oversized).
    pub malformed_frames: usize,
    /// Intact frames whose payload was not a valid request.
    pub invalid_requests: usize,
    /// Requests that missed their deadline inside the server.
    pub timeouts: usize,
    /// Requests that executed but returned an error response.
    pub error_responses: usize,
}

/// Cross-thread server state: the shutdown flag, the session-id
/// allocator, and the report counters.
struct Shared {
    shutdown: Arc<AtomicBool>,
    next_id: AtomicU64,
    connections: AtomicUsize,
    requests: AtomicUsize,
    malformed_frames: AtomicUsize,
    invalid_requests: AtomicUsize,
    timeouts: AtomicUsize,
    error_responses: AtomicUsize,
}

/// A handle that can stop a running server from another thread.
#[derive(Clone)]
pub struct ServerControl {
    shutdown: Arc<AtomicBool>,
}

impl ServerControl {
    /// Requests a graceful shutdown: stop accepting, drain connections,
    /// `sync()` every shard's durable log, return from `serve`.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// The work unit a connection routes to a shard worker.
struct ShardJob {
    request: ShardRequest,
    deadline: Instant,
    reply: SyncSender<Response>,
}

/// A [`Request`] with routing already resolved: `Create` carries its
/// pre-assigned id, broadcast ops arrive once per shard.
enum ShardRequest {
    Create(SessionId, Box<SessionConfig>),
    Present(SessionId),
    Feedback(SessionId, Feedback),
    Recommend(SessionId),
    Snapshot(SessionId),
    Stats,
    Sync,
}

/// A TCP front door for one [`SessionStore`].
///
/// Bind first, then hand the store to [`Server::serve`], which blocks
/// until [`ServerControl::shutdown`] — see the crate quickstart.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address — the port to hand to clients after binding `:0`.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A clonable handle that stops this server from another thread.
    pub fn control(&self) -> ServerControl {
        ServerControl {
            shutdown: self.shutdown.clone(),
        }
    }

    /// Serves the store until shutdown, then returns the run's counters.
    ///
    /// Blocks the calling thread: the accept loop runs inline, and the
    /// worker and connection threads live inside a [`std::thread::scope`]
    /// so every one of them has joined by the time this returns.  On
    /// return the store has absorbed all accepted work, its id allocator
    /// reflects every server-assigned session, and its durable log is
    /// synced.
    pub fn serve(self, store: &mut SessionStore) -> Result<ServeReport> {
        let config = self.config;
        let shared = Arc::new(Shared {
            shutdown: self.shutdown.clone(),
            next_id: AtomicU64::new(store.next_session_id()),
            connections: AtomicUsize::new(0),
            requests: AtomicUsize::new(0),
            malformed_frames: AtomicUsize::new(0),
            invalid_requests: AtomicUsize::new(0),
            timeouts: AtomicUsize::new(0),
            error_responses: AtomicUsize::new(0),
        });

        let shard_count = store.shard_count();
        let mut senders: Vec<SyncSender<ShardJob>> = Vec::with_capacity(shard_count);
        let mut receivers: Vec<Receiver<ShardJob>> = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (tx, rx) = mpsc::sync_channel(config.queue_depth.max(1));
            senders.push(tx);
            receivers.push(rx);
        }

        // The fleet-wide scoring service (open mode: the first submitter
        // leads a flush, waiting up to the window for other shards).
        let scoring = (config.batch_window > Duration::ZERO).then(|| {
            ScoringService::new(ScoringConfig {
                window: config.batch_window,
                ..ScoringConfig::default()
            })
        });

        std::thread::scope(|scope| {
            // One worker per shard, each owning its shard exclusively.
            let service = scoring.as_ref();
            for (shard, rx) in store.shards_mut().iter_mut().zip(receivers) {
                scope.spawn(move || shard_worker(shard, rx, service));
            }

            // The accept loop runs on the scope's own thread.
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        shared.connections.fetch_add(1, Ordering::Relaxed);
                        let senders = senders.clone();
                        let shared = shared.clone();
                        scope.spawn(move || serve_connection(stream, senders, shared, config));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(config.poll_interval);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // A failed accept (e.g. the peer reset before we
                        // got to it) must never take the server down.
                        std::thread::sleep(config.poll_interval);
                    }
                }
            }
            // Closing the channels tells each worker to drain and sync.
            drop(senders);
        });

        store.set_next_session_id(shared.next_id.load(Ordering::SeqCst));
        store.sync()?;
        Ok(ServeReport {
            connections: shared.connections.load(Ordering::Relaxed),
            requests: shared.requests.load(Ordering::Relaxed),
            malformed_frames: shared.malformed_frames.load(Ordering::Relaxed),
            invalid_requests: shared.invalid_requests.load(Ordering::Relaxed),
            timeouts: shared.timeouts.load(Ordering::Relaxed),
            error_responses: shared.error_responses.load(Ordering::Relaxed),
        })
    }
}

/// One shard's worker: drain jobs, execute against the exclusively-owned
/// shard, reply.  When the channel closes (all senders dropped — the
/// graceful-shutdown signal) the worker syncs its shard's durable log.
///
/// With a [`ScoringService`] attached (`batch_window > 0`), a `Present`
/// at the queue head opportunistically drains further consecutive
/// `Present`s and runs them through [`present_batch`]; any other request
/// kind stops the drain and is executed afterwards, so each connection's
/// request order is preserved.
fn shard_worker(shard: &mut Shard, jobs: Receiver<ShardJob>, service: Option<&ScoringService>) {
    while let Ok(job) = jobs.recv() {
        let mut job = Some(job);
        if let Some(service) = service {
            if matches!(
                job.as_ref().map(|j| &j.request),
                Some(ShardRequest::Present(_))
            ) {
                let mut batch = vec![job.take().expect("job is present")];
                while let Ok(next) = jobs.try_recv() {
                    if matches!(next.request, ShardRequest::Present(_)) {
                        batch.push(next);
                    } else {
                        job = Some(next);
                        break;
                    }
                }
                present_batch(shard, batch, service);
            }
        }
        let Some(job) = job else { continue };
        if Instant::now() >= job.deadline {
            // The connection has already timed out and replied; executing
            // now would waste the shard's time on an unobservable result.
            // Dropping `job.reply` wakes the waiter with a disconnect.
            continue;
        }
        let response = execute(shard, job.request);
        // The reply channel has capacity 1 and one consumer; if the
        // connection died early, dropping the response is correct.
        let _ = job.reply.try_send(response);
    }
    let _ = shard.sync();
}

/// Serves a drained run of `Present` jobs through the cross-shard scoring
/// service: prepare on the owning shard, submit the batchable preps
/// fleet-wide, commit the verdicts (batched pendings before serial ones —
/// see [`Shard::commit_present`]) and reply per job.  Results are
/// bit-identical to executing the jobs one at a time.
fn present_batch(shard: &mut Shard, batch: Vec<ShardJob>, service: &ScoringService) {
    // Stale jobs are skipped exactly as in the serial path: dropping the
    // reply sender wakes the (already timed-out) waiter with a disconnect.
    let now = Instant::now();
    let jobs: Vec<ShardJob> = batch.into_iter().filter(|job| now < job.deadline).collect();
    if jobs.is_empty() {
        return;
    }
    let ids: Vec<SessionId> = jobs
        .iter()
        .map(|job| match job.request {
            ShardRequest::Present(id) => id,
            _ => unreachable!("present_batch only drains Present jobs"),
        })
        .collect();
    let mut pendings = match shard.prepare_presents(&ids) {
        Ok(pendings) => pendings,
        Err(e) => {
            // A whole-batch failure (e.g. a degraded shard) answers every
            // job with the same error, as each serial execute would have.
            let wire = WireError::from_core(&e);
            for job in jobs {
                let _ = job.reply.try_send(Response::Error(wire.clone()));
            }
            return;
        }
    };
    let mut submissions = Vec::new();
    let mut routes: Vec<usize> = Vec::new();
    for (at, pending) in pendings.iter_mut().enumerate() {
        if let Some(submission) = pending.take_submission() {
            submissions.push(submission);
            routes.push(at);
        }
    }
    let mut slots: Vec<Option<Verdict>> = pendings.iter().map(|_| None).collect();
    if !submissions.is_empty() {
        let (verdicts, wait) = service.submit(submissions);
        shard.note_batch_wait(wait);
        for (at, verdict) in routes.into_iter().zip(verdicts) {
            slots[at] = Some(verdict);
        }
    }
    // Each commit is self-contained (it rolls back its own session on
    // failure), so every job gets its own success-or-error reply.
    let mut taken: Vec<Option<PendingPresent>> = pendings.into_iter().map(Some).collect();
    let mut replies: Vec<Option<Response>> = jobs.iter().map(|_| None).collect();
    for batched_pass in [true, false] {
        for at in 0..taken.len() {
            let matches_pass = taken[at]
                .as_ref()
                .is_some_and(|p| p.is_batched() == batched_pass);
            if !matches_pass {
                continue;
            }
            let pending = taken[at].take().expect("pending matched this pass");
            let verdict = slots[at].take();
            replies[at] = Some(match shard.commit_present(pending, verdict) {
                Ok(committed) => {
                    if let Some(cost) = committed.fallback_cost {
                        service.observe_serial(1, cost);
                    }
                    Response::Presented {
                        packages: committed.shown,
                    }
                }
                Err(e) => Response::Error(WireError::from_core(&e)),
            });
        }
    }
    for (job, reply) in jobs.into_iter().zip(replies) {
        let _ = job.reply.try_send(reply.expect("every job was committed"));
    }
}

/// Executes one routed request against its shard.
fn execute(shard: &mut Shard, request: ShardRequest) -> Response {
    match request {
        ShardRequest::Create(id, config) => match shard.create(id, *config) {
            Ok(()) => Response::Created { session: id.0 },
            Err(e) => Response::Error(WireError::from_core(&e)),
        },
        ShardRequest::Present(id) => match shard.op_present(id) {
            Ok(packages) => Response::Presented { packages },
            Err(e) => Response::Error(WireError::from_core(&e)),
        },
        ShardRequest::Feedback(id, feedback) => match shard.op_feedback(id, feedback) {
            Ok(preferences) => Response::FeedbackRecorded { preferences },
            Err(e) => Response::Error(WireError::from_core(&e)),
        },
        ShardRequest::Recommend(id) => match shard.op_recommend(id) {
            Ok(ranked) => Response::Recommended { ranked },
            Err(e) => Response::Error(WireError::from_core(&e)),
        },
        ShardRequest::Snapshot(id) => match shard.snapshot_now(id) {
            Ok(snapshot) => Response::Snapshotted { snapshot },
            Err(e) => Response::Error(WireError::from_core(&e)),
        },
        ShardRequest::Stats => Response::Stats {
            sessions: shard.session_count(),
            stats: shard.stats(),
        },
        ShardRequest::Sync => match shard.sync() {
            Ok(()) => Response::Synced,
            Err(e) => Response::Error(WireError::from_core(&e)),
        },
    }
}

/// One connection's loop: hello, then read-dispatch-reply until the peer
/// hangs up, the stream corrupts, or the server shuts down.
fn serve_connection(
    mut stream: TcpStream,
    senders: Vec<SyncSender<ShardJob>>,
    shared: Arc<Shared>,
    config: ServerConfig,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(config.poll_interval)).is_err() {
        return;
    }
    if write_hello(&mut stream).is_err() {
        return;
    }
    let stop = || shared.shutdown.load(Ordering::SeqCst);
    loop {
        let request = match read_message::<_, Request>(&mut stream, config.max_frame_len, &stop) {
            Ok(Ok(request)) => request,
            Ok(Err(parse_error)) => {
                // The frame was intact — the stream is still in sync, so
                // reply and keep the connection alive.
                shared.invalid_requests.fetch_add(1, Ordering::Relaxed);
                let reply = Response::Error(WireError::new(
                    ErrorKind::InvalidRequest,
                    format!("unparseable request: {parse_error}"),
                ));
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
                continue;
            }
            Err(FrameError::Closed) | Err(FrameError::Stopped) | Err(FrameError::Io { .. }) => {
                return
            }
            Err(FrameError::Oversized { len }) => {
                // The declared payload was never read, so the stream can't
                // resync: reply once, then close.
                shared.malformed_frames.fetch_add(1, Ordering::Relaxed);
                let reply = Response::Error(WireError::new(
                    ErrorKind::Oversized,
                    format!(
                        "frame of {len} bytes exceeds the {} byte limit",
                        config.max_frame_len
                    ),
                ));
                let _ = write_frame(&mut stream, &reply);
                return;
            }
            Err(FrameError::Corrupt(msg)) => {
                shared.malformed_frames.fetch_add(1, Ordering::Relaxed);
                let reply = Response::Error(WireError::new(ErrorKind::MalformedFrame, msg));
                let _ = write_frame(&mut stream, &reply);
                return;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let response = dispatch(request, &senders, &shared, config.request_timeout);
        if matches!(response, Response::Error(_)) {
            shared.error_responses.fetch_add(1, Ordering::Relaxed);
        }
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Routes one request: resolve the target shard(s), enqueue, await.
fn dispatch(
    request: Request,
    senders: &[SyncSender<ShardJob>],
    shared: &Shared,
    timeout: Duration,
) -> Response {
    let deadline = Instant::now() + timeout;
    match request {
        Request::Create { config } => {
            // The server assigns the id so it can route the create to the
            // owning shard before the session exists anywhere.  A rejected
            // config burns the id — ids are opaque to clients.
            let id = SessionId(shared.next_id.fetch_add(1, Ordering::SeqCst));
            let shard = shard_of(id, senders.len());
            route_one(
                &senders[shard],
                ShardRequest::Create(id, Box::new(config)),
                deadline,
                shared,
            )
        }
        Request::Present { session } => {
            let id = SessionId(session);
            route_one(
                &senders[shard_of(id, senders.len())],
                ShardRequest::Present(id),
                deadline,
                shared,
            )
        }
        Request::Feedback { session, feedback } => {
            let id = SessionId(session);
            route_one(
                &senders[shard_of(id, senders.len())],
                ShardRequest::Feedback(id, feedback),
                deadline,
                shared,
            )
        }
        Request::Recommend { session } => {
            let id = SessionId(session);
            route_one(
                &senders[shard_of(id, senders.len())],
                ShardRequest::Recommend(id),
                deadline,
                shared,
            )
        }
        Request::Snapshot { session } => {
            let id = SessionId(session);
            route_one(
                &senders[shard_of(id, senders.len())],
                ShardRequest::Snapshot(id),
                deadline,
                shared,
            )
        }
        Request::Stats => {
            let replies = broadcast(senders, ShardRequest::Stats, deadline, shared);
            let mut sessions = 0usize;
            let mut stats = StoreStats::default();
            for reply in replies {
                match reply {
                    Response::Stats {
                        sessions: shard_sessions,
                        stats: shard_stats,
                    } => {
                        sessions += shard_sessions;
                        stats.merge(&shard_stats);
                    }
                    error @ Response::Error(_) => return error,
                    other => {
                        return Response::Error(WireError::new(
                            ErrorKind::Internal,
                            format!("shard answered Stats with {other:?}"),
                        ))
                    }
                }
            }
            Response::Stats { sessions, stats }
        }
        Request::Sync => {
            for reply in broadcast(senders, ShardRequest::Sync, deadline, shared) {
                match reply {
                    Response::Synced => {}
                    error @ Response::Error(_) => return error,
                    other => {
                        return Response::Error(WireError::new(
                            ErrorKind::Internal,
                            format!("shard answered Sync with {other:?}"),
                        ))
                    }
                }
            }
            Response::Synced
        }
    }
}

/// Enqueues one job on one shard and awaits its reply under the deadline.
fn route_one(
    sender: &SyncSender<ShardJob>,
    request: ShardRequest,
    deadline: Instant,
    shared: &Shared,
) -> Response {
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = ShardJob {
        request,
        deadline,
        reply: reply_tx,
    };
    // The bounded queue is the backpressure point: block until the shard
    // has room, bounded by the request deadline.
    let mut job = job;
    loop {
        match sender.try_send(job) {
            Ok(()) => break,
            Err(TrySendError::Full(returned)) => {
                if Instant::now() >= deadline {
                    shared.timeouts.fetch_add(1, Ordering::Relaxed);
                    return Response::Error(WireError::new(
                        ErrorKind::Timeout,
                        "shard queue full past the request deadline",
                    ));
                }
                job = returned;
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(TrySendError::Disconnected(_)) => {
                return Response::Error(WireError::new(
                    ErrorKind::ShuttingDown,
                    "server is shutting down",
                ));
            }
        }
    }
    let remaining = deadline.saturating_duration_since(Instant::now());
    match reply_rx.recv_timeout(remaining) {
        Ok(response) => response,
        Err(_) => {
            // Timed out, or the worker skipped the job as stale — either
            // way the deadline is the story the client hears.
            shared.timeouts.fetch_add(1, Ordering::Relaxed);
            Response::Error(WireError::new(
                ErrorKind::Timeout,
                "request missed its deadline",
            ))
        }
    }
}

/// Enqueues one job per shard (for `Stats` / `Sync`) and collects every
/// reply, preserving shard order.
fn broadcast(
    senders: &[SyncSender<ShardJob>],
    request: ShardRequest,
    deadline: Instant,
    shared: &Shared,
) -> Vec<Response> {
    senders
        .iter()
        .map(|sender| {
            let request = match &request {
                ShardRequest::Stats => ShardRequest::Stats,
                ShardRequest::Sync => ShardRequest::Sync,
                _ => unreachable!("only Stats and Sync broadcast"),
            };
            route_one(sender, request, deadline, shared)
        })
        .collect()
}
