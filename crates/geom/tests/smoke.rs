//! Manifest smoke test: intersects a half-space with the weight cube and asks
//! the grid decomposition for an approximate centre.

use pkgrec_geom::{approximate_center, HalfSpace, Hypercube};

#[test]
fn grid_center_smoke() {
    let cube = Hypercube::unit_cube(2);
    assert!(cube.contains(&[0.5, 0.5]));

    // w0 - w1 >= 0: the centre of the surviving half of the cube leans w0-ward.
    let constraint = HalfSpace::new(vec![1.0, -1.0]);
    let center = approximate_center(2, 8, std::slice::from_ref(&constraint))
        .expect("half the cube remains valid");
    assert_eq!(center.len(), 2);
    assert!(center[0] >= center[1]);
}
