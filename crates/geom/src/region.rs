//! Convex regions defined by collections of half-space constraints.

use serde::{Deserialize, Serialize};

use crate::grid::approximate_center;
use crate::halfspace::HalfSpace;
use crate::hypercube::Hypercube;
use crate::Result;

/// The convex set of weight vectors consistent with a collection of pairwise
/// package preferences, intersected with the weight cube `[-1, 1]^m`.
///
/// Lemma 2 of the paper shows this set is convex; [`ConvexRegion`] provides
/// membership tests, violation counting (needed by the noise model of
/// Section 7) and the grid-based centre estimate that drives importance
/// sampling.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConvexRegion {
    constraints: Vec<HalfSpace>,
    dim: usize,
}

impl ConvexRegion {
    /// Creates an unconstrained region over `dim`-dimensional weight space.
    pub fn new(dim: usize) -> Self {
        ConvexRegion {
            constraints: Vec::new(),
            dim,
        }
    }

    /// Creates a region from existing constraints.
    pub fn from_constraints(dim: usize, constraints: Vec<HalfSpace>) -> Self {
        ConvexRegion { constraints, dim }
    }

    /// Dimensionality of the weight space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of constraints currently in the region.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the region carries no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The constraints of the region.
    pub fn constraints(&self) -> &[HalfSpace] {
        &self.constraints
    }

    /// Adds a constraint.
    pub fn push(&mut self, constraint: HalfSpace) {
        debug_assert_eq!(constraint.dim(), self.dim);
        self.constraints.push(constraint);
    }

    /// Adds the constraint induced by the preference `preferred ≻ other`.
    pub fn push_preference(&mut self, preferred: &[f64], other: &[f64]) {
        self.push(HalfSpace::from_preference(preferred, other));
    }

    /// Whether `w` lies inside the weight cube and satisfies every constraint.
    pub fn contains(&self, w: &[f64]) -> bool {
        w.len() == self.dim
            && w.iter().all(|x| (-1.0..=1.0).contains(x))
            && self.constraints.iter().all(|c| c.contains(w))
    }

    /// Whether `w` satisfies every constraint, ignoring the cube bounds.
    pub fn satisfies_constraints(&self, w: &[f64]) -> bool {
        self.constraints.iter().all(|c| c.contains(w))
    }

    /// Number of constraints violated by `w` (the `x` in the `1-(1-ψ)^x`
    /// noise model of Section 7).
    pub fn violation_count(&self, w: &[f64]) -> usize {
        self.constraints.iter().filter(|c| c.violated_by(w)).count()
    }

    /// Index of the first constraint violated by `w`, if any.
    pub fn first_violation(&self, w: &[f64]) -> Option<usize> {
        self.constraints.iter().position(|c| c.violated_by(w))
    }

    /// The weight cube the region lives in.
    pub fn bounding_box(&self) -> Hypercube {
        Hypercube::weight_cube(self.dim)
    }

    /// Grid-based approximate centre of the valid region (Section 3.2.1).
    ///
    /// `cells_per_dim` controls the resolution; cost is
    /// `cells_per_dim^dim * len()`, which is why the paper's importance
    /// sampler is restricted to five or fewer features.
    pub fn approximate_center(&self, cells_per_dim: usize) -> Result<Vec<f64>> {
        approximate_center(self.dim, cells_per_dim, &self.constraints)
    }
}

/// Convenience wrapper: approximate centre of the region spanned by a set of
/// preference-induced constraints.
pub fn region_center(
    constraints: &[HalfSpace],
    dim: usize,
    cells_per_dim: usize,
) -> Result<Vec<f64>> {
    ConvexRegion::from_constraints(dim, constraints.to_vec()).approximate_center(cells_per_dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region_with_positive_quadrant() -> ConvexRegion {
        let mut r = ConvexRegion::new(2);
        r.push(HalfSpace::new(vec![1.0, 0.0]));
        r.push(HalfSpace::new(vec![0.0, 1.0]));
        r
    }

    #[test]
    fn empty_region_accepts_everything_in_cube() {
        let r = ConvexRegion::new(3);
        assert!(r.is_empty());
        assert!(r.contains(&[0.0, 0.5, -0.5]));
        assert!(!r.contains(&[0.0, 1.5, 0.0]));
        assert!(!r.contains(&[0.0, 0.5])); // wrong dimension
    }

    #[test]
    fn membership_respects_constraints() {
        let r = region_with_positive_quadrant();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[0.3, 0.2]));
        assert!(!r.contains(&[-0.3, 0.2]));
        assert!(r.satisfies_constraints(&[0.3, 0.2]));
        assert!(!r.satisfies_constraints(&[0.3, -0.2]));
    }

    #[test]
    fn violation_counting() {
        let r = region_with_positive_quadrant();
        assert_eq!(r.violation_count(&[0.5, 0.5]), 0);
        assert_eq!(r.violation_count(&[-0.5, 0.5]), 1);
        assert_eq!(r.violation_count(&[-0.5, -0.5]), 2);
        assert_eq!(r.first_violation(&[0.5, -0.5]), Some(1));
        assert_eq!(r.first_violation(&[0.5, 0.5]), None);
    }

    #[test]
    fn preference_constraints_are_satisfied_by_ground_truth() {
        // A ground-truth weight vector must satisfy constraints generated from
        // its own preferences (convexity sanity check for Lemma 2).
        let w_true = [0.8, -0.4, 0.1];
        let packages = [
            vec![0.9, 0.1, 0.3],
            vec![0.2, 0.8, 0.5],
            vec![0.5, 0.5, 0.9],
        ];
        let mut region = ConvexRegion::new(3);
        let score = |p: &[f64]| -> f64 { p.iter().zip(w_true.iter()).map(|(a, b)| a * b).sum() };
        for i in 0..packages.len() {
            for j in 0..packages.len() {
                if i != j && score(&packages[i]) >= score(&packages[j]) {
                    region.push_preference(&packages[i], &packages[j]);
                }
            }
        }
        assert!(region.contains(&w_true));
    }

    #[test]
    fn convex_combination_of_valid_points_is_valid() {
        // Lemma 2: the valid region is convex.
        let r = region_with_positive_quadrant();
        let a = [0.2, 0.9];
        let b = [0.8, 0.1];
        for step in 0..=10 {
            let alpha = step as f64 / 10.0;
            let mix: Vec<f64> = a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| alpha * x + (1.0 - alpha) * y)
                .collect();
            assert!(r.contains(&mix));
        }
    }

    #[test]
    fn approximate_center_moves_into_the_constrained_quadrant() {
        let r = region_with_positive_quadrant();
        let c = r.approximate_center(6).unwrap();
        assert!(c[0] > 0.0 && c[1] > 0.0);
        let unconstrained = ConvexRegion::new(2).approximate_center(6).unwrap();
        assert!(unconstrained[0].abs() < 1e-12 && unconstrained[1].abs() < 1e-12);
    }

    #[test]
    fn region_center_helper_matches_method() {
        let constraints = vec![HalfSpace::new(vec![1.0, 1.0])];
        let via_helper = region_center(&constraints, 2, 4).unwrap();
        let via_region = ConvexRegion::from_constraints(2, constraints)
            .approximate_center(4)
            .unwrap();
        assert_eq!(via_helper, via_region);
    }

    #[test]
    fn bounding_box_is_weight_cube() {
        let r = ConvexRegion::new(4);
        assert_eq!(r.bounding_box(), Hypercube::weight_cube(4));
    }
}
