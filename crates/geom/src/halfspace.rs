//! Half-space constraints induced by pairwise package preferences.

use serde::{Deserialize, Serialize};

/// A closed half-space of the form `normal · w ≥ 0`.
///
/// A preference `p1 ≻ p2` under a linear utility `U(p) = w · p` means
/// `w · p1 ≥ w · p2`, i.e. `w · (p1 - p2) ≥ 0`, so the half-space normal is the
/// difference of the two package feature vectors.  The paper phrases the same
/// constraint as rejecting every `w` with `w · (p2 - p1) > 0` (Section 3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HalfSpace {
    normal: Vec<f64>,
}

impl HalfSpace {
    /// Creates a half-space `normal · w ≥ 0` directly from a normal vector.
    pub fn new(normal: Vec<f64>) -> Self {
        HalfSpace { normal }
    }

    /// Builds the half-space induced by the preference `preferred ≻ other`.
    ///
    /// # Panics
    /// Panics if the two feature vectors have different lengths.
    pub fn from_preference(preferred: &[f64], other: &[f64]) -> Self {
        assert_eq!(
            preferred.len(),
            other.len(),
            "package feature vectors must have equal dimensionality"
        );
        HalfSpace {
            normal: preferred
                .iter()
                .zip(other.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// The normal vector `p1 - p2` of the half-space.
    pub fn normal(&self) -> &[f64] {
        &self.normal
    }

    /// Dimensionality of the half-space.
    pub fn dim(&self) -> usize {
        self.normal.len()
    }

    /// The signed margin `normal · w`; non-negative iff `w` satisfies the
    /// constraint.
    pub fn margin(&self, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.normal.len());
        self.normal.iter().zip(w.iter()).map(|(n, x)| n * x).sum()
    }

    /// Whether the weight vector satisfies the constraint (`normal · w ≥ 0`).
    pub fn contains(&self, w: &[f64]) -> bool {
        self.margin(w) >= 0.0
    }

    /// Whether the weight vector strictly violates the constraint.
    pub fn violated_by(&self, w: &[f64]) -> bool {
        !self.contains(w)
    }

    /// Maximum of `normal · w` over an axis-aligned box, attained at the
    /// corner that picks `upper[i]` where the normal is positive and
    /// `lower[i]` where it is negative.  Runs in time linear in the
    /// dimensionality, which is the property Section 3.2.1 relies on for
    /// checking whether a grid cell can still contain a valid weight vector.
    pub fn max_over_box(&self, lower: &[f64], upper: &[f64]) -> f64 {
        debug_assert_eq!(lower.len(), self.normal.len());
        debug_assert_eq!(upper.len(), self.normal.len());
        self.normal
            .iter()
            .zip(lower.iter().zip(upper.iter()))
            .map(|(&n, (&lo, &hi))| if n >= 0.0 { n * hi } else { n * lo })
            .sum()
    }

    /// Minimum of `normal · w` over an axis-aligned box.
    pub fn min_over_box(&self, lower: &[f64], upper: &[f64]) -> f64 {
        debug_assert_eq!(lower.len(), self.normal.len());
        self.normal
            .iter()
            .zip(lower.iter().zip(upper.iter()))
            .map(|(&n, (&lo, &hi))| if n >= 0.0 { n * lo } else { n * hi })
            .sum()
    }

    /// Whether any point of the axis-aligned box `[lower, upper]` satisfies
    /// the constraint.
    pub fn intersects_box(&self, lower: &[f64], upper: &[f64]) -> bool {
        self.max_over_box(lower, upper) >= 0.0
    }

    /// Whether every point of the axis-aligned box satisfies the constraint.
    pub fn contains_box(&self, lower: &[f64], upper: &[f64]) -> bool {
        self.min_over_box(lower, upper) >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_preference_computes_difference() {
        let h = HalfSpace::from_preference(&[0.6, 0.5], &[0.4, 0.9]);
        assert_eq!(h.normal(), &[0.6 - 0.4, 0.5 - 0.9]);
        assert_eq!(h.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn from_preference_panics_on_mismatch() {
        let _ = HalfSpace::from_preference(&[0.1], &[0.1, 0.2]);
    }

    #[test]
    fn contains_and_violation_are_complementary() {
        let h = HalfSpace::new(vec![1.0, -1.0]);
        assert!(h.contains(&[0.5, 0.2]));
        assert!(h.violated_by(&[0.2, 0.5]));
        // Boundary points satisfy the closed half-space.
        assert!(h.contains(&[0.3, 0.3]));
    }

    #[test]
    fn margin_is_linear() {
        let h = HalfSpace::new(vec![2.0, 3.0]);
        assert!((h.margin(&[1.0, 1.0]) - 5.0).abs() < 1e-12);
        assert!((h.margin(&[-1.0, 0.0]) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn box_extrema_match_corner_enumeration() {
        let h = HalfSpace::new(vec![1.5, -2.0, 0.5]);
        let lower = [-1.0, -0.5, 0.0];
        let upper = [0.5, 1.0, 2.0];
        // Brute force over all 8 corners.
        let mut best = f64::NEG_INFINITY;
        let mut worst = f64::INFINITY;
        for mask in 0..8u32 {
            let corner: Vec<f64> = (0..3)
                .map(|d| {
                    if mask & (1 << d) != 0 {
                        upper[d]
                    } else {
                        lower[d]
                    }
                })
                .collect();
            let m = h.margin(&corner);
            best = best.max(m);
            worst = worst.min(m);
        }
        assert!((h.max_over_box(&lower, &upper) - best).abs() < 1e-12);
        assert!((h.min_over_box(&lower, &upper) - worst).abs() < 1e-12);
    }

    #[test]
    fn box_intersection_and_containment() {
        let h = HalfSpace::new(vec![1.0, 0.0]);
        // Box entirely in the positive half-space.
        assert!(h.contains_box(&[0.1, -1.0], &[0.5, 1.0]));
        assert!(h.intersects_box(&[0.1, -1.0], &[0.5, 1.0]));
        // Box straddling the boundary.
        assert!(!h.contains_box(&[-0.5, -1.0], &[0.5, 1.0]));
        assert!(h.intersects_box(&[-0.5, -1.0], &[0.5, 1.0]));
        // Box entirely in the negative half-space.
        assert!(!h.intersects_box(&[-0.9, -1.0], &[-0.3, 1.0]));
    }
}
