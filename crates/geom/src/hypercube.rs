//! Axis-aligned boxes in weight space.

use serde::{Deserialize, Serialize};

use crate::{GeomError, Result};

/// An axis-aligned hyper-rectangle `[lower_i, upper_i]` per dimension.
///
/// The weight space of the paper is the cube `[-1, 1]^m`; grid cells and
/// 2^m-tree nodes are sub-boxes of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypercube {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Hypercube {
    /// Creates a box from per-dimension lower and upper bounds.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Result<Self> {
        if lower.len() != upper.len() {
            return Err(GeomError::DimensionMismatch {
                expected: lower.len(),
                actual: upper.len(),
            });
        }
        Ok(Hypercube { lower, upper })
    }

    /// The canonical weight cube `[-1, 1]^dim` used throughout the paper.
    pub fn weight_cube(dim: usize) -> Self {
        Hypercube {
            lower: vec![-1.0; dim],
            upper: vec![1.0; dim],
        }
    }

    /// The unit cube `[0, 1]^dim`.
    pub fn unit_cube(dim: usize) -> Self {
        Hypercube {
            lower: vec![0.0; dim],
            upper: vec![1.0; dim],
        }
    }

    /// Dimensionality of the box.
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Per-dimension lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Per-dimension upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Geometric centre of the box.
    pub fn center(&self) -> Vec<f64> {
        self.lower
            .iter()
            .zip(self.upper.iter())
            .map(|(lo, hi)| 0.5 * (lo + hi))
            .collect()
    }

    /// Per-dimension side lengths.
    pub fn side_lengths(&self) -> Vec<f64> {
        self.lower
            .iter()
            .zip(self.upper.iter())
            .map(|(lo, hi)| hi - lo)
            .collect()
    }

    /// Volume of the box.
    pub fn volume(&self) -> f64 {
        self.side_lengths().iter().product()
    }

    /// Whether a point lies inside the box (boundaries included).
    pub fn contains(&self, point: &[f64]) -> bool {
        point.len() == self.dim()
            && point
                .iter()
                .zip(self.lower.iter().zip(self.upper.iter()))
                .all(|(x, (lo, hi))| *x >= *lo && *x <= *hi)
    }

    /// Clamps a point into the box, coordinate by coordinate.
    pub fn clamp(&self, point: &[f64]) -> Vec<f64> {
        point
            .iter()
            .zip(self.lower.iter().zip(self.upper.iter()))
            .map(|(x, (lo, hi))| x.max(*lo).min(*hi))
            .collect()
    }

    /// Splits the box into `2^dim` equal child boxes (the 2^m-tree split).
    pub fn split(&self) -> Vec<Hypercube> {
        let dim = self.dim();
        let mid = self.center();
        let mut children = Vec::with_capacity(1 << dim);
        for mask in 0..(1usize << dim) {
            let mut lower = Vec::with_capacity(dim);
            let mut upper = Vec::with_capacity(dim);
            for (d, &m) in mid.iter().enumerate().take(dim) {
                if mask & (1 << d) != 0 {
                    lower.push(m);
                    upper.push(self.upper[d]);
                } else {
                    lower.push(self.lower[d]);
                    upper.push(m);
                }
            }
            children.push(Hypercube { lower, upper });
        }
        children
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_dimensions() {
        assert!(Hypercube::new(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(Hypercube::new(vec![0.0, 0.0], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn weight_cube_and_unit_cube() {
        let w = Hypercube::weight_cube(3);
        assert_eq!(w.lower(), &[-1.0, -1.0, -1.0]);
        assert_eq!(w.upper(), &[1.0, 1.0, 1.0]);
        assert_eq!(w.center(), vec![0.0, 0.0, 0.0]);
        assert!((w.volume() - 8.0).abs() < 1e-12);
        let u = Hypercube::unit_cube(2);
        assert!((u.volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn containment_and_clamping() {
        let c = Hypercube::weight_cube(2);
        assert!(c.contains(&[0.0, 1.0]));
        assert!(!c.contains(&[0.0, 1.01]));
        assert!(!c.contains(&[0.0])); // wrong dimension
        assert_eq!(c.clamp(&[2.0, -3.0]), vec![1.0, -1.0]);
        assert_eq!(c.clamp(&[0.5, -0.5]), vec![0.5, -0.5]);
    }

    #[test]
    fn split_produces_equal_volume_children_covering_parent() {
        let c = Hypercube::weight_cube(3);
        let children = c.split();
        assert_eq!(children.len(), 8);
        let total: f64 = children.iter().map(Hypercube::volume).sum();
        assert!((total - c.volume()).abs() < 1e-12);
        for child in &children {
            assert!(c.contains(&child.center()));
            assert!((child.volume() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn side_lengths_follow_bounds() {
        let c = Hypercube::new(vec![0.0, -2.0], vec![0.5, 2.0]).unwrap();
        assert_eq!(c.side_lengths(), vec![0.5, 4.0]);
        assert!((c.volume() - 2.0).abs() < 1e-12);
    }
}
