//! Geometric substrate for the `pkgrec` package recommender.
//!
//! Every user preference `p1 ≻ p2` over packages induces a linear constraint
//! `w · (p1 - p2) ≥ 0` on the hidden utility weight vector `w ∈ [-1, 1]^m`.
//! The set of weight vectors consistent with all feedback is therefore the
//! intersection of half-spaces with the weight hyper-cube — a convex polytope
//! (Lemma 2 in the paper).  The importance sampler of Section 3.2.1 needs an
//! *approximate centre* of that polytope, obtained by decomposing the cube
//! into a grid and averaging the centres of cells that still intersect the
//! valid region; cells can also be organised hierarchically into a
//! 2^m-tree (quad-tree in two dimensions) so that new feedback only prunes
//! subtrees.
//!
//! This crate provides those pieces:
//!
//! * [`HalfSpace`] — linear constraints of the form `normal · w ≥ 0`,
//! * [`Hypercube`] — axis-aligned boxes with corner/extreme-point queries,
//! * [`Grid`] — uniform decomposition of the weight cube into cells,
//! * [`CellTree`] — the hierarchical 2^m-tree over cells with incremental
//!   pruning under new constraints,
//! * [`approximate_center`] / [`region_center`] — the grid-based centre
//!   estimate used as the importance-sampling proposal mean,
//! * [`ConvexRegion`] — a bag of half-spaces with membership tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod celltree;
pub mod grid;
pub mod halfspace;
pub mod hypercube;
pub mod region;

pub use celltree::CellTree;
pub use grid::{approximate_center, Grid, GridCell};
pub use halfspace::HalfSpace;
pub use hypercube::Hypercube;
pub use region::{region_center, ConvexRegion};

/// Errors produced by the geometric substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// Operands have different dimensionality.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Provided dimensionality.
        actual: usize,
    },
    /// A grid or tree was requested with zero cells per dimension.
    EmptyDecomposition,
    /// The valid region is empty (no cell intersects all constraints).
    EmptyRegion,
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            GeomError::EmptyDecomposition => {
                write!(f, "grid must have at least one cell per dimension")
            }
            GeomError::EmptyRegion => write!(f, "constraint region is empty"),
        }
    }
}

impl std::error::Error for GeomError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, GeomError>;
