//! Hierarchical 2^m-tree over the weight cube.
//!
//! Section 3.2.1 notes that "finding those cells which violate new feedback can
//! be facilitated by organizing the cells into a hierarchical structure such as
//! a quad-tree".  [`CellTree`] is the m-dimensional generalisation: each node
//! covers a sub-box of the weight cube and is split into `2^m` children down to
//! a configurable depth.  Applying a new constraint prunes whole subtrees whose
//! boxes lie entirely outside the constraint, so incremental feedback costs far
//! less than rescanning a flat grid.

use serde::{Deserialize, Serialize};

use crate::halfspace::HalfSpace;
use crate::hypercube::Hypercube;
use crate::{GeomError, Result};

/// Node state with respect to the constraints applied so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum NodeState {
    /// The node's box still intersects the valid region.
    Alive,
    /// The node's box lies entirely outside the valid region.
    Pruned,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    bounds: Hypercube,
    state: NodeState,
    /// Indices of children in the arena; empty for leaves.
    children: Vec<usize>,
}

/// A 2^m-tree over an axis-aligned box supporting incremental constraint
/// pruning and centre estimation over the surviving leaves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellTree {
    nodes: Vec<Node>,
    dim: usize,
    depth: usize,
}

impl CellTree {
    /// Builds a tree of the given depth over `bounds`.  Depth 0 is a single
    /// leaf; each extra level splits every leaf into `2^dim` children.
    ///
    /// The leaf count is `2^(dim * depth)`; construction fails with
    /// [`GeomError::EmptyDecomposition`] if that would overflow or exceed
    /// 4 194 304 leaves (the same practical ceiling the flat grid hits).
    pub fn new(bounds: Hypercube, depth: usize) -> Result<Self> {
        let dim = bounds.dim();
        let leaves_log2 = dim
            .checked_mul(depth)
            .ok_or(GeomError::EmptyDecomposition)?;
        if leaves_log2 > 22 {
            return Err(GeomError::EmptyDecomposition);
        }
        let mut tree = CellTree {
            nodes: vec![Node {
                bounds,
                state: NodeState::Alive,
                children: Vec::new(),
            }],
            dim,
            depth,
        };
        tree.split_recursive(0, depth);
        Ok(tree)
    }

    /// Builds the tree over the canonical weight cube `[-1, 1]^dim`.
    pub fn over_weight_cube(dim: usize, depth: usize) -> Result<Self> {
        CellTree::new(Hypercube::weight_cube(dim), depth)
    }

    fn split_recursive(&mut self, node: usize, remaining: usize) {
        if remaining == 0 {
            return;
        }
        let children = self.nodes[node].bounds.split();
        let mut child_indices = Vec::with_capacity(children.len());
        for bounds in children {
            let idx = self.nodes.len();
            self.nodes.push(Node {
                bounds,
                state: NodeState::Alive,
                children: Vec::new(),
            });
            child_indices.push(idx);
        }
        self.nodes[node].children = child_indices.clone();
        for idx in child_indices {
            self.split_recursive(idx, remaining - 1);
        }
    }

    /// Dimensionality of the tree.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Depth of the tree (0 = single leaf).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total number of nodes in the tree (internal + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves still intersecting the valid region.
    pub fn alive_leaf_count(&self) -> usize {
        self.alive_leaves().count()
    }

    fn alive_leaves(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.children.is_empty() && n.state == NodeState::Alive)
    }

    /// Applies one constraint, pruning every subtree whose box lies entirely
    /// outside it.  Returns the number of *nodes visited*, which is the cost
    /// measure that shows the hierarchical structure beating a flat scan.
    pub fn apply_constraint(&mut self, constraint: &HalfSpace) -> usize {
        self.apply_rec(0, constraint)
    }

    fn apply_rec(&mut self, node: usize, constraint: &HalfSpace) -> usize {
        if self.nodes[node].state == NodeState::Pruned {
            return 1;
        }
        let bounds = self.nodes[node].bounds.clone();
        if !constraint.intersects_box(bounds.lower(), bounds.upper()) {
            self.prune_subtree(node);
            return 1;
        }
        if constraint.contains_box(bounds.lower(), bounds.upper()) {
            // Entire subtree satisfies the constraint; nothing to do below.
            return 1;
        }
        let children = self.nodes[node].children.clone();
        let mut visited = 1;
        for child in children {
            visited += self.apply_rec(child, constraint);
        }
        visited
    }

    fn prune_subtree(&mut self, node: usize) {
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            self.nodes[n].state = NodeState::Pruned;
            stack.extend(self.nodes[n].children.iter().copied());
        }
    }

    /// Applies a batch of constraints; returns total nodes visited.
    pub fn apply_constraints<'a, I>(&mut self, constraints: I) -> usize
    where
        I: IntoIterator<Item = &'a HalfSpace>,
    {
        constraints
            .into_iter()
            .map(|c| self.apply_constraint(c))
            .sum()
    }

    /// Approximate centre of the valid region: mean of the centres of the
    /// surviving leaves.
    pub fn approximate_center(&self) -> Result<Vec<f64>> {
        let mut acc = vec![0.0; self.dim];
        let mut count = 0usize;
        for leaf in self.alive_leaves() {
            for (a, c) in acc.iter_mut().zip(leaf.bounds.center()) {
                *a += c;
            }
            count += 1;
        }
        if count == 0 {
            return Err(GeomError::EmptyRegion);
        }
        Ok(acc.into_iter().map(|a| a / count as f64).collect())
    }

    /// Bounding boxes of the surviving leaves (used by samplers that want to
    /// propose uniformly over the remaining valid volume).
    pub fn alive_leaf_boxes(&self) -> Vec<Hypercube> {
        self.alive_leaves().map(|n| n.bounds.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_zero_is_single_leaf() {
        let t = CellTree::over_weight_cube(3, 0).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.alive_leaf_count(), 1);
        assert_eq!(t.approximate_center().unwrap(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn leaf_count_grows_as_power_of_two_per_level() {
        let t = CellTree::over_weight_cube(2, 3).unwrap();
        // 4^3 = 64 leaves; node count is 1 + 4 + 16 + 64 = 85.
        assert_eq!(t.alive_leaf_count(), 64);
        assert_eq!(t.node_count(), 85);
        assert_eq!(t.dim(), 2);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn excessive_depth_is_rejected() {
        assert!(CellTree::over_weight_cube(10, 4).is_err());
        assert!(CellTree::over_weight_cube(2, 12).is_err());
    }

    #[test]
    fn constraint_prunes_half_the_cube() {
        let mut t = CellTree::over_weight_cube(2, 3).unwrap();
        let c = HalfSpace::new(vec![1.0, 0.0]); // w1 >= 0
        t.apply_constraint(&c);
        // Leaves whose boxes lie strictly in w1 < 0 are pruned; leaves touching
        // the w1 = 0 boundary survive, so 3 of the 8 columns disappear.
        assert_eq!(t.alive_leaf_count(), 40);
        let center = t.approximate_center().unwrap();
        assert!(center[0] > 0.0);
        assert!(center[1].abs() < 1e-12);
        assert!((center[0] - 0.375).abs() < 1e-12);
    }

    #[test]
    fn pruning_visits_fewer_nodes_than_flat_scan() {
        let mut t = CellTree::over_weight_cube(2, 5).unwrap();
        let leaf_count = t.alive_leaf_count();
        let c = HalfSpace::new(vec![1.0, 0.0]);
        let visited = t.apply_constraint(&c);
        // A flat grid would visit every leaf; the tree visits only nodes along
        // the constraint boundary plus the pruned/contained subtree roots.
        assert!(
            visited < leaf_count,
            "visited {visited} of {leaf_count} leaves"
        );
    }

    #[test]
    fn repeated_constraints_are_idempotent() {
        let mut t = CellTree::over_weight_cube(2, 3).unwrap();
        let c = HalfSpace::new(vec![1.0, -1.0]);
        t.apply_constraint(&c);
        let alive_once = t.alive_leaf_count();
        t.apply_constraint(&c);
        assert_eq!(t.alive_leaf_count(), alive_once);
    }

    #[test]
    fn multiple_constraints_narrow_the_center() {
        let mut t = CellTree::over_weight_cube(3, 3).unwrap();
        let constraints = [
            HalfSpace::new(vec![1.0, 0.0, 0.0]),
            HalfSpace::new(vec![0.0, 1.0, 0.0]),
            HalfSpace::new(vec![0.0, 0.0, 1.0]),
        ];
        t.apply_constraints(constraints.iter());
        let center = t.approximate_center().unwrap();
        for c in center {
            assert!(c > 0.0);
        }
    }

    #[test]
    fn center_agrees_with_flat_grid() {
        use crate::grid::Grid;
        let constraints = [HalfSpace::new(vec![0.7, -0.3])];
        let mut t = CellTree::over_weight_cube(2, 3).unwrap();
        t.apply_constraints(constraints.iter());
        let mut g = Grid::over_weight_cube(2, 8).unwrap();
        g.apply_constraints(constraints.iter());
        let tc = t.approximate_center().unwrap();
        let gc = g.approximate_center().unwrap();
        // Same resolution (8 cells per dimension), same surviving cells.
        for (a, b) in tc.iter().zip(gc.iter()) {
            assert!((a - b).abs() < 1e-9, "{tc:?} vs {gc:?}");
        }
    }
}
