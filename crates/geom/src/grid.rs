//! Uniform grid decomposition of the weight cube.
//!
//! Section 3.2.1: "we use a simple geometric decomposition-based approach,
//! which partitions the space into a multi-dimensional grid, and approximates
//! the center of the convex polytope using the centers of the grid cells which
//! overlap with it."

use serde::{Deserialize, Serialize};

use crate::halfspace::HalfSpace;
use crate::hypercube::Hypercube;
use crate::{GeomError, Result};

/// One cell of a [`Grid`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// The cell's bounding box.
    pub bounds: Hypercube,
    /// Whether the cell still intersects the valid region.
    pub valid: bool,
}

impl GridCell {
    /// The centre of the cell.
    pub fn center(&self) -> Vec<f64> {
        self.bounds.center()
    }
}

/// A uniform decomposition of a bounding box into `cells_per_dim^dim` cells.
///
/// The grid is the data structure behind the importance-sampling proposal: the
/// centre of the valid region is approximated by the mean of the centres of
/// cells that still intersect every feedback constraint.  The number of cells
/// is exponential in the number of features, which is exactly why the paper
/// excludes importance sampling from experiments with more than five features
/// (Figure 6 (f)–(j)); [`Grid::cell_count`] lets callers check the size before
/// committing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grid {
    bounds: Hypercube,
    cells_per_dim: usize,
    cells: Vec<GridCell>,
}

impl Grid {
    /// Builds a uniform grid with `cells_per_dim` cells along each dimension of
    /// the bounding box.
    pub fn new(bounds: Hypercube, cells_per_dim: usize) -> Result<Self> {
        if cells_per_dim == 0 {
            return Err(GeomError::EmptyDecomposition);
        }
        let dim = bounds.dim();
        let total = cells_per_dim
            .checked_pow(dim as u32)
            .ok_or(GeomError::EmptyDecomposition)?;
        let side = bounds.side_lengths();
        let mut cells = Vec::with_capacity(total);
        for idx in 0..total {
            let mut rem = idx;
            let mut lower = Vec::with_capacity(dim);
            let mut upper = Vec::with_capacity(dim);
            for (d, &length) in side.iter().enumerate().take(dim) {
                let i = rem % cells_per_dim;
                rem /= cells_per_dim;
                let step = length / cells_per_dim as f64;
                lower.push(bounds.lower()[d] + i as f64 * step);
                upper.push(bounds.lower()[d] + (i + 1) as f64 * step);
            }
            cells.push(GridCell {
                bounds: Hypercube::new(lower, upper).expect("bounds built with equal lengths"),
                valid: true,
            });
        }
        Ok(Grid {
            bounds,
            cells_per_dim,
            cells,
        })
    }

    /// The grid over the canonical weight cube `[-1, 1]^dim`.
    pub fn over_weight_cube(dim: usize, cells_per_dim: usize) -> Result<Self> {
        Grid::new(Hypercube::weight_cube(dim), cells_per_dim)
    }

    /// Number of cells the grid would have for a given dimension and
    /// resolution, without materialising it.  Returns `None` on overflow.
    pub fn cell_count(dim: usize, cells_per_dim: usize) -> Option<usize> {
        cells_per_dim.checked_pow(dim as u32)
    }

    /// Dimensionality of the grid.
    pub fn dim(&self) -> usize {
        self.bounds.dim()
    }

    /// Number of cells along each dimension.
    pub fn cells_per_dim(&self) -> usize {
        self.cells_per_dim
    }

    /// All cells of the grid.
    pub fn cells(&self) -> &[GridCell] {
        &self.cells
    }

    /// Number of cells still marked valid.
    pub fn valid_cell_count(&self) -> usize {
        self.cells.iter().filter(|c| c.valid).count()
    }

    /// Marks as invalid every cell that cannot contain a point satisfying the
    /// constraint; returns the number of cells newly invalidated.
    pub fn apply_constraint(&mut self, constraint: &HalfSpace) -> usize {
        let mut newly_invalid = 0;
        for cell in &mut self.cells {
            if cell.valid && !constraint.intersects_box(cell.bounds.lower(), cell.bounds.upper()) {
                cell.valid = false;
                newly_invalid += 1;
            }
        }
        newly_invalid
    }

    /// Applies a batch of constraints; returns the number of cells invalidated.
    pub fn apply_constraints<'a, I>(&mut self, constraints: I) -> usize
    where
        I: IntoIterator<Item = &'a HalfSpace>,
    {
        constraints
            .into_iter()
            .map(|c| self.apply_constraint(c))
            .sum()
    }

    /// Approximate centre of the valid region: the mean of the centres of the
    /// cells that still intersect it.
    pub fn approximate_center(&self) -> Result<Vec<f64>> {
        approximate_center_of(self.cells.iter().filter(|c| c.valid), self.dim())
    }
}

fn approximate_center_of<'a, I>(cells: I, dim: usize) -> Result<Vec<f64>>
where
    I: IntoIterator<Item = &'a GridCell>,
{
    let mut acc = vec![0.0; dim];
    let mut count = 0usize;
    for cell in cells {
        for (a, c) in acc.iter_mut().zip(cell.center()) {
            *a += c;
        }
        count += 1;
    }
    if count == 0 {
        return Err(GeomError::EmptyRegion);
    }
    Ok(acc.into_iter().map(|a| a / count as f64).collect())
}

/// One-shot helper: builds a grid over the weight cube, applies all
/// constraints and returns the approximate centre of the valid region.
pub fn approximate_center(
    dim: usize,
    cells_per_dim: usize,
    constraints: &[HalfSpace],
) -> Result<Vec<f64>> {
    let mut grid = Grid::over_weight_cube(dim, cells_per_dim)?;
    grid.apply_constraints(constraints.iter());
    grid.approximate_center()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_cell_count_and_coverage() {
        let grid = Grid::over_weight_cube(2, 3).unwrap();
        assert_eq!(grid.cells().len(), 9);
        assert_eq!(grid.valid_cell_count(), 9);
        let total_volume: f64 = grid.cells().iter().map(|c| c.bounds.volume()).sum();
        assert!((total_volume - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_resolution_is_rejected() {
        assert_eq!(
            Grid::over_weight_cube(2, 0).unwrap_err(),
            GeomError::EmptyDecomposition
        );
    }

    #[test]
    fn unconstrained_center_is_origin() {
        let grid = Grid::over_weight_cube(3, 3).unwrap();
        let c = grid.approximate_center().unwrap();
        for x in c {
            assert!(x.abs() < 1e-12);
        }
    }

    #[test]
    fn paper_figure3_example_eliminates_one_corner_cell() {
        // Figure 3 illustrates a 3x3 grid where a single preference hyperplane
        // removes exactly one corner cell and the centre estimate is taken over
        // the remaining eight cells.  The constraint w1 >= w2 over [0,1]^2
        // reproduces that situation: only the cell whose best corner still has
        // w1 < w2 (the top-left corner cell) is eliminated.
        let bounds = Hypercube::unit_cube(2);
        let mut grid = Grid::new(bounds, 3).unwrap();
        let diag = HalfSpace::new(vec![1.0, -1.0]);
        let removed = grid.apply_constraint(&diag);
        assert_eq!(removed, 1);
        assert_eq!(grid.valid_cell_count(), 8);
        let center = grid.approximate_center().unwrap();
        // The surviving cells skew toward large w1 / small w2.
        assert!(center[0] > 0.5 && center[1] < 0.5);
        assert!(center[0] > center[1]);
    }

    #[test]
    fn fully_infeasible_region_reports_empty() {
        let mut grid = Grid::over_weight_cube(2, 2).unwrap();
        // Every linear constraint through the origin is satisfied by w = 0, so
        // a grid over the weight cube can never be emptied by apply_constraint
        // alone; exercise the error path by invalidating the cells directly.
        for cell in 0..grid.cells.len() {
            grid.cells[cell].valid = false;
        }
        assert_eq!(
            grid.approximate_center().unwrap_err(),
            GeomError::EmptyRegion
        );
    }

    #[test]
    fn apply_constraints_accumulates() {
        let mut grid = Grid::over_weight_cube(2, 4).unwrap();
        let c1 = HalfSpace::new(vec![1.0, 0.0]); // w1 >= 0
        let c2 = HalfSpace::new(vec![0.0, 1.0]); // w2 >= 0
        let removed = grid.apply_constraints([&c1, &c2]);
        // The leftmost column fails w1 >= 0 (4 cells); of the remaining cells,
        // the bottom row fails w2 >= 0 (3 more).
        assert_eq!(removed, 4 + 3);
        assert_eq!(grid.valid_cell_count(), 9);
        let center = grid.approximate_center().unwrap();
        assert!(center[0] > 0.0 && center[1] > 0.0);
    }

    #[test]
    fn one_shot_helper_matches_manual_path() {
        let constraints = vec![HalfSpace::new(vec![1.0, -0.5])];
        let quick = approximate_center(2, 5, &constraints).unwrap();
        let mut grid = Grid::over_weight_cube(2, 5).unwrap();
        grid.apply_constraints(constraints.iter());
        assert_eq!(quick, grid.approximate_center().unwrap());
    }

    #[test]
    fn cell_count_overflow_is_detected() {
        assert!(Grid::cell_count(2, 10).is_some());
        assert_eq!(Grid::cell_count(40, 100), None);
    }
}
