//! Manifest smoke test: generates a synthetic dataset and runs the summary /
//! normalisation pipeline.

use pkgrec_data::SyntheticFamily;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn synthetic_generation_smoke() {
    let mut rng = StdRng::seed_from_u64(5);
    let dataset = SyntheticFamily::Uniform
        .generate(50, 4, &mut rng)
        .expect("valid shape");
    assert_eq!(dataset.len(), 50);
    assert_eq!(dataset.num_features(), 4);

    let normalized = dataset.normalized();
    for row in normalized.rows() {
        assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
    }
    assert_eq!(dataset.summary().rows, 50);
}
