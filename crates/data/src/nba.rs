//! Synthetic stand-in for the NBA career-statistics dataset.
//!
//! The paper's real dataset (databasebasketball.com, career statistics of 3705
//! NBA players up to 2009, 10 of 17 features used) is not redistributable, so
//! this module generates a dataset with the same *shape*: 3705 rows and ten
//! career-total features that are
//!
//! * non-negative and heavily right-skewed (most players have short careers,
//!   a few have very long ones), and
//! * strongly positively correlated through games played (career totals of
//!   points, rebounds, assists, … all scale with longevity), with
//!   player-archetype variation layered on top (scorers vs. rebounders vs.
//!   playmakers).
//!
//! Those two properties — skew and correlation structure — are what drive the
//! cost of sampling and package search in the experiments, which is why the
//! substitution preserves the benchmark's behaviour (see DESIGN.md).

use rand::Rng;

use crate::dataset::Dataset;
use crate::Result;

/// Number of players in the original dataset.
pub const NBA_ROWS: usize = 3705;

/// Number of features the paper uses.
pub const NBA_FEATURES: usize = 10;

/// Feature names of the synthetic NBA dataset (career totals / rates).
pub const NBA_FEATURE_NAMES: [&str; NBA_FEATURES] = [
    "games",
    "minutes",
    "points",
    "rebounds",
    "assists",
    "steals",
    "blocks",
    "turnovers",
    "field_goal_pct",
    "free_throw_pct",
];

/// Generates the full-size synthetic NBA dataset (3705 × 10).
pub fn synthetic_nba<R: Rng + ?Sized>(rng: &mut R) -> Result<Dataset> {
    synthetic_nba_sized(NBA_ROWS, rng)
}

/// Generates a synthetic NBA dataset with a custom number of players, keeping
/// the 10-feature layout (useful for scaled-down tests).
pub fn synthetic_nba_sized<R: Rng + ?Sized>(rows: usize, rng: &mut R) -> Result<Dataset> {
    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        // Career length in games: right-skewed. Most players appear in a few
        // hundred games; stars reach 1500+.
        let u: f64 = rng.gen_range(0.0f64..1.0);
        let games = 20.0 + 1500.0 * u.powf(2.5);
        let minutes_per_game = rng.gen_range(8.0..38.0);
        let minutes = games * minutes_per_game;

        // Player archetype: how the scoring/rebounding/playmaking load splits.
        let scoring_rate = rng.gen_range(0.15f64..0.85);
        let rebound_rate = rng.gen_range(0.05f64..0.45);
        let assist_rate = (1.0 - scoring_rate * 0.6 - rebound_rate * 0.5).max(0.05);

        let points = minutes * scoring_rate * rng.gen_range(0.4..0.6);
        let rebounds = minutes * rebound_rate * rng.gen_range(0.25..0.4);
        let assists = minutes * assist_rate * rng.gen_range(0.1..0.2);
        let steals = minutes * rng.gen_range(0.015..0.04);
        let blocks = minutes * rebound_rate * rng.gen_range(0.03..0.09);
        let turnovers = (points * 0.08 + assists * 0.2) * rng.gen_range(0.7..1.3);
        let field_goal_pct = rng.gen_range(0.35..0.60);
        let free_throw_pct = rng.gen_range(0.50..0.92);

        data.push(vec![
            games,
            minutes,
            points,
            rebounds,
            assists,
            steals,
            blocks,
            turnovers,
            field_goal_pct,
            free_throw_pct,
        ]);
    }
    Dataset::new(
        "NBA",
        NBA_FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
        data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_dataset_has_paper_shape() {
        let mut rng = StdRng::seed_from_u64(2009);
        let d = synthetic_nba(&mut rng).unwrap();
        assert_eq!(d.len(), NBA_ROWS);
        assert_eq!(d.num_features(), NBA_FEATURES);
        assert_eq!(d.feature_names[0], "games");
        assert_eq!(d.name, "NBA");
    }

    #[test]
    fn all_values_are_non_negative() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = synthetic_nba_sized(500, &mut rng).unwrap();
        let s = d.summary();
        for (j, min) in s.min.iter().enumerate() {
            assert!(*min >= 0.0, "feature {j} has negative minimum {min}");
        }
    }

    #[test]
    fn career_totals_are_positively_correlated_with_games() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = synthetic_nba_sized(3000, &mut rng).unwrap();
        // games vs minutes, points, rebounds, assists.
        for j in 1..=4 {
            let c = d.correlation(0, j);
            assert!(c > 0.5, "correlation(games, {}) = {c}", d.feature_names[j]);
        }
    }

    #[test]
    fn games_distribution_is_right_skewed() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = synthetic_nba_sized(5000, &mut rng).unwrap();
        let mut games: Vec<f64> = d.rows().iter().map(|r| r[0]).collect();
        games.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = games[games.len() / 2];
        let mean = games.iter().sum::<f64>() / games.len() as f64;
        assert!(
            mean > median,
            "mean {mean} should exceed median {median} for a right-skewed distribution"
        );
    }

    #[test]
    fn percentages_stay_in_unit_interval_after_normalization() {
        let mut rng = StdRng::seed_from_u64(17);
        let d = synthetic_nba_sized(200, &mut rng).unwrap().normalized();
        let s = d.summary();
        for j in 0..NBA_FEATURES {
            assert!(s.max[j] <= 1.0 + 1e-12);
            assert!(s.min[j] >= 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = synthetic_nba_sized(50, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = synthetic_nba_sized(50, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(a, b);
    }
}
