//! Dependency-free CSV persistence for datasets.
//!
//! Experiments write generated datasets to disk so that runs are reproducible
//! and comparable; a tiny reader/writer keeps the workspace free of a CSV
//! dependency (the files involved are plain numeric tables with a header row).

use std::fs;
use std::path::Path;

use crate::dataset::Dataset;
use crate::{DataError, Result};

/// Serialises a dataset to CSV text: a header of feature names followed by one
/// row of values per item.
pub fn to_csv_string(dataset: &Dataset) -> String {
    let mut out = String::new();
    out.push_str(&dataset.feature_names.join(","));
    out.push('\n');
    for row in dataset.rows() {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// Parses a dataset from CSV text produced by [`to_csv_string`] (or any CSV
/// with a header row and purely numeric cells).
pub fn from_csv_string(name: impl Into<String>, text: &str) -> Result<Dataset> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(DataError::Parse {
        line: 1,
        message: "missing header row".into(),
    })?;
    let feature_names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if feature_names.iter().any(|n| n.is_empty()) {
        return Err(DataError::Parse {
            line: 1,
            message: "empty feature name in header".into(),
        });
    }
    let mut rows = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut row = Vec::with_capacity(feature_names.len());
        for cell in line.split(',') {
            let value: f64 = cell.trim().parse().map_err(|_| DataError::Parse {
                line: idx + 1,
                message: format!("'{}' is not a number", cell.trim()),
            })?;
            row.push(value);
        }
        if row.len() != feature_names.len() {
            return Err(DataError::RaggedRows {
                expected: feature_names.len(),
                row: rows.len(),
                actual: row.len(),
            });
        }
        rows.push(row);
    }
    Dataset::new(name, feature_names, rows)
}

/// Writes a dataset to a CSV file.
pub fn write_csv(dataset: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    fs::write(path, to_csv_string(dataset))?;
    Ok(())
}

/// Reads a dataset from a CSV file; the dataset name is taken from the file
/// stem.
pub fn read_csv(path: impl AsRef<Path>) -> Result<Dataset> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset")
        .to_string();
    let text = fs::read_to_string(path)?;
    from_csv_string(name, &text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_through_string() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = uniform(20, 3, &mut rng).unwrap();
        let text = to_csv_string(&d);
        let back = from_csv_string("UNI", &text).unwrap();
        assert_eq!(back.feature_names, d.feature_names);
        assert_eq!(back.len(), d.len());
        for (a, b) in back.rows().iter().zip(d.rows()) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn round_trip_through_file() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = uniform(10, 2, &mut rng).unwrap();
        let dir = std::env::temp_dir().join("pkgrec_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("uni_roundtrip.csv");
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.name, "uni_roundtrip");
        assert_eq!(back.len(), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_errors_are_reported_with_line_numbers() {
        let err = from_csv_string("x", "a,b\n1.0,oops\n").unwrap_err();
        match err {
            DataError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("oops"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let err = from_csv_string("x", "a,b\n1.0\n").unwrap_err();
        assert!(matches!(
            err,
            DataError::RaggedRows {
                expected: 2,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn missing_header_and_empty_names_are_rejected() {
        assert!(matches!(
            from_csv_string("x", ""),
            Err(DataError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_csv_string("x", "a,,c\n1,2,3\n"),
            Err(DataError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let d = from_csv_string("x", "a,b\n1,2\n\n3,4\n").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.rows()[1], vec![3.0, 4.0]);
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = read_csv("/nonexistent/path/file.csv").unwrap_err();
        assert!(matches!(err, DataError::Io(_)));
    }
}
