//! The common dataset container used by generators, examples and benchmarks.

use serde::{Deserialize, Serialize};

use crate::{DataError, Result};

/// A named collection of items, each described by the same non-negative
/// feature vector layout.
///
/// Following Section 2 of the paper, all feature values are non-negative real
/// numbers; [`Dataset::normalized`] rescales every feature into `[0, 1]` by its
/// column maximum, which is the normalisation the paper applies before package
/// aggregation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"UNI"`, `"NBA"`).
    pub name: String,
    /// One name per feature column.
    pub feature_names: Vec<String>,
    /// Row-major feature values; `rows[i][j]` is item `i`'s value on feature `j`.
    pub rows: Vec<Vec<f64>>,
}

/// Per-feature summary statistics of a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Number of items.
    pub rows: usize,
    /// Number of features.
    pub features: usize,
    /// Per-feature minimum.
    pub min: Vec<f64>,
    /// Per-feature maximum.
    pub max: Vec<f64>,
    /// Per-feature mean.
    pub mean: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset, validating that every row has one value per feature.
    pub fn new(
        name: impl Into<String>,
        feature_names: Vec<String>,
        rows: Vec<Vec<f64>>,
    ) -> Result<Self> {
        if feature_names.is_empty() || rows.is_empty() {
            return Err(DataError::EmptyShape);
        }
        let expected = feature_names.len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != expected {
                return Err(DataError::RaggedRows {
                    expected,
                    row: i,
                    actual: row.len(),
                });
            }
        }
        Ok(Dataset {
            name: name.into(),
            feature_names,
            rows,
        })
    }

    /// Creates a dataset with auto-generated feature names `f1..fm`.
    pub fn with_default_names(name: impl Into<String>, rows: Vec<Vec<f64>>) -> Result<Self> {
        let m = rows.first().map(|r| r.len()).unwrap_or(0);
        let feature_names = (1..=m).map(|i| format!("f{i}")).collect();
        Dataset::new(name, feature_names, rows)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no rows (never true for a validated dataset).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features per item.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Borrow of all rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Keeps only the first `m` features of every item, mirroring the paper's
    /// "we randomly selected 10 (out of 17) features" and the feature-count
    /// sweeps of Figure 6.  Returns an error if `m` is zero or larger than the
    /// current feature count.
    pub fn project_features(&self, m: usize) -> Result<Dataset> {
        if m == 0 || m > self.num_features() {
            return Err(DataError::EmptyShape);
        }
        Dataset::new(
            self.name.clone(),
            self.feature_names[..m].to_vec(),
            self.rows.iter().map(|r| r[..m].to_vec()).collect(),
        )
    }

    /// Keeps only the first `n` items (useful for scaled-down experiments).
    pub fn take_rows(&self, n: usize) -> Result<Dataset> {
        if n == 0 {
            return Err(DataError::EmptyShape);
        }
        Dataset::new(
            self.name.clone(),
            self.feature_names.clone(),
            self.rows.iter().take(n).cloned().collect(),
        )
    }

    /// Returns a copy with every feature rescaled into `[0, 1]` by its column
    /// maximum (columns that are identically zero are left as zeros).
    pub fn normalized(&self) -> Dataset {
        let m = self.num_features();
        let mut max = vec![0.0f64; m];
        for row in &self.rows {
            for (j, v) in row.iter().enumerate() {
                if *v > max[j] {
                    max[j] = *v;
                }
            }
        }
        let rows = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, v)| if max[j] > 0.0 { v / max[j] } else { 0.0 })
                    .collect()
            })
            .collect();
        Dataset {
            name: self.name.clone(),
            feature_names: self.feature_names.clone(),
            rows,
        }
    }

    /// Per-feature summary statistics.
    pub fn summary(&self) -> DatasetSummary {
        let m = self.num_features();
        let n = self.rows.len();
        let mut min = vec![f64::INFINITY; m];
        let mut max = vec![f64::NEG_INFINITY; m];
        let mut mean = vec![0.0; m];
        for row in &self.rows {
            for (j, v) in row.iter().enumerate() {
                min[j] = min[j].min(*v);
                max[j] = max[j].max(*v);
                mean[j] += v;
            }
        }
        for v in &mut mean {
            *v /= n as f64;
        }
        DatasetSummary {
            rows: n,
            features: m,
            min,
            max,
            mean,
        }
    }

    /// Pearson correlation between two feature columns (used by tests to
    /// verify that the COR/ANT generators produce what they claim).
    pub fn correlation(&self, a: usize, b: usize) -> f64 {
        let n = self.rows.len() as f64;
        let mean_a: f64 = self.rows.iter().map(|r| r[a]).sum::<f64>() / n;
        let mean_b: f64 = self.rows.iter().map(|r| r[b]).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var_a = 0.0;
        let mut var_b = 0.0;
        for r in &self.rows {
            let da = r[a] - mean_a;
            let db = r[b] - mean_b;
            cov += da * db;
            var_a += da * da;
            var_b += db * db;
        }
        if var_a == 0.0 || var_b == 0.0 {
            0.0
        } else {
            cov / (var_a.sqrt() * var_b.sqrt())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::with_default_names(
            "test",
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![4.0, 0.0]],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        assert_eq!(
            Dataset::new("x", vec![], vec![vec![]]).unwrap_err(),
            DataError::EmptyShape
        );
        assert_eq!(
            Dataset::new("x", vec!["a".into()], vec![]).unwrap_err(),
            DataError::EmptyShape
        );
        let err = Dataset::new(
            "x",
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![1.0]],
        )
        .unwrap_err();
        assert_eq!(
            err,
            DataError::RaggedRows {
                expected: 2,
                row: 1,
                actual: 1
            }
        );
    }

    #[test]
    fn default_names_are_sequential() {
        let d = small();
        assert_eq!(d.feature_names, vec!["f1", "f2"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.num_features(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn normalization_rescales_by_column_max() {
        let d = small().normalized();
        assert_eq!(d.rows[0], vec![0.25, 0.5]);
        assert_eq!(d.rows[1], vec![0.5, 1.0]);
        assert_eq!(d.rows[2], vec![1.0, 0.0]);
    }

    #[test]
    fn normalization_handles_all_zero_column() {
        let d = Dataset::with_default_names("z", vec![vec![0.0, 1.0], vec![0.0, 3.0]])
            .unwrap()
            .normalized();
        assert_eq!(d.rows[0], vec![0.0, 1.0 / 3.0]);
        assert_eq!(d.rows[1], vec![0.0, 1.0]);
    }

    #[test]
    fn summary_reports_min_max_mean() {
        let s = small().summary();
        assert_eq!(s.rows, 3);
        assert_eq!(s.features, 2);
        assert_eq!(s.min, vec![1.0, 0.0]);
        assert_eq!(s.max, vec![4.0, 20.0]);
        assert!((s.mean[0] - 7.0 / 3.0).abs() < 1e-12);
        assert!((s.mean[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn projection_and_row_taking() {
        let d = small();
        let p = d.project_features(1).unwrap();
        assert_eq!(p.num_features(), 1);
        assert_eq!(p.rows[2], vec![4.0]);
        assert!(d.project_features(0).is_err());
        assert!(d.project_features(3).is_err());
        let t = d.take_rows(2).unwrap();
        assert_eq!(t.len(), 2);
        assert!(d.take_rows(0).is_err());
        // Taking more rows than exist keeps everything.
        assert_eq!(d.take_rows(100).unwrap().len(), 3);
    }

    #[test]
    fn correlation_of_identical_columns_is_one() {
        let d =
            Dataset::with_default_names("c", vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]])
                .unwrap();
        assert!((d.correlation(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_opposite_columns_is_minus_one() {
        let d =
            Dataset::with_default_names("c", vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]])
                .unwrap();
        assert!((d.correlation(0, 1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_constant_column_is_zero() {
        let d = Dataset::with_default_names("c", vec![vec![1.0, 3.0], vec![1.0, 2.0]]).unwrap();
        assert_eq!(d.correlation(0, 1), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let d = small();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
