//! Synthetic benchmark generators following Börzsönyi et al.'s skyline
//! benchmark, as adapted by the paper (Section 5): independent uniform (UNI),
//! independent power-law (PWR, `α = 2.5`), correlated (COR) and
//! anti-correlated (ANT) feature families.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::{DataError, Result};

/// The four synthetic dataset families used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntheticFamily {
    /// Independent features, uniform in `[0, 1]`.
    Uniform,
    /// Independent features, power-law with exponent `α = 2.5`, rescaled into `[0, 1]`.
    PowerLaw,
    /// Correlated features.
    Correlated,
    /// Anti-correlated features.
    AntiCorrelated,
}

impl SyntheticFamily {
    /// The short name the paper uses for this family.
    pub fn short_name(&self) -> &'static str {
        match self {
            SyntheticFamily::Uniform => "UNI",
            SyntheticFamily::PowerLaw => "PWR",
            SyntheticFamily::Correlated => "COR",
            SyntheticFamily::AntiCorrelated => "ANT",
        }
    }

    /// All four families, in the order the paper's figures present them.
    pub fn all() -> [SyntheticFamily; 4] {
        [
            SyntheticFamily::Uniform,
            SyntheticFamily::PowerLaw,
            SyntheticFamily::Correlated,
            SyntheticFamily::AntiCorrelated,
        ]
    }

    /// Generates a dataset of this family.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, m: usize, rng: &mut R) -> Result<Dataset> {
        match self {
            SyntheticFamily::Uniform => uniform(n, m, rng),
            SyntheticFamily::PowerLaw => power_law(n, m, 2.5, rng),
            SyntheticFamily::Correlated => correlated(n, m, rng),
            SyntheticFamily::AntiCorrelated => anti_correlated(n, m, rng),
        }
    }
}

fn validate_shape(n: usize, m: usize) -> Result<()> {
    if n == 0 || m == 0 {
        Err(DataError::EmptyShape)
    } else {
        Ok(())
    }
}

/// UNI: every feature independently uniform in `[0, 1]`.
pub fn uniform<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Dataset> {
    validate_shape(n, m)?;
    let rows = (0..n)
        .map(|_| (0..m).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    Dataset::with_default_names("UNI", rows)
}

/// PWR: every feature independently drawn from a bounded Pareto (power-law)
/// distribution with exponent `alpha`, then normalised into `[0, 1]`.
///
/// Inverse-CDF sampling of a Pareto on `[x_min, x_max]`:
/// `x = x_min / (1 - u (1 - (x_min / x_max)^(α-1)))^(1/(α-1))`.
pub fn power_law<R: Rng + ?Sized>(n: usize, m: usize, alpha: f64, rng: &mut R) -> Result<Dataset> {
    validate_shape(n, m)?;
    assert!(alpha > 1.0, "power-law exponent must exceed 1");
    let x_min: f64 = 1.0;
    let x_max: f64 = 1000.0;
    let k = alpha - 1.0;
    let tail = 1.0 - (x_min / x_max).powf(k);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..m)
                .map(|_| {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    let x = x_min / (1.0 - u * tail).powf(1.0 / k);
                    // Normalise into [0, 1] by the distribution's upper bound so
                    // the column maximum never exceeds 1 regardless of n.
                    x / x_max
                })
                .collect()
        })
        .collect();
    Dataset::with_default_names("PWR", rows)
}

/// COR: features are positively correlated.  Following the skyline benchmark,
/// each item draws a "quality level" and individual features scatter tightly
/// around it, so an item that is good on one feature tends to be good on all.
pub fn correlated<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Dataset> {
    validate_shape(n, m)?;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let level: f64 = rng.gen_range(0.0..1.0);
            (0..m)
                .map(|_| {
                    let jitter: f64 = rng.gen_range(-0.1..0.1);
                    (level + jitter).clamp(0.0, 1.0)
                })
                .collect()
        })
        .collect();
    Dataset::with_default_names("COR", rows)
}

/// ANT: features are anti-correlated.  Each item has a fixed total "budget"
/// spread across features, so an item that is good on one feature is
/// necessarily poor on others — the regime that maximises skyline sizes in the
/// original benchmark and stresses package search the most.
pub fn anti_correlated<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Dataset> {
    validate_shape(n, m)?;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            // Draw a point on the simplex (budget split) and scale it so the
            // per-feature values land in [0, 1] with high spread, plus a small
            // jitter around the anti-correlation plane.
            let mut cuts: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0f64..1.0)).collect();
            let total: f64 = cuts.iter().sum();
            if total > 0.0 {
                for c in &mut cuts {
                    *c /= total;
                }
            }
            let budget: f64 = rng.gen_range(0.6..1.0);
            cuts.iter()
                .map(|share| {
                    let jitter: f64 = rng.gen_range(-0.05..0.05);
                    (share * budget * m as f64 / 2.0 + jitter).clamp(0.0, 1.0)
                })
                .collect()
        })
        .collect();
    Dataset::with_default_names("ANT", rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(20140914)
    }

    #[test]
    fn empty_shapes_are_rejected() {
        let mut r = rng();
        assert!(uniform(0, 3, &mut r).is_err());
        assert!(uniform(3, 0, &mut r).is_err());
        assert!(power_law(0, 3, 2.5, &mut r).is_err());
        assert!(correlated(0, 1, &mut r).is_err());
        assert!(anti_correlated(1, 0, &mut r).is_err());
    }

    #[test]
    fn all_families_produce_requested_shape_and_unit_range() {
        let mut r = rng();
        for family in SyntheticFamily::all() {
            let d = family.generate(500, 6, &mut r).unwrap();
            assert_eq!(d.len(), 500, "{family:?}");
            assert_eq!(d.num_features(), 6, "{family:?}");
            let s = d.summary();
            for j in 0..6 {
                assert!(s.min[j] >= 0.0, "{family:?} feature {j} min {}", s.min[j]);
                assert!(s.max[j] <= 1.0, "{family:?} feature {j} max {}", s.max[j]);
            }
        }
    }

    #[test]
    fn family_names_match_paper() {
        assert_eq!(SyntheticFamily::Uniform.short_name(), "UNI");
        assert_eq!(SyntheticFamily::PowerLaw.short_name(), "PWR");
        assert_eq!(SyntheticFamily::Correlated.short_name(), "COR");
        assert_eq!(SyntheticFamily::AntiCorrelated.short_name(), "ANT");
    }

    #[test]
    fn uniform_mean_is_one_half() {
        let mut r = rng();
        let d = uniform(20_000, 2, &mut r).unwrap();
        let s = d.summary();
        assert!((s.mean[0] - 0.5).abs() < 0.02);
        assert!((s.mean[1] - 0.5).abs() < 0.02);
    }

    #[test]
    fn power_law_is_right_skewed() {
        let mut r = rng();
        let d = power_law(20_000, 1, 2.5, &mut r).unwrap();
        let s = d.summary();
        // Mass concentrates near the minimum: the mean sits far below the
        // midpoint of the support, unlike the uniform family.
        assert!(s.mean[0] < 0.1, "mean {}", s.mean[0]);
        assert!(s.max[0] > 0.05, "max {}", s.max[0]);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn power_law_requires_alpha_above_one() {
        let mut r = rng();
        let _ = power_law(10, 1, 1.0, &mut r);
    }

    #[test]
    fn correlated_family_has_positive_pairwise_correlation() {
        let mut r = rng();
        let d = correlated(20_000, 4, &mut r).unwrap();
        for a in 0..4 {
            for b in (a + 1)..4 {
                let c = d.correlation(a, b);
                assert!(c > 0.7, "correlation({a},{b}) = {c}");
            }
        }
    }

    #[test]
    fn anti_correlated_family_has_negative_pairwise_correlation() {
        let mut r = rng();
        let d = anti_correlated(20_000, 3, &mut r).unwrap();
        for a in 0..3 {
            for b in (a + 1)..3 {
                let c = d.correlation(a, b);
                assert!(c < -0.2, "correlation({a},{b}) = {c}");
            }
        }
    }

    #[test]
    fn generation_is_reproducible_with_same_seed() {
        let mut r1 = rng();
        let mut r2 = rng();
        let d1 = SyntheticFamily::Correlated
            .generate(100, 5, &mut r1)
            .unwrap();
        let d2 = SyntheticFamily::Correlated
            .generate(100, 5, &mut r2)
            .unwrap();
        assert_eq!(d1, d2);
    }
}
