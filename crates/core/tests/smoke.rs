//! Manifest smoke test: drives the crate's headline entry point (the
//! interactive engine loop) through the public API exactly as an external
//! consumer would, so a workspace/manifest regression fails `cargo test -q`.

use pkgrec_core::prelude::*;
use rand::SeedableRng;

#[test]
fn engine_round_trip_smoke() {
    let catalog = Catalog::from_rows(vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.2, 0.4]])
        .expect("valid catalog");
    let mut engine = RecommenderEngine::builder(catalog, Profile::cost_quality())
        .max_package_size(2)
        .k(2)
        .num_random(2)
        .num_samples(30)
        .build()
        .expect("valid engine config");

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let shown = engine.present(&mut rng).expect("presentation succeeds");
    assert!(!shown.is_empty());
    engine
        .record_feedback(&shown, Feedback::Click { index: 0 }, &mut rng)
        .expect("click is recorded");
    let recommendations = engine.recommend(&mut rng).expect("recommendation succeeds");
    assert!(!recommendations.is_empty());
}
