//! Fluent, validating construction of [`RecommenderEngine`]s.
//!
//! The builder subsumes raw [`EngineConfig`] struct literals and centralises
//! every configuration check that used to surface as a panic or silent
//! degeneracy deep inside sampling: a non-positive `prior_sigma`, a hybrid
//! maintenance `gamma` outside `(0, 1)`, a `k` of zero or one exceeding the
//! package space of the catalog, and so on.  Each defect is reported as a
//! distinct [`CoreError::InvalidConfig`](crate::error::CoreError) message.
//!
//! ```
//! use pkgrec_core::prelude::*;
//!
//! let catalog = Catalog::from_rows(vec![
//!     vec![0.6, 0.2],
//!     vec![0.4, 0.4],
//!     vec![0.2, 0.4],
//! ]).unwrap();
//! let engine = RecommenderEngine::builder(catalog, Profile::cost_quality())
//!     .max_package_size(2)
//!     .k(2)
//!     .num_random(2)
//!     .semantics(RankingSemantics::Exp)
//!     .sampler(SamplerKind::mcmc())
//!     .build()
//!     .unwrap();
//! assert_eq!(engine.context().max_package_size(), 2);
//! ```

use pkgrec_gmm::GaussianMixture;

use crate::engine::{EngineConfig, RecommenderEngine};
use crate::error::{CoreError, Result};
use crate::item::Catalog;
use crate::maintenance::MaintenanceStrategy;
use crate::package::package_space_size;
use crate::preferences::PreferenceStore;
use crate::profile::{AggregationContext, Profile};
use crate::ranking::RankingSemantics;
use crate::sampler::{SamplePool, SamplerKind};

/// Default maximum package size φ when [`EngineBuilder::max_package_size`] is
/// not called (the paper's experiments use packages of up to five items).
pub const DEFAULT_MAX_PACKAGE_SIZE: usize = 5;

/// Upper bound on the scoring-thread budget accepted by
/// [`EngineBuilder::num_threads`]; far above any sensible machine, it exists
/// to catch garbage values (e.g. an uninitialised config field) early.
pub const MAX_NUM_THREADS: usize = 256;

/// Validates a scoring-thread budget (shared by the builder and
/// [`RecommenderEngine::set_num_threads`]).
pub fn validate_num_threads(num_threads: usize) -> Result<()> {
    if num_threads == 0 || num_threads > MAX_NUM_THREADS {
        return Err(CoreError::InvalidConfig(format!(
            "num_threads must lie in 1..={MAX_NUM_THREADS}, got {num_threads}"
        )));
    }
    Ok(())
}

/// Fluent builder for [`RecommenderEngine`], created by
/// [`RecommenderEngine::builder`].
///
/// Every setter returns the builder; [`EngineBuilder::build`] validates the
/// accumulated configuration against the catalog and constructs the engine.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    catalog: Catalog,
    profile: Profile,
    max_package_size: usize,
    config: EngineConfig,
    num_threads: usize,
}

impl EngineBuilder {
    pub(crate) fn new(catalog: Catalog, profile: Profile) -> Self {
        EngineBuilder {
            catalog,
            profile,
            max_package_size: DEFAULT_MAX_PACKAGE_SIZE,
            config: EngineConfig::default(),
            num_threads: 1,
        }
    }

    /// Sets the maximum package size φ (default 5).
    pub fn max_package_size(mut self, phi: usize) -> Self {
        self.max_package_size = phi;
        self
    }

    /// Sets the number of packages recommended per round.
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Sets the number of random exploration packages presented per round.
    pub fn num_random(mut self, num_random: usize) -> Self {
        self.config.num_random = num_random;
        self
    }

    /// Sets the number of weight-vector samples maintained in the pool.
    pub fn num_samples(mut self, num_samples: usize) -> Self {
        self.config.num_samples = num_samples;
        self
    }

    /// Sets the ranking semantics used to aggregate per-sample results.
    pub fn semantics(mut self, semantics: RankingSemantics) -> Self {
        self.config.semantics = semantics;
        self
    }

    /// Sets the constrained sampling strategy.
    pub fn sampler(mut self, sampler: SamplerKind) -> Self {
        self.config.sampler = sampler;
        self
    }

    /// Sets the sample-pool maintenance strategy.
    pub fn maintenance(mut self, maintenance: MaintenanceStrategy) -> Self {
        self.config.maintenance = maintenance;
        self
    }

    /// Sets the shape of the Gaussian-mixture prior: `components` isotropic
    /// Gaussians of standard deviation `sigma`.
    pub fn prior(mut self, components: usize, sigma: f64) -> Self {
        self.config.prior_components = components;
        self.config.prior_sigma = sigma;
        self
    }

    /// Sets the number of OS threads the scoring stack may use (default 1 —
    /// fully serial).  The per-sample candidate searches and the batched
    /// scoring kernel ([`crate::scoring::score_batch_threaded`]) split their
    /// work across `num_threads` scoped threads; results are identical to the
    /// serial path.  Validated by [`validate_num_threads`] at build time.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Replaces the accumulated configuration wholesale (escape hatch for
    /// callers that already hold an [`EngineConfig`]).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Validates the configuration against the catalog and constructs the
    /// engine.
    ///
    /// Beyond [`EngineConfig::validate`], this rejects a zero `φ`, a profile
    /// whose dimensionality disagrees with the catalog, and a `k` larger than
    /// the number of distinct packages of size at most `φ` — a request that
    /// previously degenerated silently inside the per-sample search.
    pub fn build(self) -> Result<RecommenderEngine> {
        self.config.validate()?;
        validate_num_threads(self.num_threads)?;
        if self.max_package_size == 0 {
            return Err(CoreError::InvalidConfig(
                "maximum package size must be at least 1".into(),
            ));
        }
        let space = package_space_size(self.catalog.len(), self.max_package_size);
        if self.config.k as u128 > space {
            return Err(CoreError::InvalidConfig(format!(
                "k = {} exceeds the {} distinct packages of size at most {} over {} items",
                self.config.k,
                space,
                self.max_package_size,
                self.catalog.len()
            )));
        }
        let context = AggregationContext::new(self.profile, &self.catalog, self.max_package_size)?;
        let prior = GaussianMixture::default_prior(
            context.dim(),
            self.config.prior_components,
            self.config.prior_sigma,
        )?;
        Ok(RecommenderEngine::assemble(
            self.catalog,
            context,
            prior,
            PreferenceStore::new(),
            SamplePool::new(),
            self.config,
            0,
            self.num_threads,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recommender::Recommender;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
        ])
        .unwrap()
    }

    fn builder() -> EngineBuilder {
        RecommenderEngine::builder(catalog(), Profile::cost_quality()).max_package_size(2)
    }

    fn invalid_message(result: Result<RecommenderEngine>) -> String {
        match result {
            Err(CoreError::InvalidConfig(msg)) => msg,
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn fluent_build_produces_a_working_engine() {
        let mut engine = builder()
            .k(2)
            .num_random(2)
            .num_samples(30)
            .semantics(RankingSemantics::Exp)
            .sampler(SamplerKind::mcmc())
            .maintenance(MaintenanceStrategy::Hybrid { gamma: 0.05 })
            .prior(2, 0.4)
            .build()
            .unwrap();
        assert_eq!(engine.config().k, 2);
        assert_eq!(engine.config().prior_components, 2);
        assert_eq!(engine.prior().num_components(), 2);
        let mut rng = StdRng::seed_from_u64(11);
        let recs = engine.recommend(&mut rng).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(engine.state().k, 2);
    }

    #[test]
    fn zero_k_is_rejected() {
        let msg = invalid_message(builder().k(0).build());
        assert!(msg.contains("k must be at least 1"), "{msg}");
    }

    #[test]
    fn zero_num_samples_is_rejected() {
        let msg = invalid_message(builder().num_samples(0).build());
        assert!(msg.contains("num_samples must be at least 1"), "{msg}");
    }

    #[test]
    fn non_positive_or_non_finite_prior_sigma_is_rejected() {
        for sigma in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            let msg = invalid_message(builder().prior(1, sigma).build());
            assert!(msg.contains("prior_sigma must be positive"), "{msg}");
        }
    }

    #[test]
    fn zero_prior_components_is_rejected() {
        let msg = invalid_message(builder().prior(0, 0.5).build());
        assert!(msg.contains("prior_components must be at least 1"), "{msg}");
    }

    #[test]
    fn hybrid_gamma_outside_unit_interval_is_rejected() {
        for gamma in [0.0, -0.1, 1.0, 1.5, f64::NAN] {
            let msg = invalid_message(
                builder()
                    .maintenance(MaintenanceStrategy::Hybrid { gamma })
                    .build(),
            );
            assert!(msg.contains("gamma must lie in the open interval"), "{msg}");
        }
        // The boundary-exclusive check still admits interior values.
        assert!(builder()
            .maintenance(MaintenanceStrategy::Hybrid { gamma: 0.025 })
            .build()
            .is_ok());
    }

    #[test]
    fn num_threads_outside_the_valid_range_is_rejected() {
        for bad in [0, MAX_NUM_THREADS + 1] {
            let msg = invalid_message(builder().num_threads(bad).build());
            assert!(msg.contains("num_threads must lie in"), "{msg}");
        }
        let engine = builder().num_threads(4).build().unwrap();
        assert_eq!(engine.num_threads(), 4);
        assert_eq!(builder().build().unwrap().num_threads(), 1);
    }

    #[test]
    fn zero_max_package_size_is_rejected() {
        let msg = invalid_message(builder().max_package_size(0).build());
        assert!(
            msg.contains("maximum package size must be at least 1"),
            "{msg}"
        );
    }

    #[test]
    fn k_beyond_the_package_space_is_rejected() {
        // 4 items, φ = 1 → exactly 4 distinct packages.
        let msg = invalid_message(builder().max_package_size(1).k(5).build());
        assert!(msg.contains("exceeds the 4 distinct packages"), "{msg}");
        assert!(builder().max_package_size(1).k(4).build().is_ok());
    }

    #[test]
    fn profile_dimension_mismatch_is_rejected() {
        let result = RecommenderEngine::builder(catalog(), Profile::all_sum(3))
            .max_package_size(2)
            .build();
        assert!(matches!(result, Err(CoreError::DimensionMismatch { .. })));
    }

    #[test]
    fn config_escape_hatch_is_validated_too() {
        let raw = EngineConfig {
            prior_sigma: -1.0,
            ..EngineConfig::default()
        };
        let msg = invalid_message(builder().config(raw).build());
        assert!(msg.contains("prior_sigma"), "{msg}");
    }
}
