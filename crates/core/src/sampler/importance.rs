//! Importance sampling with a region-centred Gaussian proposal (Section 3.2.1).
//!
//! Instead of proposing from the prior `Pw`, the sampler proposes from a
//! Gaussian `Qw = N(w*, σ²I)` whose mean `w*` approximates the centre of the
//! feedback-consistent convex region (computed by the grid decomposition of
//! `pkgrec-geom`).  Accepted samples carry the importance weight
//! `q(w) = Pw(w) / Qw(w)` that corrects for the changed proposal, which is how
//! downstream ranking keeps estimating expectations under the true posterior
//! (Theorem 1 shows the resulting effective number of samples can only
//! improve on rejection sampling).
//!
//! The grid has `cells_per_dim^m` cells, so the approach is only practical in
//! low dimension — the paper excludes it beyond five features (Figure 6), and
//! [`ImportanceSampler::generate`] returns an error instead of silently
//! spending minutes when the grid would be too large.

use pkgrec_geom::Grid;
use pkgrec_gmm::{Gaussian, GaussianMixture};
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::constraints::ConstraintChecker;
use crate::error::{CoreError, Result};
use crate::sampler::{in_weight_cube, SamplePool, SamplingOutcome, WeightSampler};

/// Configuration of the importance sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportanceSampler {
    /// Grid resolution per dimension used to approximate the region centre.
    pub cells_per_dim: usize,
    /// Standard deviation of the Gaussian proposal around the centre.
    pub proposal_sigma: f64,
    /// Give up after `max_attempts_per_sample * n` proposals.
    pub max_attempts_per_sample: usize,
    /// Refuse to build grids with more cells than this (the cost guard that
    /// mirrors the paper's "importance sampling is excluded from
    /// high-dimensional experiments").
    pub max_grid_cells: usize,
}

impl Default for ImportanceSampler {
    fn default() -> Self {
        ImportanceSampler {
            cells_per_dim: 6,
            proposal_sigma: 0.35,
            max_attempts_per_sample: 20_000,
            max_grid_cells: 1_000_000,
        }
    }
}

impl ImportanceSampler {
    /// Approximates the centre of the valid region for the given constraints.
    fn region_center(&self, checker: &ConstraintChecker) -> Result<Vec<f64>> {
        let dim = checker.region().dim();
        let cells = Grid::cell_count(dim, self.cells_per_dim)
            .filter(|&c| c <= self.max_grid_cells)
            .ok_or_else(|| {
                CoreError::InvalidConfig(format!(
                    "importance sampling grid would need {}^{dim} cells; use MCMC for high-dimensional weight spaces",
                    self.cells_per_dim
                ))
            })?;
        let _ = cells;
        let mut grid = Grid::over_weight_cube(dim, self.cells_per_dim)?;
        grid.apply_constraints(checker.constraints().iter());
        grid.approximate_center()
            .map_err(|_| CoreError::EmptyValidRegion)
    }
}

impl WeightSampler for ImportanceSampler {
    fn name(&self) -> &'static str {
        "IS"
    }

    fn generate(
        &self,
        prior: &GaussianMixture,
        checker: &ConstraintChecker,
        n: usize,
        rng: &mut dyn RngCore,
    ) -> Result<SamplingOutcome> {
        let center = self.region_center(checker)?;
        let proposal = Gaussian::isotropic(center, self.proposal_sigma)?;
        let mut pool = SamplePool::new();
        let mut proposals = 0usize;
        let max_attempts = self.max_attempts_per_sample.saturating_mul(n.max(1));
        while pool.len() < n {
            if proposals >= max_attempts {
                return Err(CoreError::SamplingExhausted {
                    obtained: pool.len(),
                    requested: n,
                    attempts: proposals,
                });
            }
            proposals += 1;
            let candidate = proposal.sample(rng);
            if !in_weight_cube(&candidate) || !checker.is_valid(&candidate) {
                continue;
            }
            let prior_density = prior.pdf(&candidate)?;
            let proposal_density = proposal.pdf(&candidate)?;
            if proposal_density <= 0.0 {
                continue;
            }
            let importance = (prior_density / proposal_density).max(f64::MIN_POSITIVE);
            pool.push_sample(&candidate, importance);
        }
        let rejected = proposals - pool.len();
        Ok(SamplingOutcome {
            pool,
            proposals,
            rejected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ConstraintSource;
    use crate::sampler::RejectionSampler;
    use pkgrec_geom::HalfSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn checker(constraints: Vec<HalfSpace>, dim: usize) -> ConstraintChecker {
        ConstraintChecker::from_constraints(dim, constraints, ConstraintSource::Full)
    }

    #[test]
    fn produces_valid_weighted_samples() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let c = checker(
            vec![
                HalfSpace::new(vec![1.0, 0.0]),
                HalfSpace::new(vec![0.0, 1.0]),
            ],
            2,
        );
        let mut rng = StdRng::seed_from_u64(10);
        let outcome = ImportanceSampler::default()
            .generate(&prior, &c, 300, &mut rng)
            .unwrap();
        assert_eq!(outcome.pool.len(), 300);
        for s in outcome.pool.samples() {
            assert!(c.is_valid(s.weights));
            assert!(s.importance > 0.0);
        }
        // Importance weights are not all identical (the proposal differs from
        // the prior), so the ESS drops below the raw count.
        assert!(outcome.pool.effective_sample_size() < 300.0);
    }

    #[test]
    fn rejects_fewer_proposals_than_rejection_sampling_under_tight_constraints() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        // Constraints pushing the valid region into a corner of the cube.
        let c = checker(
            vec![
                HalfSpace::new(vec![1.0, -0.2]),
                HalfSpace::new(vec![0.2, 1.0]),
                HalfSpace::new(vec![1.0, 0.6]),
                HalfSpace::new(vec![0.8, 1.0]),
            ],
            2,
        );
        let mut rng = StdRng::seed_from_u64(11);
        let is = ImportanceSampler::default()
            .generate(&prior, &c, 200, &mut rng)
            .unwrap();
        let rs = RejectionSampler::default()
            .generate(&prior, &c, 200, &mut rng)
            .unwrap();
        assert!(
            is.acceptance_rate() > rs.acceptance_rate(),
            "IS acceptance {} should beat RS acceptance {}",
            is.acceptance_rate(),
            rs.acceptance_rate()
        );
    }

    #[test]
    fn high_dimensional_grids_are_refused() {
        let prior = GaussianMixture::default_prior(10, 1, 0.5).unwrap();
        let c = checker(vec![], 10);
        let sampler = ImportanceSampler::default();
        let mut rng = StdRng::seed_from_u64(12);
        let err = sampler.generate(&prior, &c, 10, &mut rng).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn center_estimate_moves_with_the_constraints() {
        let sampler = ImportanceSampler::default();
        let unconstrained = sampler.region_center(&checker(vec![], 2)).unwrap();
        assert!(unconstrained[0].abs() < 1e-9 && unconstrained[1].abs() < 1e-9);
        let constrained = sampler
            .region_center(&checker(vec![HalfSpace::new(vec![1.0, 0.0])], 2))
            .unwrap();
        assert!(constrained[0] > 0.2);
    }

    #[test]
    fn importance_weights_compensate_for_the_proposal_shift() {
        // With no constraints, the weighted sample mean must still estimate the
        // prior mean (0, 0) even though the proposal is centred at the region
        // centre and has a different spread.
        let prior = GaussianMixture::default_prior(2, 1, 0.4).unwrap();
        let c = checker(vec![], 2);
        let mut rng = StdRng::seed_from_u64(13);
        let outcome = ImportanceSampler {
            proposal_sigma: 0.6,
            ..ImportanceSampler::default()
        }
        .generate(&prior, &c, 4000, &mut rng)
        .unwrap();
        let total_weight: f64 = outcome.pool.importances().iter().sum();
        for d in 0..2 {
            let mean: f64 = outcome
                .pool
                .samples()
                .map(|s| s.importance * s.weights[d])
                .sum::<f64>()
                / total_weight;
            assert!(mean.abs() < 0.05, "dimension {d} weighted mean {mean}");
        }
    }
}
