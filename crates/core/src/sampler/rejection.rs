//! Rejection sampling from the constrained posterior (Section 3.1).
//!
//! Lemma 1 justifies the approach: conditioning on feedback only zeroes out
//! the density of inconsistent weight vectors and preserves the relative
//! density of consistent ones, so drawing from the prior and discarding
//! violators samples the posterior exactly.  The price is wasted proposals
//! once the feedback region becomes small — the weakness the feedback-aware
//! samplers address.

use pkgrec_gmm::GaussianMixture;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::constraints::ConstraintChecker;
use crate::error::{CoreError, Result};
use crate::noise::NoiseModel;
use crate::sampler::{in_weight_cube, SamplePool, SamplingOutcome, WeightSampler};
use crate::utility::clamp_weights;

/// Configuration of the rejection sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectionSampler {
    /// Give up after `max_attempts_per_sample * n` proposals.
    pub max_attempts_per_sample: usize,
    /// Optional noise model: violating samples are rejected probabilistically
    /// instead of deterministically (Section 7).
    pub noise: Option<NoiseModel>,
    /// Whether proposals outside the weight cube `[-1, 1]^m` are clamped onto
    /// it (`true`, the default) or rejected outright (`false`).
    pub clamp_to_cube: bool,
}

impl Default for RejectionSampler {
    fn default() -> Self {
        RejectionSampler {
            max_attempts_per_sample: 20_000,
            noise: None,
            clamp_to_cube: true,
        }
    }
}

impl RejectionSampler {
    /// A rejection sampler with the noise model of Section 7.
    pub fn with_noise(noise: NoiseModel) -> Self {
        RejectionSampler {
            noise: Some(noise),
            ..RejectionSampler::default()
        }
    }
}

impl WeightSampler for RejectionSampler {
    fn name(&self) -> &'static str {
        "RS"
    }

    fn generate(
        &self,
        prior: &GaussianMixture,
        checker: &ConstraintChecker,
        n: usize,
        rng: &mut dyn RngCore,
    ) -> Result<SamplingOutcome> {
        let mut pool = SamplePool::new();
        let mut proposals = 0usize;
        let max_attempts = self.max_attempts_per_sample.saturating_mul(n.max(1));
        while pool.len() < n {
            if proposals >= max_attempts {
                return Err(CoreError::SamplingExhausted {
                    obtained: pool.len(),
                    requested: n,
                    attempts: proposals,
                });
            }
            proposals += 1;
            let raw = prior.sample(rng);
            let candidate = if self.clamp_to_cube {
                clamp_weights(&raw)
            } else {
                raw
            };
            if !in_weight_cube(&candidate) {
                continue;
            }
            let accepted = match &self.noise {
                None => checker.is_valid(&candidate),
                Some(noise) => {
                    let violations = checker.violation_count(&candidate);
                    noise.accept(violations, rng)
                }
            };
            if accepted {
                pool.push_sample(&candidate, 1.0);
            }
        }
        let rejected = proposals - pool.len();
        Ok(SamplingOutcome {
            pool,
            proposals,
            rejected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ConstraintSource;
    use pkgrec_geom::HalfSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn checker(constraints: Vec<HalfSpace>) -> ConstraintChecker {
        ConstraintChecker::from_constraints(2, constraints, ConstraintSource::Full)
    }

    #[test]
    fn produces_exactly_n_valid_unweighted_samples() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let c = checker(vec![HalfSpace::new(vec![1.0, -1.0])]);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = RejectionSampler::default()
            .generate(&prior, &c, 200, &mut rng)
            .unwrap();
        assert_eq!(outcome.pool.len(), 200);
        assert_eq!(outcome.proposals, outcome.pool.len() + outcome.rejected);
        for s in outcome.pool.samples() {
            assert!(c.is_valid(s.weights));
            assert_eq!(s.importance, 1.0);
        }
    }

    #[test]
    fn acceptance_rate_drops_as_constraints_accumulate() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let loose = checker(vec![HalfSpace::new(vec![1.0, 0.0])]);
        let tight = checker(vec![
            HalfSpace::new(vec![1.0, 0.0]),
            HalfSpace::new(vec![0.0, 1.0]),
            HalfSpace::new(vec![1.0, -0.5]),
            HalfSpace::new(vec![-0.5, 1.0]),
        ]);
        let mut rng = StdRng::seed_from_u64(2);
        let loose_outcome = RejectionSampler::default()
            .generate(&prior, &loose, 300, &mut rng)
            .unwrap();
        let tight_outcome = RejectionSampler::default()
            .generate(&prior, &tight, 300, &mut rng)
            .unwrap();
        assert!(loose_outcome.acceptance_rate() > tight_outcome.acceptance_rate());
    }

    #[test]
    fn exhaustion_is_reported_not_looped_forever() {
        let prior = GaussianMixture::default_prior(2, 1, 0.2).unwrap();
        // Contradictory-looking constraints leave only the w = 0 line; the
        // chance of hitting it exactly is zero.
        let c = checker(vec![
            HalfSpace::new(vec![1.0, 0.0]),
            HalfSpace::new(vec![-1.0, 0.0]),
            HalfSpace::new(vec![0.0, 1.0]),
            HalfSpace::new(vec![0.0, -1.0]),
        ]);
        let sampler = RejectionSampler {
            max_attempts_per_sample: 50,
            ..RejectionSampler::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let err = sampler.generate(&prior, &c, 10, &mut rng).unwrap_err();
        match err {
            CoreError::SamplingExhausted {
                requested,
                attempts,
                ..
            } => {
                assert_eq!(requested, 10);
                assert_eq!(attempts, 500);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn clamping_keeps_samples_inside_cube_even_with_wide_prior() {
        let prior = GaussianMixture::default_prior(2, 1, 3.0).unwrap();
        let c = checker(vec![]);
        let mut rng = StdRng::seed_from_u64(4);
        let outcome = RejectionSampler::default()
            .generate(&prior, &c, 100, &mut rng)
            .unwrap();
        for s in outcome.pool.samples() {
            assert!(in_weight_cube(s.weights));
        }
        // Without clamping, wide priors mostly land outside and get rejected.
        let strict = RejectionSampler {
            clamp_to_cube: false,
            ..RejectionSampler::default()
        };
        let strict_outcome = strict.generate(&prior, &c, 100, &mut rng).unwrap();
        assert!(strict_outcome.rejected > outcome.rejected);
    }

    #[test]
    fn noisy_sampler_keeps_some_violating_samples() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let c = checker(vec![HalfSpace::new(vec![1.0, 0.0])]);
        let noisy = RejectionSampler::with_noise(NoiseModel::new(0.5).unwrap());
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = noisy.generate(&prior, &c, 400, &mut rng).unwrap();
        let violating = outcome
            .pool
            .samples()
            .filter(|s| !c.is_valid(s.weights))
            .count();
        // With ψ = 0.5 roughly half the violating proposals survive, so the
        // pool contains a healthy share of them (exact count is stochastic).
        assert!(violating > 50, "violating = {violating}");
        assert!(violating < 300, "violating = {violating}");
    }
}
