//! Constrained sampling of utility weight vectors (Section 3).
//!
//! The posterior over weight vectors given user feedback has no closed form,
//! so the system works with a *pool of weighted samples* drawn from the prior
//! and constrained to the feedback-consistent region.  Three strategies are
//! provided, mirroring Sections 3.1–3.2:
//!
//! * [`RejectionSampler`] — sample the prior, throw away violators,
//! * [`ImportanceSampler`] — propose from a Gaussian centred at the
//!   (grid-approximated) centre of the valid region and correct the bias with
//!   importance weights,
//! * [`McmcSampler`] — a Metropolis–Hastings random walk inside the valid
//!   region.
//!
//! All three implement [`WeightSampler`] and produce a [`SamplingOutcome`]
//! whose [`SamplePool`] feeds ranking ([`crate::ranking`]) and maintenance
//! ([`crate::maintenance`]).

mod importance;
mod mcmc;
mod rejection;

pub use importance::ImportanceSampler;
pub use mcmc::McmcSampler;
pub use rejection::RejectionSampler;

use pkgrec_gmm::{effective_number_of_samples_from_weights, GaussianMixture};
use rand::RngCore;
use serde::{json_model::Value, DeError, Deserialize, Serialize};

use crate::constraints::ConstraintChecker;
use crate::error::Result;
use crate::scoring::WeightMatrix;
use crate::utility::WeightVector;

/// One sampled weight vector together with its importance weight
/// (`1.0` for rejection and MCMC samples).
///
/// This is the owned *transfer* type of the pool — its storage lives in a
/// flat, row-major [`WeightMatrix`]; iterate it cheaply through
/// [`SamplePool::samples`], which yields borrowed [`SampleRef`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightSample {
    /// The sampled weight vector.
    pub weights: WeightVector,
    /// The importance weight `q(w) = Pw(w) / Qw(w)` correcting proposal bias.
    pub importance: f64,
}

impl WeightSample {
    /// A sample with unit importance weight.
    pub fn unweighted(weights: WeightVector) -> Self {
        WeightSample {
            weights,
            importance: 1.0,
        }
    }
}

/// A borrowed view of one pool entry (the weight row lives in the pool's flat
/// [`WeightMatrix`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRef<'a> {
    /// The sampled weight vector.
    pub weights: &'a [f64],
    /// The importance weight of the sample.
    pub importance: f64,
}

impl SampleRef<'_> {
    /// Copies the view into an owned [`WeightSample`].
    pub fn to_sample(&self) -> WeightSample {
        WeightSample {
            weights: self.weights.to_vec(),
            importance: self.importance,
        }
    }
}

/// A pool of weighted samples representing the current posterior knowledge
/// about a user's utility weight vector.
///
/// Samples are stored contiguously in a row-major [`WeightMatrix`] — the
/// operand of the batched scoring kernel
/// ([`crate::scoring::score_batch`]) — rather than as per-sample `Vec`s.
/// Every insertion is dimension-checked (in release builds too), so a pool is
/// rectangular by construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SamplePool {
    matrix: WeightMatrix,
}

impl SamplePool {
    /// Creates an empty pool.  The dimensionality is fixed by the first sample
    /// pushed.
    pub fn new() -> Self {
        SamplePool::default()
    }

    /// Creates a pool from owned samples.
    ///
    /// # Panics
    /// Panics if the samples disagree on dimensionality (checked in release
    /// builds).
    pub fn from_samples(samples: Vec<WeightSample>) -> Self {
        let mut pool = SamplePool::new();
        for sample in samples {
            pool.push(sample);
        }
        pool
    }

    /// Number of samples in the pool.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// Dimensionality of the pooled weight vectors (0 while the pool is
    /// empty).
    pub fn dim(&self) -> usize {
        self.matrix.dim()
    }

    /// Iterates over the samples as borrowed views into the flat storage.
    pub fn samples(&self) -> impl ExactSizeIterator<Item = SampleRef<'_>> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// The sample at `index`.
    pub fn get(&self, index: usize) -> SampleRef<'_> {
        SampleRef {
            weights: self.matrix.row(index),
            importance: self.matrix.importance(index),
        }
    }

    /// Adds an owned sample to the pool.
    ///
    /// # Panics
    /// Panics if the sample's dimensionality disagrees with the pool's
    /// (checked in release builds).
    pub fn push(&mut self, sample: WeightSample) {
        self.push_sample(&sample.weights, sample.importance);
    }

    /// Adds a sample to the pool without an intermediate allocation.
    ///
    /// # Panics
    /// Panics if `weights.len()` disagrees with the pool's dimensionality
    /// (checked in release builds).
    pub fn push_sample(&mut self, weights: &[f64], importance: f64) {
        if self.matrix.is_empty() && self.matrix.dim() != weights.len() {
            self.matrix = WeightMatrix::new(weights.len());
        }
        self.matrix.push(weights, importance);
    }

    /// Replaces the sample at `index` (used by maintenance when swapping out
    /// invalidated entries in place).
    ///
    /// # Panics
    /// Panics if `index` is out of range or the dimensionality disagrees.
    pub fn set_sample(&mut self, index: usize, weights: &[f64], importance: f64) {
        self.matrix.set_row(index, weights, importance);
    }

    /// The flat row-major weight matrix backing the pool — the right-hand
    /// operand of [`crate::scoring::score_batch`].
    pub fn weight_matrix(&self) -> &WeightMatrix {
        &self.matrix
    }

    /// The weight vectors copied out as per-sample rows (compatibility with
    /// row-oriented consumers such as the EM refit).
    pub fn weight_rows(&self) -> Vec<Vec<f64>> {
        self.matrix.rows().map(<[f64]>::to_vec).collect()
    }

    /// The importance weights, one per sample.
    pub fn importances(&self) -> &[f64] {
        self.matrix.importances()
    }

    /// Effective number of samples `(Σ q)² / Σ q²` of the pool's importance
    /// weights.
    pub fn effective_sample_size(&self) -> f64 {
        effective_number_of_samples_from_weights(self.matrix.importances())
    }

    /// Incrementally refills the pool to `target` samples valid under
    /// `checker`: rows that still satisfy the constraints are retained
    /// in place and in order (compacting the flat [`WeightMatrix`] without
    /// releasing its allocation), surplus valid rows are truncated, and only
    /// the shortfall is re-drawn through `sampler`.  Returns the number of
    /// samples reused.
    ///
    /// Retention is statistically sound for samplers whose target is the
    /// prior restricted to the constraint region (Section 3.4): a new
    /// constraint multiplies the posterior by an indicator function, so
    /// surviving samples remain draws from the updated posterior and keep
    /// their importance weights.  On an empty pool the call degenerates to a
    /// fresh `sampler.generate(prior, checker, target, rng)` fill — the same
    /// draws in the same order — so callers that previously rebuilt from
    /// scratch observe bit-identical pools there.
    pub fn resample<S: WeightSampler + ?Sized>(
        &mut self,
        target: usize,
        sampler: &S,
        prior: &GaussianMixture,
        checker: &ConstraintChecker,
        rng: &mut dyn RngCore,
    ) -> Result<usize> {
        let kept = self.matrix.retain_rows(|_, w| checker.is_valid(w));
        if kept > target {
            self.matrix.truncate(target);
        }
        let reused = kept.min(target);
        let shortfall = target - reused;
        if shortfall > 0 {
            let outcome = sampler.generate(prior, checker, shortfall, rng)?;
            for sample in outcome.pool.samples() {
                self.push_sample(sample.weights, sample.importance);
            }
        }
        Ok(reused)
    }

    /// Indices of samples violating the given validity predicate.
    pub fn violating_indices<F: Fn(&[f64]) -> bool>(&self, is_valid: F) -> Vec<usize> {
        self.matrix
            .rows()
            .enumerate()
            .filter(|(_, w)| !is_valid(w))
            .map(|(i, _)| i)
            .collect()
    }
}

// The pool serialises exactly as it did when it stored `Vec<WeightSample>`
// (`{"samples": [{"weights": [...], "importance": x}, ...]}`), so snapshots
// written before the columnar refactor restore unchanged.  The impls are
// written against the vendored serde stub's JSON-value data model; if the
// stub is ever swapped for real serde, port them to `#[serde(into/from)]`.
impl Serialize for SamplePool {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![(
            "samples".to_string(),
            Value::Array(
                self.samples()
                    .map(|s| s.to_sample().to_json_value())
                    .collect(),
            ),
        )])
    }
}

impl Deserialize for SamplePool {
    fn from_json_value(v: &Value) -> std::result::Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::expected("an object", v))?;
        let samples: Vec<WeightSample> =
            Deserialize::from_json_value(serde::get_field(entries, "samples")?)?;
        let dim = samples.first().map(|s| s.weights.len()).unwrap_or(0);
        if samples.iter().any(|s| s.weights.len() != dim) {
            return Err(DeError(
                "sample pool rows disagree on dimensionality".to_string(),
            ));
        }
        Ok(SamplePool::from_samples(samples))
    }
}

/// Statistics and samples produced by one sampling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingOutcome {
    /// The accepted samples.
    pub pool: SamplePool,
    /// Total proposals generated (accepted + rejected).
    pub proposals: usize,
    /// Proposals rejected for violating feedback or leaving the weight cube.
    pub rejected: usize,
}

impl SamplingOutcome {
    /// Fraction of proposals that were accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposals == 0 {
            0.0
        } else {
            self.pool.len() as f64 / self.proposals as f64
        }
    }
}

/// A constrained sampler of utility weight vectors.
pub trait WeightSampler {
    /// Short name used in experiment output ("RS", "IS", "MS").
    fn name(&self) -> &'static str;

    /// Draws `n` valid samples from the prior restricted to the feedback
    /// region described by `checker`.
    fn generate(
        &self,
        prior: &GaussianMixture,
        checker: &ConstraintChecker,
        n: usize,
        rng: &mut dyn RngCore,
    ) -> Result<SamplingOutcome>;
}

/// The sampling strategies of the paper, as a configuration-friendly enum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SamplerKind {
    /// Rejection sampling (Section 3.1).
    Rejection(RejectionSampler),
    /// Importance sampling (Section 3.2.1).
    Importance(ImportanceSampler),
    /// Metropolis–Hastings MCMC sampling (Section 3.2.2).
    Mcmc(McmcSampler),
}

impl SamplerKind {
    /// The default configuration of each strategy.
    pub fn rejection() -> Self {
        SamplerKind::Rejection(RejectionSampler::default())
    }

    /// Importance sampling with default configuration.
    pub fn importance() -> Self {
        SamplerKind::Importance(ImportanceSampler::default())
    }

    /// MCMC sampling with default configuration.
    pub fn mcmc() -> Self {
        SamplerKind::Mcmc(McmcSampler::default())
    }
}

impl WeightSampler for SamplerKind {
    fn name(&self) -> &'static str {
        match self {
            SamplerKind::Rejection(s) => s.name(),
            SamplerKind::Importance(s) => s.name(),
            SamplerKind::Mcmc(s) => s.name(),
        }
    }

    fn generate(
        &self,
        prior: &GaussianMixture,
        checker: &ConstraintChecker,
        n: usize,
        rng: &mut dyn RngCore,
    ) -> Result<SamplingOutcome> {
        match self {
            SamplerKind::Rejection(s) => s.generate(prior, checker, n, rng),
            SamplerKind::Importance(s) => s.generate(prior, checker, n, rng),
            SamplerKind::Mcmc(s) => s.generate(prior, checker, n, rng),
        }
    }
}

/// Whether a weight vector lies in the canonical weight cube `[-1, 1]^m`.
pub(crate) fn in_weight_cube(w: &[f64]) -> bool {
    w.iter().all(|x| (-1.0..=1.0).contains(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{ConstraintChecker, ConstraintSource};
    use crate::preferences::PreferenceStore;
    use pkgrec_geom::HalfSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn positive_quadrant_checker() -> ConstraintChecker {
        ConstraintChecker::from_constraints(
            2,
            vec![
                HalfSpace::new(vec![1.0, 0.0]),
                HalfSpace::new(vec![0.0, 1.0]),
            ],
            ConstraintSource::Full,
        )
    }

    #[test]
    fn sample_pool_basics() {
        let mut pool = SamplePool::new();
        assert!(pool.is_empty());
        assert_eq!(pool.dim(), 0);
        pool.push(WeightSample::unweighted(vec![0.1, 0.2]));
        pool.push(WeightSample {
            weights: vec![-0.1, 0.4],
            importance: 2.0,
        });
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.dim(), 2);
        assert_eq!(pool.weight_matrix().len(), 2);
        assert_eq!(pool.weight_rows(), vec![vec![0.1, 0.2], vec![-0.1, 0.4]]);
        assert_eq!(pool.importances(), &[1.0, 2.0]);
        assert_eq!(pool.get(1).weights, &[-0.1, 0.4]);
        let violators = pool.violating_indices(|w| w[0] > 0.0);
        assert_eq!(violators, vec![1]);
        // ESS of weights (1, 2) = 9 / 5.
        assert!((pool.effective_sample_size() - 1.8).abs() < 1e-12);
        // In-place replacement keeps the flat storage rectangular.
        pool.set_sample(1, &[0.6, 0.7], 1.5);
        assert_eq!(pool.get(1).to_sample().weights, vec![0.6, 0.7]);
        assert!(pool.violating_indices(|w| w[0] > 0.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "weight sample dimensionality")]
    fn mismatched_sample_dimensions_are_rejected_on_push() {
        let mut pool = SamplePool::new();
        pool.push(WeightSample::unweighted(vec![0.1, 0.2]));
        pool.push(WeightSample::unweighted(vec![0.1, 0.2, 0.3]));
    }

    #[test]
    fn pool_serialisation_keeps_the_row_oriented_wire_shape() {
        // The flat pool must serialise exactly as the old row-of-structs pool
        // did, so pre-refactor snapshots keep restoring.
        let pool = SamplePool::from_samples(vec![
            WeightSample::unweighted(vec![0.5, -0.25]),
            WeightSample {
                weights: vec![0.0, 1.0],
                importance: 2.0,
            },
        ]);
        let json = serde_json::to_string(&pool).unwrap();
        assert_eq!(
            json,
            "{\"samples\":[{\"weights\":[0.5,-0.25],\"importance\":1},\
             {\"weights\":[0,1],\"importance\":2}]}"
        );
        let restored: SamplePool = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, pool);
        // Ragged rows are rejected at the serde boundary (no panic).
        let ragged = "{\"samples\":[{\"weights\":[0.5],\"importance\":1},\
                      {\"weights\":[0,1],\"importance\":1}]}";
        assert!(serde_json::from_str::<SamplePool>(ragged).is_err());
    }

    #[test]
    fn incremental_resample_on_an_empty_pool_equals_a_fresh_rebuild() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let checker = positive_quadrant_checker();
        for sampler in [
            SamplerKind::rejection(),
            SamplerKind::importance(),
            SamplerKind::mcmc(),
        ] {
            let mut fresh_rng = StdRng::seed_from_u64(2024);
            let fresh = sampler
                .generate(&prior, &checker, 25, &mut fresh_rng)
                .unwrap()
                .pool;
            let mut incremental_rng = StdRng::seed_from_u64(2024);
            let mut pool = SamplePool::new();
            let reused = pool
                .resample(25, &sampler, &prior, &checker, &mut incremental_rng)
                .unwrap();
            assert_eq!(reused, 0, "{}", sampler.name());
            assert_eq!(pool, fresh, "{}", sampler.name());
        }
    }

    #[test]
    fn incremental_resample_keeps_valid_rows_and_redraws_only_the_shortfall() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let checker = positive_quadrant_checker();
        let sampler = SamplerKind::mcmc();
        // Two valid rows, one violator, in a known order.
        let mut pool = SamplePool::from_samples(vec![
            WeightSample::unweighted(vec![0.3, 0.4]),
            WeightSample {
                weights: vec![-0.5, 0.2],
                importance: 2.0,
            },
            WeightSample::unweighted(vec![0.6, 0.1]),
        ]);
        let mut rng = StdRng::seed_from_u64(7);
        let reused = pool
            .resample(10, &sampler, &prior, &checker, &mut rng)
            .unwrap();
        assert_eq!(reused, 2);
        assert_eq!(pool.len(), 10);
        // Survivors stay in order at the front, importances intact.
        assert_eq!(pool.get(0).weights, &[0.3, 0.4]);
        assert_eq!(pool.get(1).weights, &[0.6, 0.1]);
        assert_eq!(pool.get(1).importance, 1.0);
        for sample in pool.samples() {
            assert!(checker.is_valid(sample.weights));
        }
    }

    #[test]
    fn incremental_resample_with_a_fully_valid_pool_consumes_no_rng() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let checker = positive_quadrant_checker();
        let sampler = SamplerKind::rejection();
        let mut rng = StdRng::seed_from_u64(55);
        let mut pool = SamplePool::new();
        pool.resample(12, &sampler, &prior, &checker, &mut rng)
            .unwrap();
        let before = pool.clone();
        let mut untouched = rng.clone();
        let reused = pool
            .resample(12, &sampler, &prior, &checker, &mut rng)
            .unwrap();
        assert_eq!(reused, 12);
        assert_eq!(pool, before);
        use rand::RngCore as _;
        assert_eq!(rng.next_u64(), untouched.next_u64());
    }

    #[test]
    fn incremental_resample_truncates_a_surplus_of_valid_rows() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let checker = positive_quadrant_checker();
        let sampler = SamplerKind::rejection();
        let mut pool = SamplePool::from_samples(
            (1..=6)
                .map(|i| WeightSample::unweighted(vec![0.1 * i as f64, 0.05 * i as f64]))
                .collect(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let reused = pool
            .resample(4, &sampler, &prior, &checker, &mut rng)
            .unwrap();
        assert_eq!(reused, 4);
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.get(3).weights, &[0.4, 0.2]);
    }

    #[test]
    fn acceptance_rate_is_well_defined() {
        let outcome = SamplingOutcome {
            pool: SamplePool::from_samples(vec![WeightSample::unweighted(vec![0.0])]),
            proposals: 4,
            rejected: 3,
        };
        assert!((outcome.acceptance_rate() - 0.25).abs() < 1e-12);
        let empty = SamplingOutcome {
            pool: SamplePool::new(),
            proposals: 0,
            rejected: 0,
        };
        assert_eq!(empty.acceptance_rate(), 0.0);
    }

    #[test]
    fn sampler_kind_dispatches_by_name() {
        assert_eq!(SamplerKind::rejection().name(), "RS");
        assert_eq!(SamplerKind::importance().name(), "IS");
        assert_eq!(SamplerKind::mcmc().name(), "MS");
    }

    #[test]
    fn every_sampler_kind_produces_only_valid_samples() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let checker = positive_quadrant_checker();
        let mut rng = StdRng::seed_from_u64(99);
        for kind in [
            SamplerKind::rejection(),
            SamplerKind::importance(),
            SamplerKind::mcmc(),
        ] {
            let outcome = kind.generate(&prior, &checker, 50, &mut rng).unwrap();
            assert_eq!(outcome.pool.len(), 50, "{}", kind.name());
            for s in outcome.pool.samples() {
                assert!(
                    checker.is_valid(s.weights),
                    "{} produced invalid sample",
                    kind.name()
                );
                assert!(in_weight_cube(s.weights));
                assert!(s.importance.is_finite() && s.importance > 0.0);
            }
        }
    }

    #[test]
    fn unconstrained_sampling_accepts_most_proposals() {
        let prior = GaussianMixture::default_prior(3, 1, 0.3).unwrap();
        let checker = ConstraintChecker::full(&PreferenceStore::new(), 3);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = SamplerKind::rejection()
            .generate(&prior, &checker, 100, &mut rng)
            .unwrap();
        assert!(outcome.acceptance_rate() > 0.9);
    }
}
