//! Constrained sampling of utility weight vectors (Section 3).
//!
//! The posterior over weight vectors given user feedback has no closed form,
//! so the system works with a *pool of weighted samples* drawn from the prior
//! and constrained to the feedback-consistent region.  Three strategies are
//! provided, mirroring Sections 3.1–3.2:
//!
//! * [`RejectionSampler`] — sample the prior, throw away violators,
//! * [`ImportanceSampler`] — propose from a Gaussian centred at the
//!   (grid-approximated) centre of the valid region and correct the bias with
//!   importance weights,
//! * [`McmcSampler`] — a Metropolis–Hastings random walk inside the valid
//!   region.
//!
//! All three implement [`WeightSampler`] and produce a [`SamplingOutcome`]
//! whose [`SamplePool`] feeds ranking ([`crate::ranking`]) and maintenance
//! ([`crate::maintenance`]).

mod importance;
mod mcmc;
mod rejection;

pub use importance::ImportanceSampler;
pub use mcmc::McmcSampler;
pub use rejection::RejectionSampler;

use pkgrec_gmm::{effective_number_of_samples_from_weights, GaussianMixture};
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::constraints::ConstraintChecker;
use crate::error::Result;
use crate::utility::WeightVector;

/// One sampled weight vector together with its importance weight
/// (`1.0` for rejection and MCMC samples).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightSample {
    /// The sampled weight vector.
    pub weights: WeightVector,
    /// The importance weight `q(w) = Pw(w) / Qw(w)` correcting proposal bias.
    pub importance: f64,
}

impl WeightSample {
    /// A sample with unit importance weight.
    pub fn unweighted(weights: WeightVector) -> Self {
        WeightSample {
            weights,
            importance: 1.0,
        }
    }
}

/// A pool of weighted samples representing the current posterior knowledge
/// about a user's utility weight vector.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SamplePool {
    samples: Vec<WeightSample>,
}

impl SamplePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        SamplePool::default()
    }

    /// Creates a pool from samples.
    pub fn from_samples(samples: Vec<WeightSample>) -> Self {
        SamplePool { samples }
    }

    /// Number of samples in the pool.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples.
    pub fn samples(&self) -> &[WeightSample] {
        &self.samples
    }

    /// Mutable access to the samples (used by maintenance when replacing
    /// invalidated entries in place).
    pub fn samples_mut(&mut self) -> &mut Vec<WeightSample> {
        &mut self.samples
    }

    /// Adds a sample to the pool.
    pub fn push(&mut self, sample: WeightSample) {
        self.samples.push(sample);
    }

    /// The weight vectors only, as a row matrix (used to build sorted lists
    /// for TA-based maintenance).
    pub fn weight_matrix(&self) -> Vec<Vec<f64>> {
        self.samples.iter().map(|s| s.weights.clone()).collect()
    }

    /// Effective number of samples `(Σ q)² / Σ q²` of the pool's importance
    /// weights.
    pub fn effective_sample_size(&self) -> f64 {
        let weights: Vec<f64> = self.samples.iter().map(|s| s.importance).collect();
        effective_number_of_samples_from_weights(&weights)
    }

    /// Indices of samples violating the given validity predicate.
    pub fn violating_indices<F: Fn(&[f64]) -> bool>(&self, is_valid: F) -> Vec<usize> {
        self.samples
            .iter()
            .enumerate()
            .filter(|(_, s)| !is_valid(&s.weights))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Statistics and samples produced by one sampling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingOutcome {
    /// The accepted samples.
    pub pool: SamplePool,
    /// Total proposals generated (accepted + rejected).
    pub proposals: usize,
    /// Proposals rejected for violating feedback or leaving the weight cube.
    pub rejected: usize,
}

impl SamplingOutcome {
    /// Fraction of proposals that were accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposals == 0 {
            0.0
        } else {
            self.pool.len() as f64 / self.proposals as f64
        }
    }
}

/// A constrained sampler of utility weight vectors.
pub trait WeightSampler {
    /// Short name used in experiment output ("RS", "IS", "MS").
    fn name(&self) -> &'static str;

    /// Draws `n` valid samples from the prior restricted to the feedback
    /// region described by `checker`.
    fn generate(
        &self,
        prior: &GaussianMixture,
        checker: &ConstraintChecker,
        n: usize,
        rng: &mut dyn RngCore,
    ) -> Result<SamplingOutcome>;
}

/// The sampling strategies of the paper, as a configuration-friendly enum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SamplerKind {
    /// Rejection sampling (Section 3.1).
    Rejection(RejectionSampler),
    /// Importance sampling (Section 3.2.1).
    Importance(ImportanceSampler),
    /// Metropolis–Hastings MCMC sampling (Section 3.2.2).
    Mcmc(McmcSampler),
}

impl SamplerKind {
    /// The default configuration of each strategy.
    pub fn rejection() -> Self {
        SamplerKind::Rejection(RejectionSampler::default())
    }

    /// Importance sampling with default configuration.
    pub fn importance() -> Self {
        SamplerKind::Importance(ImportanceSampler::default())
    }

    /// MCMC sampling with default configuration.
    pub fn mcmc() -> Self {
        SamplerKind::Mcmc(McmcSampler::default())
    }
}

impl WeightSampler for SamplerKind {
    fn name(&self) -> &'static str {
        match self {
            SamplerKind::Rejection(s) => s.name(),
            SamplerKind::Importance(s) => s.name(),
            SamplerKind::Mcmc(s) => s.name(),
        }
    }

    fn generate(
        &self,
        prior: &GaussianMixture,
        checker: &ConstraintChecker,
        n: usize,
        rng: &mut dyn RngCore,
    ) -> Result<SamplingOutcome> {
        match self {
            SamplerKind::Rejection(s) => s.generate(prior, checker, n, rng),
            SamplerKind::Importance(s) => s.generate(prior, checker, n, rng),
            SamplerKind::Mcmc(s) => s.generate(prior, checker, n, rng),
        }
    }
}

/// Whether a weight vector lies in the canonical weight cube `[-1, 1]^m`.
pub(crate) fn in_weight_cube(w: &[f64]) -> bool {
    w.iter().all(|x| (-1.0..=1.0).contains(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{ConstraintChecker, ConstraintSource};
    use crate::preferences::PreferenceStore;
    use pkgrec_geom::HalfSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn positive_quadrant_checker() -> ConstraintChecker {
        ConstraintChecker::from_constraints(
            2,
            vec![
                HalfSpace::new(vec![1.0, 0.0]),
                HalfSpace::new(vec![0.0, 1.0]),
            ],
            ConstraintSource::Full,
        )
    }

    #[test]
    fn sample_pool_basics() {
        let mut pool = SamplePool::new();
        assert!(pool.is_empty());
        pool.push(WeightSample::unweighted(vec![0.1, 0.2]));
        pool.push(WeightSample {
            weights: vec![-0.1, 0.4],
            importance: 2.0,
        });
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.weight_matrix().len(), 2);
        let violators = pool.violating_indices(|w| w[0] > 0.0);
        assert_eq!(violators, vec![1]);
        // ESS of weights (1, 2) = 9 / 5.
        assert!((pool.effective_sample_size() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn acceptance_rate_is_well_defined() {
        let outcome = SamplingOutcome {
            pool: SamplePool::from_samples(vec![WeightSample::unweighted(vec![0.0])]),
            proposals: 4,
            rejected: 3,
        };
        assert!((outcome.acceptance_rate() - 0.25).abs() < 1e-12);
        let empty = SamplingOutcome {
            pool: SamplePool::new(),
            proposals: 0,
            rejected: 0,
        };
        assert_eq!(empty.acceptance_rate(), 0.0);
    }

    #[test]
    fn sampler_kind_dispatches_by_name() {
        assert_eq!(SamplerKind::rejection().name(), "RS");
        assert_eq!(SamplerKind::importance().name(), "IS");
        assert_eq!(SamplerKind::mcmc().name(), "MS");
    }

    #[test]
    fn every_sampler_kind_produces_only_valid_samples() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let checker = positive_quadrant_checker();
        let mut rng = StdRng::seed_from_u64(99);
        for kind in [
            SamplerKind::rejection(),
            SamplerKind::importance(),
            SamplerKind::mcmc(),
        ] {
            let outcome = kind.generate(&prior, &checker, 50, &mut rng).unwrap();
            assert_eq!(outcome.pool.len(), 50, "{}", kind.name());
            for s in outcome.pool.samples() {
                assert!(
                    checker.is_valid(&s.weights),
                    "{} produced invalid sample",
                    kind.name()
                );
                assert!(in_weight_cube(&s.weights));
                assert!(s.importance.is_finite() && s.importance > 0.0);
            }
        }
    }

    #[test]
    fn unconstrained_sampling_accepts_most_proposals() {
        let prior = GaussianMixture::default_prior(3, 1, 0.3).unwrap();
        let checker = ConstraintChecker::full(&PreferenceStore::new(), 3);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = SamplerKind::rejection()
            .generate(&prior, &checker, 100, &mut rng)
            .unwrap();
        assert!(outcome.acceptance_rate() > 0.9);
    }
}
