//! Metropolis–Hastings random-walk sampling inside the valid region
//! (Section 3.2.2).
//!
//! Because the feedback-consistent region is a single convex set (Lemma 2), a
//! random walk started at any valid weight vector can reach the whole region.
//! The proposal moves uniformly within an ℓ∞ ball of radius `lmax` around the
//! current state; moves that leave the valid region (or the weight cube) are
//! rejected by keeping a copy of the current state, and remaining moves are
//! accepted with the Metropolis ratio `min(1, Pw(w') / Pw(w))` — the proposal
//! is symmetric, so the Hastings correction cancels (Equation 7).  Following
//! standard practice the chain is thinned: only every `step_length`-th state
//! after burn-in enters the pool.

use pkgrec_gmm::GaussianMixture;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::constraints::ConstraintChecker;
use crate::error::{CoreError, Result};
use crate::noise::NoiseModel;
use crate::sampler::{in_weight_cube, SamplePool, SamplingOutcome, WeightSampler};
use crate::utility::clamp_weights;

/// Configuration of the Metropolis–Hastings sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McmcSampler {
    /// Maximum per-coordinate step size of the random walk (`lmax`).
    pub max_step: f64,
    /// Thinning interval δ: keep one state out of every `step_length`.
    pub step_length: usize,
    /// Number of initial states discarded before collecting samples.
    pub burn_in: usize,
    /// Proposal budget for finding the initial valid state by rejection.
    pub max_init_attempts: usize,
    /// Optional noise model applied when deciding whether a proposed state
    /// "violates" feedback (Section 7).
    pub noise: Option<NoiseModel>,
}

impl Default for McmcSampler {
    fn default() -> Self {
        McmcSampler {
            max_step: 0.25,
            step_length: 5,
            burn_in: 200,
            max_init_attempts: 200_000,
            noise: None,
        }
    }
}

impl McmcSampler {
    /// An MCMC sampler with the noise model of Section 7.
    pub fn with_noise(noise: NoiseModel) -> Self {
        McmcSampler {
            noise: Some(noise),
            ..McmcSampler::default()
        }
    }

    /// Finds a first valid weight vector by rejection sampling from the prior
    /// (the same bootstrap the paper describes for Figure 4(c)).
    fn find_initial_state(
        &self,
        prior: &GaussianMixture,
        checker: &ConstraintChecker,
        rng: &mut dyn RngCore,
    ) -> Result<(Vec<f64>, usize)> {
        for attempt in 1..=self.max_init_attempts {
            let candidate = clamp_weights(&prior.sample(rng));
            if checker.is_valid(&candidate) {
                return Ok((candidate, attempt));
            }
        }
        Err(CoreError::SamplingExhausted {
            obtained: 0,
            requested: 1,
            attempts: self.max_init_attempts,
        })
    }

    fn state_is_acceptable(
        &self,
        checker: &ConstraintChecker,
        w: &[f64],
        rng: &mut dyn RngCore,
    ) -> bool {
        match &self.noise {
            None => checker.is_valid(w),
            Some(noise) => {
                let violations = checker.violation_count(w);
                noise.accept(violations, rng)
            }
        }
    }
}

impl WeightSampler for McmcSampler {
    fn name(&self) -> &'static str {
        "MS"
    }

    fn generate(
        &self,
        prior: &GaussianMixture,
        checker: &ConstraintChecker,
        n: usize,
        rng: &mut dyn RngCore,
    ) -> Result<SamplingOutcome> {
        if self.step_length == 0 || self.max_step <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "MCMC step length must be positive and max_step must exceed zero".into(),
            ));
        }
        let (mut current, init_attempts) = self.find_initial_state(prior, checker, rng)?;
        let mut current_density = prior.pdf(&current)?;
        let mut pool = SamplePool::new();
        let mut proposals = init_attempts;
        let mut rejected = init_attempts.saturating_sub(1);
        let mut kept_states = 0usize;
        let dim = current.len();
        // Overall proposal budget: burn-in plus thinning per requested sample,
        // with generous head-room for rejected moves.
        let max_proposals =
            init_attempts + (self.burn_in + n.max(1) * self.step_length).saturating_mul(50);
        while pool.len() < n {
            if proposals >= max_proposals {
                return Err(CoreError::SamplingExhausted {
                    obtained: pool.len(),
                    requested: n,
                    attempts: proposals,
                });
            }
            proposals += 1;
            let candidate: Vec<f64> = (0..dim)
                .map(|d| current[d] + rng.gen_range(-self.max_step..self.max_step))
                .collect();
            let mut moved = false;
            if in_weight_cube(&candidate) && self.state_is_acceptable(checker, &candidate, rng) {
                let candidate_density = prior.pdf(&candidate)?;
                let alpha = if current_density <= 0.0 {
                    1.0
                } else {
                    (candidate_density / current_density).min(1.0)
                };
                if rng.gen::<f64>() < alpha {
                    current = candidate;
                    current_density = candidate_density;
                    moved = true;
                }
            }
            if !moved {
                rejected += 1;
            }
            // Whether the move was accepted or the chain stayed put, the chain
            // has advanced one step; thin and collect after burn-in.
            kept_states += 1;
            if kept_states > self.burn_in && kept_states.is_multiple_of(self.step_length) {
                pool.push_sample(&current, 1.0);
            }
        }
        Ok(SamplingOutcome {
            pool,
            proposals,
            rejected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ConstraintSource;
    use pkgrec_geom::HalfSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn checker(constraints: Vec<HalfSpace>, dim: usize) -> ConstraintChecker {
        ConstraintChecker::from_constraints(dim, constraints, ConstraintSource::Full)
    }

    #[test]
    fn produces_exactly_n_valid_samples() {
        let prior = GaussianMixture::default_prior(3, 1, 0.5).unwrap();
        let c = checker(vec![HalfSpace::new(vec![1.0, -0.5, 0.2])], 3);
        let mut rng = StdRng::seed_from_u64(21);
        let outcome = McmcSampler::default()
            .generate(&prior, &c, 500, &mut rng)
            .unwrap();
        assert_eq!(outcome.pool.len(), 500);
        for s in outcome.pool.samples() {
            assert!(c.is_valid(s.weights));
            assert!(in_weight_cube(s.weights));
            assert_eq!(s.importance, 1.0);
        }
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let c = checker(vec![], 2);
        let mut rng = StdRng::seed_from_u64(22);
        let bad_step = McmcSampler {
            step_length: 0,
            ..McmcSampler::default()
        };
        assert!(matches!(
            bad_step.generate(&prior, &c, 5, &mut rng),
            Err(CoreError::InvalidConfig(_))
        ));
        let bad_walk = McmcSampler {
            max_step: 0.0,
            ..McmcSampler::default()
        };
        assert!(matches!(
            bad_walk.generate(&prior, &c, 5, &mut rng),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn scales_to_high_dimensional_weight_spaces() {
        // Ten features — the regime where importance sampling is infeasible
        // but MCMC keeps working (Figure 6 (f)–(j)).
        let prior = GaussianMixture::default_prior(10, 1, 0.5).unwrap();
        let c = checker(
            vec![
                HalfSpace::new(vec![1.0, 0.0, 0.0, 0.2, 0.0, -0.1, 0.0, 0.0, 0.0, 0.0]),
                HalfSpace::new(vec![0.0, 1.0, 0.3, 0.0, 0.0, 0.0, 0.0, -0.2, 0.0, 0.0]),
            ],
            10,
        );
        let mut rng = StdRng::seed_from_u64(23);
        let outcome = McmcSampler::default()
            .generate(&prior, &c, 200, &mut rng)
            .unwrap();
        assert_eq!(outcome.pool.len(), 200);
    }

    #[test]
    fn chain_explores_the_valid_region_not_just_the_start() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let c = checker(vec![HalfSpace::new(vec![1.0, 0.0])], 2);
        let mut rng = StdRng::seed_from_u64(24);
        let outcome = McmcSampler::default()
            .generate(&prior, &c, 400, &mut rng)
            .unwrap();
        // Sample variance along each dimension should be well away from zero.
        for d in 0..2 {
            let values: Vec<f64> = outcome.pool.samples().map(|s| s.weights[d]).collect();
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
            assert!(var > 0.01, "dimension {d} variance {var}");
        }
        // All collected states satisfy the constraint (w1 >= 0).
        assert!(outcome.pool.samples().all(|s| s.weights[0] >= 0.0));
    }

    #[test]
    fn infeasible_region_reports_exhaustion_during_initialisation() {
        let prior = GaussianMixture::default_prior(2, 1, 0.3).unwrap();
        let c = checker(
            vec![
                HalfSpace::new(vec![1.0, 0.0]),
                HalfSpace::new(vec![-1.0, 0.0]),
                HalfSpace::new(vec![0.0, 1.0]),
                HalfSpace::new(vec![0.0, -1.0]),
            ],
            2,
        );
        let sampler = McmcSampler {
            max_init_attempts: 200,
            ..McmcSampler::default()
        };
        let mut rng = StdRng::seed_from_u64(25);
        assert!(matches!(
            sampler.generate(&prior, &c, 5, &mut rng),
            Err(CoreError::SamplingExhausted { .. })
        ));
    }

    #[test]
    fn noisy_chain_can_visit_mildly_violating_states() {
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let c = checker(vec![HalfSpace::new(vec![1.0, 0.0])], 2);
        let sampler = McmcSampler::with_noise(NoiseModel::new(0.3).unwrap());
        let mut rng = StdRng::seed_from_u64(26);
        let outcome = sampler.generate(&prior, &c, 500, &mut rng).unwrap();
        let violating = outcome
            .pool
            .samples()
            .filter(|s| !c.is_valid(s.weights))
            .count();
        assert!(
            violating > 0,
            "noisy chain should occasionally cross the constraint"
        );
    }
}
