//! Aggregate feature profiles: how package feature vectors derive from items.
//!
//! Definition 1 of the paper: a profile `V = (A1, …, Am)` assigns one of
//! `min`, `max`, `sum`, `avg` or `null` to every feature; the feature value
//! vector of a package aggregates its items' values feature by feature, and
//! every aggregate is normalised into `[0, 1]` by the maximum value any
//! package (of size at most φ) could achieve on that feature.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::item::{Catalog, ItemId};
use crate::package::Package;

/// An aggregation function assigned to one feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateFn {
    /// Minimum item value in the package.
    Min,
    /// Maximum item value in the package.
    Max,
    /// Sum of item values in the package.
    Sum,
    /// Average of item values in the package.
    Avg,
    /// Feature is ignored.
    Null,
}

impl AggregateFn {
    /// Whether the aggregate can only grow (or stay equal) when items are
    /// added: true for `sum` and `max`, false for `min` and `avg` (and
    /// trivially true for `null`, which contributes nothing).
    pub fn is_monotone_increasing(&self) -> bool {
        matches!(
            self,
            AggregateFn::Sum | AggregateFn::Max | AggregateFn::Null
        )
    }

    /// Whether the aggregate can only shrink (or stay equal) when items are
    /// added: true for `min` (and trivially `null`).
    pub fn is_monotone_decreasing(&self) -> bool {
        matches!(self, AggregateFn::Min | AggregateFn::Null)
    }
}

/// An aggregate feature profile `V = (A1, …, Am)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    aggregates: Vec<AggregateFn>,
}

impl Profile {
    /// Creates a profile from one aggregate per feature.
    pub fn new(aggregates: Vec<AggregateFn>) -> Self {
        Profile { aggregates }
    }

    /// A profile that sums every feature.
    pub fn all_sum(m: usize) -> Self {
        Profile::new(vec![AggregateFn::Sum; m])
    }

    /// A profile that averages every feature.
    pub fn all_avg(m: usize) -> Self {
        Profile::new(vec![AggregateFn::Avg; m])
    }

    /// The introduction's running profile for two-feature catalogs:
    /// `(sum cost, avg rating)`.
    pub fn cost_quality() -> Self {
        Profile::new(vec![AggregateFn::Sum, AggregateFn::Avg])
    }

    /// Number of features the profile covers.
    pub fn dim(&self) -> usize {
        self.aggregates.len()
    }

    /// The aggregate assigned to a feature.
    pub fn aggregate(&self, feature: usize) -> AggregateFn {
        self.aggregates[feature]
    }

    /// All aggregates.
    pub fn aggregates(&self) -> &[AggregateFn] {
        &self.aggregates
    }

    /// Indices of features the profile does not ignore.
    pub fn active_features(&self) -> Vec<usize> {
        self.aggregates
            .iter()
            .enumerate()
            .filter(|(_, a)| **a != AggregateFn::Null)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Incremental aggregation state of a (possibly empty) package.
///
/// Algorithms 2–4 repeatedly extend candidate packages by one item; keeping
/// per-feature running sums/minima/maxima makes each extension `O(m)` instead
/// of `O(m · |p|)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageState {
    size: usize,
    sum: Vec<f64>,
    min: Vec<f64>,
    max: Vec<f64>,
}

impl PackageState {
    /// State of the empty package over `m` features.
    pub fn empty(m: usize) -> Self {
        PackageState {
            size: 0,
            sum: vec![0.0; m],
            min: vec![f64::INFINITY; m],
            max: vec![f64::NEG_INFINITY; m],
        }
    }

    /// Number of items aggregated so far.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether no items have been aggregated.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Returns a copy of the state with one more item's features folded in.
    pub fn with_item(&self, features: &[f64]) -> PackageState {
        let mut next = self.clone();
        next.add_item(features);
        next
    }

    /// Folds one more item's features into the state.
    pub fn add_item(&mut self, features: &[f64]) {
        debug_assert_eq!(features.len(), self.sum.len());
        self.size += 1;
        for (j, v) in features.iter().enumerate() {
            self.sum[j] += v;
            if *v < self.min[j] {
                self.min[j] = *v;
            }
            if *v > self.max[j] {
                self.max[j] = *v;
            }
        }
    }

    /// The raw (un-normalised) aggregate value of one feature under a profile.
    /// The empty package aggregates to 0 on every feature.
    pub fn raw_aggregate(&self, profile: &Profile, feature: usize) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        match profile.aggregate(feature) {
            AggregateFn::Min => self.min[feature],
            AggregateFn::Max => self.max[feature],
            AggregateFn::Sum => self.sum[feature],
            AggregateFn::Avg => self.sum[feature] / self.size as f64,
            AggregateFn::Null => 0.0,
        }
    }
}

/// A profile bound to a catalog and a maximum package size φ, carrying the
/// normalisation constants `Z_i` (the maximum aggregate value any package of
/// size ≤ φ can reach on feature `i`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationContext {
    profile: Profile,
    norm: Vec<f64>,
    max_package_size: usize,
}

impl AggregationContext {
    /// Builds the context, computing normalisation constants from the catalog:
    ///
    /// * `min`, `max`, `avg` are bounded by the largest single item value,
    /// * `sum` is bounded by the sum of the φ largest item values.
    pub fn new(profile: Profile, catalog: &Catalog, max_package_size: usize) -> Result<Self> {
        if profile.dim() != catalog.num_features() {
            return Err(CoreError::DimensionMismatch {
                expected: catalog.num_features(),
                actual: profile.dim(),
            });
        }
        if max_package_size == 0 {
            return Err(CoreError::InvalidConfig(
                "maximum package size must be at least 1".into(),
            ));
        }
        let maxima = catalog.feature_maxima();
        let norm = (0..profile.dim())
            .map(|j| match profile.aggregate(j) {
                AggregateFn::Min | AggregateFn::Max | AggregateFn::Avg => maxima[j],
                AggregateFn::Sum => catalog.top_values(j, max_package_size).iter().sum(),
                AggregateFn::Null => 0.0,
            })
            .collect();
        Ok(AggregationContext {
            profile,
            norm,
            max_package_size,
        })
    }

    /// The profile of the context.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The maximum package size φ.
    pub fn max_package_size(&self) -> usize {
        self.max_package_size
    }

    /// Normalisation constants `Z_i` per feature (0 for ignored or all-zero
    /// features).
    pub fn normalizers(&self) -> &[f64] {
        &self.norm
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.profile.dim()
    }

    /// The normalised aggregate value of one feature from a package state.
    pub fn normalized_feature(&self, state: &PackageState, feature: usize) -> f64 {
        let z = self.norm[feature];
        if z <= 0.0 {
            0.0
        } else {
            state.raw_aggregate(&self.profile, feature) / z
        }
    }

    /// The normalised feature value vector of a package state.
    pub fn normalized_vector_from_state(&self, state: &PackageState) -> Vec<f64> {
        (0..self.dim())
            .map(|j| self.normalized_feature(state, j))
            .collect()
    }

    /// Builds the aggregation state of a package from the catalog.
    pub fn state_of(&self, catalog: &Catalog, items: &[ItemId]) -> Result<PackageState> {
        let mut state = PackageState::empty(self.dim());
        for &id in items {
            state.add_item(catalog.item(id)?);
        }
        Ok(state)
    }

    /// The normalised feature value vector of a package (Definition 1 plus the
    /// normalisation of Section 2).
    pub fn package_vector(&self, catalog: &Catalog, package: &Package) -> Result<Vec<f64>> {
        if package.len() > self.max_package_size {
            return Err(CoreError::PackageTooLarge {
                size: package.len(),
                max_size: self.max_package_size,
            });
        }
        let state = self.state_of(catalog, package.items())?;
        Ok(self.normalized_vector_from_state(&state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The catalog of Figure 1(a).
    fn figure1_catalog() -> Catalog {
        Catalog::new(
            vec!["cost".into(), "rating".into()],
            vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.2, 0.4]],
        )
        .unwrap()
    }

    fn figure1_context() -> AggregationContext {
        AggregationContext::new(Profile::cost_quality(), &figure1_catalog(), 2).unwrap()
    }

    #[test]
    fn aggregate_fn_monotonicity_classification() {
        assert!(AggregateFn::Sum.is_monotone_increasing());
        assert!(AggregateFn::Max.is_monotone_increasing());
        assert!(!AggregateFn::Avg.is_monotone_increasing());
        assert!(!AggregateFn::Min.is_monotone_increasing());
        assert!(AggregateFn::Min.is_monotone_decreasing());
        assert!(!AggregateFn::Sum.is_monotone_decreasing());
        assert!(AggregateFn::Null.is_monotone_increasing());
        assert!(AggregateFn::Null.is_monotone_decreasing());
    }

    #[test]
    fn profile_constructors_and_accessors() {
        let p = Profile::cost_quality();
        assert_eq!(p.dim(), 2);
        assert_eq!(p.aggregate(0), AggregateFn::Sum);
        assert_eq!(p.aggregate(1), AggregateFn::Avg);
        assert_eq!(Profile::all_sum(3).aggregates(), &[AggregateFn::Sum; 3]);
        assert_eq!(Profile::all_avg(2).aggregates(), &[AggregateFn::Avg; 2]);
        let q = Profile::new(vec![AggregateFn::Sum, AggregateFn::Null, AggregateFn::Min]);
        assert_eq!(q.active_features(), vec![0, 2]);
    }

    #[test]
    fn normalizers_follow_example_1() {
        // Example 1: max sum on feature 1 over size-2 packages is 1.0 (0.6+0.4),
        // max avg on feature 2 is 0.4.
        let ctx = figure1_context();
        assert_eq!(ctx.normalizers(), &[1.0, 0.4]);
        assert_eq!(ctx.max_package_size(), 2);
    }

    #[test]
    fn package_vectors_match_example_1() {
        let catalog = figure1_catalog();
        let ctx = figure1_context();
        // p1 = {t1}: (0.6, 0.5) after normalisation.
        let p1 = Package::new(vec![0]).unwrap();
        let v1 = ctx.package_vector(&catalog, &p1).unwrap();
        assert!((v1[0] - 0.6).abs() < 1e-12);
        assert!((v1[1] - 0.5).abs() < 1e-12);
        // p4 = {t1, t2}: sum cost 1.0, avg rating 0.3 -> (1.0, 0.75).
        let p4 = Package::new(vec![0, 1]).unwrap();
        let v4 = ctx.package_vector(&catalog, &p4).unwrap();
        assert!((v4[0] - 1.0).abs() < 1e-12);
        assert!((v4[1] - 0.75).abs() < 1e-12);
        // p5 = {t2, t3}: sum cost 0.6, avg rating 0.4 -> (0.6, 1.0).
        let p5 = Package::new(vec![1, 2]).unwrap();
        let v5 = ctx.package_vector(&catalog, &p5).unwrap();
        assert!((v5[0] - 0.6).abs() < 1e-12);
        assert!((v5[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_packages_are_rejected() {
        let catalog = figure1_catalog();
        let ctx = figure1_context();
        let p = Package::new(vec![0, 1, 2]).unwrap();
        assert!(matches!(
            ctx.package_vector(&catalog, &p),
            Err(CoreError::PackageTooLarge {
                size: 3,
                max_size: 2
            })
        ));
    }

    #[test]
    fn context_validates_configuration() {
        let catalog = figure1_catalog();
        assert!(matches!(
            AggregationContext::new(Profile::all_sum(3), &catalog, 2),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            AggregationContext::new(Profile::all_sum(2), &catalog, 0),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn min_max_aggregates_and_null() {
        let catalog = Catalog::from_rows(vec![vec![2.0, 5.0, 1.0], vec![4.0, 3.0, 9.0]]).unwrap();
        let profile = Profile::new(vec![AggregateFn::Min, AggregateFn::Max, AggregateFn::Null]);
        let ctx = AggregationContext::new(profile, &catalog, 2).unwrap();
        // Normalisers: min/max use the max item value; null is 0.
        assert_eq!(ctx.normalizers(), &[4.0, 5.0, 0.0]);
        let both = Package::new(vec![0, 1]).unwrap();
        let v = ctx.package_vector(&catalog, &both).unwrap();
        assert!((v[0] - 2.0 / 4.0).abs() < 1e-12);
        assert!((v[1] - 5.0 / 5.0).abs() < 1e-12);
        assert_eq!(v[2], 0.0);
    }

    #[test]
    fn package_state_incremental_matches_batch() {
        let catalog = figure1_catalog();
        let ctx = figure1_context();
        let mut state = PackageState::empty(2);
        assert!(state.is_empty());
        state.add_item(catalog.item(0).unwrap());
        let state2 = state.with_item(catalog.item(2).unwrap());
        assert_eq!(state2.size(), 2);
        let incremental = ctx.normalized_vector_from_state(&state2);
        let batch = ctx
            .package_vector(&catalog, &Package::new(vec![0, 2]).unwrap())
            .unwrap();
        assert_eq!(incremental, batch);
    }

    #[test]
    fn empty_state_aggregates_to_zero() {
        let ctx = figure1_context();
        let state = PackageState::empty(2);
        assert_eq!(ctx.normalized_vector_from_state(&state), vec![0.0, 0.0]);
        assert_eq!(state.raw_aggregate(ctx.profile(), 0), 0.0);
    }

    #[test]
    fn unknown_item_is_reported() {
        let catalog = figure1_catalog();
        let ctx = figure1_context();
        assert!(matches!(
            ctx.state_of(&catalog, &[0, 99]),
            Err(CoreError::UnknownItem(99))
        ));
    }
}
