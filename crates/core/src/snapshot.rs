//! Serialisable session snapshots: persist and resume an elicitation session.
//!
//! A [`SessionSnapshot`] captures everything the engine cannot rebuild
//! deterministically from configuration — the preference DAG and the current
//! weight-sample pool — together with the configuration itself (catalog,
//! profile, φ, [`EngineConfig`]), whose derived state (aggregation context,
//! Gaussian-mixture prior) is reconstructed on restore.  Snapshots are plain
//! serde values, so a session can be written to JSON, shipped to another
//! process (the state-externalisation move serving layers need for sharding
//! and migration) and resumed *bit-identically*: a restored engine holds the
//! same pool and preferences, so its next recommendation equals the one the
//! uninterrupted session would have produced.
//!
//! RNG state is deliberately not captured: all prior parameters stored are
//! RNG-independent, and callers own their random streams.  The scoring-thread
//! budget ([`RecommenderEngine::num_threads`]) is likewise not captured — it
//! is a property of the process serving the session, not of the session, so
//! restored engines resume serial until
//! [`RecommenderEngine::set_num_threads`] is called.
//!
//! The sample pool serialises in its original row-oriented shape
//! (`{"samples": [{"weights": …, "importance": …}]}`) even though it is
//! stored columnar in memory, so the snapshot layout survived the columnar
//! refactor unchanged and [`SNAPSHOT_VERSION`] did not need to move.

use pkgrec_gmm::GaussianMixture;
use serde::{Deserialize, Serialize};

use crate::engine::{EngineConfig, RecommenderEngine};
use crate::error::{CoreError, Result};
use crate::item::Catalog;
use crate::preferences::PreferenceStore;
use crate::profile::{AggregationContext, Profile};
use crate::sampler::SamplePool;

/// Version tag written into every snapshot; [`RecommenderEngine::restore`]
/// rejects snapshots from a different layout generation.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A complete, serialisable image of one recommender session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Snapshot layout version (see [`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The engine configuration (k, samplers, semantics, prior parameters).
    pub config: EngineConfig,
    /// The aggregate feature profile.
    pub profile: Profile,
    /// The maximum package size φ.
    pub max_package_size: usize,
    /// The item catalog the session recommends from.
    pub catalog: Catalog,
    /// The preference DAG accumulated from feedback.
    pub preferences: PreferenceStore,
    /// The weight-sample pool at snapshot time.
    pub pool: SamplePool,
    /// Number of feedback rounds recorded before the snapshot.
    pub rounds: usize,
}

impl RecommenderEngine {
    /// Captures the session as a serialisable [`SessionSnapshot`].
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config().clone(),
            profile: self.context().profile().clone(),
            max_package_size: self.context().max_package_size(),
            catalog: self.catalog().clone(),
            preferences: self.preferences().clone(),
            pool: self.pool().clone(),
            rounds: self.rounds(),
        }
    }

    /// Rebuilds an engine from a snapshot.
    ///
    /// The aggregation context and the prior are reconstructed
    /// deterministically from the stored configuration, so a restored session
    /// recommends exactly what the uninterrupted session would have: the
    /// recommendation is a pure function of the (restored) pool, preferences
    /// and configuration.
    pub fn restore(snapshot: SessionSnapshot) -> Result<Self> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(CoreError::InvalidConfig(format!(
                "unsupported session snapshot version {} (expected {})",
                snapshot.version, SNAPSHOT_VERSION
            )));
        }
        snapshot.config.validate()?;
        let space =
            crate::package::package_space_size(snapshot.catalog.len(), snapshot.max_package_size);
        if snapshot.config.k as u128 > space {
            return Err(CoreError::InvalidConfig(format!(
                "k = {} exceeds the {} distinct packages of size at most {} over {} items",
                snapshot.config.k,
                space,
                snapshot.max_package_size,
                snapshot.catalog.len()
            )));
        }
        let context = AggregationContext::new(
            snapshot.profile,
            &snapshot.catalog,
            snapshot.max_package_size,
        )?;
        // The pool is rectangular by construction (flat storage enforces one
        // shared dimensionality), so a single check covers every sample.
        if !snapshot.pool.is_empty() && snapshot.pool.dim() != context.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: context.dim(),
                actual: snapshot.pool.dim(),
            });
        }
        for preference in snapshot.preferences.preferences() {
            for vector in [&preference.better, &preference.worse] {
                if vector.len() != context.dim() {
                    return Err(CoreError::DimensionMismatch {
                        expected: context.dim(),
                        actual: vector.len(),
                    });
                }
            }
        }
        let prior = GaussianMixture::default_prior(
            context.dim(),
            snapshot.config.prior_components,
            snapshot.config.prior_sigma,
        )?;
        Ok(RecommenderEngine::assemble(
            snapshot.catalog,
            context,
            prior,
            snapshot.preferences,
            snapshot.pool,
            snapshot.config,
            snapshot.rounds,
            1,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::recommender::Feedback;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> RecommenderEngine {
        let catalog = Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
            vec![0.5, 0.9],
        ])
        .unwrap();
        RecommenderEngine::builder(catalog, Profile::cost_quality())
            .max_package_size(2)
            .k(2)
            .num_random(2)
            .num_samples(25)
            .build()
            .unwrap()
    }

    #[test]
    fn snapshot_captures_and_restore_rebuilds_the_session() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut engine = engine();
        let shown = engine.present(&mut rng).unwrap();
        engine
            .record_feedback(&shown, Feedback::Click { index: 0 }, &mut rng)
            .unwrap();

        let snapshot = engine.snapshot();
        assert_eq!(snapshot.version, SNAPSHOT_VERSION);
        assert_eq!(snapshot.rounds, 1);
        assert_eq!(snapshot.pool.len(), engine.pool().len());

        let mut restored = RecommenderEngine::restore(snapshot.clone()).unwrap();
        assert_eq!(restored.rounds(), engine.rounds());
        assert_eq!(restored.preferences().len(), engine.preferences().len());
        assert_eq!(restored.pool(), engine.pool());
        // The restored engine's next recommendation is bit-identical (pure
        // function of pool + preferences + config; the pool is non-empty so no
        // RNG is consumed).
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        assert_eq!(
            engine.recommend(&mut rng_a).unwrap(),
            restored.recommend(&mut rng_b).unwrap()
        );
        // And snapshotting the restored session reproduces the snapshot.
        assert_eq!(restored.snapshot(), snapshot);
    }

    #[test]
    fn restore_rejects_foreign_versions_and_corrupt_pools() {
        let engine = engine();
        let mut snapshot = engine.snapshot();
        snapshot.version = 99;
        assert!(matches!(
            RecommenderEngine::restore(snapshot),
            Err(CoreError::InvalidConfig(_))
        ));

        // A pool cannot even hold mixed dimensionalities any more (flat
        // storage rejects the push), so the corrupt case is a uniformly
        // wrong-dimensional pool — caught against the catalog on restore.
        let mut snapshot = engine.snapshot();
        snapshot.pool = crate::sampler::SamplePool::from_samples(vec![
            crate::sampler::WeightSample::unweighted(vec![0.0; 7]),
        ]);
        assert!(matches!(
            RecommenderEngine::restore(snapshot),
            Err(CoreError::DimensionMismatch { .. })
        ));

        let mut snapshot = engine.snapshot();
        snapshot.config.prior_sigma = -1.0;
        assert!(matches!(
            RecommenderEngine::restore(snapshot),
            Err(CoreError::InvalidConfig(_))
        ));

        // Hand-built snapshots (the state-injection seam) are checked against
        // the same catalog-dependent invariants as the builder.
        let mut snapshot = engine.snapshot();
        snapshot.config.k = 10_000;
        assert!(matches!(
            RecommenderEngine::restore(snapshot),
            Err(CoreError::InvalidConfig(_))
        ));

        let mut snapshot = engine.snapshot();
        snapshot
            .preferences
            .add("x".into(), &[0.1, 0.2, 0.3], "y".into(), &[0.4, 0.5, 0.6])
            .unwrap();
        assert!(matches!(
            RecommenderEngine::restore(snapshot),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }
}
