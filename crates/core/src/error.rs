//! Error types for the core package-recommendation crate.

use pkgrec_geom::GeomError;
use pkgrec_gmm::GmmError;

/// Errors produced by the core crate.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Two operands disagree on the number of features.
    DimensionMismatch {
        /// Expected number of features.
        expected: usize,
        /// Provided number of features.
        actual: usize,
    },
    /// An item id does not exist in the catalog.
    UnknownItem(usize),
    /// A package violates the maximum package size φ.
    PackageTooLarge {
        /// Size of the offending package.
        size: usize,
        /// The configured maximum package size.
        max_size: usize,
    },
    /// A package must contain at least one item.
    EmptyPackage,
    /// The catalog contains no items.
    EmptyCatalog,
    /// The preference graph would contain a cycle after adding a preference.
    PreferenceCycle {
        /// Key of the package that would become both better and worse.
        package: String,
    },
    /// A sampler could not produce the requested number of valid samples
    /// within its attempt budget.
    SamplingExhausted {
        /// Valid samples obtained before giving up.
        obtained: usize,
        /// Valid samples requested.
        requested: usize,
        /// Total proposals attempted.
        attempts: usize,
    },
    /// The constraint region admits no valid weight vector at the configured
    /// resolution (all grid cells pruned).
    EmptyValidRegion,
    /// Error bubbled up from the Gaussian-mixture substrate.
    Gmm(GmmError),
    /// Error bubbled up from the geometric substrate.
    Geom(GeomError),
    /// A configuration value is invalid.
    InvalidConfig(String),
    /// A session id does not exist in the session store addressed.
    UnknownSession(u64),
    /// An I/O failure in a durable store (journal segments, checkpoints).
    /// Carries the OS error class plus the rendered error and context, so
    /// the enum stays `Clone + PartialEq` (a raw `std::io::Error` is
    /// neither) while callers can still match on the fault class instead
    /// of string-matching the message.
    Io {
        /// The OS-level error class (`std::io::ErrorKind` is `Copy + Eq`).
        kind: std::io::ErrorKind,
        /// Rendered error plus context (path, action).
        message: String,
    },
    /// A store shard whose durable appends kept failing past its retry
    /// budget entered read-only degraded mode; mutating operations are
    /// refused until a successful `sync()` re-arms the shard.
    Degraded {
        /// Index of the degraded shard.
        shard: usize,
        /// Rendered description of the fault that degraded the shard.
        reason: String,
    },
}

impl CoreError {
    /// Build a [`CoreError::Io`] preserving the OS error class.
    pub fn io(kind: std::io::ErrorKind, message: impl Into<String>) -> Self {
        CoreError::Io {
            kind,
            message: message.into(),
        }
    }

    /// Build a [`CoreError::Io`] for a failure with no OS error behind it
    /// (serialisation, framing, wire decode); classified `InvalidData`.
    pub fn io_data(message: impl Into<String>) -> Self {
        CoreError::io(std::io::ErrorKind::InvalidData, message)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected} features, got {actual}")
            }
            CoreError::UnknownItem(id) => write!(f, "item {id} is not in the catalog"),
            CoreError::PackageTooLarge { size, max_size } => {
                write!(f, "package of size {size} exceeds the maximum package size {max_size}")
            }
            CoreError::EmptyPackage => write!(f, "a package must contain at least one item"),
            CoreError::EmptyCatalog => write!(f, "the catalog contains no items"),
            CoreError::PreferenceCycle { package } => {
                write!(f, "adding this preference would create a cycle through package {package}")
            }
            CoreError::SamplingExhausted {
                obtained,
                requested,
                attempts,
            } => write!(
                f,
                "sampler produced only {obtained}/{requested} valid samples after {attempts} attempts"
            ),
            CoreError::EmptyValidRegion => {
                write!(f, "no valid weight vector exists for the current feedback")
            }
            CoreError::Gmm(e) => write!(f, "gaussian mixture error: {e}"),
            CoreError::Geom(e) => write!(f, "geometry error: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::UnknownSession(id) => {
                write!(f, "session {id} is not in the session store")
            }
            CoreError::Io { kind, message } => {
                write!(f, "journal I/O error ({kind:?}): {message}")
            }
            CoreError::Degraded { shard, reason } => {
                write!(f, "shard {shard} is degraded (read-only): {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<GmmError> for CoreError {
    fn from(e: GmmError) -> Self {
        CoreError::Gmm(e)
    }
}

impl From<GeomError> for CoreError {
    fn from(e: GeomError) -> Self {
        CoreError::Geom(e)
    }
}

/// Convenience result alias for the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let cases: Vec<(CoreError, &str)> = vec![
            (
                CoreError::DimensionMismatch {
                    expected: 3,
                    actual: 2,
                },
                "expected 3",
            ),
            (CoreError::UnknownItem(42), "item 42"),
            (
                CoreError::PackageTooLarge {
                    size: 9,
                    max_size: 5,
                },
                "maximum package size 5",
            ),
            (CoreError::EmptyPackage, "at least one item"),
            (CoreError::EmptyCatalog, "no items"),
            (
                CoreError::PreferenceCycle {
                    package: "p1".into(),
                },
                "cycle",
            ),
            (
                CoreError::SamplingExhausted {
                    obtained: 1,
                    requested: 5,
                    attempts: 100,
                },
                "1/5",
            ),
            (CoreError::EmptyValidRegion, "no valid weight vector"),
            (
                CoreError::InvalidConfig("k must be positive".into()),
                "k must be positive",
            ),
            (CoreError::UnknownSession(7), "session 7"),
            (
                CoreError::io(
                    std::io::ErrorKind::StorageFull,
                    "segment-00000001: disk full",
                ),
                "segment-00000001",
            ),
            (
                CoreError::io(std::io::ErrorKind::PermissionDenied, "flush"),
                "PermissionDenied",
            ),
            (
                CoreError::Degraded {
                    shard: 2,
                    reason: "append retry budget exhausted".into(),
                },
                "shard 2 is degraded",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn substrate_errors_convert() {
        let e: CoreError = GmmError::EmptyMixture.into();
        assert!(matches!(e, CoreError::Gmm(_)));
        let e: CoreError = GeomError::EmptyRegion.into();
        assert!(matches!(e, CoreError::Geom(_)));
    }
}
