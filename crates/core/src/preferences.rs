//! The preference store: pairwise package preferences kept as a DAG.
//!
//! Section 3.3: every click produces several pairwise preferences
//! `p1 ≻ p2`; because the preference relation of an additive utility is
//! transitive, redundant preferences can be removed by *transitive reduction*
//! of the preference DAG, shrinking the number of constraints each sampled
//! weight vector has to be checked against.  Cycles cannot arise from a
//! consistent user; the store refuses edges that would create one (the system
//! resolves such conflicts by re-asking the user, cf. Section 3.3).

use std::collections::HashMap;

use pkgrec_geom::HalfSpace;
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::item::Catalog;
use crate::package::Package;
use crate::profile::AggregationContext;

/// One pairwise preference over normalised package feature vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Preference {
    /// Feature vector of the preferred package.
    pub better: Vec<f64>,
    /// Feature vector of the less-preferred package.
    pub worse: Vec<f64>,
}

impl Preference {
    /// Creates a preference from two package feature vectors.
    pub fn new(better: Vec<f64>, worse: Vec<f64>) -> Self {
        Preference { better, worse }
    }

    /// The half-space of weight vectors consistent with this preference.
    pub fn constraint(&self) -> HalfSpace {
        HalfSpace::from_preference(&self.better, &self.worse)
    }

    /// Whether a weight vector agrees with this preference.
    pub fn satisfied_by(&self, w: &[f64]) -> bool {
        self.constraint().contains(w)
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PrefNode {
    key: String,
    vector: Vec<f64>,
}

/// A DAG of package preferences with cycle rejection and transitive reduction.
///
/// Nodes are distinct packages (keyed by their canonical item-set key), edges
/// point from the preferred package to the less-preferred one.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PreferenceStore {
    nodes: Vec<PrefNode>,
    index: HashMap<String, usize>,
    /// Adjacency list: `edges[u]` = nodes that `u` is preferred to.
    edges: Vec<Vec<usize>>,
    edge_count: usize,
}

impl PreferenceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PreferenceStore::default()
    }

    /// Number of preference edges stored (before reduction).
    pub fn len(&self) -> usize {
        self.edge_count
    }

    /// Whether the store holds no preferences.
    pub fn is_empty(&self) -> bool {
        self.edge_count == 0
    }

    /// Number of distinct packages mentioned by any preference.
    pub fn num_packages(&self) -> usize {
        self.nodes.len()
    }

    fn node(&mut self, key: String, vector: &[f64]) -> usize {
        if let Some(&idx) = self.index.get(&key) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(PrefNode {
            key: key.clone(),
            vector: vector.to_vec(),
        });
        self.edges.push(Vec::new());
        self.index.insert(key, idx);
        idx
    }

    fn reachable(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = vec![false; self.nodes.len()];
        seen[from] = true;
        while let Some(u) = stack.pop() {
            for &v in &self.edges[u] {
                if v == to {
                    return true;
                }
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Records `better ≻ worse`, where the packages are identified by a stable
    /// key and described by their normalised feature vectors.
    ///
    /// Returns `Ok(true)` if a new edge was added, `Ok(false)` if the exact
    /// edge already existed, and an error if the edge would create a cycle.
    pub fn add(
        &mut self,
        better_key: String,
        better_vector: &[f64],
        worse_key: String,
        worse_vector: &[f64],
    ) -> Result<bool> {
        if better_key == worse_key {
            return Err(CoreError::PreferenceCycle {
                package: better_key,
            });
        }
        let b = self.node(better_key, better_vector);
        let w = self.node(worse_key.clone(), worse_vector);
        if self.edges[b].contains(&w) {
            return Ok(false);
        }
        // Adding b -> w creates a cycle iff w already reaches b.
        if self.reachable(w, b) {
            return Err(CoreError::PreferenceCycle { package: worse_key });
        }
        self.edges[b].push(w);
        self.edge_count += 1;
        Ok(true)
    }

    /// Records a preference between two concrete packages, computing their
    /// normalised feature vectors with the given aggregation context.
    pub fn add_packages(
        &mut self,
        context: &AggregationContext,
        catalog: &Catalog,
        better: &Package,
        worse: &Package,
    ) -> Result<bool> {
        let bv = context.package_vector(catalog, better)?;
        let wv = context.package_vector(catalog, worse)?;
        self.add(better.key(), &bv, worse.key(), &wv)
    }

    /// All stored preferences (one per edge), in insertion-independent node
    /// order.
    pub fn preferences(&self) -> Vec<Preference> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (u, targets) in self.edges.iter().enumerate() {
            for &v in targets {
                out.push(Preference::new(
                    self.nodes[u].vector.clone(),
                    self.nodes[v].vector.clone(),
                ));
            }
        }
        out
    }

    /// Half-space constraints for every stored preference (no reduction).
    pub fn all_constraints(&self) -> Vec<HalfSpace> {
        self.preferences()
            .iter()
            .map(Preference::constraint)
            .collect()
    }

    /// Edges that survive transitive reduction: an edge `u → v` is redundant
    /// if `v` is reachable from `u` through a path of length ≥ 2 (Aho, Garey
    /// and Ullman's transitive reduction of a DAG).
    fn reduced_edges(&self) -> Vec<(usize, usize)> {
        let mut kept = Vec::new();
        for (u, targets) in self.edges.iter().enumerate() {
            for &v in targets {
                if !self.reachable_without_direct_edge(u, v) {
                    kept.push((u, v));
                }
            }
        }
        kept
    }

    fn reachable_without_direct_edge(&self, from: usize, to: usize) -> bool {
        let mut stack: Vec<usize> = self.edges[from]
            .iter()
            .copied()
            .filter(|&v| v != to)
            .collect();
        let mut seen = vec![false; self.nodes.len()];
        for &v in &stack {
            seen[v] = true;
        }
        while let Some(u) = stack.pop() {
            for &v in &self.edges[u] {
                if v == to {
                    return true;
                }
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Preferences that survive transitive reduction.
    pub fn reduced_preferences(&self) -> Vec<Preference> {
        self.reduced_edges()
            .into_iter()
            .map(|(u, v)| {
                Preference::new(self.nodes[u].vector.clone(), self.nodes[v].vector.clone())
            })
            .collect()
    }

    /// Half-space constraints after transitive reduction — the pruned
    /// constraint set of Section 3.3.
    pub fn reduced_constraints(&self) -> Vec<HalfSpace> {
        self.reduced_preferences()
            .iter()
            .map(Preference::constraint)
            .collect()
    }

    /// Whether a weight vector satisfies every stored preference.
    pub fn satisfied_by(&self, w: &[f64]) -> bool {
        self.preferences().iter().all(|p| p.satisfied_by(w))
    }

    /// Number of stored preferences a weight vector violates.
    pub fn violation_count(&self, w: &[f64]) -> usize {
        self.preferences()
            .iter()
            .filter(|p| !p.satisfied_by(w))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(values: &[f64]) -> Vec<f64> {
        values.to_vec()
    }

    fn store_with_chain() -> PreferenceStore {
        // a ≻ b ≻ c, plus the redundant a ≻ c.
        let mut s = PreferenceStore::new();
        s.add(
            "a".into(),
            &vector(&[0.9, 0.1]),
            "b".into(),
            &vector(&[0.5, 0.5]),
        )
        .unwrap();
        s.add(
            "b".into(),
            &vector(&[0.5, 0.5]),
            "c".into(),
            &vector(&[0.1, 0.9]),
        )
        .unwrap();
        s.add(
            "a".into(),
            &vector(&[0.9, 0.1]),
            "c".into(),
            &vector(&[0.1, 0.9]),
        )
        .unwrap();
        s
    }

    #[test]
    fn adding_and_duplicates() {
        let mut s = PreferenceStore::new();
        assert!(s.is_empty());
        assert!(s
            .add("a".into(), &vector(&[1.0]), "b".into(), &vector(&[0.0]))
            .unwrap());
        assert!(!s
            .add("a".into(), &vector(&[1.0]), "b".into(), &vector(&[0.0]))
            .unwrap());
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_packages(), 2);
    }

    #[test]
    fn self_preference_and_cycles_are_rejected() {
        let mut s = PreferenceStore::new();
        assert!(matches!(
            s.add("a".into(), &vector(&[1.0]), "a".into(), &vector(&[1.0])),
            Err(CoreError::PreferenceCycle { .. })
        ));
        s.add("a".into(), &vector(&[1.0]), "b".into(), &vector(&[0.5]))
            .unwrap();
        s.add("b".into(), &vector(&[0.5]), "c".into(), &vector(&[0.2]))
            .unwrap();
        // c ≻ a would close a cycle a -> b -> c -> a.
        assert!(matches!(
            s.add("c".into(), &vector(&[0.2]), "a".into(), &vector(&[1.0])),
            Err(CoreError::PreferenceCycle { .. })
        ));
        // The failed insertion must not have modified the store.
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn transitive_reduction_removes_redundant_edge() {
        let s = store_with_chain();
        assert_eq!(s.len(), 3);
        assert_eq!(s.preferences().len(), 3);
        let reduced = s.reduced_preferences();
        assert_eq!(reduced.len(), 2);
        assert_eq!(s.reduced_constraints().len(), 2);
        assert_eq!(s.all_constraints().len(), 3);
    }

    #[test]
    fn reduction_preserves_the_set_of_valid_weight_vectors() {
        let s = store_with_chain();
        let full = s.all_constraints();
        let reduced = s.reduced_constraints();
        // Any w consistent with the reduced constraints is consistent with the
        // full set (transitivity), and vice versa.
        let probes = [
            vec![0.5, 0.5],
            vec![1.0, -1.0],
            vec![-1.0, 1.0],
            vec![0.3, -0.9],
            vec![-0.2, 0.1],
        ];
        for w in probes {
            let full_ok = full.iter().all(|c| c.contains(&w));
            let reduced_ok = reduced.iter().all(|c| c.contains(&w));
            assert_eq!(full_ok, reduced_ok, "w = {w:?}");
        }
    }

    #[test]
    fn preference_satisfaction_and_violations() {
        let s = store_with_chain();
        // w = (1, -1) ranks a > b > c by utility, satisfying everything.
        assert!(s.satisfied_by(&[1.0, -1.0]));
        assert_eq!(s.violation_count(&[1.0, -1.0]), 0);
        // w = (-1, 1) reverses the order and violates all three preferences.
        assert!(!s.satisfied_by(&[-1.0, 1.0]));
        assert_eq!(s.violation_count(&[-1.0, 1.0]), 3);
    }

    #[test]
    fn preference_constraint_matches_direct_halfspace() {
        let p = Preference::new(vec![0.7, 0.2], vec![0.4, 0.6]);
        let c = p.constraint();
        assert_eq!(c.normal(), &[0.7 - 0.4, 0.2 - 0.6]);
        assert!(p.satisfied_by(&[1.0, 0.0]));
        assert!(!p.satisfied_by(&[0.0, 1.0]));
    }

    #[test]
    fn add_packages_uses_normalised_vectors() {
        use crate::profile::Profile;
        let catalog = Catalog::new(
            vec!["cost".into(), "rating".into()],
            vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.2, 0.4]],
        )
        .unwrap();
        let ctx = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
        let mut s = PreferenceStore::new();
        let p5 = Package::new(vec![1, 2]).unwrap();
        let p1 = Package::new(vec![0]).unwrap();
        assert!(s.add_packages(&ctx, &catalog, &p5, &p1).unwrap());
        let prefs = s.preferences();
        assert_eq!(prefs.len(), 1);
        // p5 = (0.6, 1.0), p1 = (0.6, 0.5) after normalisation.
        assert!((prefs[0].better[1] - 1.0).abs() < 1e-12);
        assert!((prefs[0].worse[1] - 0.5).abs() < 1e-12);
        // A weight vector that only cares about quality agrees with the click.
        assert!(s.satisfied_by(&[0.0, 1.0]));
        assert!(!s.satisfied_by(&[0.0, -1.0]));
    }

    #[test]
    fn diamond_reduction_keeps_all_non_redundant_edges() {
        // a ≻ b, a ≻ c, b ≻ d, c ≻ d, a ≻ d (redundant).
        let mut s = PreferenceStore::new();
        let va = vector(&[0.9]);
        let vb = vector(&[0.6]);
        let vc = vector(&[0.5]);
        let vd = vector(&[0.1]);
        s.add("a".into(), &va, "b".into(), &vb).unwrap();
        s.add("a".into(), &va, "c".into(), &vc).unwrap();
        s.add("b".into(), &vb, "d".into(), &vd).unwrap();
        s.add("c".into(), &vc, "d".into(), &vd).unwrap();
        s.add("a".into(), &va, "d".into(), &vd).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.reduced_preferences().len(), 4);
    }
}
