//! The unified, session-oriented recommender surface.
//!
//! Every interactive recommender in the workspace — the paper's
//! sample-maintenance engine ([`RecommenderEngine`]) as well as the baseline
//! adapters in `pkgrec-baselines` — implements the object-safe
//! [`Recommender`] trait, so session drivers such as
//! [`run_elicitation`](crate::elicitation::run_elicitation) and the Figure 8
//! harness can compare them round for round through one generic loop.
//!
//! Feedback is typed: a [`Feedback::Click`] carries the *index* of the chosen
//! package within the shown slice (replacing the old positional
//! `record_click(&Package, &[Package])` call that forced callers to clone a
//! shown package), [`Feedback::Pairwise`] expresses a single comparison, and
//! [`Feedback::Skip`] records a round without preference information.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::engine::RecommenderEngine;
use crate::error::{CoreError, Result};
use crate::item::Catalog;
use crate::package::{random_package, Package};
use crate::profile::AggregationContext;
use crate::ranking::{PerSampleRanking, RankedPackage};
use crate::sampler::SamplePool;
use crate::search::top_k_packages;
use crate::utility::LinearUtility;

/// One round of typed user feedback over the packages a recommender showed.
///
/// All indices refer to positions in the `shown` slice passed alongside the
/// feedback; out-of-range indices are rejected with
/// [`CoreError::InvalidConfig`](crate::error::CoreError).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feedback {
    /// The user clicked the shown package at `index`; every other shown
    /// package becomes less preferred (Section 2.2 of the paper).
    Click {
        /// Index of the clicked package within the shown slice.
        index: usize,
    },
    /// The user expressed a single pairwise comparison between two shown
    /// packages.
    Pairwise {
        /// Index of the preferred package within the shown slice.
        preferred: usize,
        /// Index of the less-preferred package within the shown slice.
        over: usize,
    },
    /// The user skipped the round; no preference is recorded.
    Skip,
}

impl Feedback {
    /// Validates the feedback against the shown slice: every index must be in
    /// range and a pairwise comparison must name two distinct packages.
    /// Implementations of [`Recommender::record_feedback`] should call this
    /// first so all recommenders reject malformed feedback identically.
    pub fn validate(&self, shown: &[Package]) -> Result<()> {
        match self {
            Feedback::Click { index } => {
                shown_package(shown, *index)?;
            }
            Feedback::Pairwise { preferred, over } => {
                if preferred == over {
                    return Err(CoreError::InvalidConfig(
                        "a pairwise preference needs two distinct shown packages".into(),
                    ));
                }
                shown_package(shown, *preferred)?;
                shown_package(shown, *over)?;
            }
            Feedback::Skip => {}
        }
        Ok(())
    }
}

/// Resolves a feedback index against the shown slice, rejecting out-of-range
/// indices with the canonical error message.
pub fn shown_package(shown: &[Package], index: usize) -> Result<&Package> {
    shown.get(index).ok_or_else(|| {
        CoreError::InvalidConfig(format!(
            "feedback index {index} is out of range for {} shown packages",
            shown.len()
        ))
    })
}

/// Computes the per-sample top-k ranking of every sample in a pool — the
/// shared ranking step of the engine and of pool-based baseline adapters.
pub fn per_sample_rankings(
    context: &AggregationContext,
    catalog: &Catalog,
    pool: &SamplePool,
    depth: usize,
) -> Result<Vec<PerSampleRanking>> {
    let mut results = Vec::with_capacity(pool.len());
    for sample in pool.samples() {
        let utility = LinearUtility::new(context.clone(), sample.weights.clone())?;
        let search = top_k_packages(&utility, catalog, depth)?;
        results.push(PerSampleRanking::new(sample.importance, search.packages));
    }
    Ok(results)
}

/// Extends a presentation list with random exploration packages until it
/// reaches `target` entries (de-duplicated, bounded number of attempts) —
/// the Section 2.2 exploration step shared by `present` implementations.
pub fn extend_with_random_packages(
    shown: &mut Vec<Package>,
    target: usize,
    catalog_len: usize,
    max_package_size: usize,
    rng: &mut dyn RngCore,
) {
    let phi = max_package_size.min(catalog_len);
    let mut guard = 0;
    while shown.len() < target && guard < 1000 {
        guard += 1;
        let candidate = random_package(catalog_len, phi, rng);
        if !shown.contains(&candidate) {
            shown.push(candidate);
        }
    }
}

/// A cheap, serialisable summary of a recommender session's progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommenderState {
    /// Human-readable label of the recommender ("engine", "em-refit", …).
    pub label: String,
    /// Number of packages recommended per round.
    pub k: usize,
    /// Number of pairwise preferences recorded so far.
    pub preferences: usize,
    /// Current size of the weight-sample pool (0 for pool-free baselines).
    pub pool_size: usize,
    /// Number of feedback rounds recorded so far (including skips).
    pub rounds: usize,
}

/// An interactive, session-oriented package recommender.
///
/// The trait is object-safe: session drivers take `&mut dyn Recommender`, so
/// the elicitation engine and every baseline are drop-in comparators.
pub trait Recommender {
    /// The catalog the recommender draws packages from.
    fn catalog(&self) -> &Catalog;

    /// Builds the presentation list of one round (recommended packages first,
    /// optionally followed by exploration packages).
    fn present(&mut self, rng: &mut dyn RngCore) -> Result<Vec<Package>>;

    /// Records one round of typed feedback against the packages returned by
    /// the matching [`Recommender::present`] call.  Returns the number of new
    /// pairwise preferences absorbed.
    fn record_feedback(
        &mut self,
        shown: &[Package],
        feedback: Feedback,
        rng: &mut dyn RngCore,
    ) -> Result<usize>;

    /// The current top-k recommendation.
    fn recommend(&mut self, rng: &mut dyn RngCore) -> Result<Vec<RankedPackage>>;

    /// A summary of the session's progress.
    fn state(&self) -> RecommenderState;
}

impl Recommender for RecommenderEngine {
    fn catalog(&self) -> &Catalog {
        RecommenderEngine::catalog(self)
    }

    fn present(&mut self, rng: &mut dyn RngCore) -> Result<Vec<Package>> {
        RecommenderEngine::present(self, rng)
    }

    fn record_feedback(
        &mut self,
        shown: &[Package],
        feedback: Feedback,
        rng: &mut dyn RngCore,
    ) -> Result<usize> {
        RecommenderEngine::record_feedback(self, shown, feedback, rng)
    }

    fn recommend(&mut self, rng: &mut dyn RngCore) -> Result<Vec<RankedPackage>> {
        RecommenderEngine::recommend(self, rng)
    }

    fn state(&self) -> RecommenderState {
        RecommenderState {
            label: "engine".to_string(),
            k: self.config().k,
            preferences: self.preferences().len(),
            pool_size: self.pool().len(),
            rounds: self.rounds(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> RecommenderEngine {
        let catalog = Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
        ])
        .unwrap();
        RecommenderEngine::builder(catalog, Profile::cost_quality())
            .max_package_size(2)
            .k(2)
            .num_random(2)
            .num_samples(30)
            .build()
            .unwrap()
    }

    #[test]
    fn engine_drives_through_the_trait_object() {
        let mut engine = engine();
        let recommender: &mut dyn Recommender = &mut engine;
        let mut rng = StdRng::seed_from_u64(3);
        let shown = recommender.present(&mut rng).unwrap();
        assert_eq!(shown.len(), 4);
        let added = recommender
            .record_feedback(&shown, Feedback::Click { index: 0 }, &mut rng)
            .unwrap();
        assert_eq!(added, shown.len() - 1);
        let recs = recommender.recommend(&mut rng).unwrap();
        assert_eq!(recs.len(), 2);
        let state = recommender.state();
        assert_eq!(state.label, "engine");
        assert_eq!(state.k, 2);
        assert_eq!(state.preferences, added);
        assert_eq!(state.rounds, 1);
        assert_eq!(state.pool_size, 30);
        assert_eq!(recommender.catalog().len(), 5);
    }

    #[test]
    fn feedback_serde_round_trips() {
        for feedback in [
            Feedback::Click { index: 3 },
            Feedback::Pairwise {
                preferred: 1,
                over: 4,
            },
            Feedback::Skip,
        ] {
            let json = serde_json::to_string(&feedback).unwrap();
            assert_eq!(serde_json::from_str::<Feedback>(&json).unwrap(), feedback);
        }
    }
}
