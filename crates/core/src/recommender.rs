//! The unified, session-oriented recommender surface.
//!
//! Every interactive recommender in the workspace — the paper's
//! sample-maintenance engine ([`RecommenderEngine`]) as well as the baseline
//! adapters in `pkgrec-baselines` — implements the object-safe
//! [`Recommender`] trait, so session drivers such as
//! [`run_elicitation`](crate::elicitation::run_elicitation) and the Figure 8
//! harness can compare them round for round through one generic loop.
//!
//! Feedback is typed: a [`Feedback::Click`] carries the *index* of the chosen
//! package within the shown slice (replacing the old positional
//! `record_click(&Package, &[Package])` call that forced callers to clone a
//! shown package), [`Feedback::Pairwise`] expresses a single comparison, and
//! [`Feedback::Skip`] records a round without preference information.

use std::collections::HashMap;

use pkgrec_topk::SortedLists;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::engine::RecommenderEngine;
use crate::error::{CoreError, Result};
use crate::item::Catalog;
use crate::package::{random_package, Package};
use crate::profile::AggregationContext;
use crate::ranking::{self, PerSampleRanking, RankedPackage};
use crate::sampler::SamplePool;
use crate::scoring::{score_batch_threaded, CandidateMatrix};
use crate::search::{top_k_packages_with_scratch, AggregatedSearchStats, SearchScratch};
use crate::utility::LinearUtility;

/// One round of typed user feedback over the packages a recommender showed.
///
/// All indices refer to positions in the `shown` slice passed alongside the
/// feedback; out-of-range indices are rejected with
/// [`CoreError::InvalidConfig`](crate::error::CoreError).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feedback {
    /// The user clicked the shown package at `index`; every other shown
    /// package becomes less preferred (Section 2.2 of the paper).
    Click {
        /// Index of the clicked package within the shown slice.
        index: usize,
    },
    /// The user expressed a single pairwise comparison between two shown
    /// packages.
    Pairwise {
        /// Index of the preferred package within the shown slice.
        preferred: usize,
        /// Index of the less-preferred package within the shown slice.
        over: usize,
    },
    /// The user skipped the round; no preference is recorded.
    Skip,
}

impl Feedback {
    /// Validates the feedback against the shown slice: every index must be in
    /// range and a pairwise comparison must name two distinct packages.
    /// Implementations of [`Recommender::record_feedback`] should call this
    /// first so all recommenders reject malformed feedback identically.
    pub fn validate(&self, shown: &[Package]) -> Result<()> {
        match self {
            Feedback::Click { index } => {
                shown_package(shown, *index)?;
            }
            Feedback::Pairwise { preferred, over } => {
                if preferred == over {
                    return Err(CoreError::InvalidConfig(
                        "a pairwise preference needs two distinct shown packages".into(),
                    ));
                }
                shown_package(shown, *preferred)?;
                shown_package(shown, *over)?;
            }
            Feedback::Skip => {}
        }
        Ok(())
    }
}

/// Resolves a feedback index against the shown slice, rejecting out-of-range
/// indices with the canonical error message.
pub fn shown_package(shown: &[Package], index: usize) -> Result<&Package> {
    shown.get(index).ok_or_else(|| {
        CoreError::InvalidConfig(format!(
            "feedback index {index} is out of range for {} shown packages",
            shown.len()
        ))
    })
}

/// Computes the per-sample top-k ranking of every sample in a pool — the
/// shared ranking step of the engine and of pool-based baseline adapters —
/// on the calling thread.  See [`per_sample_rankings_threaded`] for the
/// data-parallel variant behind the engine's `num_threads` knob and
/// [`per_sample_rankings_indexed`] for the form that reuses a cached
/// [`SortedLists`] index and surfaces search statistics.
pub fn per_sample_rankings(
    context: &AggregationContext,
    catalog: &Catalog,
    pool: &SamplePool,
    depth: usize,
) -> Result<Vec<PerSampleRanking>> {
    per_sample_rankings_threaded(context, catalog, pool, depth, 1)
}

/// Runs every sample's candidate discovery (`Top-k-Pkg` over the shared
/// sorted-lists index) and collects, per sample, the discovered packages as
/// indices into a deduplicated candidate list whose feature vectors
/// accumulate in one flat [`CandidateMatrix`], plus the aggregated search
/// statistics of every run.
#[allow(clippy::type_complexity)] // one tuple slot per discovery artefact
pub(crate) fn discover_candidates(
    context: &AggregationContext,
    catalog: &Catalog,
    lists: &SortedLists,
    pool: &SamplePool,
    depth: usize,
    num_threads: usize,
) -> Result<(
    Vec<Package>,
    CandidateMatrix,
    Vec<Vec<usize>>,
    AggregatedSearchStats,
)> {
    let sample_count = pool.len();
    let threads = num_threads.max(1).min(sample_count);
    let mut stats = AggregatedSearchStats::default();
    // Per-sample package lists, best first, in pool order.
    let discovered: Vec<Vec<Package>> = if threads <= 1 {
        let mut utility = LinearUtility::new(context.clone(), vec![0.0; context.dim()])?;
        let mut scratch = SearchScratch::new();
        let mut found = Vec::with_capacity(sample_count);
        for sample in pool.samples() {
            utility.set_weights(sample.weights)?;
            let result =
                top_k_packages_with_scratch(&utility, catalog, lists, depth, &mut scratch)?;
            stats.record(&result.stats);
            found.push(result.into_packages());
        }
        found
    } else {
        // Data-parallel split: contiguous chunks of the pool per OS thread,
        // each owning its utility, its candidate arena and its per-access
        // scratch buffers ([`SearchScratch`]) but all sharing the one
        // immutable index; chunk results are re-joined in pool order, so the
        // outcome is identical to the serial path.
        let chunk = sample_count.div_ceil(threads);
        type ChunkResult = Result<(Vec<Vec<Package>>, AggregatedSearchStats)>;
        let chunks: Vec<ChunkResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let first = t * chunk;
                    let last = ((t + 1) * chunk).min(sample_count);
                    scope.spawn(move || -> ChunkResult {
                        let mut utility =
                            LinearUtility::new(context.clone(), vec![0.0; context.dim()])?;
                        let mut scratch = SearchScratch::new();
                        let mut chunk_stats = AggregatedSearchStats::default();
                        let found = (first..last)
                            .map(|s| {
                                utility.set_weights(pool.get(s).weights)?;
                                let result = top_k_packages_with_scratch(
                                    &utility,
                                    catalog,
                                    lists,
                                    depth,
                                    &mut scratch,
                                )?;
                                chunk_stats.record(&result.stats);
                                Ok(result.into_packages())
                            })
                            .collect::<Result<Vec<Vec<Package>>>>()?;
                        Ok((found, chunk_stats))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("discovery thread does not panic"))
                .collect()
        });
        let mut found = Vec::with_capacity(sample_count);
        for chunk_result in chunks {
            let (chunk_found, chunk_stats) = chunk_result?;
            found.extend(chunk_found);
            stats.merge(&chunk_stats);
        }
        found
    };
    // Deduplicate the union of discovered packages into the flat candidate
    // matrix; each sample's list becomes indices into it.
    let mut candidates: Vec<Package> = Vec::new();
    let mut vectors = CandidateMatrix::new(context.dim());
    let mut index_of: HashMap<Package, usize> = HashMap::new();
    let mut per_sample = Vec::with_capacity(sample_count);
    for list in discovered {
        let mut indices = Vec::with_capacity(list.len());
        for package in list {
            let index = match index_of.get(&package) {
                Some(&i) => i,
                None => {
                    let i = candidates.len();
                    vectors.push_row(&context.package_vector(catalog, &package)?);
                    index_of.insert(package.clone(), i);
                    candidates.push(package);
                    i
                }
            };
            indices.push(index);
        }
        per_sample.push(indices);
    }
    Ok((candidates, vectors, per_sample, stats))
}

/// [`per_sample_rankings`] with the scoring stack split across up to
/// `num_threads` OS threads ([`std::thread::scope`]; no thread pool, no
/// external dependencies): both the per-sample candidate discovery and the
/// batched kernel partition their work, and `num_threads = 1` — the
/// [`EngineBuilder`](crate::builder::EngineBuilder) default — stays entirely
/// on the calling thread.
///
/// The computation is batch-at-a-time rather than row-at-a-time: each
/// sample's `Top-k-Pkg` search *discovers* its candidate packages, the union
/// of discovered candidates is scored against the whole pool in one
/// [`crate::scoring::score_batch`] call, and the per-sample lists are
/// materialised from the resulting score matrix.  Scoring the full
/// `union × pool` matrix computes more entries than the per-sample lists
/// read back; that is a deliberate trade — the kernel's contiguous sweep is
/// a vanishing fraction of the discovery cost even at fig8 scale, and the
/// full matrix is what downstream batch reductions (expectations, argmax)
/// consume without re-touching the pool.
pub fn per_sample_rankings_threaded(
    context: &AggregationContext,
    catalog: &Catalog,
    pool: &SamplePool,
    depth: usize,
    num_threads: usize,
) -> Result<Vec<PerSampleRanking>> {
    let lists = SortedLists::new(catalog.rows());
    per_sample_rankings_indexed(context, catalog, &lists, pool, depth, num_threads)
        .map(|(rankings, _)| rankings)
}

/// The fully-equipped ranking step: [`per_sample_rankings_threaded`] over a
/// prebuilt, catalog-cached [`SortedLists`] index (the per-feature item order
/// is weight-independent, so one index serves every sample of every round),
/// returning the per-sample rankings together with the aggregated search
/// statistics of all the `Top-k-Pkg` runs.  The engine and the pool-based
/// baselines call this form; the wrappers above rebuild the index per call
/// for one-shot callers.
pub fn per_sample_rankings_indexed(
    context: &AggregationContext,
    catalog: &Catalog,
    lists: &SortedLists,
    pool: &SamplePool,
    depth: usize,
    num_threads: usize,
) -> Result<(Vec<PerSampleRanking>, AggregatedSearchStats)> {
    if pool.is_empty() {
        return Ok((Vec::new(), AggregatedSearchStats::default()));
    }
    let (candidates, vectors, per_sample, stats) =
        discover_candidates(context, catalog, lists, pool, depth, num_threads)?;
    let scores = score_batch_threaded(&vectors, pool.weight_matrix(), num_threads);
    Ok((
        ranking::per_sample_rankings_from_scores(
            &candidates,
            &scores,
            pool.importances(),
            &per_sample,
        ),
        stats,
    ))
}

/// Extends a presentation list with random exploration packages until it
/// reaches `target` entries (de-duplicated, bounded number of attempts) —
/// the Section 2.2 exploration step shared by `present` implementations.
pub fn extend_with_random_packages(
    shown: &mut Vec<Package>,
    target: usize,
    catalog_len: usize,
    max_package_size: usize,
    rng: &mut dyn RngCore,
) {
    let phi = max_package_size.min(catalog_len);
    let mut guard = 0;
    while shown.len() < target && guard < 1000 {
        guard += 1;
        let candidate = random_package(catalog_len, phi, rng);
        if !shown.contains(&candidate) {
            shown.push(candidate);
        }
    }
}

/// A cheap, serialisable summary of a recommender session's progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommenderState {
    /// Human-readable label of the recommender ("engine", "em-refit", …).
    pub label: String,
    /// Number of packages recommended per round.
    pub k: usize,
    /// Number of pairwise preferences recorded so far.
    pub preferences: usize,
    /// Current size of the weight-sample pool (0 for pool-free baselines).
    pub pool_size: usize,
    /// Number of feedback rounds recorded so far (including skips).
    pub rounds: usize,
    /// Aggregated `Top-k-Pkg` statistics across the session so far (all zero
    /// for recommenders that never run the package search).
    pub search: AggregatedSearchStats,
}

/// An interactive, session-oriented package recommender.
///
/// The trait is object-safe: session drivers take `&mut dyn Recommender`, so
/// the elicitation engine and every baseline are drop-in comparators.
pub trait Recommender {
    /// The catalog the recommender draws packages from.
    fn catalog(&self) -> &Catalog;

    /// Builds the presentation list of one round (recommended packages first,
    /// optionally followed by exploration packages).
    fn present(&mut self, rng: &mut dyn RngCore) -> Result<Vec<Package>>;

    /// Records one round of typed feedback against the packages returned by
    /// the matching [`Recommender::present`] call.  Returns the number of new
    /// pairwise preferences absorbed.
    fn record_feedback(
        &mut self,
        shown: &[Package],
        feedback: Feedback,
        rng: &mut dyn RngCore,
    ) -> Result<usize>;

    /// The current top-k recommendation.
    fn recommend(&mut self, rng: &mut dyn RngCore) -> Result<Vec<RankedPackage>>;

    /// A summary of the session's progress.
    fn state(&self) -> RecommenderState;
}

impl Recommender for RecommenderEngine {
    fn catalog(&self) -> &Catalog {
        RecommenderEngine::catalog(self)
    }

    fn present(&mut self, rng: &mut dyn RngCore) -> Result<Vec<Package>> {
        RecommenderEngine::present(self, rng)
    }

    fn record_feedback(
        &mut self,
        shown: &[Package],
        feedback: Feedback,
        rng: &mut dyn RngCore,
    ) -> Result<usize> {
        RecommenderEngine::record_feedback(self, shown, feedback, rng)
    }

    fn recommend(&mut self, rng: &mut dyn RngCore) -> Result<Vec<RankedPackage>> {
        RecommenderEngine::recommend(self, rng)
    }

    fn state(&self) -> RecommenderState {
        RecommenderState {
            label: "engine".to_string(),
            k: self.config().k,
            preferences: self.preferences().len(),
            pool_size: self.pool().len(),
            rounds: self.rounds(),
            search: self.search_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> RecommenderEngine {
        let catalog = Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
        ])
        .unwrap();
        RecommenderEngine::builder(catalog, Profile::cost_quality())
            .max_package_size(2)
            .k(2)
            .num_random(2)
            .num_samples(30)
            .build()
            .unwrap()
    }

    #[test]
    fn engine_drives_through_the_trait_object() {
        let mut engine = engine();
        let recommender: &mut dyn Recommender = &mut engine;
        let mut rng = StdRng::seed_from_u64(3);
        let shown = recommender.present(&mut rng).unwrap();
        assert_eq!(shown.len(), 4);
        let added = recommender
            .record_feedback(&shown, Feedback::Click { index: 0 }, &mut rng)
            .unwrap();
        assert_eq!(added, shown.len() - 1);
        let recs = recommender.recommend(&mut rng).unwrap();
        assert_eq!(recs.len(), 2);
        let state = recommender.state();
        assert_eq!(state.label, "engine");
        assert_eq!(state.k, 2);
        assert_eq!(state.preferences, added);
        assert_eq!(state.rounds, 1);
        assert_eq!(state.pool_size, 30);
        assert_eq!(recommender.catalog().len(), 5);
    }

    #[test]
    fn threaded_rankings_match_the_serial_path() {
        use crate::sampler::{SamplerKind, WeightSampler};
        use pkgrec_gmm::GaussianMixture;

        let engine = engine();
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let checker = crate::constraints::ConstraintChecker::full(
            &crate::preferences::PreferenceStore::new(),
            2,
        );
        let mut rng = StdRng::seed_from_u64(17);
        let pool = SamplerKind::mcmc()
            .generate(&prior, &checker, 60, &mut rng)
            .unwrap()
            .pool;
        let serial = per_sample_rankings(engine.context(), engine.catalog(), &pool, 3).unwrap();
        for threads in [2, 4] {
            let parallel =
                per_sample_rankings_threaded(engine.context(), engine.catalog(), &pool, 3, threads)
                    .unwrap();
            assert_eq!(serial, parallel, "{threads} threads");
        }
        assert!(
            per_sample_rankings(engine.context(), engine.catalog(), &SamplePool::new(), 3)
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn feedback_serde_round_trips() {
        for feedback in [
            Feedback::Click { index: 3 },
            Feedback::Pairwise {
                preferred: 1,
                over: 4,
            },
            Feedback::Skip,
        ] {
            let json = serde_json::to_string(&feedback).unwrap();
            assert_eq!(serde_json::from_str::<Feedback>(&json).unwrap(), feedback);
        }
    }
}
