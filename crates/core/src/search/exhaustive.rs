//! Exhaustive top-k package search by full enumeration.
//!
//! The package space has `Σ_s C(n, s)` members, so this solver is only usable
//! on small catalogs; it exists as the ground truth the optimised
//! [`super::top_k_packages`] algorithm is validated against, and as the
//! baseline the paper's "naive solution which first enumerates all possible
//! packages" refers to in Section 4.

use crate::error::Result;
use crate::item::Catalog;
use crate::package::{enumerate_packages, Package};
use crate::utility::LinearUtility;

/// Returns the exact top-k packages (and their utilities) by enumerating the
/// entire package space of size `1..=φ`.
pub fn top_k_packages_exhaustive(
    utility: &LinearUtility,
    catalog: &Catalog,
    k: usize,
) -> Result<Vec<(Package, f64)>> {
    let phi = utility.max_package_size();
    let mut scored: Vec<(Package, f64)> = Vec::new();
    for package in enumerate_packages(catalog.len(), phi) {
        let value = utility.of_package(catalog, &package)?;
        scored.push((package, value));
    }
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    scored.truncate(k);
    Ok(scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{AggregationContext, Profile};

    fn figure1_utility(weights: Vec<f64>) -> (Catalog, LinearUtility) {
        let catalog = Catalog::new(
            vec!["cost".into(), "rating".into()],
            vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.2, 0.4]],
        )
        .unwrap();
        let ctx = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
        let u = LinearUtility::new(ctx, weights).unwrap();
        (catalog, u)
    }

    #[test]
    fn figure2_top2_under_w1_is_p4_then_p6() {
        let (catalog, u) = figure1_utility(vec![0.5, 0.1]);
        let top = top_k_packages_exhaustive(&u, &catalog, 2).unwrap();
        assert_eq!(top[0].0, Package::new(vec![0, 1]).unwrap());
        assert!((top[0].1 - 0.575).abs() < 1e-12);
        assert_eq!(top[1].0, Package::new(vec![0, 2]).unwrap());
        assert!((top[1].1 - 0.475).abs() < 1e-12);
    }

    #[test]
    fn figure2_top2_under_w2_is_p5_then_p2() {
        let (catalog, u) = figure1_utility(vec![0.1, 0.5]);
        let top = top_k_packages_exhaustive(&u, &catalog, 2).unwrap();
        assert_eq!(top[0].0, Package::new(vec![1, 2]).unwrap());
        assert_eq!(top[1].0, Package::new(vec![1]).unwrap());
    }

    #[test]
    fn figure2_top2_under_w3_is_p4_then_p5() {
        let (catalog, u) = figure1_utility(vec![0.1, 0.1]);
        let top = top_k_packages_exhaustive(&u, &catalog, 2).unwrap();
        assert_eq!(top[0].0, Package::new(vec![0, 1]).unwrap());
        assert_eq!(top[1].0, Package::new(vec![1, 2]).unwrap());
    }

    #[test]
    fn k_larger_than_package_space_returns_everything() {
        let (catalog, u) = figure1_utility(vec![0.5, 0.5]);
        let all = top_k_packages_exhaustive(&u, &catalog, 100).unwrap();
        assert_eq!(all.len(), 6);
        // Scores are non-increasing.
        for pair in all.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}
