//! The clone-based `Top-k-Pkg` reference implementation.
//!
//! This is the pre-arena hot path, kept verbatim as an executable
//! specification: every candidate owns its item vector and a cloned
//! [`PackageState`], bounds re-evaluate the state per τ-copy through
//! [`super::bounds::upper_exp`], and found packages are deduplicated through a
//! sorted-key map.  The optimised [`super::top_k_packages`] must return the
//! same packages and utilities (see the `search_equivalence` suite in the
//! integration tests), and the `fig_pkgsearch` benchmark measures the two
//! paths against each other.  It is *not* part of the serving path — call
//! [`super::top_k_packages`] instead.

use pkgrec_topk::{RoundRobinCursor, SortedLists, TopKHeap};

use crate::error::Result;
use crate::item::{Catalog, ItemId};
use crate::package::Package;
use crate::profile::{AggregateFn, PackageState};
use crate::utility::LinearUtility;

use super::bounds::{can_improve, upper_exp};
use super::{SearchResult, SearchStats, MAX_EXPANDABLE_CANDIDATES};

/// A candidate package being grown by the expansion phase, owning its item
/// vector and aggregation state (cloned on every extension).
#[derive(Debug, Clone)]
struct Candidate {
    items: Vec<ItemId>,
    state: PackageState,
    utility: f64,
}

impl Candidate {
    fn empty(dim: usize) -> Self {
        Candidate {
            items: Vec::new(),
            state: PackageState::empty(dim),
            utility: 0.0,
        }
    }

    fn extend(&self, item: ItemId, features: &[f64], utility: &LinearUtility) -> Candidate {
        let state = self.state.with_item(features);
        let mut items = self.items.clone();
        items.push(item);
        let value = utility.of_state(&state);
        Candidate {
            items,
            state,
            utility: value,
        }
    }
}

/// The clone-based `Top-k-Pkg` (Algorithm 2) — see the module docs.  Builds
/// its own sorted lists per call, exactly like the pre-arena path did.
pub fn top_k_packages_reference(
    utility: &LinearUtility,
    catalog: &Catalog,
    k: usize,
) -> Result<SearchResult> {
    let dim = utility.dim();
    let phi = utility.max_package_size();
    let effective_query: Vec<f64> = (0..dim)
        .map(|j| {
            if utility.context().profile().aggregate(j) == AggregateFn::Null {
                0.0
            } else {
                utility.weights()[j]
            }
        })
        .collect();
    let lists = SortedLists::new(catalog.rows());
    let mut cursor = RoundRobinCursor::for_query(&lists, &effective_query);

    let mut q_plus: Vec<Candidate> = Vec::new();
    let empty_state = PackageState::empty(dim);
    let mut best = TopKHeap::new(k);
    let mut best_by_key: std::collections::HashMap<Vec<ItemId>, f64> =
        std::collections::HashMap::new();
    let mut seen_items: std::collections::HashSet<ItemId> = std::collections::HashSet::new();
    let mut candidates_created = 0usize;
    let mut terminated_early = false;

    if k == 0 {
        return Ok(SearchResult {
            packages: Vec::new(),
            stats: SearchStats {
                sorted_accesses: 0,
                items_accessed: 0,
                candidates_created: 0,
                terminated_early: false,
            },
        });
    }

    while let Some(access) = cursor.next_access() {
        if !seen_items.insert(access.id) {
            continue;
        }
        let item_features = catalog.item_unchecked(access.id);
        let tau = cursor.boundary();

        // Expansion phase (Algorithm 4): seed a singleton candidate for the
        // newly accessed item, try to extend every expandable candidate with
        // it, then re-classify candidates against the updated boundary vector
        // τ.
        let mut eta_up = upper_exp(utility, &empty_state, &tau);
        let mut next_q_plus: Vec<(Candidate, f64)> = Vec::with_capacity(q_plus.len() * 2);
        let mut new_candidates: Vec<Candidate> = Vec::new();
        new_candidates.push(Candidate::empty(dim).extend(access.id, item_features, utility));
        candidates_created += 1;
        for candidate in &q_plus {
            if candidate.items.len() < phi {
                let extended = candidate.extend(access.id, item_features, utility);
                if extended.utility > candidate.utility {
                    candidates_created += 1;
                    new_candidates.push(extended);
                }
            }
        }
        for candidate in q_plus.drain(..).chain(new_candidates) {
            // Record every non-empty candidate as a found package.
            if !candidate.items.is_empty() {
                let mut sorted_items = candidate.items.clone();
                sorted_items.sort_unstable();
                if !best_by_key.contains_key(&sorted_items) {
                    best_by_key.insert(sorted_items.clone(), candidate.utility);
                    best.push(sorted_items, candidate.utility);
                }
            }
            if can_improve(utility, &candidate.state, &tau) {
                let bound = upper_exp(utility, &candidate.state, &tau);
                eta_up = eta_up.max(bound);
                next_q_plus.push((candidate, bound));
            }
        }

        // Termination test (Algorithm 2 line 8): ηlo is the utility of the
        // k-th best package found so far, or 0 while fewer than k exist.
        let eta_lo = if best.is_full() {
            best.threshold().unwrap_or(0.0)
        } else {
            0.0
        };
        if best.is_full() {
            next_q_plus.retain(|(_, bound)| *bound > eta_lo);
        }
        // Beam safeguard against combinatorial growth of Q+.
        if next_q_plus.len() > MAX_EXPANDABLE_CANDIDATES {
            next_q_plus.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            next_q_plus.truncate(MAX_EXPANDABLE_CANDIDATES);
        }
        q_plus = next_q_plus.into_iter().map(|(c, _)| c).collect();

        // ηup always covers packages assembled purely from unseen items (the
        // empty-state bound), so the scan may only stop on the bound test.
        if eta_up <= eta_lo {
            terminated_early = true;
            break;
        }
    }

    let packages = best
        .into_sorted()
        .into_iter()
        .map(|(items, score)| {
            (
                Package::new(items).expect("candidates are non-empty"),
                score,
            )
        })
        .collect();
    Ok(SearchResult {
        packages,
        stats: SearchStats {
            sorted_accesses: cursor.accesses(),
            items_accessed: seen_items.len(),
            candidates_created,
            terminated_early,
        },
    })
}
