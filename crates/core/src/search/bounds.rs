//! Upper-bound estimation for package expansion (Section 4.1, Algorithm 3).

use crate::profile::PackageState;
use crate::utility::LinearUtility;

/// The `upper-exp` bound of Algorithm 3: the best utility any extension of the
/// package described by `state` can reach using only items whose feature
/// values are dominated by the boundary vector `tau`.
///
/// * For set-monotone utilities the bound packs `φ - |p|` copies of the
///   imaginary item `τ` into the package.
/// * Otherwise copies of `τ` are added only while the marginal gain stays
///   positive; Lemma 3 (marginal gains of identical additions are
///   non-increasing) makes stopping at the first non-positive gain safe.
pub fn upper_exp(utility: &LinearUtility, state: &PackageState, tau: &[f64]) -> f64 {
    let phi = utility.max_package_size();
    let mut current = state.clone();
    let mut best = utility.of_state(&current);
    if state.size() >= phi {
        return best;
    }
    if utility.is_set_monotone() {
        for _ in state.size()..phi {
            current.add_item(tau);
        }
        return utility.of_state(&current);
    }
    for _ in state.size()..phi {
        let extended = current.with_item(tau);
        let value = utility.of_state(&extended);
        if value > best {
            best = value;
            current = extended;
        } else {
            return best;
        }
    }
    best
}

/// Whether the package described by `state` could still improve by absorbing
/// an item no better than `tau` (the `U(p ∪ {τ}) > U(p)` test of Algorithm 4).
/// Packages already at the maximum size can never improve.
pub fn can_improve(utility: &LinearUtility, state: &PackageState, tau: &[f64]) -> bool {
    if state.size() >= utility.max_package_size() {
        return false;
    }
    let extended = state.with_item(tau);
    utility.of_state(&extended) > utility.of_state(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Catalog;
    use crate::package::{enumerate_packages, Package};
    use crate::profile::{AggregateFn, AggregationContext, Profile};
    use crate::utility::LinearUtility;

    fn catalog() -> Catalog {
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.8, 0.9],
        ])
        .unwrap()
    }

    fn utility(profile: Profile, weights: Vec<f64>, phi: usize) -> LinearUtility {
        let ctx = AggregationContext::new(profile, &catalog(), phi).unwrap();
        LinearUtility::new(ctx, weights).unwrap()
    }

    #[test]
    fn set_monotone_bound_packs_to_full_size() {
        let u = utility(
            Profile::new(vec![AggregateFn::Sum, AggregateFn::Max]),
            vec![0.5, 0.5],
            3,
        );
        assert!(u.is_set_monotone());
        let state = PackageState::empty(2);
        let tau = [0.8, 0.9];
        let bound = upper_exp(&u, &state, &tau);
        // Packing three copies of τ: sum = 2.4 (normalised by top-3 sum = 1.8
        // -> capped by normaliser), max = 0.9 / 0.9 = 1.0.
        let mut packed = PackageState::empty(2);
        for _ in 0..3 {
            packed.add_item(&tau);
        }
        assert!((bound - u.of_state(&packed)).abs() < 1e-12);
    }

    #[test]
    fn non_monotone_bound_stops_at_non_positive_marginal() {
        // Average aggregate with positive weight: adding a τ identical to the
        // current average yields zero gain, so the bound stops early.
        let u = utility(Profile::all_avg(2), vec![1.0, 0.0], 4);
        assert!(!u.is_set_monotone());
        let mut state = PackageState::empty(2);
        state.add_item(&[0.8, 0.1]);
        let tau = [0.5, 0.5];
        let bound = upper_exp(&u, &state, &tau);
        // Adding τ (value 0.5 < current avg 0.8) can only lower the average,
        // so the bound equals the current utility.
        assert!((bound - u.of_state(&state)).abs() < 1e-12);
    }

    #[test]
    fn bound_dominates_every_reachable_package_built_from_dominated_items() {
        // Theorem 3: upper-exp bounds the utility of p extended with any items
        // dominated by τ.  Check exhaustively on a small instance.
        let cat = catalog();
        for weights in [
            vec![0.7, 0.3],
            vec![-0.4, 0.8],
            vec![0.5, -0.5],
            vec![-0.6, -0.2],
        ] {
            for profile in [
                Profile::new(vec![AggregateFn::Sum, AggregateFn::Avg]),
                Profile::new(vec![AggregateFn::Max, AggregateFn::Min]),
                Profile::all_sum(2),
            ] {
                let ctx = AggregationContext::new(profile, &cat, 3).unwrap();
                let u = LinearUtility::new(ctx, weights.clone()).unwrap();
                // τ dominates every item in the desirability direction of each
                // weight: take the per-feature best item value.
                let tau: Vec<f64> = (0..2)
                    .map(|j| {
                        let values = cat.rows().iter().map(|r| r[j]);
                        if weights[j] >= 0.0 {
                            values.fold(f64::NEG_INFINITY, f64::max)
                        } else {
                            values.fold(f64::INFINITY, f64::min)
                        }
                    })
                    .collect();
                let empty = PackageState::empty(2);
                let bound = upper_exp(&u, &empty, &tau);
                for package in enumerate_packages(cat.len(), 3) {
                    let state = u.context().state_of(&cat, package.items()).unwrap();
                    let value = u.of_state(&state);
                    assert!(
                        bound + 1e-9 >= value,
                        "bound {bound} < utility {value} of {package} under {weights:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_packages_cannot_improve() {
        let u = utility(Profile::all_sum(2), vec![1.0, 1.0], 2);
        let cat = catalog();
        let state = u
            .context()
            .state_of(&cat, Package::new(vec![0, 3]).unwrap().items())
            .unwrap();
        assert!(!can_improve(&u, &state, &[1.0, 1.0]));
        assert!((upper_exp(&u, &state, &[1.0, 1.0]) - u.of_state(&state)).abs() < 1e-12);
    }

    #[test]
    fn can_improve_reflects_marginal_gain_sign() {
        let u = utility(Profile::cost_quality(), vec![-0.5, 0.5], 3);
        let cat = catalog();
        let state = u
            .context()
            .state_of(&cat, Package::new(vec![1]).unwrap().items())
            .unwrap();
        // A free, perfectly rated imaginary item improves the package.
        assert!(can_improve(&u, &state, &[0.0, 0.9]));
        // An expensive, poorly rated one does not.
        assert!(!can_improve(&u, &state, &[0.9, 0.0]));
    }
}
