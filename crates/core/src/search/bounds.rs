//! Upper-bound estimation for package expansion (Section 4.1, Algorithm 3).
//!
//! Two implementations live here:
//!
//! * [`upper_exp`] / [`can_improve`] — the readable reference versions that
//!   clone a [`PackageState`] per τ-copy.  They define the semantics, back the
//!   clone-based [`super::reference::top_k_packages_reference`] path and act
//!   as the oracle for the incremental versions' tests.
//! * `FeaturePlan` (crate-internal) — the allocation-free machinery behind the optimised
//!   [`super::top_k_packages`]: the per-feature linear algebra is folded into
//!   a handful of scalars so that, after an `O(m)` preparation per sorted
//!   access, evaluating a candidate's bound or a tentative extension costs
//!   `O(1)` plus one term per `min`/`max` aggregate (profiles built from
//!   `sum`/`avg` aggregates — the experiment default — pay no per-feature
//!   work at all).
//!
//! The scalar decomposition relies on every feature's normalised contribution
//! being `(w_j / Z_j) · raw_j`: `sum` features are linear in the number of
//! τ-copies, all `avg` features share the single denominator `|p| + c`, and
//! `min`/`max` features saturate after the first copy.

use crate::profile::{AggregateFn, PackageState};
use crate::utility::LinearUtility;

/// The `upper-exp` bound of Algorithm 3: the best utility any extension of the
/// package described by `state` can reach using only items whose feature
/// values are dominated by the boundary vector `tau`.
///
/// * For set-monotone utilities the bound packs `φ - |p|` copies of the
///   imaginary item `τ` into the package.
/// * Otherwise copies of `τ` are added only while the marginal gain stays
///   positive; Lemma 3 (marginal gains of identical additions are
///   non-increasing) makes stopping at the first non-positive gain safe.
pub fn upper_exp(utility: &LinearUtility, state: &PackageState, tau: &[f64]) -> f64 {
    let phi = utility.max_package_size();
    let mut current = state.clone();
    let mut best = utility.of_state(&current);
    if state.size() >= phi {
        return best;
    }
    if utility.is_set_monotone() {
        for _ in state.size()..phi {
            current.add_item(tau);
        }
        return utility.of_state(&current);
    }
    for _ in state.size()..phi {
        let extended = current.with_item(tau);
        let value = utility.of_state(&extended);
        if value > best {
            best = value;
            current = extended;
        } else {
            return best;
        }
    }
    best
}

/// Whether the package described by `state` could still improve by absorbing
/// an item no better than `tau` (the `U(p ∪ {τ}) > U(p)` test of Algorithm 4).
/// Packages already at the maximum size can never improve.
pub fn can_improve(utility: &LinearUtility, state: &PackageState, tau: &[f64]) -> bool {
    if state.size() >= utility.max_package_size() {
        return false;
    }
    let extended = state.with_item(tau);
    utility.of_state(&extended) > utility.of_state(state)
}

/// The scalar summary of one point (an item or the boundary vector τ) under a
/// [`FeaturePlan`]: its contribution to the `sum`-feature dot product and to
/// the shared `avg` numerator.  `min`/`max` feature values are carried
/// separately (see [`FeaturePlan::write_mm_values`]).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PointScalars {
    /// `Σ_{sum features} (w_j / Z_j) · x_j`.
    pub lin: f64,
    /// `Σ_{avg features} (w_j / Z_j) · x_j`.
    pub avg_num: f64,
}

/// Per-candidate scalars consumed by the incremental bound: the cached linear
/// parts plus the candidate's current `min`/`max` aggregate values.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CandidateScalars<'a> {
    /// Package size `|p|`.
    pub size: usize,
    /// The candidate's utility `U(p)` (the `c = 0` value).
    pub utility: f64,
    /// Cached `Σ_{sum} (w_j / Z_j) · s_j` over the candidate's items.
    pub lin: f64,
    /// Cached `Σ_{avg} (w_j / Z_j) · s_j` over the candidate's items.
    pub avg_num: f64,
    /// Current `min`/`max` aggregate value per plan term (max terms first).
    pub mm: &'a [f64],
}

/// The per-utility preparation of the incremental bound: features classified
/// by aggregate with their normalised weights `w_j / Z_j` attached.  Features
/// with zero weight, a `null` aggregate or a non-positive normaliser
/// contribute exactly 0 to every utility and are dropped.
#[derive(Debug, Clone)]
pub(crate) struct FeaturePlan {
    phi: usize,
    set_monotone: bool,
    has_avg: bool,
    /// `(feature, w/Z)` per weighted `sum` feature.
    sum_terms: Vec<(usize, f64)>,
    /// `(feature, w/Z)` per weighted `avg` feature.
    avg_terms: Vec<(usize, f64)>,
    /// `(feature, w/Z)` per weighted `min`/`max` feature; the first
    /// [`FeaturePlan::num_max`] entries are `max` aggregates.
    mm_terms: Vec<(usize, f64)>,
    num_max: usize,
}

impl FeaturePlan {
    /// Builds the plan for a utility (`O(m)`, once per search).
    pub(crate) fn new(utility: &LinearUtility) -> FeaturePlan {
        let context = utility.context();
        let profile = context.profile();
        let norm = context.normalizers();
        let mut sum_terms = Vec::new();
        let mut avg_terms = Vec::new();
        let mut max_terms = Vec::new();
        let mut min_terms = Vec::new();
        for (j, &w) in utility.weights().iter().enumerate() {
            if w == 0.0 || norm[j] <= 0.0 {
                continue;
            }
            let wz = w / norm[j];
            match profile.aggregate(j) {
                AggregateFn::Sum => sum_terms.push((j, wz)),
                AggregateFn::Avg => avg_terms.push((j, wz)),
                AggregateFn::Max => max_terms.push((j, wz)),
                AggregateFn::Min => min_terms.push((j, wz)),
                AggregateFn::Null => {}
            }
        }
        let num_max = max_terms.len();
        let mut mm_terms = max_terms;
        mm_terms.append(&mut min_terms);
        FeaturePlan {
            phi: utility.max_package_size(),
            set_monotone: utility.is_set_monotone(),
            has_avg: !avg_terms.is_empty(),
            sum_terms,
            avg_terms,
            mm_terms,
            num_max,
        }
    }

    /// Number of `min`/`max` terms a candidate must carry.
    pub(crate) fn mm_len(&self) -> usize {
        self.mm_terms.len()
    }

    /// The `sum`/`avg` scalar summary of one point.
    pub(crate) fn point_scalars(&self, point: &[f64]) -> PointScalars {
        let lin = self.sum_terms.iter().map(|&(j, wz)| wz * point[j]).sum();
        let avg_num = self.avg_terms.iter().map(|&(j, wz)| wz * point[j]).sum();
        PointScalars { lin, avg_num }
    }

    /// Writes the point's raw value per `min`/`max` term into `out`
    /// (`out.len() == self.mm_len()`).
    pub(crate) fn write_mm_values(&self, point: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.mm_terms.len());
        for (slot, &(j, _)) in out.iter_mut().zip(self.mm_terms.iter()) {
            *slot = point[j];
        }
    }

    /// Folds a new member's `min`/`max` values into a candidate's (`max` terms
    /// take the maximum, `min` terms the minimum), writing into `out`, and
    /// returns `Σ (w_j / Z_j) · folded_j`.
    pub(crate) fn fold_mm_into(&self, current: &[f64], added: &[f64], out: &mut [f64]) -> f64 {
        let mut weighted = 0.0;
        for (i, &(_, wz)) in self.mm_terms.iter().enumerate() {
            let folded = if i < self.num_max {
                current[i].max(added[i])
            } else {
                current[i].min(added[i])
            };
            out[i] = folded;
            weighted += wz * folded;
        }
        weighted
    }

    /// `Σ (w_j / Z_j) · mm_j` of a candidate's current `min`/`max` values.
    pub(crate) fn mm_weighted_sum(&self, mm: &[f64]) -> f64 {
        self.mm_terms
            .iter()
            .zip(mm.iter())
            .map(|(&(_, wz), &v)| wz * v)
            .sum()
    }

    /// Utility of a (non-empty) candidate from its scalars: the `O(1)`-per-
    /// candidate replacement for [`LinearUtility::of_state`].
    pub(crate) fn utility_from_parts(
        &self,
        size: usize,
        lin: f64,
        avg_num: f64,
        mm_weighted: f64,
    ) -> f64 {
        debug_assert!(size > 0);
        let avg = if self.has_avg {
            avg_num / size as f64
        } else {
            0.0
        };
        lin + avg + mm_weighted
    }

    /// `Σ wz · fold(mm_j, τ_j)` — the `min`/`max` contribution of any package
    /// holding at least one τ-copy (saturated after the first copy): `max`
    /// terms fold upward against τ, `min` terms downward.  The single shared
    /// reduction behind [`FeaturePlan::improvable_bound`],
    /// [`FeaturePlan::empty_bound`] and the unfused test oracles.
    fn mm_packed(&self, cand_mm: &[f64], tau_mm: &[f64]) -> f64 {
        self.mm_terms
            .iter()
            .enumerate()
            .map(|(i, &(_, wz))| {
                let folded = if i < self.num_max {
                    cand_mm[i].max(tau_mm[i])
                } else {
                    cand_mm[i].min(tau_mm[i])
                };
                wz * folded
            })
            .sum()
    }

    /// `U(p ∪ c·{τ})` from precomputed scalars: candidate linear parts,
    /// `mm_packed = Σ wz · fold(mm_j, τ_j)` and the τ scalars.
    fn packed_value(
        &self,
        cand: &CandidateScalars<'_>,
        tau: &TauScalars,
        mm_packed: f64,
        c: usize,
    ) -> f64 {
        let c_f = c as f64;
        let avg = if self.has_avg {
            (cand.avg_num + c_f * tau.avg_num) / (cand.size + c) as f64
        } else {
            0.0
        };
        cand.lin + c_f * tau.lin + avg + mm_packed
    }

    /// Incremental `upper-exp` (Algorithm 3) over candidate scalars: `O(mm)`
    /// for the τ-fold plus `O(1)` per τ-copy, no allocation.  Matches
    /// [`upper_exp`] up to floating-point association.  The hot path uses the
    /// fused [`FeaturePlan::improvable_bound`]; this unfused form exists for
    /// the oracle tests below.
    #[cfg(test)]
    pub(crate) fn upper_exp(&self, cand: &CandidateScalars<'_>, tau: &TauScalars) -> f64 {
        if cand.size >= self.phi {
            return cand.utility;
        }
        let mm_packed = self.mm_packed(cand.mm, &tau.mm);
        if self.set_monotone {
            return self.packed_value(cand, tau, mm_packed, self.phi - cand.size);
        }
        let mut best = cand.utility;
        for c in 1..=(self.phi - cand.size) {
            let value = self.packed_value(cand, tau, mm_packed, c);
            if value > best {
                best = value;
            } else {
                return best;
            }
        }
        best
    }

    /// Incremental `can_improve` (the `U(p ∪ {τ}) > U(p)` test of
    /// Algorithm 4) over candidate scalars; unfused test-oracle counterpart
    /// of [`FeaturePlan::improvable_bound`].
    #[cfg(test)]
    pub(crate) fn can_improve(&self, cand: &CandidateScalars<'_>, tau: &TauScalars) -> bool {
        if cand.size >= self.phi {
            return false;
        }
        let mm_packed = self.mm_packed(cand.mm, &tau.mm);
        self.packed_value(cand, tau, mm_packed, 1) > cand.utility
    }

    /// The fused classification step of the Q+ sweep: `None` if the candidate
    /// can no longer improve under τ (it moves to Q−), otherwise its
    /// `upper-exp` bound.  Computes the `O(mm)` τ-fold once, where calling
    /// [`FeaturePlan::can_improve`] and [`FeaturePlan::upper_exp`] separately
    /// would compute it twice.
    pub(crate) fn improvable_bound(
        &self,
        cand: &CandidateScalars<'_>,
        tau: &TauScalars,
    ) -> Option<f64> {
        if cand.size >= self.phi {
            return None;
        }
        let mm_packed = self.mm_packed(cand.mm, &tau.mm);
        let first = self.packed_value(cand, tau, mm_packed, 1);
        if first <= cand.utility {
            return None;
        }
        if self.set_monotone {
            return Some(self.packed_value(cand, tau, mm_packed, self.phi - cand.size));
        }
        let mut best = first;
        for c in 2..=(self.phi - cand.size) {
            let value = self.packed_value(cand, tau, mm_packed, c);
            if value > best {
                best = value;
            } else {
                return Some(best);
            }
        }
        Some(best)
    }

    /// The bound of the *empty* package (`Σ` over τ-copies only): seeds ηup
    /// every access, covering packages assembled purely from unseen items.
    pub(crate) fn empty_bound(&self, tau: &TauScalars) -> f64 {
        // The empty package has utility 0 and min/max values that any τ-copy
        // replaces outright, so fold(mm, τ) = τ (folding τ against itself).
        let mm_packed = self.mm_packed(&tau.mm, &tau.mm);
        let empty = CandidateScalars {
            size: 0,
            utility: 0.0,
            lin: 0.0,
            avg_num: 0.0,
            mm: &[],
        };
        if self.set_monotone {
            return self.packed_value(&empty, tau, mm_packed, self.phi);
        }
        let mut best = 0.0;
        for c in 1..=self.phi {
            let value = self.packed_value(&empty, tau, mm_packed, c);
            if value > best {
                best = value;
            } else {
                return best;
            }
        }
        best
    }

    /// Refreshes the per-access τ scalars in place (`O(m)`, reusing buffers).
    pub(crate) fn prepare_tau(&self, tau_point: &[f64], out: &mut TauScalars) {
        let scalars = self.point_scalars(tau_point);
        out.lin = scalars.lin;
        out.avg_num = scalars.avg_num;
        out.mm.resize(self.mm_terms.len(), 0.0);
        self.write_mm_values(tau_point, &mut out.mm);
    }
}

/// Per-access scalar summary of the boundary vector τ, refreshed by
/// [`FeaturePlan::prepare_tau`] without allocating once warmed up.
#[derive(Debug, Clone, Default)]
pub(crate) struct TauScalars {
    /// `Σ_{sum} (w_j / Z_j) · τ_j` — the linear gain per τ-copy.
    pub lin: f64,
    /// `Σ_{avg} (w_j / Z_j) · τ_j` — the shared `avg` numerator gain.
    pub avg_num: f64,
    /// τ value per `min`/`max` term.
    pub mm: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Catalog;
    use crate::package::{enumerate_packages, Package};
    use crate::profile::{AggregateFn, AggregationContext, Profile};
    use crate::utility::LinearUtility;

    fn catalog() -> Catalog {
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.8, 0.9],
        ])
        .unwrap()
    }

    fn utility(profile: Profile, weights: Vec<f64>, phi: usize) -> LinearUtility {
        let ctx = AggregationContext::new(profile, &catalog(), phi).unwrap();
        LinearUtility::new(ctx, weights).unwrap()
    }

    #[test]
    fn set_monotone_bound_packs_to_full_size() {
        let u = utility(
            Profile::new(vec![AggregateFn::Sum, AggregateFn::Max]),
            vec![0.5, 0.5],
            3,
        );
        assert!(u.is_set_monotone());
        let state = PackageState::empty(2);
        let tau = [0.8, 0.9];
        let bound = upper_exp(&u, &state, &tau);
        // Packing three copies of τ: sum = 2.4 (normalised by top-3 sum = 1.8
        // -> capped by normaliser), max = 0.9 / 0.9 = 1.0.
        let mut packed = PackageState::empty(2);
        for _ in 0..3 {
            packed.add_item(&tau);
        }
        assert!((bound - u.of_state(&packed)).abs() < 1e-12);
    }

    #[test]
    fn non_monotone_bound_stops_at_non_positive_marginal() {
        // Average aggregate with positive weight: adding a τ identical to the
        // current average yields zero gain, so the bound stops early.
        let u = utility(Profile::all_avg(2), vec![1.0, 0.0], 4);
        assert!(!u.is_set_monotone());
        let mut state = PackageState::empty(2);
        state.add_item(&[0.8, 0.1]);
        let tau = [0.5, 0.5];
        let bound = upper_exp(&u, &state, &tau);
        // Adding τ (value 0.5 < current avg 0.8) can only lower the average,
        // so the bound equals the current utility.
        assert!((bound - u.of_state(&state)).abs() < 1e-12);
    }

    #[test]
    fn bound_dominates_every_reachable_package_built_from_dominated_items() {
        // Theorem 3: upper-exp bounds the utility of p extended with any items
        // dominated by τ.  Check exhaustively on a small instance.
        let cat = catalog();
        for weights in [
            vec![0.7, 0.3],
            vec![-0.4, 0.8],
            vec![0.5, -0.5],
            vec![-0.6, -0.2],
        ] {
            for profile in [
                Profile::new(vec![AggregateFn::Sum, AggregateFn::Avg]),
                Profile::new(vec![AggregateFn::Max, AggregateFn::Min]),
                Profile::all_sum(2),
            ] {
                let ctx = AggregationContext::new(profile, &cat, 3).unwrap();
                let u = LinearUtility::new(ctx, weights.clone()).unwrap();
                // τ dominates every item in the desirability direction of each
                // weight: take the per-feature best item value.
                let tau: Vec<f64> = (0..2)
                    .map(|j| {
                        let values = cat.rows().iter().map(|r| r[j]);
                        if weights[j] >= 0.0 {
                            values.fold(f64::NEG_INFINITY, f64::max)
                        } else {
                            values.fold(f64::INFINITY, f64::min)
                        }
                    })
                    .collect();
                let empty = PackageState::empty(2);
                let bound = upper_exp(&u, &empty, &tau);
                for package in enumerate_packages(cat.len(), 3) {
                    let state = u.context().state_of(&cat, package.items()).unwrap();
                    let value = u.of_state(&state);
                    assert!(
                        bound + 1e-9 >= value,
                        "bound {bound} < utility {value} of {package} under {weights:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_packages_cannot_improve() {
        let u = utility(Profile::all_sum(2), vec![1.0, 1.0], 2);
        let cat = catalog();
        let state = u
            .context()
            .state_of(&cat, Package::new(vec![0, 3]).unwrap().items())
            .unwrap();
        assert!(!can_improve(&u, &state, &[1.0, 1.0]));
        assert!((upper_exp(&u, &state, &[1.0, 1.0]) - u.of_state(&state)).abs() < 1e-12);
    }

    /// Evaluates a state through the incremental scalar machinery exactly the
    /// way the search does, so the tests exercise the same code path.
    fn scalars_of<'a>(
        plan: &FeaturePlan,
        u: &LinearUtility,
        state: &PackageState,
        items: &[&[f64]],
        mm_buf: &'a mut Vec<f64>,
    ) -> CandidateScalars<'a> {
        let mut lin = 0.0;
        let mut avg_num = 0.0;
        mm_buf.clear();
        mm_buf.resize(plan.mm_len(), 0.0);
        for (idx, item) in items.iter().enumerate() {
            let p = plan.point_scalars(item);
            lin += p.lin;
            avg_num += p.avg_num;
            let mut values = vec![0.0; plan.mm_len()];
            plan.write_mm_values(item, &mut values);
            if idx == 0 {
                mm_buf.copy_from_slice(&values);
            } else {
                let current = mm_buf.clone();
                plan.fold_mm_into(&current, &values, mm_buf);
            }
        }
        let utility = if items.is_empty() {
            0.0
        } else {
            plan.utility_from_parts(items.len(), lin, avg_num, plan.mm_weighted_sum(mm_buf))
        };
        assert!((utility - u.of_state(state)).abs() < 1e-9);
        CandidateScalars {
            size: items.len(),
            utility,
            lin,
            avg_num,
            mm: mm_buf,
        }
    }

    #[test]
    fn incremental_bound_matches_reference_across_profiles_and_states() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(2024);
        let aggregates = [
            AggregateFn::Sum,
            AggregateFn::Avg,
            AggregateFn::Max,
            AggregateFn::Min,
            AggregateFn::Null,
        ];
        for trial in 0..200 {
            let dim = rng.gen_range(1..5);
            let n = rng.gen_range(2..7);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let catalog = Catalog::from_rows(rows.clone()).unwrap();
            let profile = Profile::new(
                (0..dim)
                    .map(|_| aggregates[rng.gen_range(0..aggregates.len())])
                    .collect(),
            );
            let phi = rng.gen_range(1..5);
            let ctx = AggregationContext::new(profile, &catalog, phi).unwrap();
            let weights: Vec<f64> = (0..dim)
                .map(|_| {
                    if rng.gen_range(0..4) == 0 {
                        0.0
                    } else {
                        rng.gen_range(-1.0..1.0)
                    }
                })
                .collect();
            let u = LinearUtility::new(ctx, weights).unwrap();
            let plan = FeaturePlan::new(&u);
            let tau_point: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
            let mut tau = TauScalars::default();
            plan.prepare_tau(&tau_point, &mut tau);

            // The empty package plus every package prefix of random size.
            assert!(
                (plan.empty_bound(&tau) - upper_exp(&u, &PackageState::empty(dim), &tau_point))
                    .abs()
                    < 1e-9,
                "trial {trial}: empty bound diverges"
            );
            let size = rng.gen_range(1..=phi.min(n));
            let member_ids: Vec<usize> = (0..size).map(|_| rng.gen_range(0..n)).collect();
            let mut state = PackageState::empty(dim);
            let mut members: Vec<&[f64]> = Vec::new();
            for &id in &member_ids {
                state.add_item(catalog.item_unchecked(id));
                members.push(catalog.item_unchecked(id));
            }
            let mut mm_buf = Vec::new();
            let cand = scalars_of(&plan, &u, &state, &members, &mut mm_buf);
            let fast_bound = plan.upper_exp(&cand, &tau);
            let slow_bound = upper_exp(&u, &state, &tau_point);
            assert!(
                (fast_bound - slow_bound).abs() < 1e-9,
                "trial {trial}: bound {fast_bound} vs reference {slow_bound}"
            );
            assert_eq!(
                plan.can_improve(&cand, &tau),
                can_improve(&u, &state, &tau_point),
                "trial {trial}: can_improve diverges"
            );
            match plan.improvable_bound(&cand, &tau) {
                None => assert!(!plan.can_improve(&cand, &tau)),
                Some(bound) => {
                    assert!(plan.can_improve(&cand, &tau));
                    assert!(
                        (bound - fast_bound).abs() < 1e-12,
                        "trial {trial}: fused bound {bound} vs {fast_bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn can_improve_reflects_marginal_gain_sign() {
        let u = utility(Profile::cost_quality(), vec![-0.5, 0.5], 3);
        let cat = catalog();
        let state = u
            .context()
            .state_of(&cat, Package::new(vec![1]).unwrap().items())
            .unwrap();
        // A free, perfectly rated imaginary item improves the package.
        assert!(can_improve(&u, &state, &[0.0, 0.9]));
        // An expensive, poorly rated one does not.
        assert!(!can_improve(&u, &state, &[0.9, 0.0]));
    }
}
