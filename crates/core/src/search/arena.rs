//! Slab arena for the candidate packages grown by `Top-k-Pkg`.
//!
//! The expansion phase of Algorithm 4 creates a candidate per utility-
//! improving extension.  Storing each candidate as an owned item vector plus a
//! cloned aggregation state (the pre-arena representation, preserved in
//! [`super::reference`]) makes every extension an `O(φ + m)` allocation; the
//! arena instead stores candidates in struct-of-arrays form with
//! *parent-pointer item chains*:
//!
//! * a candidate is `(parent, item)` — its item set is the chain walked
//!   through [`CandidateArena::collect_items`], materialised only when a
//!   candidate actually enters the top-k heap;
//! * its aggregation state is three cached scalars (`utility`, the
//!   `sum`-feature dot `lin`, the shared `avg` numerator `avg_num`) plus one
//!   slot per `min`/`max` term — the exact inputs of
//!   [`FeaturePlan`](super::bounds::FeaturePlan)'s incremental bound — all
//!   updated by an add-item delta from the parent's row, never by cloning.
//!
//! Chains keep every ancestor alive, so the arena would grow monotonically
//! while the search prunes its expandable set; [`CandidateArena::compact`] is
//! a mark-compact collector over the live roots (the current `Q+`) that the
//! search invokes once the arena outgrows the live set by a constant factor,
//! keeping memory proportional to `|Q+| · φ` like the pre-arena path.

use crate::item::ItemId;

use super::bounds::{CandidateScalars, FeaturePlan, PointScalars};

/// Sentinel parent id of singleton candidates (chain roots).
const NO_PARENT: u32 = u32::MAX;

/// Struct-of-arrays slab of candidate packages (see the module docs).
#[derive(Debug)]
pub(crate) struct CandidateArena {
    /// Number of `min`/`max` slots each candidate carries.
    mm_stride: usize,
    parent: Vec<u32>,
    item: Vec<ItemId>,
    size: Vec<u32>,
    utility: Vec<f64>,
    lin: Vec<f64>,
    avg_num: Vec<f64>,
    /// `min`/`max` aggregate values, `mm_stride` per candidate.
    mm: Vec<f64>,
}

impl CandidateArena {
    /// An empty arena whose candidates carry `mm_stride` min/max slots.
    pub(crate) fn new(mm_stride: usize) -> Self {
        CandidateArena {
            mm_stride,
            parent: Vec::new(),
            item: Vec::new(),
            size: Vec::new(),
            utility: Vec::new(),
            lin: Vec::new(),
            avg_num: Vec::new(),
            mm: Vec::new(),
        }
    }

    /// Number of candidates currently stored (live and dead).
    pub(crate) fn len(&self) -> usize {
        self.parent.len()
    }

    /// Empties the arena for a new search while keeping every column's
    /// allocation, re-shaping it for `mm_stride` min/max slots per candidate.
    /// A reset arena behaves exactly like `CandidateArena::new(mm_stride)` —
    /// this is what lets one worker-owned arena serve a whole chunk of
    /// per-sample searches without reallocating per sample.
    pub(crate) fn reset(&mut self, mm_stride: usize) {
        self.mm_stride = mm_stride;
        self.parent.clear();
        self.item.clear();
        self.size.clear();
        self.utility.clear();
        self.lin.clear();
        self.avg_num.clear();
        self.mm.clear();
    }

    /// The cached utility `U(p)` of a candidate.
    pub(crate) fn utility(&self, id: u32) -> f64 {
        self.utility[id as usize]
    }

    /// Number of items in a candidate's package.
    pub(crate) fn size(&self, id: u32) -> usize {
        self.size[id as usize] as usize
    }

    /// The candidate's scalars in the shape the incremental bound consumes.
    pub(crate) fn scalars(&self, id: u32) -> CandidateScalars<'_> {
        let i = id as usize;
        CandidateScalars {
            size: self.size[i] as usize,
            utility: self.utility[i],
            lin: self.lin[i],
            avg_num: self.avg_num[i],
            mm: &self.mm[i * self.mm_stride..(i + 1) * self.mm_stride],
        }
    }

    #[allow(clippy::too_many_arguments)] // one slot per SoA column
    fn push_node(
        &mut self,
        parent: u32,
        item: ItemId,
        size: u32,
        utility: f64,
        lin: f64,
        avg_num: f64,
        mm_values: &[f64],
    ) -> u32 {
        debug_assert_eq!(mm_values.len(), self.mm_stride);
        let id = self.parent.len();
        assert!(
            id < NO_PARENT as usize,
            "candidate arena id space exhausted"
        );
        self.parent.push(parent);
        self.item.push(item);
        self.size.push(size);
        self.utility.push(utility);
        self.lin.push(lin);
        self.avg_num.push(avg_num);
        self.mm.extend_from_slice(mm_values);
        id as u32
    }

    /// Seeds the singleton candidate `{item}` (Algorithm 4 seeds one per
    /// sorted access) and returns its id.
    pub(crate) fn push_singleton(
        &mut self,
        plan: &FeaturePlan,
        item: ItemId,
        scalars: PointScalars,
        mm_values: &[f64],
    ) -> u32 {
        let utility = plan.utility_from_parts(
            1,
            scalars.lin,
            scalars.avg_num,
            plan.mm_weighted_sum(mm_values),
        );
        self.push_node(
            NO_PARENT,
            item,
            1,
            utility,
            scalars.lin,
            scalars.avg_num,
            mm_values,
        )
    }

    /// Attempts the utility-improving extension `parent ∪ {item}`: evaluates
    /// the extension by delta from the parent's cached scalars (no clone, no
    /// allocation beyond amortised slab growth) and stores it only if it
    /// strictly improves on the parent.  `scratch_mm` is a reusable buffer of
    /// length `mm_stride`.
    pub(crate) fn try_extend(
        &mut self,
        plan: &FeaturePlan,
        parent: u32,
        item: ItemId,
        item_scalars: PointScalars,
        item_mm: &[f64],
        scratch_mm: &mut [f64],
    ) -> Option<u32> {
        let p = parent as usize;
        let lin = self.lin[p] + item_scalars.lin;
        let avg_num = self.avg_num[p] + item_scalars.avg_num;
        let size = self.size[p] + 1;
        let parent_mm = &self.mm[p * self.mm_stride..(p + 1) * self.mm_stride];
        let mm_weighted = plan.fold_mm_into(parent_mm, item_mm, scratch_mm);
        let utility = plan.utility_from_parts(size as usize, lin, avg_num, mm_weighted);
        if utility > self.utility[p] {
            Some(self.push_node(parent, item, size, utility, lin, avg_num, scratch_mm))
        } else {
            None
        }
    }

    /// Materialises a candidate's item set (sorted ascending) into `out` by
    /// walking its parent chain — the only place item vectors exist.
    pub(crate) fn collect_items(&self, id: u32, out: &mut Vec<ItemId>) {
        out.clear();
        let mut node = id;
        loop {
            out.push(self.item[node as usize]);
            node = self.parent[node as usize];
            if node == NO_PARENT {
                break;
            }
        }
        out.sort_unstable();
    }

    /// Mark-compact garbage collection: keeps exactly the candidates reachable
    /// from `roots` through parent chains, rewrites `roots` to the new ids and
    /// drops everything else.  `O(arena)` time, invoked by the search only
    /// after the arena outgrows the live set, so the amortised cost per
    /// created candidate is constant.
    pub(crate) fn compact(&mut self, roots: &mut [u32]) {
        let len = self.len();
        let mut live = vec![false; len];
        for &root in roots.iter() {
            let mut node = root;
            // Stop climbing at the first already-marked ancestor: each chain
            // segment is visited once overall.
            while !live[node as usize] {
                live[node as usize] = true;
                let parent = self.parent[node as usize];
                if parent == NO_PARENT {
                    break;
                }
                node = parent;
            }
        }
        // Ascending-id sweep preserves the parent < child invariant.
        let mut remap = vec![NO_PARENT; len];
        let mut kept = 0usize;
        for old in 0..len {
            if !live[old] {
                continue;
            }
            remap[old] = kept as u32;
            let parent = self.parent[old];
            self.parent[kept] = if parent == NO_PARENT {
                NO_PARENT
            } else {
                debug_assert_ne!(
                    remap[parent as usize], NO_PARENT,
                    "dead parent of live node"
                );
                remap[parent as usize]
            };
            self.item[kept] = self.item[old];
            self.size[kept] = self.size[old];
            self.utility[kept] = self.utility[old];
            self.lin[kept] = self.lin[old];
            self.avg_num[kept] = self.avg_num[old];
            self.mm.copy_within(
                old * self.mm_stride..(old + 1) * self.mm_stride,
                kept * self.mm_stride,
            );
            kept += 1;
        }
        self.parent.truncate(kept);
        self.item.truncate(kept);
        self.size.truncate(kept);
        self.utility.truncate(kept);
        self.lin.truncate(kept);
        self.avg_num.truncate(kept);
        self.mm.truncate(kept * self.mm_stride);
        for root in roots.iter_mut() {
            debug_assert_ne!(remap[*root as usize], NO_PARENT, "root collected");
            *root = remap[*root as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Catalog;
    use crate::profile::{AggregateFn, AggregationContext, Profile};
    use crate::utility::LinearUtility;

    fn plan_over(profile: Profile, weights: Vec<f64>, phi: usize) -> (Catalog, FeaturePlan) {
        let catalog = Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.8, 0.9],
        ])
        .unwrap();
        let ctx = AggregationContext::new(profile, &catalog, phi).unwrap();
        let u = LinearUtility::new(ctx, weights).unwrap();
        (catalog, FeaturePlan::new(&u))
    }

    fn seed(arena: &mut CandidateArena, plan: &FeaturePlan, catalog: &Catalog, item: usize) -> u32 {
        let features = catalog.item_unchecked(item);
        let mut mm = vec![0.0; plan.mm_len()];
        plan.write_mm_values(features, &mut mm);
        arena.push_singleton(plan, item, plan.point_scalars(features), &mm)
    }

    fn extend(
        arena: &mut CandidateArena,
        plan: &FeaturePlan,
        catalog: &Catalog,
        parent: u32,
        item: usize,
    ) -> Option<u32> {
        let features = catalog.item_unchecked(item);
        let mut mm = vec![0.0; plan.mm_len()];
        plan.write_mm_values(features, &mut mm);
        let mut scratch = vec![0.0; plan.mm_len()];
        arena.try_extend(
            plan,
            parent,
            item,
            plan.point_scalars(features),
            &mm,
            &mut scratch,
        )
    }

    #[test]
    fn chains_materialise_sorted_item_sets() {
        let (catalog, plan) = plan_over(
            Profile::new(vec![AggregateFn::Sum, AggregateFn::Max]),
            vec![0.5, 0.5],
            3,
        );
        let mut arena = CandidateArena::new(plan.mm_len());
        let a = seed(&mut arena, &plan, &catalog, 2);
        let b = extend(&mut arena, &plan, &catalog, a, 0).expect("sum/max extension improves");
        let c = extend(&mut arena, &plan, &catalog, b, 1).expect("sum/max extension improves");
        let mut items = Vec::new();
        arena.collect_items(c, &mut items);
        assert_eq!(items, vec![0, 1, 2]);
        arena.collect_items(a, &mut items);
        assert_eq!(items, vec![2]);
        assert_eq!(arena.size(c), 3);
        assert!(arena.utility(c) > arena.utility(b));
    }

    #[test]
    fn extension_utilities_match_the_package_state_path() {
        let catalog = Catalog::from_rows(vec![
            vec![0.6, 0.2, 0.9],
            vec![0.4, 0.4, 0.1],
            vec![0.2, 0.4, 0.5],
        ])
        .unwrap();
        let profile = Profile::new(vec![AggregateFn::Sum, AggregateFn::Avg, AggregateFn::Min]);
        let ctx = AggregationContext::new(profile, &catalog, 3).unwrap();
        let u = LinearUtility::new(ctx, vec![0.7, 0.4, -0.6]).unwrap();
        let plan = FeaturePlan::new(&u);
        let mut arena = CandidateArena::new(plan.mm_len());
        let a = seed(&mut arena, &plan, &catalog, 0);
        let state = u.context().state_of(&catalog, &[0]).unwrap();
        assert!((arena.utility(a) - u.of_state(&state)).abs() < 1e-12);
        if let Some(b) = extend(&mut arena, &plan, &catalog, a, 2) {
            let state = u.context().state_of(&catalog, &[0, 2]).unwrap();
            assert!((arena.utility(b) - u.of_state(&state)).abs() < 1e-12);
        }
    }

    #[test]
    fn non_improving_extensions_are_rejected() {
        // Pure-avg profile with positive weight: adding a worse item lowers
        // the average, so the extension must be refused.
        let (catalog, plan) = plan_over(Profile::all_avg(2), vec![1.0, 1.0], 3);
        let mut arena = CandidateArena::new(plan.mm_len());
        let best = seed(&mut arena, &plan, &catalog, 3); // (0.8, 0.9)
        assert!(extend(&mut arena, &plan, &catalog, best, 2).is_none()); // (0.2, 0.4)
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn compaction_keeps_roots_and_ancestors_only() {
        let (catalog, plan) = plan_over(
            Profile::new(vec![AggregateFn::Sum, AggregateFn::Sum]),
            vec![0.5, 0.5],
            4,
        );
        let mut arena = CandidateArena::new(plan.mm_len());
        let a = seed(&mut arena, &plan, &catalog, 0);
        let _dead = seed(&mut arena, &plan, &catalog, 1);
        let b = extend(&mut arena, &plan, &catalog, a, 2).unwrap();
        let _dead2 = extend(&mut arena, &plan, &catalog, a, 1).unwrap();
        let c = extend(&mut arena, &plan, &catalog, b, 3).unwrap();
        let utility_before = arena.utility(c);
        let mut items_before = Vec::new();
        arena.collect_items(c, &mut items_before);

        let mut roots = [c];
        arena.compact(&mut roots);
        // Live set: c and its ancestors b and a.
        assert_eq!(arena.len(), 3);
        let mut items_after = Vec::new();
        arena.collect_items(roots[0], &mut items_after);
        assert_eq!(items_before, items_after);
        assert_eq!(arena.utility(roots[0]), utility_before);
        // Compaction is idempotent on an already-compact arena.
        arena.compact(&mut roots);
        assert_eq!(arena.len(), 3);
    }

    #[test]
    fn compaction_with_shared_ancestors_and_multiple_roots() {
        let (catalog, plan) = plan_over(
            Profile::new(vec![AggregateFn::Sum, AggregateFn::Sum]),
            vec![0.9, 0.1],
            4,
        );
        let mut arena = CandidateArena::new(plan.mm_len());
        let a = seed(&mut arena, &plan, &catalog, 0);
        let b = extend(&mut arena, &plan, &catalog, a, 1).unwrap();
        let c = extend(&mut arena, &plan, &catalog, a, 2).unwrap();
        let mut expectations = Vec::new();
        for &root in &[b, c] {
            let mut items = Vec::new();
            arena.collect_items(root, &mut items);
            expectations.push((items, arena.utility(root)));
        }
        let mut roots = [b, c];
        arena.compact(&mut roots);
        assert_eq!(arena.len(), 3); // a is shared, stored once
        for (root, (items, utility)) in roots.iter().zip(expectations.iter()) {
            let mut got = Vec::new();
            arena.collect_items(*root, &mut got);
            assert_eq!(&got, items);
            assert_eq!(arena.utility(*root), *utility);
        }
    }
}
