//! Top-k package search for a fixed weight vector (Section 4, Algorithms 2–4).
//!
//! `Top-k-Pkg` sorts the items into one list per (weighted, non-null) feature,
//! accesses those lists round-robin in the utility-preferred direction, and
//! grows candidate packages by *utility-improving expansion*: each newly
//! accessed item is added to every expandable candidate it improves.  The set
//! `Q+` of expandable candidates is re-classified after every access against
//! the boundary vector `τ`, and the scan stops as soon as the largest
//! optimistic bound `ηup` of any expandable candidate (or of the empty
//! package) no longer beats the utility `ηlo` of the k-th best package found
//! (Algorithm 2 line 8).
//!
//! # Hot-path design
//!
//! This is the innermost loop of every elicitation round (one search per
//! weight sample per round), so the implementation is built around three
//! allocation-free structures:
//!
//! * **Shared sorted lists** — per-feature item order is weight-independent;
//!   only the scan *direction* and the set of active features vary per weight
//!   vector.  [`top_k_packages_with_lists`] therefore takes a prebuilt
//!   [`SortedLists`] index that the engine builds once per catalog and reuses
//!   across every sample and round; [`top_k_packages`] builds a fresh index
//!   for one-shot callers.
//! * **Arena candidates** — candidates live in a struct-of-arrays slab with
//!   parent-pointer item chains (`arena` module): an extension stores
//!   `(parent, item)` plus a handful of incrementally-updated scalars instead
//!   of cloning an item vector and an aggregation state.  Item vectors are
//!   materialised only when a candidate actually enters the top-k heap, and a
//!   mark-compact pass keeps the slab proportional to `|Q+| · φ`.
//! * **Incremental bounds** — the per-access re-classification evaluates
//!   `can-improve` and `upper-exp` through the closed-form τ-packing of
//!   `bounds::FeaturePlan`: `O(m)` preparation per access, then `O(1)` per
//!   candidate plus one term per `min`/`max` aggregate.  The termination
//!   value `ηup` is the running maximum of those bounds, maintained by the
//!   same sweep that re-classifies `Q+` for expansion.
//!
//! The pre-arena implementation (cloned candidates, state-cloning bounds,
//! sorted-key dedup map) is preserved verbatim in [`reference`](mod@reference) as the
//! executable specification: the `search_equivalence` integration suite
//! checks the two paths return identical packages and utilities (statistics
//! track each other up to floating-point ties at the ηlo pruning boundary),
//! and the `fig_pkgsearch` benchmark races them.

pub mod bounds;
pub mod exhaustive;
pub mod reference;

mod arena;

pub use bounds::{can_improve, upper_exp};
pub use exhaustive::top_k_packages_exhaustive;
pub use reference::top_k_packages_reference;

use pkgrec_topk::{RoundRobinCursor, SortedLists, TopKHeap};
use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::item::{Catalog, ItemId};
use crate::package::Package;
use crate::profile::AggregateFn;
use crate::utility::LinearUtility;

use arena::CandidateArena;
use bounds::{FeaturePlan, TauScalars};

/// Statistics of one `Top-k-Pkg` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of sorted accesses performed before the scan stopped.
    pub sorted_accesses: usize,
    /// Number of distinct items accessed.
    pub items_accessed: usize,
    /// Number of candidate packages created during expansion.
    pub candidates_created: usize,
    /// Whether the bound `ηup ≤ ηlo` closed the scan before the lists were
    /// exhausted.
    pub terminated_early: bool,
}

/// Running totals over many [`SearchStats`]: the per-session counters the
/// engine aggregates across every per-sample search, surfaced through
/// [`RecommenderState`](crate::recommender::RecommenderState) and
/// [`ElicitationReport`](crate::elicitation::ElicitationReport) so
/// performance work has a baseline to compare against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregatedSearchStats {
    /// Number of `Top-k-Pkg` runs aggregated.
    pub searches: usize,
    /// Total sorted accesses across all runs.
    pub sorted_accesses: usize,
    /// Total distinct items accessed across all runs.
    pub items_accessed: usize,
    /// Total candidate packages created across all runs.
    pub candidates_created: usize,
    /// Number of runs that terminated on the bound test before exhausting the
    /// lists.
    pub early_terminations: usize,
}

impl AggregatedSearchStats {
    /// Folds one run's statistics into the totals.
    pub fn record(&mut self, stats: &SearchStats) {
        self.searches += 1;
        self.sorted_accesses += stats.sorted_accesses;
        self.items_accessed += stats.items_accessed;
        self.candidates_created += stats.candidates_created;
        if stats.terminated_early {
            self.early_terminations += 1;
        }
    }

    /// Merges another aggregate into this one (used to join per-thread
    /// accumulators).
    pub fn merge(&mut self, other: &AggregatedSearchStats) {
        self.searches += other.searches;
        self.sorted_accesses += other.sorted_accesses;
        self.items_accessed += other.items_accessed;
        self.candidates_created += other.candidates_created;
        self.early_terminations += other.early_terminations;
    }

    /// The totals accumulated since `baseline` was captured (saturating, so a
    /// reset between captures degrades gracefully to the current totals).
    pub fn delta_since(&self, baseline: &AggregatedSearchStats) -> AggregatedSearchStats {
        AggregatedSearchStats {
            searches: self.searches.saturating_sub(baseline.searches),
            sorted_accesses: self
                .sorted_accesses
                .saturating_sub(baseline.sorted_accesses),
            items_accessed: self.items_accessed.saturating_sub(baseline.items_accessed),
            candidates_created: self
                .candidates_created
                .saturating_sub(baseline.candidates_created),
            early_terminations: self
                .early_terminations
                .saturating_sub(baseline.early_terminations),
        }
    }

    /// Fraction of runs that terminated early (0 when nothing was recorded).
    pub fn early_termination_rate(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.early_terminations as f64 / self.searches as f64
        }
    }
}

/// Result of a `Top-k-Pkg` run: the packages (best first, with utilities) and
/// the run statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// `(package, utility)` pairs ordered best-first.
    pub packages: Vec<(Package, f64)>,
    /// Run statistics.
    pub stats: SearchStats,
}

impl SearchResult {
    /// Borrows the packages, best first, without cloning — for callers that
    /// only read.
    pub fn iter_packages(&self) -> impl Iterator<Item = &Package> + '_ {
        self.packages.iter().map(|(p, _)| p)
    }

    /// Consumes the result into its packages, best first, dropping the
    /// utilities without cloning any package.
    pub fn into_packages(self) -> Vec<Package> {
        self.packages.into_iter().map(|(p, _)| p).collect()
    }

    /// The packages without their scores, cloned; prefer
    /// [`SearchResult::iter_packages`] (read-only) or
    /// [`SearchResult::into_packages`] (owned) where they fit.
    pub fn packages_only(&self) -> Vec<Package> {
        self.packages.iter().map(|(p, _)| p.clone()).collect()
    }
}

/// Engineering safeguard on the size of the expandable candidate set `Q+`.
///
/// The paper's expansion phase keeps every utility-improving candidate; on
/// large catalogs with slowly closing bounds that set can grow combinatorially
/// before the `ηup ≤ ηlo` test fires.  Candidates whose optimistic bound
/// cannot beat the current `ηlo` are dropped (sound), and if `Q+` still
/// exceeds this cap only the candidates with the largest optimistic bounds are
/// kept (a beam restriction).
pub(crate) const MAX_EXPANDABLE_CANDIDATES: usize = 20_000;

/// Arena sizes below this are never compacted (compaction bookkeeping would
/// dominate on small scans).
const COMPACT_FLOOR: usize = 4_096;

/// Compaction triggers when the arena holds this many times more nodes than
/// the worst-case live set `|Q+| · φ`; the factor keeps the amortised
/// collection cost per created candidate constant.
const COMPACT_SLACK: usize = 8;

/// Reusable working memory for one `Top-k-Pkg` run: the candidate arena plus
/// every per-access buffer the scan touches.
///
/// One search allocates all of this from scratch; a loop that runs one search
/// per weight sample per round (the engine's ranking step) instead keeps a
/// `SearchScratch` per worker thread and passes it to
/// [`top_k_packages_with_scratch`], so after the first search of a chunk the
/// inner loop allocates nothing.  The scratch carries no state between
/// searches — every buffer is cleared or overwritten on entry — so results
/// are bit-identical to the fresh-allocation path.
#[derive(Debug, Default)]
pub struct SearchScratch {
    arena: Option<CandidateArena>,
    q_plus: Vec<u32>,
    next_q_plus: Vec<(u32, f64)>,
    seen: Vec<bool>,
    tau_point: Vec<f64>,
    item_mm: Vec<f64>,
    scratch_mm: Vec<f64>,
    items_buf: Vec<ItemId>,
}

impl SearchScratch {
    /// An empty scratch; buffers grow to the working-set size of the first
    /// search and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The `Top-k-Pkg` algorithm (Algorithm 2): returns the top-k packages for a
/// fixed utility function over the catalog, where package size ranges from 1
/// to the context's maximum package size φ.
///
/// Builds the per-feature sorted lists for this one call; loops that search
/// the same catalog repeatedly (one search per weight sample per round)
/// should build the index once and call [`top_k_packages_with_lists`].
pub fn top_k_packages(
    utility: &LinearUtility,
    catalog: &Catalog,
    k: usize,
) -> Result<SearchResult> {
    let lists = SortedLists::new(catalog.rows());
    top_k_packages_with_lists(utility, catalog, &lists, k)
}

/// [`top_k_packages`] over a prebuilt [`SortedLists`] index of the catalog.
///
/// The index is weight-independent (construction sorts each feature column
/// once), so one index serves every weight vector: the engine caches it per
/// catalog and reuses it across all samples and rounds.
///
/// # Panics
/// In debug builds, panics if the index does not match the catalog's shape.
pub fn top_k_packages_with_lists(
    utility: &LinearUtility,
    catalog: &Catalog,
    lists: &SortedLists,
    k: usize,
) -> Result<SearchResult> {
    let mut scratch = SearchScratch::new();
    top_k_packages_with_scratch(utility, catalog, lists, k, &mut scratch)
}

/// [`top_k_packages_with_lists`] with caller-owned working memory: the
/// allocation-free form for loops that search once per weight sample.  The
/// scratch is reset on entry, so any `SearchScratch` (fresh or reused) yields
/// results bit-identical to [`top_k_packages_with_lists`].
pub fn top_k_packages_with_scratch(
    utility: &LinearUtility,
    catalog: &Catalog,
    lists: &SortedLists,
    k: usize,
    scratch: &mut SearchScratch,
) -> Result<SearchResult> {
    let dim = utility.dim();
    debug_assert_eq!(lists.dim(), dim, "index dimensionality matches catalog");
    debug_assert_eq!(lists.len(), catalog.len(), "index length matches catalog");
    if k == 0 {
        return Ok(SearchResult {
            packages: Vec::new(),
            stats: SearchStats {
                sorted_accesses: 0,
                items_accessed: 0,
                candidates_created: 0,
                terminated_early: false,
            },
        });
    }
    let phi = utility.max_package_size();
    let plan = FeaturePlan::new(utility);
    // Effective query: the per-feature access direction follows the weight
    // sign; features with zero weight or a null aggregate contribute nothing
    // and are skipped by the round-robin cursor.
    let effective_query: Vec<f64> = (0..dim)
        .map(|j| {
            if utility.context().profile().aggregate(j) == AggregateFn::Null {
                0.0
            } else {
                utility.weights()[j]
            }
        })
        .collect();
    let mut cursor = RoundRobinCursor::for_query(lists, &effective_query);

    // Split the scratch into disjoint field borrows and restore every buffer
    // to its fresh-allocation state (the contents never survive between
    // searches, only the capacity does).
    let SearchScratch {
        arena: arena_slot,
        q_plus,
        next_q_plus,
        seen,
        tau_point,
        item_mm,
        scratch_mm,
        items_buf,
    } = scratch;
    let arena = arena_slot.get_or_insert_with(|| CandidateArena::new(plan.mm_len()));
    arena.reset(plan.mm_len());
    q_plus.clear();
    next_q_plus.clear();
    let mut best: TopKHeap<Vec<ItemId>> = TopKHeap::new(k);
    seen.clear();
    seen.resize(catalog.len(), false);
    let mut items_accessed = 0usize;
    let mut candidates_created = 0usize;
    let mut terminated_early = false;
    // Reusable per-access buffers: the loop allocates nothing once warm.
    tau_point.clear();
    tau_point.resize(dim, 0.0);
    let mut tau = TauScalars::default();
    item_mm.clear();
    item_mm.resize(plan.mm_len(), 0.0);
    scratch_mm.clear();
    scratch_mm.resize(plan.mm_len(), 0.0);

    // Offers a newly created candidate to the top-k heap, materialising its
    // item vector only if it would actually be retained (created candidate
    // sets are unique — each contains the newest item — so no dedup map is
    // needed).
    fn record(
        best: &mut TopKHeap<Vec<ItemId>>,
        arena: &CandidateArena,
        node: u32,
        items_buf: &mut Vec<ItemId>,
    ) {
        let utility = arena.utility(node);
        // `>=` rather than `would_accept`'s `>`: an equal score can still
        // evict on the heap's lexicographically-smaller-item-set tie-break,
        // exactly as the reference path's unconditional push does.
        let accept = !best.is_full() || best.threshold().map(|t| utility >= t).unwrap_or(true);
        if accept {
            arena.collect_items(node, items_buf);
            best.push(items_buf.clone(), utility);
        }
    }

    while let Some(access) = cursor.next_access() {
        if seen[access.id] {
            continue;
        }
        seen[access.id] = true;
        items_accessed += 1;
        let features = catalog.item_unchecked(access.id);
        cursor.write_boundary(tau_point);
        plan.prepare_tau(tau_point, &mut tau);
        let item_scalars = plan.point_scalars(features);
        plan.write_mm_values(features, item_mm);

        // Expansion phase (Algorithm 4): seed a singleton candidate for the
        // newly accessed item (seeding every singleton — rather than only
        // utility-improving ones — guarantees that packages whose first item
        // is individually unattractive can still be assembled), then try to
        // extend every expandable candidate with it.
        let first_new = arena.len() as u32;
        let singleton = arena.push_singleton(&plan, access.id, item_scalars, item_mm);
        candidates_created += 1;
        record(&mut best, arena, singleton, items_buf);
        for &node in q_plus.iter() {
            if arena.size(node) < phi {
                if let Some(extended) =
                    arena.try_extend(&plan, node, access.id, item_scalars, item_mm, scratch_mm)
                {
                    candidates_created += 1;
                    record(&mut best, arena, extended, items_buf);
                }
            }
        }

        // Re-classification sweep against the updated τ: every surviving or
        // new candidate either stays expandable (carrying its fresh bound) or
        // closes into Q−; ηup is the running maximum of the fresh bounds,
        // seeded by the empty-package bound so packages assembled purely from
        // unseen items are always covered.
        let mut eta_up = plan.empty_bound(&tau);
        next_q_plus.clear();
        for node in q_plus.iter().copied().chain(first_new..arena.len() as u32) {
            if let Some(bound) = plan.improvable_bound(&arena.scalars(node), &tau) {
                if bound > eta_up {
                    eta_up = bound;
                }
                next_q_plus.push((node, bound));
            }
        }

        // Termination test (Algorithm 2 line 8): ηlo is the utility of the
        // k-th best package found so far, or 0 while fewer than k exist.
        let eta_lo = if best.is_full() {
            best.threshold().unwrap_or(0.0)
        } else {
            0.0
        };
        // Candidates whose optimistic bound cannot beat ηlo are closed: no
        // extension of them (with items dominated by τ) can enter the top-k.
        if best.is_full() {
            next_q_plus.retain(|&(_, bound)| bound > eta_lo);
        }
        // Beam safeguard against combinatorial growth of Q+ (stable sort, so
        // equal bounds keep their discovery order).
        if next_q_plus.len() > MAX_EXPANDABLE_CANDIDATES {
            next_q_plus.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            next_q_plus.truncate(MAX_EXPANDABLE_CANDIDATES);
        }
        q_plus.clear();
        q_plus.extend(next_q_plus.iter().map(|&(node, _)| node));

        if eta_up <= eta_lo {
            terminated_early = true;
            break;
        }

        // Chains pin ancestors, so the arena only grows; compact it once the
        // dead fraction dominates the worst-case live set |Q+| · φ.
        let live_upper = q_plus.len() * phi + 1;
        if arena.len() > COMPACT_FLOOR && arena.len() > COMPACT_SLACK * live_upper {
            arena.compact(q_plus);
        }
    }

    let packages = best
        .into_sorted()
        .into_iter()
        .map(|(items, score)| {
            (
                Package::new(items).expect("candidates are non-empty"),
                score,
            )
        })
        .collect();
    Ok(SearchResult {
        packages,
        stats: SearchStats {
            sorted_accesses: cursor.accesses(),
            items_accessed,
            candidates_created,
            terminated_early,
        },
    })
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{AggregationContext, Profile};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn figure1_setup(weights: Vec<f64>) -> (Catalog, LinearUtility) {
        let catalog = Catalog::new(
            vec!["cost".into(), "rating".into()],
            vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.2, 0.4]],
        )
        .unwrap();
        let ctx = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
        let u = LinearUtility::new(ctx, weights).unwrap();
        (catalog, u)
    }

    #[test]
    fn reproduces_figure2_top2_lists() {
        // Figure 2(d): the top-2 packages under each of the three weight
        // vectors of the running example.
        let cases = [
            (vec![0.5, 0.1], vec![vec![0, 1], vec![0, 2]]), // p4, p6
            (vec![0.1, 0.5], vec![vec![1, 2], vec![1]]),    // p5, p2
            (vec![0.1, 0.1], vec![vec![0, 1], vec![1, 2]]), // p4, p5
        ];
        for (weights, expected) in cases {
            let (catalog, u) = figure1_setup(weights.clone());
            let result = top_k_packages(&u, &catalog, 2).unwrap();
            let got: Vec<Vec<usize>> = result
                .packages
                .iter()
                .map(|(p, _)| p.items().to_vec())
                .collect();
            assert_eq!(got, expected, "weights {weights:?}");
        }
    }

    #[test]
    fn agrees_with_exhaustive_search_on_set_monotone_utilities() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..20 {
            let n = rng.gen_range(5..12);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let catalog = Catalog::from_rows(rows).unwrap();
            let profile = Profile::new(vec![AggregateFn::Sum, AggregateFn::Max, AggregateFn::Min]);
            let phi = rng.gen_range(1..4);
            let ctx = AggregationContext::new(profile, &catalog, phi).unwrap();
            // Weight signs chosen to keep the utility set-monotone.
            let weights = vec![
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                -rng.gen_range(0.0..1.0),
            ];
            let u = LinearUtility::new(ctx, weights).unwrap();
            assert!(u.is_set_monotone());
            let k = 4;
            let fast = top_k_packages(&u, &catalog, k).unwrap();
            let slow = top_k_packages_exhaustive(&u, &catalog, k).unwrap();
            let fast_scores: Vec<f64> = fast.packages.iter().map(|(_, s)| *s).collect();
            let slow_scores: Vec<f64> = slow.iter().map(|(_, s)| *s).collect();
            for (f, s) in fast_scores.iter().zip(slow_scores.iter()) {
                assert!(
                    (f - s).abs() < 1e-9,
                    "trial {trial}: utilities diverge: {fast_scores:?} vs {slow_scores:?}"
                );
            }
        }
    }

    #[test]
    fn never_returns_a_package_better_than_the_exhaustive_optimum() {
        let mut rng = StdRng::seed_from_u64(88);
        for _ in 0..20 {
            let n = rng.gen_range(5..10);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..2).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let catalog = Catalog::from_rows(rows).unwrap();
            let ctx = AggregationContext::new(Profile::cost_quality(), &catalog, 3).unwrap();
            let weights = vec![-rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            let u = LinearUtility::new(ctx, weights).unwrap();
            let fast = top_k_packages(&u, &catalog, 3).unwrap();
            let slow = top_k_packages_exhaustive(&u, &catalog, 3).unwrap();
            // Reported utilities are genuine (recomputation matches) and never
            // exceed the true optimum.
            for (package, score) in &fast.packages {
                let recomputed = u.of_package(&catalog, package).unwrap();
                assert!((recomputed - score).abs() < 1e-9);
                assert!(*score <= slow[0].1 + 1e-9);
            }
            // The cost/quality profile of the introduction is one of the cases
            // where the greedy expansion provably finds the best package: the
            // top-1 utilities must agree.
            assert!(
                (fast.packages[0].1 - slow[0].1).abs() < 1e-9,
                "top-1 mismatch: {} vs {}",
                fast.packages[0].1,
                slow[0].1
            );
        }
    }

    #[test]
    fn early_termination_on_large_catalogs() {
        let mut rng = StdRng::seed_from_u64(99);
        let rows: Vec<Vec<f64>> = (0..5000)
            .map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let catalog = Catalog::from_rows(rows).unwrap();
        let profile = Profile::new(vec![
            AggregateFn::Sum,
            AggregateFn::Avg,
            AggregateFn::Max,
            AggregateFn::Avg,
        ]);
        let ctx = AggregationContext::new(profile, &catalog, 5).unwrap();
        let u = LinearUtility::new(ctx, vec![-0.4, 0.6, 0.3, 0.2]).unwrap();
        let result = top_k_packages(&u, &catalog, 5).unwrap();
        assert_eq!(result.packages.len(), 5);
        assert!(result.stats.terminated_early);
        assert!(
            result.stats.items_accessed < catalog.len() / 2,
            "accessed {} of {} items",
            result.stats.items_accessed,
            catalog.len()
        );
    }

    #[test]
    fn zero_k_and_oversized_k_are_handled() {
        let (catalog, u) = figure1_setup(vec![0.5, 0.5]);
        assert!(top_k_packages(&u, &catalog, 0).unwrap().packages.is_empty());
        let all = top_k_packages(&u, &catalog, 50).unwrap();
        assert!(all.packages.len() <= 6);
        assert!(!all.packages.is_empty());
    }

    #[test]
    fn null_features_are_ignored_by_the_search() {
        let catalog = Catalog::from_rows(vec![
            vec![0.9, 0.5, 0.1],
            vec![0.1, 0.5, 0.9],
            vec![0.5, 0.5, 0.5],
        ])
        .unwrap();
        let profile = Profile::new(vec![AggregateFn::Sum, AggregateFn::Null, AggregateFn::Sum]);
        let ctx = AggregationContext::new(profile, &catalog, 2).unwrap();
        let u = LinearUtility::new(ctx, vec![1.0, 1.0, 0.0]).unwrap();
        // Only feature 0 matters: weight on the null feature is irrelevant and
        // feature 2 has zero weight.
        let result = top_k_packages(&u, &catalog, 1).unwrap();
        assert_eq!(result.packages[0].0, Package::new(vec![0, 2]).unwrap());
    }

    #[test]
    fn results_are_sorted_best_first_with_correct_utilities() {
        let (catalog, u) = figure1_setup(vec![-0.3, 0.8]);
        let result = top_k_packages(&u, &catalog, 6).unwrap();
        for pair in result.packages.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        for (p, s) in &result.packages {
            assert!((u.of_package(&catalog, p).unwrap() - s).abs() < 1e-12);
        }
    }

    #[test]
    fn arena_path_matches_the_clone_based_reference() {
        // Random instances across all aggregate kinds (including null) and
        // both set-monotone and non-monotone weight signs: the optimised path
        // must reproduce the reference's packages, utilities and statistics.
        let mut rng = StdRng::seed_from_u64(1234);
        let aggregates = [
            AggregateFn::Sum,
            AggregateFn::Avg,
            AggregateFn::Max,
            AggregateFn::Min,
            AggregateFn::Null,
        ];
        for trial in 0..40 {
            let dim = rng.gen_range(1..5);
            let n = rng.gen_range(3..15);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let catalog = Catalog::from_rows(rows).unwrap();
            let profile = crate::profile::Profile::new(
                (0..dim)
                    .map(|_| aggregates[rng.gen_range(0..aggregates.len())])
                    .collect(),
            );
            let phi = rng.gen_range(1..5);
            let ctx = AggregationContext::new(profile, &catalog, phi).unwrap();
            let weights: Vec<f64> = (0..dim)
                .map(|_| {
                    if rng.gen_range(0..5) == 0 {
                        0.0
                    } else {
                        rng.gen_range(-1.0..1.0)
                    }
                })
                .collect();
            let u = LinearUtility::new(ctx, weights).unwrap();
            let k = rng.gen_range(1..6);
            let fast = top_k_packages(&u, &catalog, k).unwrap();
            let reference = top_k_packages_reference(&u, &catalog, k).unwrap();
            assert_eq!(
                fast.packages.len(),
                reference.packages.len(),
                "trial {trial}"
            );
            for ((fp, fs), (rp, rs)) in fast.packages.iter().zip(reference.packages.iter()) {
                assert_eq!(fp, rp, "trial {trial}: packages diverge");
                assert!(
                    (fs - rs).abs() < 1e-9,
                    "trial {trial}: utilities diverge: {fs} vs {rs}"
                );
            }
            assert_eq!(fast.stats, reference.stats, "trial {trial}");
        }
    }

    #[test]
    fn a_reused_scratch_is_bit_identical_to_fresh_allocation() {
        // One scratch driven across many searches of wildly different shapes
        // (dimensionality, catalog size, φ, aggregate mix) must reproduce the
        // fresh-allocation path exactly — packages, utilities and statistics.
        let mut rng = StdRng::seed_from_u64(4242);
        let aggregates = [
            AggregateFn::Sum,
            AggregateFn::Avg,
            AggregateFn::Max,
            AggregateFn::Min,
            AggregateFn::Null,
        ];
        let mut scratch = SearchScratch::new();
        for trial in 0..30 {
            let dim = rng.gen_range(1..5);
            let n = rng.gen_range(3..20);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let catalog = Catalog::from_rows(rows).unwrap();
            let profile = crate::profile::Profile::new(
                (0..dim)
                    .map(|_| aggregates[rng.gen_range(0..aggregates.len())])
                    .collect(),
            );
            let phi = rng.gen_range(1..5);
            let ctx = AggregationContext::new(profile, &catalog, phi).unwrap();
            let weights: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let u = LinearUtility::new(ctx, weights).unwrap();
            let k = rng.gen_range(1..6);
            let lists = SortedLists::new(catalog.rows());
            let fresh = top_k_packages_with_lists(&u, &catalog, &lists, k).unwrap();
            let reused =
                top_k_packages_with_scratch(&u, &catalog, &lists, k, &mut scratch).unwrap();
            assert_eq!(fresh, reused, "trial {trial}");
        }
    }

    #[test]
    fn prebuilt_lists_give_identical_results() {
        let (catalog, u) = figure1_setup(vec![-0.3, 0.8]);
        let lists = pkgrec_topk::SortedLists::new(catalog.rows());
        let fresh = top_k_packages(&u, &catalog, 4).unwrap();
        let shared = top_k_packages_with_lists(&u, &catalog, &lists, 4).unwrap();
        assert_eq!(fresh, shared);
        // The index survives reuse under a different weight vector.
        let (_, u2) = figure1_setup(vec![0.5, 0.1]);
        let reused = top_k_packages_with_lists(&u2, &catalog, &lists, 2).unwrap();
        assert_eq!(reused, top_k_packages(&u2, &catalog, 2).unwrap());
    }

    #[test]
    fn aggregated_stats_accumulate_and_report_rates() {
        let (catalog, u) = figure1_setup(vec![0.5, 0.1]);
        let result = top_k_packages(&u, &catalog, 2).unwrap();
        let mut agg = AggregatedSearchStats::default();
        assert_eq!(agg.early_termination_rate(), 0.0);
        agg.record(&result.stats);
        agg.record(&result.stats);
        assert_eq!(agg.searches, 2);
        assert_eq!(agg.sorted_accesses, 2 * result.stats.sorted_accesses);
        let mut merged = AggregatedSearchStats::default();
        merged.merge(&agg);
        assert_eq!(merged, agg);
        let delta = merged.delta_since(&agg);
        assert_eq!(delta.searches, 0);
        let full = merged.delta_since(&AggregatedSearchStats::default());
        assert_eq!(full, merged);
        let rate = agg.early_termination_rate();
        assert!((0.0..=1.0).contains(&rate));
    }
}
