//! Top-k package search for a fixed weight vector (Section 4, Algorithms 2–4).
//!
//! `Top-k-Pkg` sorts the items into one list per (weighted, non-null) feature,
//! accesses those lists round-robin in the utility-preferred direction, and
//! grows candidate packages by *utility-improving expansion*: each newly
//! accessed item is added to every expandable candidate it improves.  Two
//! candidate sets are maintained — `Q+` (candidates that the best possible
//! unseen item, the boundary vector `τ`, could still improve) and `Q−`
//! (closed candidates) — and the scan stops as soon as the optimistic bound
//! `ηup` of any expandable candidate no longer beats the utility `ηlo` of the
//! k-th best package found (Algorithm 2 line 8).

pub mod bounds;
pub mod exhaustive;

pub use bounds::{can_improve, upper_exp};
pub use exhaustive::top_k_packages_exhaustive;

use pkgrec_topk::{RoundRobinCursor, SortedLists, TopKHeap};
use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::item::{Catalog, ItemId};
use crate::package::Package;
use crate::profile::{AggregateFn, PackageState};
use crate::utility::LinearUtility;

/// Statistics of one `Top-k-Pkg` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of sorted accesses performed before the scan stopped.
    pub sorted_accesses: usize,
    /// Number of distinct items accessed.
    pub items_accessed: usize,
    /// Number of candidate packages created during expansion.
    pub candidates_created: usize,
    /// Whether the bound `ηup ≤ ηlo` closed the scan before the lists were
    /// exhausted.
    pub terminated_early: bool,
}

/// Result of a `Top-k-Pkg` run: the packages (best first, with utilities) and
/// the run statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// `(package, utility)` pairs ordered best-first.
    pub packages: Vec<(Package, f64)>,
    /// Run statistics.
    pub stats: SearchStats,
}

impl SearchResult {
    /// The packages without their scores.
    pub fn packages_only(&self) -> Vec<Package> {
        self.packages.iter().map(|(p, _)| p.clone()).collect()
    }
}

/// A candidate package being grown by the expansion phase.
#[derive(Debug, Clone)]
struct Candidate {
    items: Vec<ItemId>,
    state: PackageState,
    utility: f64,
}

impl Candidate {
    fn empty(dim: usize) -> Self {
        Candidate {
            items: Vec::new(),
            state: PackageState::empty(dim),
            utility: 0.0,
        }
    }

    fn extend(&self, item: ItemId, features: &[f64], utility: &LinearUtility) -> Candidate {
        let state = self.state.with_item(features);
        let mut items = self.items.clone();
        items.push(item);
        let value = utility.of_state(&state);
        Candidate {
            items,
            state,
            utility: value,
        }
    }
}

/// Engineering safeguard on the size of the expandable candidate set `Q+`.
///
/// The paper's expansion phase keeps every utility-improving candidate; on
/// large catalogs with slowly closing bounds that set can grow combinatorially
/// before the `ηup ≤ ηlo` test fires.  Candidates whose optimistic bound
/// cannot beat the current `ηlo` are dropped (sound), and if `Q+` still
/// exceeds this cap only the candidates with the largest optimistic bounds are
/// kept (a beam restriction; documented in DESIGN.md).
const MAX_EXPANDABLE_CANDIDATES: usize = 20_000;

/// The `Top-k-Pkg` algorithm (Algorithm 2): returns the top-k packages for a
/// fixed utility function over the catalog, where package size ranges from 1
/// to the context's maximum package size φ.
pub fn top_k_packages(
    utility: &LinearUtility,
    catalog: &Catalog,
    k: usize,
) -> Result<SearchResult> {
    let dim = utility.dim();
    let phi = utility.max_package_size();
    // Effective query: the per-feature access direction follows the weight
    // sign; features with zero weight or a null aggregate contribute nothing
    // and are skipped by the round-robin cursor.
    let effective_query: Vec<f64> = (0..dim)
        .map(|j| {
            if utility.context().profile().aggregate(j) == AggregateFn::Null {
                0.0
            } else {
                utility.weights()[j]
            }
        })
        .collect();
    let lists = SortedLists::new(catalog.rows());
    let mut cursor = RoundRobinCursor::for_query(&lists, &effective_query);

    let mut q_plus: Vec<Candidate> = Vec::new();
    let empty_state = PackageState::empty(dim);
    let mut q_minus_count = 0usize;
    let mut best = TopKHeap::new(k);
    let mut best_by_key: std::collections::HashMap<Vec<ItemId>, f64> =
        std::collections::HashMap::new();
    let mut seen_items: std::collections::HashSet<ItemId> = std::collections::HashSet::new();
    let mut candidates_created = 0usize;
    let mut terminated_early = false;

    if k == 0 {
        return Ok(SearchResult {
            packages: Vec::new(),
            stats: SearchStats {
                sorted_accesses: 0,
                items_accessed: 0,
                candidates_created: 0,
                terminated_early: false,
            },
        });
    }

    while let Some(access) = cursor.next_access() {
        if !seen_items.insert(access.id) {
            continue;
        }
        let item_features = catalog.item_unchecked(access.id);
        let tau = cursor.boundary();

        // Expansion phase (Algorithm 4): seed a singleton candidate for the
        // newly accessed item, try to extend every expandable candidate with
        // it, then re-classify candidates against the updated boundary vector
        // τ.  (Seeding every singleton — rather than only utility-improving
        // ones — guarantees that packages whose first item is individually
        // unattractive can still be assembled; see DESIGN.md.)
        let mut eta_up = upper_exp(utility, &empty_state, &tau);
        let mut next_q_plus: Vec<(Candidate, f64)> = Vec::with_capacity(q_plus.len() * 2);
        let mut new_candidates: Vec<Candidate> = Vec::new();
        new_candidates.push(Candidate::empty(dim).extend(access.id, item_features, utility));
        candidates_created += 1;
        for candidate in &q_plus {
            if candidate.items.len() < phi {
                let extended = candidate.extend(access.id, item_features, utility);
                if extended.utility > candidate.utility {
                    candidates_created += 1;
                    new_candidates.push(extended);
                }
            }
        }
        for candidate in q_plus.drain(..).chain(new_candidates) {
            // Record every non-empty candidate as a found package.
            if !candidate.items.is_empty() {
                let mut sorted_items = candidate.items.clone();
                sorted_items.sort_unstable();
                if !best_by_key.contains_key(&sorted_items) {
                    best_by_key.insert(sorted_items.clone(), candidate.utility);
                    best.push(sorted_items, candidate.utility);
                }
            }
            if can_improve(utility, &candidate.state, &tau) {
                let bound = upper_exp(utility, &candidate.state, &tau);
                eta_up = eta_up.max(bound);
                next_q_plus.push((candidate, bound));
            } else {
                q_minus_count += 1;
            }
        }

        // Termination test (Algorithm 2 line 8): ηlo is the utility of the
        // k-th best package found so far, or 0 while fewer than k exist.
        let eta_lo = if best.is_full() {
            best.threshold().unwrap_or(0.0)
        } else {
            0.0
        };
        // Candidates whose optimistic bound cannot beat ηlo are closed: no
        // extension of them (with items dominated by τ) can enter the top-k.
        if best.is_full() {
            next_q_plus.retain(|(_, bound)| *bound > eta_lo);
        }
        // Beam safeguard against combinatorial growth of Q+.
        if next_q_plus.len() > MAX_EXPANDABLE_CANDIDATES {
            next_q_plus.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            next_q_plus.truncate(MAX_EXPANDABLE_CANDIDATES);
        }
        q_plus = next_q_plus.into_iter().map(|(c, _)| c).collect();

        // ηup always covers packages assembled purely from unseen items (the
        // empty-state bound), so the scan may only stop on the bound test.
        if eta_up <= eta_lo {
            terminated_early = true;
            break;
        }
    }

    let _ = q_minus_count;
    let packages = best
        .into_sorted()
        .into_iter()
        .map(|(items, score)| {
            (
                Package::new(items).expect("candidates are non-empty"),
                score,
            )
        })
        .collect();
    Ok(SearchResult {
        packages,
        stats: SearchStats {
            sorted_accesses: cursor.accesses(),
            items_accessed: seen_items.len(),
            candidates_created,
            terminated_early,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{AggregationContext, Profile};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn figure1_setup(weights: Vec<f64>) -> (Catalog, LinearUtility) {
        let catalog = Catalog::new(
            vec!["cost".into(), "rating".into()],
            vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.2, 0.4]],
        )
        .unwrap();
        let ctx = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
        let u = LinearUtility::new(ctx, weights).unwrap();
        (catalog, u)
    }

    #[test]
    fn reproduces_figure2_top2_lists() {
        // Figure 2(d): the top-2 packages under each of the three weight
        // vectors of the running example.
        let cases = [
            (vec![0.5, 0.1], vec![vec![0, 1], vec![0, 2]]), // p4, p6
            (vec![0.1, 0.5], vec![vec![1, 2], vec![1]]),    // p5, p2
            (vec![0.1, 0.1], vec![vec![0, 1], vec![1, 2]]), // p4, p5
        ];
        for (weights, expected) in cases {
            let (catalog, u) = figure1_setup(weights.clone());
            let result = top_k_packages(&u, &catalog, 2).unwrap();
            let got: Vec<Vec<usize>> = result
                .packages
                .iter()
                .map(|(p, _)| p.items().to_vec())
                .collect();
            assert_eq!(got, expected, "weights {weights:?}");
        }
    }

    #[test]
    fn agrees_with_exhaustive_search_on_set_monotone_utilities() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..20 {
            let n = rng.gen_range(5..12);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let catalog = Catalog::from_rows(rows).unwrap();
            let profile = Profile::new(vec![AggregateFn::Sum, AggregateFn::Max, AggregateFn::Min]);
            let phi = rng.gen_range(1..4);
            let ctx = AggregationContext::new(profile, &catalog, phi).unwrap();
            // Weight signs chosen to keep the utility set-monotone.
            let weights = vec![
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                -rng.gen_range(0.0..1.0),
            ];
            let u = LinearUtility::new(ctx, weights).unwrap();
            assert!(u.is_set_monotone());
            let k = 4;
            let fast = top_k_packages(&u, &catalog, k).unwrap();
            let slow = top_k_packages_exhaustive(&u, &catalog, k).unwrap();
            let fast_scores: Vec<f64> = fast.packages.iter().map(|(_, s)| *s).collect();
            let slow_scores: Vec<f64> = slow.iter().map(|(_, s)| *s).collect();
            for (f, s) in fast_scores.iter().zip(slow_scores.iter()) {
                assert!(
                    (f - s).abs() < 1e-9,
                    "trial {trial}: utilities diverge: {fast_scores:?} vs {slow_scores:?}"
                );
            }
        }
    }

    #[test]
    fn never_returns_a_package_better_than_the_exhaustive_optimum() {
        let mut rng = StdRng::seed_from_u64(88);
        for _ in 0..20 {
            let n = rng.gen_range(5..10);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..2).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let catalog = Catalog::from_rows(rows).unwrap();
            let ctx = AggregationContext::new(Profile::cost_quality(), &catalog, 3).unwrap();
            let weights = vec![-rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            let u = LinearUtility::new(ctx, weights).unwrap();
            let fast = top_k_packages(&u, &catalog, 3).unwrap();
            let slow = top_k_packages_exhaustive(&u, &catalog, 3).unwrap();
            // Reported utilities are genuine (recomputation matches) and never
            // exceed the true optimum.
            for (package, score) in &fast.packages {
                let recomputed = u.of_package(&catalog, package).unwrap();
                assert!((recomputed - score).abs() < 1e-9);
                assert!(*score <= slow[0].1 + 1e-9);
            }
            // The cost/quality profile of the introduction is one of the cases
            // where the greedy expansion provably finds the best package: the
            // top-1 utilities must agree.
            assert!(
                (fast.packages[0].1 - slow[0].1).abs() < 1e-9,
                "top-1 mismatch: {} vs {}",
                fast.packages[0].1,
                slow[0].1
            );
        }
    }

    #[test]
    fn early_termination_on_large_catalogs() {
        let mut rng = StdRng::seed_from_u64(99);
        let rows: Vec<Vec<f64>> = (0..5000)
            .map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let catalog = Catalog::from_rows(rows).unwrap();
        let profile = Profile::new(vec![
            AggregateFn::Sum,
            AggregateFn::Avg,
            AggregateFn::Max,
            AggregateFn::Avg,
        ]);
        let ctx = AggregationContext::new(profile, &catalog, 5).unwrap();
        let u = LinearUtility::new(ctx, vec![-0.4, 0.6, 0.3, 0.2]).unwrap();
        let result = top_k_packages(&u, &catalog, 5).unwrap();
        assert_eq!(result.packages.len(), 5);
        assert!(result.stats.terminated_early);
        assert!(
            result.stats.items_accessed < catalog.len() / 2,
            "accessed {} of {} items",
            result.stats.items_accessed,
            catalog.len()
        );
    }

    #[test]
    fn zero_k_and_oversized_k_are_handled() {
        let (catalog, u) = figure1_setup(vec![0.5, 0.5]);
        assert!(top_k_packages(&u, &catalog, 0).unwrap().packages.is_empty());
        let all = top_k_packages(&u, &catalog, 50).unwrap();
        assert!(all.packages.len() <= 6);
        assert!(!all.packages.is_empty());
    }

    #[test]
    fn null_features_are_ignored_by_the_search() {
        let catalog = Catalog::from_rows(vec![
            vec![0.9, 0.5, 0.1],
            vec![0.1, 0.5, 0.9],
            vec![0.5, 0.5, 0.5],
        ])
        .unwrap();
        let profile = Profile::new(vec![AggregateFn::Sum, AggregateFn::Null, AggregateFn::Sum]);
        let ctx = AggregationContext::new(profile, &catalog, 2).unwrap();
        let u = LinearUtility::new(ctx, vec![1.0, 1.0, 0.0]).unwrap();
        // Only feature 0 matters: weight on the null feature is irrelevant and
        // feature 2 has zero weight.
        let result = top_k_packages(&u, &catalog, 1).unwrap();
        assert_eq!(result.packages[0].0, Package::new(vec![0, 2]).unwrap());
    }

    #[test]
    fn results_are_sorted_best_first_with_correct_utilities() {
        let (catalog, u) = figure1_setup(vec![-0.3, 0.8]);
        let result = top_k_packages(&u, &catalog, 6).unwrap();
        for pair in result.packages.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        for (p, s) in &result.packages {
            assert!((u.of_package(&catalog, p).unwrap() - s).abs() < 1e-12);
        }
    }
}
