//! # pkgrec-core
//!
//! A from-scratch implementation of *"Generating Top-k Packages via Preference
//! Elicitation"* (Min Xie, Laks V.S. Lakshmanan, Peter T. Wood; PVLDB 7(14),
//! 2014).
//!
//! The system recommends **packages** — sets of items such as shopping carts or
//! play lists — whose desirability is judged by a hidden linear utility
//! function over *aggregate* package features (total cost, average rating, …).
//! Rather than asking users for utility weights, the system maintains a
//! Gaussian-mixture prior over the weight vector, shows the user a handful of
//! packages each round, interprets clicks as pairwise preferences, and keeps a
//! pool of weight-vector samples consistent with all feedback.  Top-k package
//! lists are computed per sample with a threshold-style search and merged under
//! one of three ranking semantics.
//!
//! ## Crate layout
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`item`], [`package`], [`profile`], [`utility`] | §2 | catalog, packages, aggregate feature profiles, linear utility |
//! | [`preferences`], [`constraints`], [`noise`] | §2.1, §3.3, §7 | feedback DAG, transitive reduction, constraint checking, noise model |
//! | [`sampler`] | §3.1–3.2 | rejection / importance / MCMC constrained samplers |
//! | [`scoring`] | — | columnar weight/candidate matrices and the batched `packages × samples` scoring kernel |
//! | [`maintenance`] | §3.4 | naive / TA / hybrid sample maintenance (Algorithm 1) |
//! | [`ranking`] | §2.2, §4 | EXP, TKP and MPO ranking semantics |
//! | [`search`] | §4 | Top-k-Pkg (Algorithms 2–4) and the exhaustive baseline |
//! | [`recommender`] | §2.2 | the unified [`Recommender`] trait and typed [`Feedback`] |
//! | [`engine`], [`builder`] | §2.2 | the interactive recommender and its fluent, validating builder |
//! | [`snapshot`] | — | serialisable [`SessionSnapshot`]s: persist and resume sessions |
//! | [`elicitation`] | §5.6 | simulated users and the generic elicitation session driver |
//!
//! ## Quick start
//!
//! ```
//! use pkgrec_core::prelude::*;
//! use rand::SeedableRng;
//!
//! // A tiny catalog: (cost, rating) per item, packages of up to 2 items.
//! let catalog = Catalog::from_rows(vec![
//!     vec![0.6, 0.2],
//!     vec![0.4, 0.4],
//!     vec![0.2, 0.4],
//! ]).unwrap();
//! let mut engine = RecommenderEngine::builder(catalog, Profile::cost_quality())
//!     .max_package_size(2)
//!     .k(2)
//!     .num_random(2)
//!     .num_samples(30)
//!     // Scoring runs through the batched columnar kernel of [`scoring`];
//!     // raise this knob to split candidate discovery and scoring across
//!     // OS threads (results are identical to the serial default).
//!     .num_threads(1)
//!     .build()
//!     .unwrap();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // Show packages, record a click by its index in the shown list, and
//! // recommend again.
//! let shown = engine.present(&mut rng).unwrap();
//! engine.record_feedback(&shown, Feedback::Click { index: 0 }, &mut rng).unwrap();
//! let recommendations = engine.recommend(&mut rng).unwrap();
//! assert!(!recommendations.is_empty());
//!
//! // Sessions persist: snapshot, (de)serialise, restore, and the resumed
//! // session recommends exactly what this one would.
//! let restored = RecommenderEngine::restore(engine.snapshot()).unwrap();
//! assert_eq!(restored.preferences().len(), engine.preferences().len());
//! ```
//!
//! Driving one engine by hand is the single-session story.  To serve *many*
//! sessions — sharded across threads, addressed by id, spilled to snapshots
//! under memory pressure and rebuilt bit-identically from an append-only
//! journal — use the `pkgrec-serve` crate, which owns the session lifecycle
//! on top of this crate's [`Recommender`] trait and snapshot machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod constraints;
pub mod elicitation;
pub mod engine;
pub mod error;
pub mod item;
pub mod maintenance;
pub mod noise;
pub mod package;
pub mod preferences;
pub mod profile;
pub mod ranking;
pub mod recommender;
pub mod sampler;
pub mod scoring;
pub mod search;
pub mod snapshot;
pub mod utility;

pub use builder::EngineBuilder;
pub use constraints::{ConstraintChecker, ConstraintSource};
pub use elicitation::{
    random_ground_truth_weights, run_elicitation, ElicitationConfig, ElicitationReport,
    SimulatedUser,
};
pub use engine::{score_stacked, EngineConfig, PresentPrep, RecommenderEngine, StackedScores};
pub use error::{CoreError, Result};
pub use item::{Catalog, ItemId};
pub use maintenance::{
    find_violating, index_pool, maintain_pool, MaintenanceOutcome, MaintenanceStrategy,
};
pub use noise::NoiseModel;
pub use package::{enumerate_packages, package_space_size, random_package, Package};
pub use preferences::{Preference, PreferenceStore};
pub use profile::{AggregateFn, AggregationContext, PackageState, Profile};
pub use ranking::{aggregate, PerSampleRanking, RankedPackage, RankingSemantics};
pub use recommender::{Feedback, Recommender, RecommenderState};
pub use sampler::{
    ImportanceSampler, McmcSampler, RejectionSampler, SamplePool, SampleRef, SamplerKind,
    SamplingOutcome, WeightSample, WeightSampler,
};
pub use scoring::{
    score_batch, score_batch_threaded, score_batch_unrolled, CandidateMatrix, ScoreMatrix,
    WeightMatrix, SAMPLE_BLOCK, WEIGHT_STRIDE_LANES,
};
pub use search::{
    top_k_packages, top_k_packages_exhaustive, top_k_packages_reference, top_k_packages_with_lists,
    top_k_packages_with_scratch, AggregatedSearchStats, SearchResult, SearchScratch, SearchStats,
};
pub use snapshot::{SessionSnapshot, SNAPSHOT_VERSION};
pub use utility::{clamp_weights, weights_in_range, LinearUtility, WeightVector};

/// Convenience re-exports for application code.
pub mod prelude {
    pub use crate::builder::EngineBuilder;
    pub use crate::constraints::{ConstraintChecker, ConstraintSource};
    pub use crate::elicitation::{
        random_ground_truth_weights, run_elicitation, ElicitationConfig, ElicitationReport,
        SimulatedUser,
    };
    pub use crate::engine::{EngineConfig, RecommenderEngine};
    pub use crate::error::{CoreError, Result};
    pub use crate::item::{Catalog, ItemId};
    pub use crate::maintenance::MaintenanceStrategy;
    pub use crate::noise::NoiseModel;
    pub use crate::package::Package;
    pub use crate::preferences::{Preference, PreferenceStore};
    pub use crate::profile::{AggregateFn, AggregationContext, Profile};
    pub use crate::ranking::{RankedPackage, RankingSemantics};
    pub use crate::recommender::{Feedback, Recommender, RecommenderState};
    pub use crate::sampler::{
        ImportanceSampler, McmcSampler, RejectionSampler, SamplePool, SamplerKind, WeightSampler,
    };
    pub use crate::scoring::{score_batch, score_batch_threaded, CandidateMatrix, WeightMatrix};
    pub use crate::search::{top_k_packages, top_k_packages_exhaustive, top_k_packages_with_lists};
    pub use crate::snapshot::{SessionSnapshot, SNAPSHOT_VERSION};
    pub use crate::utility::{clamp_weights, weights_in_range, LinearUtility, WeightVector};
}
