//! Columnar storage and the batched scoring kernel of the ranking stack.
//!
//! The inner loop of the paper — evaluating every candidate package against
//! every posterior weight sample — used to be written as scalar
//! `for sample in pool` loops over per-sample `Vec<f64>`s scattered across the
//! engine, the ranking semantics, the samplers and the maintenance code.  This
//! module centralises that loop on *contiguous* storage:
//!
//! * [`WeightMatrix`] — the weight samples of a pool, row-major
//!   (`samples × dim`), together with their importance weights,
//! * [`CandidateMatrix`] — candidate package feature vectors, row-major
//!   (`candidates × dim`),
//! * [`score_batch`] / [`score_batch_threaded`] — the cache-blocked kernel
//!   computing the full `candidates × samples` utility matrix
//!   (`S[c][s] = candidate_c · weights_s`), optionally split across OS threads
//!   with [`std::thread::scope`],
//! * [`ScoreMatrix`] — the result, with the reductions the ranking stack
//!   needs: weighted expectations per candidate, the best candidate per
//!   sample, and threshold scans per candidate row.
//!
//! Dimension agreement is enforced here, at matrix construction and kernel
//! entry, with checks that hold in **release** builds — the scalar
//! [`crate::utility::dot`] only `debug_assert`s and would silently
//! zip-truncate a mismatched pair.
//!
//! # Layout invariants the autovectorizer relies on
//!
//! The kernel is written so that rustc/LLVM can turn the inner loops into
//! SIMD without any `unsafe` or intrinsics.  Three invariants make that
//! possible, and every [`WeightMatrix`] upholds them by construction:
//!
//! * **Padded stride** — weight rows are stored at a fixed stride of
//!   [`WeightMatrix::stride`] floats, the dimensionality rounded up to a
//!   multiple of [`WEIGHT_STRIDE_LANES`] (4 × f64 = one 256-bit vector).
//!   Row starts therefore sit on vector-width boundaries relative to the
//!   buffer start, and the address of sample `s` is the single multiply
//!   `s * stride` with a power-friendly stride, not a data-dependent scan.
//!   The pad lanes are always zero ([`WeightMatrix::push`] /
//!   [`WeightMatrix::set_row`] maintain this), so strided reads past `dim`
//!   are defined and harmless.
//! * **Sample-lane blocking** — [`score_batch`] walks the sample dimension
//!   in fixed blocks of [`SAMPLE_BLOCK`] rows, keeping one accumulator per
//!   lane.  The feature loop is outermost inside a block, so each step is a
//!   broadcast of `candidate[j]` against [`SAMPLE_BLOCK`] strided loads —
//!   the exact shape LLVM recognises as a vectorisable
//!   broadcast-multiply-accumulate.  Per-cell summation still runs feature
//!   index `j = 0..dim` in ascending order, so every score is bit-identical
//!   to the scalar [`dot`] and to the unrolled comparison arm.
//! * **Monomorphised dimensionality** — dimensionalities up to
//!   [`MAX_UNROLLED_DIM`] dispatch to a `const D` kernel, so the feature
//!   loop has a compile-time trip count and no bounds checks survive.
//!
//! The previous production kernel — per-cell unrolled dots with no lane
//! blocking — is kept as [`score_batch_unrolled`], the comparison arm that
//! `fig_scoring` measures against (`BENCH_scoring.json`).
//!
//! # Example
//!
//! Score two candidate packages against a three-sample pool and reduce to
//! expected utilities:
//!
//! ```
//! use pkgrec_core::scoring::{score_batch, CandidateMatrix, WeightMatrix};
//!
//! // Three weight samples in 2-D, the middle one carrying double importance.
//! let mut weights = WeightMatrix::new(2);
//! weights.push(&[1.0, 0.0], 1.0);
//! weights.push(&[0.0, 1.0], 2.0);
//! weights.push(&[0.5, 0.5], 1.0);
//!
//! // Two candidate package feature vectors.
//! let candidates = CandidateMatrix::from_rows(2, &[vec![0.8, 0.2], vec![0.1, 0.9]]);
//!
//! let scores = score_batch(&candidates, &weights);
//! assert_eq!(scores.num_candidates(), 2);
//! assert_eq!(scores.num_samples(), 3);
//! // Candidate 0 under sample 0: (0.8, 0.2) · (1.0, 0.0) = 0.8.
//! assert!((scores.get(0, 0) - 0.8).abs() < 1e-12);
//!
//! // Weighted expected utility per candidate (importances 1, 2, 1).
//! let exp = scores.weighted_expectations(weights.importances());
//! assert!((exp[1] - (0.1 + 2.0 * 0.9 + 0.5) / 4.0).abs() < 1e-12);
//!
//! // The best candidate under each sample (the third sample scores both
//! // candidates 0.5; ties break toward the lower index).
//! assert_eq!(scores.top_candidate_per_sample(), vec![0, 1, 0]);
//! ```

use crate::utility::dot;

/// Largest dimensionality with a fully unrolled, bounds-check-free inner
/// kernel; the workspace's catalogs use 2–10 features, comfortably inside.
pub const MAX_UNROLLED_DIM: usize = 16;

/// Stride granularity of [`WeightMatrix`] rows, in `f64` lanes: every row
/// starts at a multiple of this many floats (4 × f64 = one 256-bit SIMD
/// vector), with zeroed pad lanes between `dim` and the next boundary.
pub const WEIGHT_STRIDE_LANES: usize = 4;

/// Number of weight samples each lane-blocked kernel step scores together
/// (one accumulator per lane; two 256-bit vectors' worth of `f64`).
pub const SAMPLE_BLOCK: usize = 8;

/// The padded row stride for a given dimensionality: `dim` rounded up to a
/// multiple of [`WEIGHT_STRIDE_LANES`] (0 stays 0 — an empty layout).
fn padded_stride(dim: usize) -> usize {
    dim.div_ceil(WEIGHT_STRIDE_LANES) * WEIGHT_STRIDE_LANES
}

/// Row-major flat storage of weight samples (`samples × dim`) plus their
/// importance weights — the columnar backbone of
/// [`SamplePool`](crate::sampler::SamplePool).
///
/// Every row is dimension-checked on insertion (a hard check, not a
/// `debug_assert`), so any matrix handed to the kernel is rectangular by
/// construction.  The type deliberately does not implement serde traits:
/// deserialising raw fields would bypass that invariant — pools serialise
/// through [`SamplePool`](crate::sampler::SamplePool)'s validating impls
/// instead.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WeightMatrix {
    dim: usize,
    /// Row stride in floats: `dim` rounded up to [`WEIGHT_STRIDE_LANES`].
    /// The lanes between `dim` and `stride` of every row are zero.
    stride: usize,
    weights: Vec<f64>,
    importances: Vec<f64>,
}

impl WeightMatrix {
    /// An empty matrix of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        WeightMatrix {
            dim,
            stride: padded_stride(dim),
            weights: Vec::new(),
            importances: Vec::new(),
        }
    }

    /// An empty matrix with room for `rows` samples.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        WeightMatrix {
            dim,
            stride: padded_stride(dim),
            weights: Vec::with_capacity(padded_stride(dim) * rows),
            importances: Vec::with_capacity(rows),
        }
    }

    /// Builds a matrix from per-sample rows and importances.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dim` or the importance count
    /// differs from the row count (checked in release builds).
    pub fn from_rows(dim: usize, rows: &[Vec<f64>], importances: &[f64]) -> Self {
        assert_eq!(
            rows.len(),
            importances.len(),
            "one importance weight per sample row"
        );
        let mut matrix = WeightMatrix::with_capacity(dim, rows.len());
        for (row, &importance) in rows.iter().zip(importances) {
            matrix.push(row, importance);
        }
        matrix
    }

    /// Appends one weight sample.
    ///
    /// # Panics
    /// Panics if `weights.len() != self.dim()` (checked in release builds).
    pub fn push(&mut self, weights: &[f64], importance: f64) {
        assert_eq!(
            weights.len(),
            self.dim,
            "weight sample dimensionality {} does not match the matrix dimensionality {}",
            weights.len(),
            self.dim
        );
        self.weights.extend_from_slice(weights);
        // Zero the pad lanes up to the row stride (the layout invariant the
        // lane-blocked kernel reads through).
        self.weights
            .extend(std::iter::repeat_n(0.0, self.stride - self.dim));
        self.importances.push(importance);
    }

    /// Replaces the sample at `row`.
    ///
    /// # Panics
    /// Panics if `row` is out of range or `weights.len() != self.dim()`.
    pub fn set_row(&mut self, row: usize, weights: &[f64], importance: f64) {
        assert_eq!(
            weights.len(),
            self.dim,
            "weight sample dimensionality {} does not match the matrix dimensionality {}",
            weights.len(),
            self.dim
        );
        let start = row * self.stride;
        self.weights[start..start + self.dim].copy_from_slice(weights);
        self.importances[row] = importance;
    }

    /// Number of features per sample.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.importances.len()
    }

    /// Whether the matrix holds no samples.
    pub fn is_empty(&self) -> bool {
        self.importances.is_empty()
    }

    /// The weight vector of one sample.
    pub fn row(&self, row: usize) -> &[f64] {
        let start = row * self.stride;
        &self.weights[start..start + self.dim]
    }

    /// The importance weight of one sample.
    pub fn importance(&self, row: usize) -> f64 {
        self.importances[row]
    }

    /// The row stride of the flat storage, in floats: `dim` rounded up to a
    /// multiple of [`WEIGHT_STRIDE_LANES`].  Sample `s` starts at
    /// `s * stride` in [`WeightMatrix::weights_flat`]; lanes `dim..stride`
    /// of every row are zero.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The flat, stride-padded row-major weight storage (`len × stride`
    /// floats; see [`WeightMatrix::stride`] for the layout contract).
    pub fn weights_flat(&self) -> &[f64] {
        &self.weights
    }

    /// The importance weights, one per sample.
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// Iterates over the sample rows (pad lanes excluded).
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.weights
            .chunks_exact(self.stride.max(1))
            .map(move |row| &row[..self.dim])
    }

    /// Drops every row past `rows`, keeping the allocation.
    pub fn truncate(&mut self, rows: usize) {
        if rows < self.len() {
            self.weights.truncate(rows * self.stride);
            self.importances.truncate(rows);
        }
    }

    /// Keeps exactly the rows `keep` approves (called in order with the row
    /// index and the weight slice), compacting survivors toward the front
    /// in their original order **in place** — the flat allocation is reused,
    /// not reallocated.  Returns the number of rows kept.
    pub fn retain_rows(&mut self, mut keep: impl FnMut(usize, &[f64]) -> bool) -> usize {
        let mut kept = 0usize;
        for i in 0..self.len() {
            let start = i * self.stride;
            let keep_row = keep(i, &self.weights[start..start + self.dim]);
            if keep_row {
                if kept != i {
                    self.weights
                        .copy_within(start..start + self.stride, kept * self.stride);
                    self.importances[kept] = self.importances[i];
                }
                kept += 1;
            }
        }
        self.truncate(kept);
        kept
    }
}

/// Row-major flat storage of candidate feature vectors (`candidates × dim`),
/// the left operand of [`score_batch`].  Like [`WeightMatrix`] it is
/// rectangular by construction and therefore not deserialisable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CandidateMatrix {
    dim: usize,
    data: Vec<f64>,
    rows: usize,
}

impl CandidateMatrix {
    /// An empty matrix of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        CandidateMatrix {
            dim,
            data: Vec::new(),
            rows: 0,
        }
    }

    /// Builds a matrix from candidate rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dim` (checked in release
    /// builds).
    pub fn from_rows(dim: usize, rows: &[Vec<f64>]) -> Self {
        let mut matrix = CandidateMatrix {
            dim,
            data: Vec::with_capacity(dim * rows.len()),
            rows: 0,
        };
        for row in rows {
            matrix.push_row(row);
        }
        matrix
    }

    /// Appends one candidate feature vector.
    ///
    /// # Panics
    /// Panics if `row.len() != self.dim()` (checked in release builds).
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.dim,
            "candidate dimensionality {} does not match the matrix dimensionality {}",
            row.len(),
            self.dim
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Number of features per candidate.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the matrix holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The feature vector of one candidate.
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.dim..(row + 1) * self.dim]
    }
}

/// The `candidates × samples` utility matrix produced by [`score_batch`],
/// stored row-major by candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreMatrix {
    candidates: usize,
    samples: usize,
    data: Vec<f64>,
}

impl ScoreMatrix {
    /// Number of candidate rows.
    pub fn num_candidates(&self) -> usize {
        self.candidates
    }

    /// Number of sample columns.
    pub fn num_samples(&self) -> usize {
        self.samples
    }

    /// The score of one candidate under one sample.
    pub fn get(&self, candidate: usize, sample: usize) -> f64 {
        self.data[candidate * self.samples + sample]
    }

    /// All scores of one candidate, indexed by sample.
    pub fn candidate_row(&self, candidate: usize) -> &[f64] {
        &self.data[candidate * self.samples..(candidate + 1) * self.samples]
    }

    /// The importance-weighted expected score of every candidate:
    /// `E[c] = Σ_s q_s · S[c][s] / Σ_s q_s` (the EXP semantics' estimator).
    ///
    /// # Panics
    /// Panics if `importances.len()` differs from the sample count.
    pub fn weighted_expectations(&self, importances: &[f64]) -> Vec<f64> {
        assert_eq!(
            importances.len(),
            self.samples,
            "one importance weight per sample column"
        );
        let total: f64 = importances.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.candidates];
        }
        (0..self.candidates)
            .map(|c| dot(self.candidate_row(c), importances) / total)
            .collect()
    }

    /// The index of the best-scoring candidate under every sample (ties break
    /// toward the lower candidate index).  Empty when there are no candidates.
    pub fn top_candidate_per_sample(&self) -> Vec<usize> {
        if self.candidates == 0 {
            return Vec::new();
        }
        let mut best = vec![0usize; self.samples];
        let mut best_score = self.candidate_row(0).to_vec();
        for c in 1..self.candidates {
            for (s, &score) in self.candidate_row(c).iter().enumerate() {
                if score > best_score[s] {
                    best_score[s] = score;
                    best[s] = c;
                }
            }
        }
        best
    }

    /// Indices of the samples under which `candidate` scores strictly above
    /// `threshold` — the batched form of the maintenance scan for samples
    /// violating a new preference (`w · (p2 − p1) > 0`).
    pub fn samples_above(&self, candidate: usize, threshold: f64) -> Vec<usize> {
        self.candidate_row(candidate)
            .iter()
            .enumerate()
            .filter(|(_, &score)| score > threshold)
            .map(|(s, _)| s)
            .collect()
    }
}

/// Computes the full `candidates × samples` score matrix
/// `S[c][s] = candidates.row(c) · weights.row(s)` with the single-threaded
/// cache-blocked kernel.
///
/// # Panics
/// Panics if both matrices are non-empty and disagree on dimensionality
/// (checked in release builds).
pub fn score_batch(candidates: &CandidateMatrix, weights: &WeightMatrix) -> ScoreMatrix {
    score_batch_threaded(candidates, weights, 1)
}

/// [`score_batch`] split across up to `num_threads` OS threads with
/// [`std::thread::scope`]; candidate rows are partitioned into contiguous
/// chunks, so the result is identical to the single-threaded kernel.
///
/// `num_threads` is clamped to at least 1; values of 1 (the
/// [`EngineBuilder`](crate::builder::EngineBuilder) default) stay on the
/// calling thread.
///
/// # Panics
/// Panics if both matrices are non-empty and disagree on dimensionality
/// (checked in release builds).
pub fn score_batch_threaded(
    candidates: &CandidateMatrix,
    weights: &WeightMatrix,
    num_threads: usize,
) -> ScoreMatrix {
    if !candidates.is_empty() && !weights.is_empty() {
        assert_eq!(
            candidates.dim(),
            weights.dim(),
            "candidate dimensionality {} does not match sample dimensionality {}",
            candidates.dim(),
            weights.dim()
        );
    }
    let rows = candidates.len();
    let samples = weights.len();
    let threads = num_threads.max(1).min(rows.max(1));
    let data = if threads <= 1 || rows * samples < 4096 {
        // Serial path: append-only fill in row-major order — no zero
        // initialisation of the output buffer.
        let mut data = Vec::with_capacity(rows * samples);
        score_rows_into(candidates, weights, 0, rows, Sink::Append(&mut data));
        data
    } else {
        // Threaded path: each scoped thread owns a disjoint, contiguous slice
        // of candidate rows of the (zero-initialised) output buffer.
        let mut data = vec![0.0f64; rows * samples];
        let chunk_rows = rows.div_ceil(threads);
        std::thread::scope(|scope| {
            for (i, out) in data.chunks_mut(chunk_rows * samples).enumerate() {
                let first = i * chunk_rows;
                let count = out.len() / samples.max(1);
                scope.spawn(move || {
                    score_rows_into(candidates, weights, first, count, Sink::Fill(out))
                });
            }
        });
        data
    };
    ScoreMatrix {
        candidates: rows,
        samples,
        data,
    }
}

/// Where a kernel block writes its scores: appended to a growing buffer
/// (serial path) or into a pre-sized slice (one per thread).
enum Sink<'a> {
    Append(&'a mut Vec<f64>),
    Fill(&'a mut [f64]),
}

/// Scores the candidate rows `first..first + count` into the sink in
/// row-major order through the lane-blocked kernel.  Dispatches to a
/// monomorphised kernel for the catalog dimensionalities that occur in
/// practice, so the feature loop has a compile-time trip count.
fn score_rows_into(
    candidates: &CandidateMatrix,
    weights: &WeightMatrix,
    first: usize,
    count: usize,
    mut sink: Sink<'_>,
) {
    let dim = weights.dim();
    if dim == 0 || weights.is_empty() || count == 0 {
        if let Sink::Append(data) = &mut sink {
            data.resize(data.len() + count * weights.len(), 0.0);
        }
        return;
    }
    macro_rules! dispatch {
        ($($d:literal),+) => {
            match dim {
                $($d => score_rows_blocked::<$d>(candidates, weights, first, count, sink),)+
                _ => score_rows_generic(candidates, weights, first, count, sink),
            }
        };
    }
    dispatch!(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16);
}

/// One lane block: scores one candidate against [`SAMPLE_BLOCK`] consecutive
/// weight rows (`block` starts at the first row and spans
/// `SAMPLE_BLOCK * stride` floats).  The feature loop is outermost, so each
/// step broadcasts `cand[j]` against [`SAMPLE_BLOCK`] strided loads into
/// independent accumulators — the autovectorizer's broadcast-FMA shape.
/// Each accumulator still sums features in ascending order, so every lane is
/// bit-identical to [`dot`].
#[inline(always)]
fn block_dot<const D: usize>(cand: &[f64; D], block: &[f64], stride: usize) -> [f64; SAMPLE_BLOCK] {
    let mut acc = [0.0f64; SAMPLE_BLOCK];
    for j in 0..D {
        let cj = cand[j];
        for l in 0..SAMPLE_BLOCK {
            acc[l] += cj * block[l * stride + j];
        }
    }
    acc
}

/// One remainder lane: the fully unrolled per-cell dot (ascending feature
/// order, bit-identical to [`dot`]).
#[inline(always)]
fn lane_dot<const D: usize>(cand: &[f64; D], w: &[f64]) -> f64 {
    let w: &[f64; D] = w[..D].try_into().expect("weight rows are rectangular");
    let mut acc = 0.0;
    for j in 0..D {
        acc += cand[j] * w[j];
    }
    acc
}

/// The lane-blocked kernel (the production path): walks the sample dimension
/// in [`SAMPLE_BLOCK`]-wide blocks over the stride-padded weight storage,
/// with a per-cell unrolled tail for the remainder samples.
fn score_rows_blocked<const D: usize>(
    candidates: &CandidateMatrix,
    weights: &WeightMatrix,
    first: usize,
    count: usize,
    mut sink: Sink<'_>,
) {
    debug_assert!(D <= MAX_UNROLLED_DIM);
    let stride = weights.stride();
    let flat = weights.weights_flat();
    let samples = weights.len();
    let blocks = samples / SAMPLE_BLOCK;
    for c in first..first + count {
        let cand: &[f64; D] = candidates
            .row(c)
            .try_into()
            .expect("candidate rows match the dispatched dimensionality");
        match &mut sink {
            Sink::Append(data) => {
                data.reserve(samples);
                for b in 0..blocks {
                    let base = b * SAMPLE_BLOCK * stride;
                    let block = &flat[base..base + SAMPLE_BLOCK * stride];
                    data.extend_from_slice(&block_dot::<D>(cand, block, stride));
                }
                for s in blocks * SAMPLE_BLOCK..samples {
                    data.push(lane_dot::<D>(cand, &flat[s * stride..]));
                }
            }
            Sink::Fill(out) => {
                let row = &mut out[(c - first) * samples..(c - first + 1) * samples];
                let (full, tail) = row.split_at_mut(blocks * SAMPLE_BLOCK);
                for (b, chunk) in full.chunks_exact_mut(SAMPLE_BLOCK).enumerate() {
                    let base = b * SAMPLE_BLOCK * stride;
                    let block = &flat[base..base + SAMPLE_BLOCK * stride];
                    chunk.copy_from_slice(&block_dot::<D>(cand, block, stride));
                }
                for (i, slot) in tail.iter_mut().enumerate() {
                    let s = blocks * SAMPLE_BLOCK + i;
                    *slot = lane_dot::<D>(cand, &flat[s * stride..]);
                }
            }
        }
    }
}

/// Fallback kernel for dimensionalities above [`MAX_UNROLLED_DIM`].
fn score_rows_generic(
    candidates: &CandidateMatrix,
    weights: &WeightMatrix,
    first: usize,
    count: usize,
    mut sink: Sink<'_>,
) {
    let dim = weights.dim();
    let stride = weights.stride();
    let flat = weights.weights_flat();
    for c in first..first + count {
        let cand = candidates.row(c);
        match &mut sink {
            Sink::Append(data) => {
                data.extend(flat.chunks_exact(stride).map(|w| dot(cand, &w[..dim])))
            }
            Sink::Fill(out) => {
                let row = &mut out[(c - first) * weights.len()..(c - first + 1) * weights.len()];
                for (slot, w) in row.iter_mut().zip(flat.chunks_exact(stride)) {
                    *slot = dot(cand, &w[..dim]);
                }
            }
        }
    }
}

/// [`score_batch`] through the *pre-blocking* production kernel: per-cell
/// fully unrolled dots with no sample-lane blocking.  Kept as the comparison
/// arm `fig_scoring` measures the lane-blocked kernel against; results are
/// bit-identical to [`score_batch`] (same ascending-feature summation).
pub fn score_batch_unrolled(candidates: &CandidateMatrix, weights: &WeightMatrix) -> ScoreMatrix {
    if !candidates.is_empty() && !weights.is_empty() {
        assert_eq!(
            candidates.dim(),
            weights.dim(),
            "candidate dimensionality {} does not match sample dimensionality {}",
            candidates.dim(),
            weights.dim()
        );
    }
    let rows = candidates.len();
    let samples = weights.len();
    let dim = weights.dim();
    let mut data = Vec::with_capacity(rows * samples);
    if dim == 0 || samples == 0 || rows == 0 {
        data.resize(rows * samples, 0.0);
    } else {
        macro_rules! dispatch {
            ($($d:literal),+) => {
                match dim {
                    $($d => {
                        let stride = weights.stride();
                        let flat = weights.weights_flat();
                        for c in 0..rows {
                            let cand: &[f64; $d] = candidates
                                .row(c)
                                .try_into()
                                .expect("candidate rows match the dispatched dimensionality");
                            data.extend(
                                flat.chunks_exact(stride)
                                    .map(|w| lane_dot::<$d>(cand, w)),
                            );
                        }
                    })+
                    _ => score_rows_generic(candidates, weights, 0, rows, Sink::Append(&mut data)),
                }
            };
        }
        dispatch!(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16);
    }
    ScoreMatrix {
        candidates: rows,
        samples,
        data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrices(
        candidates: usize,
        samples: usize,
        dim: usize,
        seed: u64,
    ) -> (CandidateMatrix, WeightMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cand = CandidateMatrix::new(dim);
        for _ in 0..candidates {
            let row: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            cand.push_row(&row);
        }
        let mut weights = WeightMatrix::new(dim);
        for _ in 0..samples {
            let row: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            weights.push(&row, rng.gen_range(0.1..2.0));
        }
        (cand, weights)
    }

    #[test]
    fn kernel_matches_the_scalar_dot_product() {
        let (cand, weights) = random_matrices(37, 301, 5, 1);
        let scores = score_batch(&cand, &weights);
        for c in 0..cand.len() {
            for s in 0..weights.len() {
                let expected = dot(cand.row(c), weights.row(s));
                assert_eq!(scores.get(c, s), expected, "candidate {c} sample {s}");
            }
        }
    }

    #[test]
    fn threaded_kernel_is_bit_identical_to_the_serial_kernel() {
        // Sizes straddling the block boundaries and the serial cutoff.
        for (candidates, samples) in [(1, 1), (3, 700), (130, 300), (257, 511)] {
            let (cand, weights) = random_matrices(candidates, samples, 4, 2);
            let serial = score_batch(&cand, &weights);
            for threads in [2, 3, 8] {
                let parallel = score_batch_threaded(&cand, &weights, threads);
                assert_eq!(
                    serial, parallel,
                    "{candidates}x{samples} @ {threads} threads"
                );
            }
        }
    }

    #[test]
    fn empty_operands_produce_empty_matrices() {
        let (cand, _) = random_matrices(3, 0, 2, 3);
        let empty_weights = WeightMatrix::new(2);
        let scores = score_batch(&cand, &empty_weights);
        assert_eq!(scores.num_candidates(), 3);
        assert_eq!(scores.num_samples(), 0);
        assert!(scores.top_candidate_per_sample().is_empty());

        let empty_cand = CandidateMatrix::new(7);
        let (_, weights) = random_matrices(0, 4, 2, 4);
        // Dimensionalities disagree, but one side is empty: no scores exist to
        // be wrong, so the kernel returns the empty matrix instead of
        // panicking.
        let scores = score_batch(&empty_cand, &weights);
        assert_eq!(scores.num_candidates(), 0);
        assert_eq!(scores.num_samples(), 4);
    }

    #[test]
    #[should_panic(expected = "does not match sample dimensionality")]
    fn dimension_mismatch_panics_in_release_builds_too() {
        let (cand, _) = random_matrices(2, 0, 3, 5);
        let (_, weights) = random_matrices(0, 2, 4, 6);
        let _ = score_batch(&cand, &weights);
    }

    #[test]
    #[should_panic(expected = "weight sample dimensionality")]
    fn ragged_weight_rows_are_rejected_at_construction() {
        let mut weights = WeightMatrix::new(3);
        weights.push(&[0.1, 0.2, 0.3], 1.0);
        weights.push(&[0.1, 0.2], 1.0);
    }

    #[test]
    #[should_panic(expected = "candidate dimensionality")]
    fn ragged_candidate_rows_are_rejected_at_construction() {
        let mut cand = CandidateMatrix::new(2);
        cand.push_row(&[0.1, 0.2, 0.3]);
    }

    #[test]
    fn weighted_expectations_respect_importances() {
        let mut weights = WeightMatrix::new(1);
        weights.push(&[1.0], 1.0);
        weights.push(&[3.0], 3.0);
        let cand = CandidateMatrix::from_rows(1, &[vec![1.0]]);
        let scores = score_batch(&cand, &weights);
        // (1·1 + 3·3) / 4 = 2.5.
        let exp = scores.weighted_expectations(weights.importances());
        assert!((exp[0] - 2.5).abs() < 1e-12);
        // Degenerate importances reduce to zero instead of dividing by zero.
        let zeros = scores.weighted_expectations(&[0.0, 0.0]);
        assert_eq!(zeros, vec![0.0]);
    }

    #[test]
    fn top_candidate_and_threshold_reductions() {
        let mut weights = WeightMatrix::new(2);
        weights.push(&[1.0, 0.0], 1.0);
        weights.push(&[0.0, 1.0], 1.0);
        weights.push(&[-1.0, -1.0], 1.0);
        let cand =
            CandidateMatrix::from_rows(2, &[vec![0.9, 0.1], vec![0.1, 0.9], vec![-0.5, -0.5]]);
        let scores = score_batch(&cand, &weights);
        assert_eq!(scores.top_candidate_per_sample(), vec![0, 1, 2]);
        assert_eq!(scores.samples_above(0, 0.0), vec![0, 1]);
        assert_eq!(scores.samples_above(2, 0.0), vec![2]);
        assert_eq!(scores.candidate_row(1), &[0.1, 0.9, -1.0]);
    }

    #[test]
    fn matrix_accessors_and_row_replacement() {
        let mut weights = WeightMatrix::with_capacity(2, 2);
        weights.push(&[0.1, 0.2], 1.0);
        weights.push(&[0.3, 0.4], 2.0);
        assert_eq!(weights.len(), 2);
        assert_eq!(weights.dim(), 2);
        assert_eq!(weights.row(1), &[0.3, 0.4]);
        assert_eq!(weights.importance(1), 2.0);
        // The flat storage is stride-padded: dim 2 rounds up to one 4-lane
        // stride, with zeroed pad lanes after each row.
        assert_eq!(weights.stride(), 4);
        assert_eq!(
            weights.weights_flat(),
            &[0.1, 0.2, 0.0, 0.0, 0.3, 0.4, 0.0, 0.0]
        );
        let rows: Vec<&[f64]> = weights.rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[0.3, 0.4]);
        weights.set_row(0, &[0.5, 0.6], 3.0);
        assert_eq!(weights.row(0), &[0.5, 0.6]);
        assert_eq!(weights.importances(), &[3.0, 2.0]);

        let from = WeightMatrix::from_rows(2, &[vec![0.5, 0.6], vec![0.3, 0.4]], &[3.0, 2.0]);
        assert_eq!(from, weights);

        let cand = CandidateMatrix::from_rows(3, &[vec![1.0, 2.0, 3.0]]);
        assert_eq!(cand.dim(), 3);
        assert_eq!(cand.len(), 1);
        assert!(!cand.is_empty());
        assert_eq!(cand.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn stride_is_padded_to_the_lane_width() {
        for (dim, stride) in [(0, 0), (1, 4), (2, 4), (4, 4), (5, 8), (8, 8), (9, 12)] {
            let m = WeightMatrix::new(dim);
            assert_eq!(m.stride(), stride, "dim {dim}");
        }
        // Pad lanes stay zero through set_row as well as push.
        let mut m = WeightMatrix::new(3);
        m.push(&[1.0, 2.0, 3.0], 1.0);
        m.set_row(0, &[4.0, 5.0, 6.0], 2.0);
        assert_eq!(m.weights_flat(), &[4.0, 5.0, 6.0, 0.0]);
    }

    #[test]
    fn blocked_kernel_is_bit_identical_to_the_unrolled_arm() {
        // Shapes straddling the SAMPLE_BLOCK boundary (remainder lanes) and
        // the unrolled-dim ceiling (generic fallback).
        for (candidates, samples, dim) in [
            (1, 1, 2),
            (3, 7, 5),
            (5, 8, 3),
            (7, 9, 4),
            (11, 1000, 6),
            (13, 257, 17),
        ] {
            let (cand, weights) = random_matrices(candidates, samples, dim, 11);
            let blocked = score_batch(&cand, &weights);
            let unrolled = score_batch_unrolled(&cand, &weights);
            assert_eq!(blocked, unrolled, "{candidates}x{samples}x{dim}");
            for c in 0..candidates {
                for s in 0..samples {
                    assert_eq!(
                        blocked.get(c, s),
                        dot(cand.row(c), weights.row(s)),
                        "{candidates}x{samples}x{dim} cell ({c},{s})"
                    );
                }
            }
        }
    }

    #[test]
    fn retain_rows_compacts_in_place_and_keeps_the_allocation() {
        let mut m = WeightMatrix::new(2);
        for i in 0..6 {
            m.push(&[i as f64, -(i as f64)], 1.0 + i as f64);
        }
        let capacity = m.weights.capacity();
        let kept = m.retain_rows(|i, row| {
            assert_eq!(row[0], i as f64, "callback sees the original row");
            i % 2 == 0
        });
        assert_eq!(kept, 3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.row(0), &[0.0, -0.0]);
        assert_eq!(m.row(1), &[2.0, -2.0]);
        assert_eq!(m.row(2), &[4.0, -4.0]);
        assert_eq!(m.importances(), &[1.0, 3.0, 5.0]);
        assert_eq!(m.weights.capacity(), capacity, "no reallocation");
        // Pad lanes survive compaction (the kernel reads through them).
        assert_eq!(m.weights_flat().len(), 3 * m.stride());
        m.truncate(1);
        assert_eq!(m.len(), 1);
        m.truncate(5); // no-op past the end
        assert_eq!(m.len(), 1);
    }
}
