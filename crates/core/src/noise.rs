//! Noisy-feedback handling (Section 7).
//!
//! A user's clicks can be wrong: the paper models this by assuming every
//! feedback preference is independently *correct* with probability ψ.  A
//! candidate weight vector that violates `x` preferences should then be
//! rejected only with probability `1 - (1 - ψ)^x` — the probability that at
//! least one of the violated preferences was genuine — rather than
//! deterministically.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// The feedback noise model: each preference is independently correct with
/// probability `psi`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    psi: f64,
}

impl NoiseModel {
    /// Creates a noise model; `psi` must lie in `[0, 1]`.
    pub fn new(psi: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&psi) || !psi.is_finite() {
            return Err(CoreError::InvalidConfig(format!(
                "feedback correctness probability must lie in [0, 1], got {psi}"
            )));
        }
        Ok(NoiseModel { psi })
    }

    /// The noiseless model (`ψ = 1`): every feedback is trusted.
    pub fn noiseless() -> Self {
        NoiseModel { psi: 1.0 }
    }

    /// The probability that a single feedback preference is correct.
    pub fn psi(&self) -> f64 {
        self.psi
    }

    /// Probability of rejecting a weight vector that violates `violations`
    /// preferences: `1 - (1 - ψ)^x`.
    pub fn rejection_probability(&self, violations: usize) -> f64 {
        if violations == 0 {
            0.0
        } else {
            1.0 - (1.0 - self.psi).powi(violations as i32)
        }
    }

    /// Probability of keeping such a weight vector: `(1 - ψ)^x`.
    pub fn acceptance_probability(&self, violations: usize) -> f64 {
        1.0 - self.rejection_probability(violations)
    }

    /// Randomly decides whether to accept a weight vector with the given
    /// violation count.
    pub fn accept<R: Rng + ?Sized>(&self, violations: usize, rng: &mut R) -> bool {
        if violations == 0 {
            return true;
        }
        let keep = self.acceptance_probability(violations);
        if keep <= 0.0 {
            false
        } else {
            rng.gen::<f64>() < keep
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::noiseless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_psi() {
        assert!(NoiseModel::new(0.0).is_ok());
        assert!(NoiseModel::new(1.0).is_ok());
        assert!(NoiseModel::new(0.8).is_ok());
        assert!(NoiseModel::new(-0.1).is_err());
        assert!(NoiseModel::new(1.1).is_err());
        assert!(NoiseModel::new(f64::NAN).is_err());
        assert_eq!(NoiseModel::default().psi(), 1.0);
    }

    #[test]
    fn noiseless_model_rejects_any_violation() {
        let m = NoiseModel::noiseless();
        assert_eq!(m.rejection_probability(0), 0.0);
        assert_eq!(m.rejection_probability(1), 1.0);
        assert_eq!(m.rejection_probability(5), 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(m.accept(0, &mut rng));
        assert!(!m.accept(3, &mut rng));
    }

    #[test]
    fn fully_noisy_model_never_rejects() {
        let m = NoiseModel::new(0.0).unwrap();
        assert_eq!(m.rejection_probability(10), 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(m.accept(10, &mut rng));
    }

    #[test]
    fn rejection_probability_follows_formula() {
        let m = NoiseModel::new(0.8).unwrap();
        assert!((m.rejection_probability(1) - 0.8).abs() < 1e-12);
        assert!((m.rejection_probability(2) - (1.0 - 0.2f64.powi(2))).abs() < 1e-12);
        assert!((m.acceptance_probability(2) - 0.04).abs() < 1e-12);
        // More violations can only increase the rejection probability.
        let mut last = 0.0;
        for x in 0..10 {
            let p = m.rejection_probability(x);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn empirical_acceptance_matches_probability() {
        let m = NoiseModel::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 100_000;
        let accepted = (0..trials).filter(|_| m.accept(2, &mut rng)).count() as f64;
        let expected = m.acceptance_probability(2); // 0.25
        assert!((accepted / trials as f64 - expected).abs() < 0.01);
    }
}
