//! The package recommender engine: ties the prior, the preference store, the
//! constrained samplers, the per-sample package search and the ranking
//! semantics into the interactive loop of the paper (Sections 2–4).
//!
//! Construct engines with [`RecommenderEngine::builder`] (see
//! [`crate::builder::EngineBuilder`]), drive them through the
//! [`crate::recommender::Recommender`] trait, and persist them with
//! [`RecommenderEngine::snapshot`] / [`RecommenderEngine::restore`].

use pkgrec_gmm::GaussianMixture;
use pkgrec_topk::SortedLists;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::builder::EngineBuilder;
use crate::constraints::ConstraintChecker;
use crate::error::{CoreError, Result};
use crate::item::Catalog;
use crate::maintenance::{self, MaintenanceStrategy};
use crate::package::Package;
use crate::preferences::{Preference, PreferenceStore};
use crate::profile::{AggregationContext, Profile};
use crate::ranking::{aggregate, PerSampleRanking, RankedPackage, RankingSemantics};
use crate::recommender::{self, Feedback};
use crate::sampler::{SamplePool, SamplerKind};
use crate::search::AggregatedSearchStats;

/// Configuration of the recommender engine.
///
/// Prefer assembling configurations through [`RecommenderEngine::builder`],
/// which validates every field before the engine is constructed; raw struct
/// literals remain supported and are validated by [`EngineConfig::validate`]
/// at engine-construction time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of packages recommended per round (the paper presents 5).
    pub k: usize,
    /// Number of additional random exploration packages per round (also 5).
    pub num_random: usize,
    /// Number of weight-vector samples maintained in the pool.
    pub num_samples: usize,
    /// Ranking semantics used to aggregate per-sample results.
    pub semantics: RankingSemantics,
    /// Constrained sampling strategy.
    pub sampler: SamplerKind,
    /// Strategy for maintaining the pool when new feedback arrives.
    pub maintenance: MaintenanceStrategy,
    /// Number of Gaussians in the prior mixture.
    pub prior_components: usize,
    /// Standard deviation of each prior component.
    pub prior_sigma: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            k: 5,
            num_random: 5,
            num_samples: 200,
            semantics: RankingSemantics::Exp,
            sampler: SamplerKind::mcmc(),
            maintenance: MaintenanceStrategy::Hybrid { gamma: 0.025 },
            prior_components: 1,
            prior_sigma: 0.5,
        }
    }
}

impl EngineConfig {
    /// Validates every catalog-independent field, returning a distinct
    /// [`CoreError::InvalidConfig`] message per defect.
    ///
    /// Catalog-dependent checks (`k` against the package space, the profile
    /// dimensionality, the maximum package size) are performed by
    /// [`EngineBuilder::build`].
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(CoreError::InvalidConfig("k must be at least 1".into()));
        }
        if self.num_samples == 0 {
            return Err(CoreError::InvalidConfig(
                "num_samples must be at least 1".into(),
            ));
        }
        if self.prior_components == 0 {
            return Err(CoreError::InvalidConfig(
                "prior_components must be at least 1".into(),
            ));
        }
        if !self.prior_sigma.is_finite() || self.prior_sigma <= 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "prior_sigma must be positive and finite, got {}",
                self.prior_sigma
            )));
        }
        if let MaintenanceStrategy::Hybrid { gamma } = self.maintenance {
            if !gamma.is_finite() || gamma <= 0.0 || gamma >= 1.0 {
                return Err(CoreError::InvalidConfig(format!(
                    "hybrid maintenance gamma must lie in the open interval (0, 1), got {gamma}"
                )));
            }
        }
        Ok(())
    }
}

/// The interactive package recommender.
#[derive(Debug, Clone)]
pub struct RecommenderEngine {
    catalog: Catalog,
    context: AggregationContext,
    prior: GaussianMixture,
    preferences: PreferenceStore,
    pool: SamplePool,
    config: EngineConfig,
    rounds: usize,
    /// OS threads the scoring stack may use (a process-local deployment knob,
    /// not session state — snapshots neither store nor restore it).
    num_threads: usize,
    /// Per-feature sorted item lists over the catalog, built once at
    /// construction and shared by every per-sample `Top-k-Pkg` run (the order
    /// is weight-independent; only scan directions vary per sample).  Derived
    /// state: snapshots do not store it, restoration rebuilds it.
    sorted_lists: SortedLists,
    /// Aggregated `Top-k-Pkg` statistics across the engine's lifetime
    /// (process-local observability, not session state — snapshots neither
    /// store nor restore it).
    search_stats: AggregatedSearchStats,
    /// Pool samples carried over by incremental resampling instead of being
    /// re-drawn, accumulated across every [`RecommenderEngine::resample`]
    /// call (process-local observability like `search_stats`; snapshots
    /// neither store nor restore it).
    samples_reused: usize,
}

impl RecommenderEngine {
    /// Starts a fluent, validating builder over a catalog and a profile — the
    /// preferred way to construct an engine:
    ///
    /// ```
    /// use pkgrec_core::prelude::*;
    ///
    /// let catalog = Catalog::from_rows(vec![vec![0.6, 0.2], vec![0.2, 0.4]]).unwrap();
    /// let engine = RecommenderEngine::builder(catalog, Profile::cost_quality())
    ///     .max_package_size(2)
    ///     .k(2)
    ///     .semantics(RankingSemantics::Exp)
    ///     .sampler(SamplerKind::mcmc())
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(engine.config().k, 2);
    /// ```
    pub fn builder(catalog: Catalog, profile: Profile) -> EngineBuilder {
        EngineBuilder::new(catalog, profile)
    }

    /// Assembles an engine from already-validated parts (used by the builder
    /// and by snapshot restoration).
    #[allow(clippy::too_many_arguments)] // one slot per validated engine part
    pub(crate) fn assemble(
        catalog: Catalog,
        context: AggregationContext,
        prior: GaussianMixture,
        preferences: PreferenceStore,
        pool: SamplePool,
        config: EngineConfig,
        rounds: usize,
        num_threads: usize,
    ) -> Self {
        let sorted_lists = SortedLists::new(catalog.rows());
        RecommenderEngine {
            catalog,
            context,
            prior,
            preferences,
            pool,
            config,
            rounds,
            num_threads,
            sorted_lists,
            search_stats: AggregatedSearchStats::default(),
            samples_reused: 0,
        }
    }

    /// The catalog the engine recommends from.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The aggregation context (profile, normalisers, φ).
    pub fn context(&self) -> &AggregationContext {
        &self.context
    }

    /// The prior over weight vectors.
    pub fn prior(&self) -> &GaussianMixture {
        &self.prior
    }

    /// The preference store accumulated from feedback.
    pub fn preferences(&self) -> &PreferenceStore {
        &self.preferences
    }

    /// The current sample pool.
    pub fn pool(&self) -> &SamplePool {
        &self.pool
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of feedback rounds recorded so far (including skips).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of OS threads the scoring stack may use (1 = fully serial).
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The catalog's per-feature sorted item lists, built once at engine
    /// construction and reused by every per-sample package search.
    pub fn sorted_lists(&self) -> &SortedLists {
        &self.sorted_lists
    }

    /// Aggregated `Top-k-Pkg` statistics across every recommendation the
    /// engine has computed (the counter baseline for search-performance work).
    pub fn search_stats(&self) -> AggregatedSearchStats {
        self.search_stats
    }

    /// Resets the aggregated search statistics to zero.
    pub fn reset_search_stats(&mut self) {
        self.search_stats = AggregatedSearchStats::default();
    }

    /// Changes the scoring-thread budget of a live engine (e.g. after
    /// [`RecommenderEngine::restore`], which always resumes serial); validated
    /// like [`EngineBuilder::num_threads`](crate::builder::EngineBuilder::num_threads).
    pub fn set_num_threads(&mut self, num_threads: usize) -> Result<()> {
        crate::builder::validate_num_threads(num_threads)?;
        self.num_threads = num_threads;
        Ok(())
    }

    /// The constraint checker over the transitively reduced preference set.
    pub fn checker(&self) -> ConstraintChecker {
        ConstraintChecker::reduced(&self.preferences, self.context.dim())
    }

    /// (Re)fills the sample pool with `num_samples` valid samples —
    /// incrementally: pool rows that already satisfy the current constraints
    /// are kept in place (reusing the flat weight-matrix allocation) and
    /// only the shortfall is re-drawn (see [`SamplePool::resample`]).  The
    /// carried-over rows accumulate into
    /// [`RecommenderEngine::samples_reused`]; an empty pool degenerates to
    /// the historical full rebuild, drawing the same samples in the same
    /// order.
    pub fn resample(&mut self, rng: &mut dyn RngCore) -> Result<()> {
        let checker = self.checker();
        let reused = self.pool.resample(
            self.config.num_samples,
            &self.config.sampler,
            &self.prior,
            &checker,
            rng,
        )?;
        self.samples_reused += reused;
        Ok(())
    }

    /// Cumulative number of pool samples incremental resampling carried over
    /// instead of re-drawing, across every [`RecommenderEngine::resample`]
    /// call of this engine's lifetime (the reuse-rate counter for perf work;
    /// process-local, like [`RecommenderEngine::search_stats`]).
    pub fn samples_reused(&self) -> usize {
        self.samples_reused
    }

    fn per_sample_k(&self) -> usize {
        self.config.semantics.per_sample_depth(self.config.k)
    }

    /// Computes the per-sample top-k package rankings for the current pool,
    /// batched through the scoring kernel over the engine's cached sorted
    /// lists and split across the configured number of threads.  The runs'
    /// search statistics accumulate into [`RecommenderEngine::search_stats`].
    pub fn per_sample_rankings(&mut self) -> Result<Vec<PerSampleRanking>> {
        let (rankings, stats) = recommender::per_sample_rankings_indexed(
            &self.context,
            &self.catalog,
            &self.sorted_lists,
            &self.pool,
            self.per_sample_k(),
            self.num_threads,
        )?;
        self.search_stats.merge(&stats);
        Ok(rankings)
    }

    /// Produces the current top-k recommendation under the configured ranking
    /// semantics, sampling the pool first if it is empty.
    pub fn recommend(&mut self, rng: &mut dyn RngCore) -> Result<Vec<RankedPackage>> {
        if self.pool.is_empty() {
            self.resample(rng)?;
        }
        let results = self.per_sample_rankings()?;
        Ok(aggregate(self.config.semantics, &results, self.config.k))
    }

    /// Draws `count` random exploration packages (uniform random size in
    /// `1..=φ`, uniform random distinct items).
    pub fn random_packages(&self, count: usize, rng: &mut dyn RngCore) -> Vec<Package> {
        let n = self.catalog.len();
        let phi = self.context.max_package_size().min(n);
        (0..count)
            .map(|_| crate::package::random_package(n, phi, rng))
            .collect()
    }

    /// Builds the presentation list of one elicitation round: the current
    /// best packages (exploitation) followed by random packages (exploration),
    /// de-duplicated (Section 2.2).
    pub fn present(&mut self, rng: &mut dyn RngCore) -> Result<Vec<Package>> {
        let mut shown: Vec<Package> = self
            .recommend(rng)?
            .into_iter()
            .map(|r| r.package)
            .collect();
        recommender::extend_with_random_packages(
            &mut shown,
            self.config.k + self.config.num_random,
            self.catalog.len(),
            self.context.max_package_size(),
            rng,
        );
        Ok(shown)
    }

    /// Runs the *mutating* half of one `present` round and captures every
    /// artefact the scoring sweep needs, without running the sweep itself.
    ///
    /// This is the submission side of the batched-present decomposition
    /// (`prepare_present` → [`score_stacked`] → [`RecommenderEngine::present_from_scores`]):
    /// an empty pool resamples through the caller's RNG exactly where the
    /// serial [`RecommenderEngine::present`] would, candidate discovery
    /// (`Top-k-Pkg`) runs the same per-engine call and merges its search
    /// stats, and the current pool rows are copied out so the sweep can run
    /// *after* the engine borrow ends — on another thread, stacked with
    /// other sessions' preps, or locally as a singleton group.
    ///
    /// The RNG must not be touched between this call and the matching
    /// [`RecommenderEngine::present_from_scores`]: the serial stream order
    /// within one present is resample → discovery (no draws) → random
    /// exploration tail.
    pub fn prepare_present(&mut self, rng: &mut dyn RngCore) -> Result<PresentPrep> {
        // The serial `present` resamples an empty pool from the caller's RNG
        // before anything else; keep that stream position.
        if self.pool.is_empty() {
            self.resample(rng)?;
        }
        let (candidates, vectors, per_sample, stats) = recommender::discover_candidates(
            &self.context,
            &self.catalog,
            &self.sorted_lists,
            &self.pool,
            self.per_sample_k(),
            self.num_threads,
        )?;
        self.search_stats.merge(&stats);
        Ok(PresentPrep {
            candidates,
            vectors,
            per_sample,
            samples: self.pool.weight_matrix().clone(),
            num_threads: self.num_threads,
        })
    }

    /// Runs the post-sweep half of one `present` round: per-sample rankings
    /// read back through the union remap, semantic aggregation, and the
    /// random exploration tail drawn from the *same* RNG that was handed to
    /// [`RecommenderEngine::prepare_present`].
    ///
    /// `member` is this prep's position in the `preps` slice handed to
    /// [`score_stacked`].  The result is bit-identical to what the serial
    /// [`RecommenderEngine::present`] would have returned from the same
    /// state and RNG — every score cell is the same feature-ordered dot
    /// product regardless of what else shares the stack.
    ///
    /// # Panics
    /// Panics if `member` does not index this prep's slot in `stacked`.
    pub fn present_from_scores(
        &self,
        prep: &PresentPrep,
        member: usize,
        stacked: &StackedScores,
        rng: &mut dyn RngCore,
    ) -> Vec<Package> {
        let remap = &stacked.remaps[member];
        let col_offset = stacked.col_offsets[member];
        let importances = prep.samples.importances();
        let rankings: Vec<PerSampleRanking> = prep
            .per_sample
            .iter()
            .enumerate()
            .map(|(s, indices)| {
                let ranked = indices
                    .iter()
                    .map(|&c| {
                        let u = remap[c];
                        (
                            stacked.union[u].clone(),
                            stacked.scores.get(u, col_offset + s),
                        )
                    })
                    .collect();
                PerSampleRanking::new(importances[s], ranked)
            })
            .collect();
        let mut shown: Vec<Package> = aggregate(self.config.semantics, &rankings, self.config.k)
            .into_iter()
            .map(|r| r.package)
            .collect();
        recommender::extend_with_random_packages(
            &mut shown,
            self.config.k + self.config.num_random,
            self.catalog.len(),
            self.context.max_package_size(),
            rng,
        );
        shown
    }

    /// Builds one presentation round for a whole *group* of engines that
    /// share a catalog, profile and maximum package size, feeding the union
    /// of every session's discovered candidates and the concatenation of
    /// every session's pool through **one** batched
    /// [`score_batch`](crate::scoring::score_batch) invocation instead of
    /// one kernel call per session.
    ///
    /// Each element pairs an engine with the RNG its `present` would have
    /// received; the returned lists are positionally aligned with the input
    /// and **bit-identical** to calling [`RecommenderEngine::present`] on
    /// each engine with its own RNG:
    ///
    /// * empty pools resample through their own RNG first, exactly where the
    ///   serial path would,
    /// * candidate discovery (`Top-k-Pkg`) is the same per-engine call,
    /// * every score cell is the same feature-ordered dot product — stacking
    ///   more sample columns next to it cannot change its value — and the
    ///   union rows reuse the per-engine candidate vectors, which equal
    ///   contexts compute identically,
    /// * the random exploration tail draws from each session's own RNG in
    ///   the serial order.
    ///
    /// The grouping precondition (equal catalogs and aggregation contexts)
    /// is the caller's to uphold and is checked in debug builds only —
    /// the serving layer groups sessions by their interned catalog handle.
    ///
    /// This is exactly [`RecommenderEngine::prepare_present`] →
    /// [`score_stacked`] → [`RecommenderEngine::present_from_scores`] with
    /// all three stages on the calling thread; the cross-shard scoring
    /// service in `pkgrec-serve` runs the same stages with the sweep hoisted
    /// onto a shared batcher.
    pub fn present_batch(
        sessions: &mut [(&mut RecommenderEngine, &mut dyn RngCore)],
    ) -> Result<Vec<Vec<Package>>> {
        if sessions.is_empty() {
            return Ok(Vec::new());
        }
        debug_assert!(
            sessions
                .iter()
                .all(|(e, _)| e.catalog == sessions[0].0.catalog
                    && e.context == sessions[0].0.context),
            "present_batch groups must share one catalog and aggregation context"
        );
        let mut preps = Vec::with_capacity(sessions.len());
        for (engine, rng) in sessions.iter_mut() {
            preps.push(engine.prepare_present(&mut **rng)?);
        }
        let refs: Vec<&PresentPrep> = preps.iter().collect();
        let stacked = score_stacked(&refs);
        Ok(sessions
            .iter_mut()
            .zip(preps.iter().enumerate())
            .map(|((engine, rng), (member, prep))| {
                engine.present_from_scores(prep, member, &stacked, &mut **rng)
            })
            .collect())
    }

    /// Absorbs one pairwise preference `better ≻ worse` (with the better
    /// package's feature vector already computed): the preference DAG stores
    /// it (silently dropping a conflicting preference that would create a
    /// cycle, which the paper resolves by re-asking the user) and the sample
    /// pool is maintained against each genuinely new constraint.  Returns 1
    /// if a new preference was recorded, 0 otherwise.
    fn absorb_preference_vector(
        &mut self,
        better_key: String,
        better_vector: &[f64],
        worse: &Package,
        rng: &mut dyn RngCore,
    ) -> Result<usize> {
        let worse_vector = self.context.package_vector(&self.catalog, worse)?;
        let inserted =
            match self
                .preferences
                .add(better_key, better_vector, worse.key(), &worse_vector)
            {
                Ok(true) => true,
                Ok(false) => false,
                // A conflicting preference (cycle) is dropped; the elicitation
                // loop will naturally re-present the packages involved.
                Err(CoreError::PreferenceCycle { .. }) => false,
                Err(e) => return Err(e),
            };
        if !inserted {
            return Ok(0);
        }
        let preference = Preference::new(better_vector.to_vec(), worse_vector);
        if !self.pool.is_empty() {
            let checker = self.checker();
            let index = maintenance::index_pool(&self.pool);
            maintenance::maintain_pool(
                &mut self.pool,
                Some(&index),
                &preference,
                self.config.maintenance,
                &self.config.sampler,
                &self.prior,
                &checker,
                rng,
            )?;
        }
        Ok(1)
    }

    /// Interprets a click on `clicked` among the `shown` packages as the
    /// pairwise preferences `clicked ≻ other` for every other shown package.
    /// The clicked package's feature vector is computed once for the round.
    fn click_package(
        &mut self,
        clicked: &Package,
        shown: &[Package],
        rng: &mut dyn RngCore,
    ) -> Result<usize> {
        let clicked_vector = self.context.package_vector(&self.catalog, clicked)?;
        let mut added = 0usize;
        for other in shown {
            if other == clicked {
                continue;
            }
            added += self.absorb_preference_vector(clicked.key(), &clicked_vector, other, rng)?;
        }
        Ok(added)
    }

    /// Records one round of typed [`Feedback`] against the `shown` packages
    /// (Section 2.2: every click yields pairwise preferences; the preference
    /// DAG absorbs them and the pool is maintained per new constraint).
    /// Returns the number of new preferences recorded.
    pub fn record_feedback(
        &mut self,
        shown: &[Package],
        feedback: Feedback,
        rng: &mut dyn RngCore,
    ) -> Result<usize> {
        feedback.validate(shown)?;
        let added = match feedback {
            Feedback::Click { index } => self.click_package(&shown[index], shown, rng)?,
            Feedback::Skip => 0,
            Feedback::Pairwise { preferred, over } => {
                let better = &shown[preferred];
                let better_vector = self.context.package_vector(&self.catalog, better)?;
                self.absorb_preference_vector(better.key(), &better_vector, &shown[over], rng)?
            }
        };
        self.rounds += 1;
        Ok(added)
    }
}

/// The per-session artefacts of one batched `present` round, produced by
/// [`RecommenderEngine::prepare_present`] and consumed by
/// [`RecommenderEngine::present_from_scores`].
///
/// A prep is self-contained — the discovered candidate slate, its feature
/// vectors, the per-sample candidate indices, and a copy of the pool's
/// weight rows — so it can leave the engine borrow, travel to a shared
/// batcher, and be scored next to preps from *other* sessions (or alone:
/// a singleton stack computes exactly the serial result).
#[derive(Debug, Clone)]
pub struct PresentPrep {
    candidates: Vec<Package>,
    vectors: crate::scoring::CandidateMatrix,
    per_sample: Vec<Vec<usize>>,
    samples: crate::scoring::WeightMatrix,
    num_threads: usize,
}

impl PresentPrep {
    /// Number of candidate packages this session discovered (a cost hint
    /// for admission policies: the sweep is `candidates × samples` cells).
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of weight samples this session contributes to the stack.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }
}

/// One kernel sweep's results over a stack of [`PresentPrep`]s: the union
/// candidate slate, the score matrix, and each member's remap/column-offset
/// into them.  Produced by [`score_stacked`], consumed by
/// [`RecommenderEngine::present_from_scores`] — immutable, so one sweep can
/// be shared (e.g. behind an `Arc`) by every member session's readback.
#[derive(Debug)]
pub struct StackedScores {
    union: Vec<Package>,
    scores: crate::scoring::ScoreMatrix,
    remaps: Vec<Vec<usize>>,
    col_offsets: Vec<usize>,
}

impl StackedScores {
    /// Number of member preps the stack was built from.
    pub fn members(&self) -> usize {
        self.remaps.len()
    }

    /// Size of the union candidate slate the sweep scored.
    pub fn union_len(&self) -> usize {
        self.union.len()
    }
}

/// Scores a stack of [`PresentPrep`]s in **one** batched
/// [`score_batch`](crate::scoring::score_batch) sweep: member candidate
/// slates are deduplicated into a union (first appearance wins, reusing the
/// introducing member's feature vectors — equal contexts compute identical
/// vectors), member sample rows are concatenated into one
/// [`WeightMatrix`](crate::scoring::WeightMatrix), and the kernel runs once
/// over `union × stack` with the largest member thread hint.
///
/// Every prep in the stack must come from engines sharing one catalog and
/// aggregation context (the same precondition as
/// [`RecommenderEngine::present_batch`], upheld by the caller).  Because
/// each score cell is an independent dot product and the kernel is
/// bit-stable across thread counts, member results never depend on who else
/// shares the stack.
pub fn score_stacked(preps: &[&PresentPrep]) -> StackedScores {
    let dim = preps.first().map_or(0, |prep| prep.vectors.dim());
    let mut union: Vec<Package> = Vec::new();
    let mut union_index: std::collections::HashMap<Package, usize> =
        std::collections::HashMap::new();
    let mut union_vectors = crate::scoring::CandidateMatrix::new(dim);
    let mut stacked = crate::scoring::WeightMatrix::new(dim);
    let mut remaps = Vec::with_capacity(preps.len());
    let mut col_offsets = Vec::with_capacity(preps.len());
    let mut threads = 1usize;
    for prep in preps {
        threads = threads.max(prep.num_threads);
        let remap: Vec<usize> = prep
            .candidates
            .iter()
            .enumerate()
            .map(|(i, package)| match union_index.get(package) {
                Some(&u) => u,
                None => {
                    let u = union.len();
                    union_vectors.push_row(prep.vectors.row(i));
                    union_index.insert(package.clone(), u);
                    union.push(package.clone());
                    u
                }
            })
            .collect();
        col_offsets.push(stacked.len());
        for s in 0..prep.samples.len() {
            stacked.push(prep.samples.row(s), prep.samples.importance(s));
        }
        remaps.push(remap);
    }
    let scores = crate::scoring::score_batch_threaded(&union_vectors, &stacked, threads);
    StackedScores {
        union,
        scores,
        remaps,
        col_offsets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_catalog() -> Catalog {
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
            vec![0.7, 0.1],
            vec![0.1, 0.3],
            vec![0.5, 0.9],
        ])
        .unwrap()
    }

    fn engine(config: EngineConfig) -> RecommenderEngine {
        RecommenderEngine::builder(small_catalog(), Profile::cost_quality())
            .max_package_size(3)
            .config(config)
            .build()
            .unwrap()
    }

    fn fast_config() -> EngineConfig {
        EngineConfig {
            k: 3,
            num_random: 2,
            num_samples: 40,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn config_escape_hatch_still_validates() {
        let bad_k = EngineConfig {
            k: 0,
            ..EngineConfig::default()
        };
        assert!(matches!(
            RecommenderEngine::builder(small_catalog(), Profile::cost_quality())
                .max_package_size(3)
                .config(bad_k)
                .build(),
            Err(CoreError::InvalidConfig(_))
        ));
        let bad_samples = EngineConfig {
            num_samples: 0,
            ..EngineConfig::default()
        };
        assert!(matches!(
            RecommenderEngine::builder(small_catalog(), Profile::cost_quality())
                .max_package_size(3)
                .config(bad_samples)
                .build(),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn thread_budget_is_adjustable_and_validated() {
        let mut engine = engine(fast_config());
        assert_eq!(engine.num_threads(), 1);
        engine.set_num_threads(4).unwrap();
        assert_eq!(engine.num_threads(), 4);
        assert!(matches!(
            engine.set_num_threads(0),
            Err(CoreError::InvalidConfig(_))
        ));
        assert_eq!(engine.num_threads(), 4);
        // A threaded engine recommends exactly what a serial engine does.
        let mut rng_a = StdRng::seed_from_u64(12);
        let mut rng_b = StdRng::seed_from_u64(12);
        let mut serial = engine.clone();
        serial.set_num_threads(1).unwrap();
        assert_eq!(
            engine.recommend(&mut rng_a).unwrap(),
            serial.recommend(&mut rng_b).unwrap()
        );
    }

    #[test]
    fn recommend_returns_k_distinct_packages() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut engine = engine(fast_config());
        let recs = engine.recommend(&mut rng).unwrap();
        assert_eq!(recs.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for r in &recs {
            assert!(seen.insert(r.package.clone()), "duplicate recommendation");
            assert!(r.package.len() <= 3);
        }
        assert_eq!(engine.pool().len(), 40);
    }

    #[test]
    fn present_combines_recommendations_and_random_packages() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut engine = engine(fast_config());
        let shown = engine.present(&mut rng).unwrap();
        assert_eq!(shown.len(), 5);
        let mut unique = shown.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), shown.len());
    }

    #[test]
    fn feedback_click_adds_preferences_and_keeps_pool_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut engine = engine(fast_config());
        let shown = engine.present(&mut rng).unwrap();
        let added = engine
            .record_feedback(&shown, Feedback::Click { index: 1 }, &mut rng)
            .unwrap();
        assert_eq!(added, shown.len() - 1);
        assert_eq!(engine.preferences().len(), added);
        assert_eq!(engine.rounds(), 1);
        // Every sample in the pool satisfies the updated (reduced) constraints.
        let checker = engine.checker();
        for s in engine.pool().samples() {
            assert!(checker.is_valid(s.weights));
        }
    }

    #[test]
    fn feedback_skip_and_bad_indices() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut engine = engine(fast_config());
        let shown = engine.present(&mut rng).unwrap();
        assert_eq!(
            engine
                .record_feedback(&shown, Feedback::Skip, &mut rng)
                .unwrap(),
            0
        );
        assert_eq!(engine.rounds(), 1);
        assert!(matches!(
            engine.record_feedback(&shown, Feedback::Click { index: 99 }, &mut rng),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(matches!(
            engine.record_feedback(
                &shown,
                Feedback::Pairwise {
                    preferred: 0,
                    over: 0
                },
                &mut rng
            ),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(matches!(
            engine.record_feedback(
                &shown,
                Feedback::Pairwise {
                    preferred: 0,
                    over: 99
                },
                &mut rng
            ),
            Err(CoreError::InvalidConfig(_))
        ));
        // Failed feedback never counts as a round.
        assert_eq!(engine.rounds(), 1);
    }

    #[test]
    fn pairwise_feedback_records_exactly_one_preference() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut engine = engine(fast_config());
        let shown = engine.present(&mut rng).unwrap();
        let added = engine
            .record_feedback(
                &shown,
                Feedback::Pairwise {
                    preferred: 0,
                    over: 1,
                },
                &mut rng,
            )
            .unwrap();
        assert_eq!(added, 1);
        assert_eq!(engine.preferences().len(), 1);
        let checker = engine.checker();
        for s in engine.pool().samples() {
            assert!(checker.is_valid(s.weights));
        }
    }

    #[test]
    fn feedback_steers_recommendations_toward_the_clicked_taste() {
        // The user always clicks the cheapest package; after a few rounds the
        // recommended packages should have much lower cost than quality-first
        // recommendations would.
        let mut rng = StdRng::seed_from_u64(4);
        let mut engine = engine(EngineConfig {
            k: 3,
            num_random: 3,
            num_samples: 60,
            ..EngineConfig::default()
        });
        let catalog = engine.catalog().clone();
        let cost_of = |p: &Package| -> f64 {
            p.items()
                .iter()
                .map(|&i| catalog.item_unchecked(i)[0])
                .sum()
        };
        for _ in 0..4 {
            let shown = engine.present(&mut rng).unwrap();
            let cheapest = (0..shown.len())
                .min_by(|&a, &b| cost_of(&shown[a]).partial_cmp(&cost_of(&shown[b])).unwrap())
                .unwrap();
            engine
                .record_feedback(&shown, Feedback::Click { index: cheapest }, &mut rng)
                .unwrap();
        }
        let recs = engine.recommend(&mut rng).unwrap();
        let avg_cost: f64 =
            recs.iter().map(|r| cost_of(&r.package)).sum::<f64>() / recs.len() as f64;
        // The cheapest single item costs 0.1; recommendations should stay well
        // below the cost of an average random package (~0.9 for two items).
        assert!(avg_cost < 0.8, "average recommended cost {avg_cost}");
    }

    #[test]
    fn different_semantics_share_the_same_engine() {
        let mut rng = StdRng::seed_from_u64(5);
        for semantics in [
            RankingSemantics::Exp,
            RankingSemantics::Tkp { sigma: 3 },
            RankingSemantics::Mpo,
        ] {
            let mut engine = engine(EngineConfig {
                semantics,
                ..fast_config()
            });
            let recs = engine.recommend(&mut rng).unwrap();
            assert!(!recs.is_empty(), "{semantics:?}");
            assert!(recs.len() <= 3);
        }
    }

    #[test]
    fn random_packages_respect_size_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let engine = engine(fast_config());
        for p in engine.random_packages(50, &mut rng) {
            assert!(!p.is_empty() && p.len() <= 3);
            assert!(p.items().iter().all(|&i| i < engine.catalog().len()));
        }
    }

    #[test]
    fn present_batch_is_bit_identical_to_serial_presents() {
        // A mixed group: different seeds, different k, one engine mid-session
        // (so one pool is constrained), one empty-pool engine (resamples
        // through its own RNG inside the batch).
        let configs = [
            fast_config(),
            EngineConfig {
                k: 2,
                num_samples: 25,
                ..fast_config()
            },
            EngineConfig {
                semantics: RankingSemantics::Tkp { sigma: 4 },
                ..fast_config()
            },
        ];
        let mut serial: Vec<RecommenderEngine> =
            configs.iter().map(|c| engine(c.clone())).collect();
        // Engine 0 absorbs a click first so its pool differs from the prior.
        {
            let mut rng = StdRng::seed_from_u64(41);
            let shown = serial[0].present(&mut rng).unwrap();
            serial[0]
                .record_feedback(&shown, Feedback::Click { index: 0 }, &mut rng)
                .unwrap();
        }
        let mut batched = serial.clone();

        for round in 0..2 {
            let mut serial_rngs: Vec<StdRng> = (0..serial.len())
                .map(|i| StdRng::seed_from_u64(1000 + round * 10 + i as u64))
                .collect();
            let mut batched_rngs = serial_rngs.clone();
            let expected: Vec<Vec<Package>> = serial
                .iter_mut()
                .zip(serial_rngs.iter_mut())
                .map(|(e, rng)| e.present(rng).unwrap())
                .collect();
            let mut group: Vec<(&mut RecommenderEngine, &mut dyn RngCore)> = batched
                .iter_mut()
                .zip(batched_rngs.iter_mut())
                .map(|(e, rng)| (e, rng as &mut dyn RngCore))
                .collect();
            let got = RecommenderEngine::present_batch(&mut group).unwrap();
            assert_eq!(got, expected, "round {round}");
            // The RNG streams advanced identically.
            for (a, b) in serial_rngs.iter_mut().zip(batched_rngs.iter_mut()) {
                assert_eq!(rand::RngCore::next_u64(a), rand::RngCore::next_u64(b));
            }
            // Both arms absorb the same feedback to keep evolving together.
            // A contradictory click can exhaust the maintenance sampler;
            // that failure is deterministic, so it must strike both arms
            // identically (a failed round rolls the comparison forward
            // without new constraints).
            let mut poisoned = false;
            for ((a, b), shown) in serial
                .iter_mut()
                .zip(batched.iter_mut())
                .zip(expected.iter())
            {
                let mut rng_a = StdRng::seed_from_u64(7 + round);
                let mut rng_b = rng_a.clone();
                let fed_a = a.record_feedback(shown, Feedback::Click { index: 1 }, &mut rng_a);
                let fed_b = b.record_feedback(shown, Feedback::Click { index: 1 }, &mut rng_b);
                assert_eq!(fed_a.is_ok(), fed_b.is_ok(), "round {round}");
                poisoned |= fed_a.is_err();
            }
            if poisoned {
                break;
            }
        }
        // Search statistics accumulated identically through both arms.
        for (a, b) in serial.iter().zip(batched.iter()) {
            assert_eq!(a.search_stats(), b.search_stats());
            assert_eq!(a.pool(), b.pool());
        }
        assert!(RecommenderEngine::present_batch(&mut [])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn conflicting_click_does_not_poison_the_store() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut engine = engine(fast_config());
        let a = Package::new(vec![0]).unwrap();
        let b = Package::new(vec![1]).unwrap();
        let shown = vec![a, b];
        // First the user prefers a over b, then (changing their mind) b over a;
        // the second, conflicting preference is dropped rather than crashing.
        assert_eq!(
            engine
                .record_feedback(&shown, Feedback::Click { index: 0 }, &mut rng)
                .unwrap(),
            1
        );
        assert_eq!(
            engine
                .record_feedback(&shown, Feedback::Click { index: 1 }, &mut rng)
                .unwrap(),
            0
        );
        assert_eq!(engine.preferences().len(), 1);
        assert_eq!(engine.rounds(), 2);
    }
}
