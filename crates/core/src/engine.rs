//! The package recommender engine: ties the prior, the preference store, the
//! constrained samplers, the per-sample package search and the ranking
//! semantics into the interactive loop of the paper (Sections 2–4).

use pkgrec_gmm::GaussianMixture;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::constraints::ConstraintChecker;
use crate::error::{CoreError, Result};
use crate::item::Catalog;
use crate::maintenance::{self, MaintenanceStrategy};
use crate::package::Package;
use crate::preferences::{Preference, PreferenceStore};
use crate::profile::{AggregationContext, Profile};
use crate::ranking::{aggregate, PerSampleRanking, RankedPackage, RankingSemantics};
use crate::sampler::{SamplePool, SamplerKind, WeightSampler};
use crate::search::top_k_packages;
use crate::utility::LinearUtility;

/// Configuration of the recommender engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of packages recommended per round (the paper presents 5).
    pub k: usize,
    /// Number of additional random exploration packages per round (also 5).
    pub num_random: usize,
    /// Number of weight-vector samples maintained in the pool.
    pub num_samples: usize,
    /// Ranking semantics used to aggregate per-sample results.
    pub semantics: RankingSemantics,
    /// Constrained sampling strategy.
    pub sampler: SamplerKind,
    /// Strategy for maintaining the pool when new feedback arrives.
    pub maintenance: MaintenanceStrategy,
    /// Number of Gaussians in the prior mixture.
    pub prior_components: usize,
    /// Standard deviation of each prior component.
    pub prior_sigma: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            k: 5,
            num_random: 5,
            num_samples: 200,
            semantics: RankingSemantics::Exp,
            sampler: SamplerKind::mcmc(),
            maintenance: MaintenanceStrategy::Hybrid { gamma: 0.025 },
            prior_components: 1,
            prior_sigma: 0.5,
        }
    }
}

/// The interactive package recommender.
#[derive(Debug, Clone)]
pub struct RecommenderEngine {
    catalog: Catalog,
    context: AggregationContext,
    prior: GaussianMixture,
    preferences: PreferenceStore,
    pool: SamplePool,
    config: EngineConfig,
}

impl RecommenderEngine {
    /// Creates an engine over a catalog with the given profile and maximum
    /// package size φ.
    pub fn new(
        catalog: Catalog,
        profile: Profile,
        max_package_size: usize,
        config: EngineConfig,
    ) -> Result<Self> {
        if config.k == 0 {
            return Err(CoreError::InvalidConfig("k must be at least 1".into()));
        }
        if config.num_samples == 0 {
            return Err(CoreError::InvalidConfig(
                "num_samples must be at least 1".into(),
            ));
        }
        let context = AggregationContext::new(profile, &catalog, max_package_size)?;
        let prior = GaussianMixture::default_prior(
            context.dim(),
            config.prior_components.max(1),
            config.prior_sigma,
        )?;
        Ok(RecommenderEngine {
            catalog,
            context,
            prior,
            preferences: PreferenceStore::new(),
            pool: SamplePool::new(),
            config,
        })
    }

    /// The catalog the engine recommends from.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The aggregation context (profile, normalisers, φ).
    pub fn context(&self) -> &AggregationContext {
        &self.context
    }

    /// The prior over weight vectors.
    pub fn prior(&self) -> &GaussianMixture {
        &self.prior
    }

    /// The preference store accumulated from feedback.
    pub fn preferences(&self) -> &PreferenceStore {
        &self.preferences
    }

    /// The current sample pool.
    pub fn pool(&self) -> &SamplePool {
        &self.pool
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The constraint checker over the transitively reduced preference set.
    pub fn checker(&self) -> ConstraintChecker {
        ConstraintChecker::reduced(&self.preferences, self.context.dim())
    }

    /// (Re)fills the sample pool from scratch with `num_samples` valid samples.
    pub fn resample(&mut self, rng: &mut dyn RngCore) -> Result<()> {
        let checker = self.checker();
        let outcome =
            self.config
                .sampler
                .generate(&self.prior, &checker, self.config.num_samples, rng)?;
        self.pool = outcome.pool;
        Ok(())
    }

    fn per_sample_k(&self) -> usize {
        match self.config.semantics {
            RankingSemantics::Tkp { sigma } => self.config.k.max(sigma),
            _ => self.config.k,
        }
    }

    /// Computes the per-sample top-k package rankings for the current pool.
    pub fn per_sample_rankings(&self) -> Result<Vec<PerSampleRanking>> {
        let k = self.per_sample_k();
        let mut results = Vec::with_capacity(self.pool.len());
        for sample in self.pool.samples() {
            let utility = LinearUtility::new(self.context.clone(), sample.weights.clone())?;
            let search = top_k_packages(&utility, &self.catalog, k)?;
            results.push(PerSampleRanking::new(sample.importance, search.packages));
        }
        Ok(results)
    }

    /// Produces the current top-k recommendation under the configured ranking
    /// semantics, sampling the pool first if it is empty.
    pub fn recommend(&mut self, rng: &mut dyn RngCore) -> Result<Vec<RankedPackage>> {
        if self.pool.is_empty() {
            self.resample(rng)?;
        }
        let results = self.per_sample_rankings()?;
        Ok(aggregate(self.config.semantics, &results, self.config.k))
    }

    /// Draws `count` random exploration packages (uniform random size in
    /// `1..=φ`, uniform random distinct items).
    pub fn random_packages(&self, count: usize, rng: &mut dyn RngCore) -> Vec<Package> {
        let n = self.catalog.len();
        let phi = self.context.max_package_size().min(n);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let size = rng.gen_range(1..=phi);
            let mut items = Vec::with_capacity(size);
            while items.len() < size {
                let candidate = rng.gen_range(0..n);
                if !items.contains(&candidate) {
                    items.push(candidate);
                }
            }
            out.push(Package::new(items).expect("size >= 1"));
        }
        out
    }

    /// Builds the presentation list of one elicitation round: the current
    /// best packages (exploitation) followed by random packages (exploration),
    /// de-duplicated (Section 2.2).
    pub fn present(&mut self, rng: &mut dyn RngCore) -> Result<Vec<Package>> {
        let mut shown: Vec<Package> = self
            .recommend(rng)?
            .into_iter()
            .map(|r| r.package)
            .collect();
        let mut guard = 0;
        while shown.len() < self.config.k + self.config.num_random && guard < 1000 {
            guard += 1;
            for candidate in self.random_packages(1, rng) {
                if !shown.contains(&candidate) {
                    shown.push(candidate);
                }
            }
        }
        Ok(shown)
    }

    /// Records a click on `clicked` among the `shown` packages: every other
    /// shown package yields a preference `clicked ≻ other`, the preference DAG
    /// absorbs them (ignoring those that would create cycles, which the paper
    /// resolves by re-asking the user), and the sample pool is maintained
    /// against each genuinely new constraint.  Returns the number of new
    /// preferences recorded.
    pub fn record_click(
        &mut self,
        clicked: &Package,
        shown: &[Package],
        rng: &mut dyn RngCore,
    ) -> Result<usize> {
        let clicked_vector = self.context.package_vector(&self.catalog, clicked)?;
        let mut added = 0usize;
        for other in shown {
            if other == clicked {
                continue;
            }
            let other_vector = self.context.package_vector(&self.catalog, other)?;
            let inserted = match self.preferences.add(
                clicked.key(),
                &clicked_vector,
                other.key(),
                &other_vector,
            ) {
                Ok(true) => true,
                Ok(false) => false,
                // A conflicting preference (cycle) is dropped; the elicitation
                // loop will naturally re-present the packages involved.
                Err(CoreError::PreferenceCycle { .. }) => false,
                Err(e) => return Err(e),
            };
            if !inserted {
                continue;
            }
            added += 1;
            let preference = Preference::new(clicked_vector.clone(), other_vector);
            if !self.pool.is_empty() {
                let checker = self.checker();
                let index = maintenance::index_pool(&self.pool);
                maintenance::maintain_pool(
                    &mut self.pool,
                    Some(&index),
                    &preference,
                    self.config.maintenance,
                    &self.config.sampler,
                    &self.prior,
                    &checker,
                    rng,
                )?;
            }
        }
        Ok(added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_catalog() -> Catalog {
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
            vec![0.7, 0.1],
            vec![0.1, 0.3],
            vec![0.5, 0.9],
        ])
        .unwrap()
    }

    fn engine(config: EngineConfig) -> RecommenderEngine {
        RecommenderEngine::new(small_catalog(), Profile::cost_quality(), 3, config).unwrap()
    }

    fn fast_config() -> EngineConfig {
        EngineConfig {
            k: 3,
            num_random: 2,
            num_samples: 40,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn configuration_is_validated() {
        let bad_k = EngineConfig {
            k: 0,
            ..EngineConfig::default()
        };
        assert!(matches!(
            RecommenderEngine::new(small_catalog(), Profile::cost_quality(), 3, bad_k),
            Err(CoreError::InvalidConfig(_))
        ));
        let bad_samples = EngineConfig {
            num_samples: 0,
            ..EngineConfig::default()
        };
        assert!(matches!(
            RecommenderEngine::new(small_catalog(), Profile::cost_quality(), 3, bad_samples),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn recommend_returns_k_distinct_packages() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut engine = engine(fast_config());
        let recs = engine.recommend(&mut rng).unwrap();
        assert_eq!(recs.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for r in &recs {
            assert!(seen.insert(r.package.clone()), "duplicate recommendation");
            assert!(r.package.len() <= 3);
        }
        assert_eq!(engine.pool().len(), 40);
    }

    #[test]
    fn present_combines_recommendations_and_random_packages() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut engine = engine(fast_config());
        let shown = engine.present(&mut rng).unwrap();
        assert_eq!(shown.len(), 5);
        let mut unique = shown.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), shown.len());
    }

    #[test]
    fn record_click_adds_preferences_and_keeps_pool_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut engine = engine(fast_config());
        let shown = engine.present(&mut rng).unwrap();
        let clicked = shown[1].clone();
        let added = engine.record_click(&clicked, &shown, &mut rng).unwrap();
        assert_eq!(added, shown.len() - 1);
        assert_eq!(engine.preferences().len(), added);
        // Every sample in the pool satisfies the updated (reduced) constraints.
        let checker = engine.checker();
        for s in engine.pool().samples() {
            assert!(checker.is_valid(&s.weights));
        }
    }

    #[test]
    fn feedback_steers_recommendations_toward_the_clicked_taste() {
        // The user always clicks the cheapest package; after a few rounds the
        // recommended packages should have much lower cost than quality-first
        // recommendations would.
        let mut rng = StdRng::seed_from_u64(4);
        let mut engine = engine(EngineConfig {
            k: 3,
            num_random: 3,
            num_samples: 60,
            ..EngineConfig::default()
        });
        let catalog = engine.catalog().clone();
        let cost_of = |p: &Package| -> f64 {
            p.items()
                .iter()
                .map(|&i| catalog.item_unchecked(i)[0])
                .sum()
        };
        for _ in 0..4 {
            let shown = engine.present(&mut rng).unwrap();
            let clicked = shown
                .iter()
                .min_by(|a, b| cost_of(a).partial_cmp(&cost_of(b)).unwrap())
                .unwrap()
                .clone();
            engine.record_click(&clicked, &shown, &mut rng).unwrap();
        }
        let recs = engine.recommend(&mut rng).unwrap();
        let avg_cost: f64 =
            recs.iter().map(|r| cost_of(&r.package)).sum::<f64>() / recs.len() as f64;
        // The cheapest single item costs 0.1; recommendations should stay well
        // below the cost of an average random package (~0.9 for two items).
        assert!(avg_cost < 0.8, "average recommended cost {avg_cost}");
    }

    #[test]
    fn different_semantics_share_the_same_engine() {
        let mut rng = StdRng::seed_from_u64(5);
        for semantics in [
            RankingSemantics::Exp,
            RankingSemantics::Tkp { sigma: 3 },
            RankingSemantics::Mpo,
        ] {
            let mut engine = engine(EngineConfig {
                semantics,
                ..fast_config()
            });
            let recs = engine.recommend(&mut rng).unwrap();
            assert!(!recs.is_empty(), "{semantics:?}");
            assert!(recs.len() <= 3);
        }
    }

    #[test]
    fn random_packages_respect_size_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let engine = engine(fast_config());
        for p in engine.random_packages(50, &mut rng) {
            assert!(!p.is_empty() && p.len() <= 3);
            assert!(p.items().iter().all(|&i| i < engine.catalog().len()));
        }
    }

    #[test]
    fn conflicting_click_does_not_poison_the_store() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut engine = engine(fast_config());
        let a = Package::new(vec![0]).unwrap();
        let b = Package::new(vec![1]).unwrap();
        let shown = vec![a.clone(), b.clone()];
        // First the user prefers a over b, then (changing their mind) b over a;
        // the second, conflicting preference is dropped rather than crashing.
        assert_eq!(engine.record_click(&a, &shown, &mut rng).unwrap(), 1);
        assert_eq!(engine.record_click(&b, &shown, &mut rng).unwrap(), 0);
        assert_eq!(engine.preferences().len(), 1);
    }
}
