//! Constraint checking of candidate weight vectors against user feedback.
//!
//! Every sampler repeatedly asks "does this weight vector satisfy all the
//! feedback received so far?".  [`ConstraintChecker`] answers that question
//! and counts how many half-space evaluations it took, which is the cost the
//! pruning experiment of Figure 5 compares before and after transitive
//! reduction.

use std::cell::Cell;

use pkgrec_geom::{ConvexRegion, HalfSpace};
use serde::{Deserialize, Serialize};

use crate::preferences::PreferenceStore;

/// Which constraint set a checker was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintSource {
    /// Every pairwise preference, as received.
    Full,
    /// The transitively reduced preference set (Section 3.3).
    Reduced,
}

/// A set of half-space constraints with short-circuiting validity checks and
/// an evaluation counter.
#[derive(Debug, Clone)]
pub struct ConstraintChecker {
    region: ConvexRegion,
    source: ConstraintSource,
    evaluations: Cell<u64>,
}

impl ConstraintChecker {
    /// Builds a checker over the full (unreduced) constraint set of a store.
    pub fn full(store: &PreferenceStore, dim: usize) -> Self {
        ConstraintChecker {
            region: ConvexRegion::from_constraints(dim, store.all_constraints()),
            source: ConstraintSource::Full,
            evaluations: Cell::new(0),
        }
    }

    /// Builds a checker over the transitively reduced constraint set.
    pub fn reduced(store: &PreferenceStore, dim: usize) -> Self {
        ConstraintChecker {
            region: ConvexRegion::from_constraints(dim, store.reduced_constraints()),
            source: ConstraintSource::Reduced,
            evaluations: Cell::new(0),
        }
    }

    /// Builds a checker directly from half-space constraints.
    pub fn from_constraints(
        dim: usize,
        constraints: Vec<HalfSpace>,
        source: ConstraintSource,
    ) -> Self {
        ConstraintChecker {
            region: ConvexRegion::from_constraints(dim, constraints),
            source,
            evaluations: Cell::new(0),
        }
    }

    /// The constraint source (full or reduced).
    pub fn source(&self) -> ConstraintSource {
        self.source
    }

    /// Number of constraints in the checker.
    pub fn len(&self) -> usize {
        self.region.len()
    }

    /// Whether the checker carries no constraints.
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// The underlying convex region.
    pub fn region(&self) -> &ConvexRegion {
        &self.region
    }

    /// The constraints of the checker.
    pub fn constraints(&self) -> &[HalfSpace] {
        self.region.constraints()
    }

    /// Whether `w` satisfies every constraint.  Evaluations short-circuit on
    /// the first violation, and every half-space evaluation is counted.
    pub fn is_valid(&self, w: &[f64]) -> bool {
        for (i, c) in self.region.constraints().iter().enumerate() {
            if c.violated_by(w) {
                self.evaluations.set(self.evaluations.get() + i as u64 + 1);
                return false;
            }
        }
        self.evaluations
            .set(self.evaluations.get() + self.region.len() as u64);
        true
    }

    /// Number of constraints violated by `w` (always evaluates all of them).
    pub fn violation_count(&self, w: &[f64]) -> usize {
        self.evaluations
            .set(self.evaluations.get() + self.region.len() as u64);
        self.region.violation_count(w)
    }

    /// Total number of half-space evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.get()
    }

    /// Resets the evaluation counter.
    pub fn reset_evaluations(&self) {
        self.evaluations.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_store() -> PreferenceStore {
        let mut s = PreferenceStore::new();
        s.add("a".into(), &[0.9, 0.1], "b".into(), &[0.5, 0.5])
            .unwrap();
        s.add("b".into(), &[0.5, 0.5], "c".into(), &[0.1, 0.9])
            .unwrap();
        s.add("a".into(), &[0.9, 0.1], "c".into(), &[0.1, 0.9])
            .unwrap();
        s
    }

    #[test]
    fn full_and_reduced_checkers_agree_on_validity() {
        let store = chain_store();
        let full = ConstraintChecker::full(&store, 2);
        let reduced = ConstraintChecker::reduced(&store, 2);
        assert_eq!(full.len(), 3);
        assert_eq!(reduced.len(), 2);
        assert_eq!(full.source(), ConstraintSource::Full);
        assert_eq!(reduced.source(), ConstraintSource::Reduced);
        for w in [
            vec![1.0, -1.0],
            vec![-1.0, 1.0],
            vec![0.2, 0.2],
            vec![0.0, -0.4],
        ] {
            assert_eq!(full.is_valid(&w), reduced.is_valid(&w), "w = {w:?}");
        }
    }

    #[test]
    fn reduced_checker_needs_fewer_evaluations_for_valid_vectors() {
        let store = chain_store();
        let full = ConstraintChecker::full(&store, 2);
        let reduced = ConstraintChecker::reduced(&store, 2);
        // A valid vector forces both checkers to evaluate their whole set.
        let w = vec![1.0, -1.0];
        assert!(full.is_valid(&w));
        assert!(reduced.is_valid(&w));
        assert!(reduced.evaluations() < full.evaluations());
    }

    #[test]
    fn evaluation_counter_accumulates_and_resets() {
        let store = chain_store();
        let checker = ConstraintChecker::full(&store, 2);
        assert_eq!(checker.evaluations(), 0);
        checker.is_valid(&[1.0, -1.0]);
        checker.is_valid(&[1.0, -1.0]);
        assert_eq!(checker.evaluations(), 6);
        assert_eq!(checker.violation_count(&[-1.0, 1.0]), 3);
        assert_eq!(checker.evaluations(), 9);
        checker.reset_evaluations();
        assert_eq!(checker.evaluations(), 0);
    }

    #[test]
    fn short_circuit_counts_only_evaluated_constraints() {
        let store = chain_store();
        let checker = ConstraintChecker::full(&store, 2);
        // (-1, 1) violates the very first constraint evaluated.
        assert!(!checker.is_valid(&[-1.0, 1.0]));
        assert!(checker.evaluations() <= store.len() as u64);
    }

    #[test]
    fn empty_checker_accepts_everything() {
        let store = PreferenceStore::new();
        let checker = ConstraintChecker::full(&store, 3);
        assert!(checker.is_empty());
        assert!(checker.is_valid(&[0.1, -0.5, 0.9]));
        assert_eq!(checker.violation_count(&[0.1, -0.5, 0.9]), 0);
    }

    #[test]
    fn from_constraints_builds_custom_checker() {
        let constraints = vec![HalfSpace::new(vec![1.0, 0.0])];
        let checker = ConstraintChecker::from_constraints(2, constraints, ConstraintSource::Full);
        assert!(checker.is_valid(&[0.5, -0.5]));
        assert!(!checker.is_valid(&[-0.5, 0.5]));
        assert_eq!(checker.constraints().len(), 1);
        assert_eq!(checker.region().dim(), 2);
    }
}
