//! Packages: sets of items.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::item::ItemId;

/// A package is a non-empty set of distinct items, stored sorted so two
/// packages with the same members compare equal and hash identically.
///
/// The paper keys packages by an id for tie-breaking; here the canonical
/// sorted item list itself plays that role (compared lexicographically), which
/// keeps rankings deterministic without a global package registry — the
/// package space is exponential, so materialising ids for all of it is not an
/// option.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Package {
    items: Vec<ItemId>,
}

impl Package {
    /// Creates a package from item ids, sorting and de-duplicating them.
    pub fn new(mut items: Vec<ItemId>) -> Result<Self> {
        items.sort_unstable();
        items.dedup();
        if items.is_empty() {
            return Err(CoreError::EmptyPackage);
        }
        Ok(Package { items })
    }

    /// A package containing a single item.
    pub fn singleton(item: ItemId) -> Self {
        Package { items: vec![item] }
    }

    /// The items in the package, sorted ascending.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Number of items in the package.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// A package is never empty, so this always returns `false`; provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the package contains an item.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Returns a new package with `item` added; `None` if it is already
    /// present.
    pub fn with_item(&self, item: ItemId) -> Option<Package> {
        if self.contains(item) {
            return None;
        }
        let mut items = self.items.clone();
        let pos = items.partition_point(|&i| i < item);
        items.insert(pos, item);
        Some(Package { items })
    }

    /// Returns a new package with `item` removed; `None` if removal would
    /// empty the package or the item is absent.
    pub fn without_item(&self, item: ItemId) -> Option<Package> {
        let pos = self.items.binary_search(&item).ok()?;
        if self.items.len() == 1 {
            return None;
        }
        let mut items = self.items.clone();
        items.remove(pos);
        Some(Package { items })
    }

    /// A compact human-readable key such as `"{0,3,7}"`, used in experiment
    /// output and as a stable dictionary key.
    pub fn key(&self) -> String {
        let ids: Vec<String> = self.items.iter().map(|i| i.to_string()).collect();
        format!("{{{}}}", ids.join(","))
    }
}

impl std::fmt::Display for Package {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.key())
    }
}

/// Enumerates every package of size `1..=max_size` over a catalog of `n`
/// items, in lexicographic order.  The count grows as `Σ C(n, s)`, so this is
/// only usable for small instances (exhaustive baselines and tests); the
/// search module exists precisely to avoid this enumeration.
pub fn enumerate_packages(n: usize, max_size: usize) -> Vec<Package> {
    let mut out = Vec::new();
    let mut current: Vec<ItemId> = Vec::new();
    fn recurse(
        n: usize,
        max_size: usize,
        start: usize,
        current: &mut Vec<ItemId>,
        out: &mut Vec<Package>,
    ) {
        if !current.is_empty() {
            out.push(Package {
                items: current.clone(),
            });
        }
        if current.len() == max_size {
            return;
        }
        for next in start..n {
            current.push(next);
            recurse(n, max_size, next + 1, current, out);
            current.pop();
        }
    }
    recurse(n, max_size, 0, &mut current, &mut out);
    out.sort();
    out
}

/// Draws a uniformly random package (uniform random size in `1..=max_size`,
/// uniform random distinct items) — the exploration draw of Section 2.2,
/// shared by the engine, the baseline adapters and the benchmark workloads.
pub fn random_package(n: usize, max_size: usize, rng: &mut dyn rand::RngCore) -> Package {
    use rand::Rng;
    let size = rng.gen_range(1..=max_size.max(1).min(n));
    let mut items = Vec::with_capacity(size);
    while items.len() < size {
        let candidate = rng.gen_range(0..n);
        if !items.contains(&candidate) {
            items.push(candidate);
        }
    }
    Package::new(items).expect("size >= 1")
}

/// Number of packages of size `1..=max_size` over `n` items, `Σ_s C(n, s)`.
pub fn package_space_size(n: usize, max_size: usize) -> u128 {
    let mut total: u128 = 0;
    for s in 1..=max_size.min(n) {
        let mut c: u128 = 1;
        for i in 0..s {
            c = c * (n - i) as u128 / (i + 1) as u128;
        }
        total += c;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let p = Package::new(vec![5, 1, 3, 1]).unwrap();
        assert_eq!(p.items(), &[1, 3, 5]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(Package::new(vec![]).is_err());
    }

    #[test]
    fn equality_ignores_input_order() {
        let a = Package::new(vec![2, 7]).unwrap();
        let b = Package::new(vec![7, 2]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.key(), "{2,7}");
        assert_eq!(format!("{a}"), "{2,7}");
    }

    #[test]
    fn with_and_without_item() {
        let p = Package::new(vec![1, 3]).unwrap();
        assert!(p.contains(3));
        assert!(!p.contains(2));
        let q = p.with_item(2).unwrap();
        assert_eq!(q.items(), &[1, 2, 3]);
        assert!(p.with_item(1).is_none());
        let r = q.without_item(1).unwrap();
        assert_eq!(r.items(), &[2, 3]);
        assert!(q.without_item(9).is_none());
        assert!(Package::singleton(4).without_item(4).is_none());
    }

    #[test]
    fn enumeration_matches_binomial_count() {
        // Figure 1(b): three items yield seven non-empty packages of size <= 3
        // and six of size <= 2.
        assert_eq!(enumerate_packages(3, 3).len(), 7);
        assert_eq!(enumerate_packages(3, 2).len(), 6);
        assert_eq!(package_space_size(3, 3), 7);
        assert_eq!(package_space_size(3, 2), 6);
        assert_eq!(package_space_size(10, 3), 10 + 45 + 120);
        assert_eq!(
            enumerate_packages(6, 3).len() as u128,
            package_space_size(6, 3)
        );
    }

    #[test]
    fn enumeration_contains_every_singleton_and_no_duplicates() {
        let packages = enumerate_packages(5, 2);
        for i in 0..5 {
            assert!(packages.contains(&Package::singleton(i)));
        }
        let mut dedup = packages.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), packages.len());
    }

    #[test]
    fn package_space_size_handles_max_size_above_n() {
        assert_eq!(package_space_size(3, 10), 7);
        assert_eq!(package_space_size(0, 3), 0);
    }

    #[test]
    fn ordering_is_lexicographic_on_sorted_items() {
        let a = Package::new(vec![0]).unwrap();
        let b = Package::new(vec![0, 1]).unwrap();
        let c = Package::new(vec![1]).unwrap();
        assert!(a < b);
        assert!(b < c);
    }
}
