//! Ranking semantics over the sample pool (Sections 2.2 and 4).
//!
//! Given per-sample top-k package lists (one list per sampled weight vector,
//! each sample carrying an importance weight), three semantics turn them into
//! a single recommended top-k list:
//!
//! * **EXP** — rank packages by their estimated expected utility,
//! * **TKP** — rank packages by the (weighted) frequency with which they appear
//!   among the top-σ packages of a sample,
//! * **MPO** — return the complete top-k *list* that is most probable, i.e.
//!   the list produced by the largest total sample weight.
//!
//! The same aggregation code serves both Monte-Carlo sample pools and exact
//! discrete weight distributions (each discrete weight vector is a "sample"
//! whose importance is its probability), which is how the unit tests reproduce
//! the worked example of Figure 2.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::package::Package;
use crate::scoring::ScoreMatrix;

/// The ranking semantics of Section 2.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RankingSemantics {
    /// Expected utility (Definition 2).
    Exp,
    /// Probability of being ranked among the top-σ packages (Definition 3).
    Tkp {
        /// The position threshold σ.
        sigma: usize,
    },
    /// Most probable ordering of the whole top-k list (Definition 4).
    Mpo,
}

impl RankingSemantics {
    /// Short label used in experiment output.
    pub fn label(&self) -> String {
        match self {
            RankingSemantics::Exp => "EXP".to_string(),
            RankingSemantics::Tkp { sigma } => format!("TKP(σ={sigma})"),
            RankingSemantics::Mpo => "MPO".to_string(),
        }
    }

    /// The per-sample search depth needed to aggregate a top-`k` list under
    /// this semantics: TKP must look σ deep into every sample's ranking even
    /// when σ exceeds `k`.
    pub fn per_sample_depth(&self, k: usize) -> usize {
        match self {
            RankingSemantics::Tkp { sigma } => k.max(*sigma),
            _ => k,
        }
    }
}

/// The ranked packages produced for one sampled weight vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerSampleRanking {
    /// Importance weight of the sample (probability mass for exact
    /// distributions, `q(w)` for importance samples, 1 otherwise).
    pub importance: f64,
    /// `(package, utility)` pairs ordered best-first under this sample's
    /// weight vector.
    pub ranked: Vec<(Package, f64)>,
}

impl PerSampleRanking {
    /// Creates a per-sample ranking.
    pub fn new(importance: f64, ranked: Vec<(Package, f64)>) -> Self {
        PerSampleRanking { importance, ranked }
    }
}

/// Materialises per-sample rankings from one batched kernel run
/// ([`crate::scoring::score_batch`]) over a shared candidate set.
///
/// `per_sample[s]` lists, best first, the indices (into `candidates`) of the
/// packages ranked by sample `s`; the utilities attached to each entry are
/// read from the score matrix, so every ranked utility in the system flows
/// through the same columnar kernel.
///
/// # Panics
/// Panics if the score matrix, importances and per-sample index lists
/// disagree on the number of samples or candidates.
pub fn per_sample_rankings_from_scores(
    candidates: &[Package],
    scores: &ScoreMatrix,
    importances: &[f64],
    per_sample: &[Vec<usize>],
) -> Vec<PerSampleRanking> {
    assert_eq!(
        scores.num_candidates(),
        candidates.len(),
        "one score row per candidate package"
    );
    assert_eq!(
        per_sample.len(),
        importances.len(),
        "one importance weight per sample"
    );
    assert_eq!(
        per_sample.len(),
        scores.num_samples(),
        "one score column per sample"
    );
    per_sample
        .iter()
        .enumerate()
        .map(|(s, indices)| {
            let ranked = indices
                .iter()
                .map(|&c| (candidates[c].clone(), scores.get(c, s)))
                .collect();
            PerSampleRanking::new(importances[s], ranked)
        })
        .collect()
}

/// One entry of an aggregated top-k list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedPackage {
    /// The recommended package.
    pub package: Package,
    /// The semantics-specific score (expected utility for EXP, weighted
    /// frequency for TKP, list probability for MPO).
    pub score: f64,
}

fn sort_scored(mut scored: Vec<RankedPackage>) -> Vec<RankedPackage> {
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.package.cmp(&b.package))
    });
    scored
}

/// EXP aggregation: weighted mean utility of every package appearing in at
/// least one per-sample ranking; the top-k by that mean are returned.
pub fn aggregate_exp(results: &[PerSampleRanking], k: usize) -> Vec<RankedPackage> {
    let mut sums: HashMap<Package, (f64, f64)> = HashMap::new();
    for r in results {
        for (package, utility) in &r.ranked {
            let entry = sums.entry(package.clone()).or_insert((0.0, 0.0));
            entry.0 += r.importance * utility;
            entry.1 += r.importance;
        }
    }
    let scored = sums
        .into_iter()
        .filter(|(_, (_, weight))| *weight > 0.0)
        .map(|(package, (weighted_utility, weight))| RankedPackage {
            package,
            score: weighted_utility / weight,
        })
        .collect();
    let mut sorted = sort_scored(scored);
    sorted.truncate(k);
    sorted
}

/// TKP aggregation: the score of a package is the total importance of the
/// samples whose top-σ list contains it.  Callers control σ by trimming the
/// per-sample rankings to σ entries (the engine does this automatically).
pub fn aggregate_tkp(results: &[PerSampleRanking], sigma: usize, k: usize) -> Vec<RankedPackage> {
    let mut counters: HashMap<Package, f64> = HashMap::new();
    for r in results {
        for (package, _) in r.ranked.iter().take(sigma) {
            *counters.entry(package.clone()).or_insert(0.0) += r.importance;
        }
    }
    let scored = counters
        .into_iter()
        .map(|(package, score)| RankedPackage { package, score })
        .collect();
    let mut sorted = sort_scored(scored);
    sorted.truncate(k);
    sorted
}

/// MPO aggregation: the score of an entire (ordered) top-k list is the total
/// importance of the samples that produced exactly that list; the list with
/// the highest score wins and is returned with that score attached to each of
/// its packages.
pub fn aggregate_mpo(results: &[PerSampleRanking], k: usize) -> Vec<RankedPackage> {
    let mut counters: HashMap<Vec<Package>, f64> = HashMap::new();
    for r in results {
        let list: Vec<Package> = r.ranked.iter().take(k).map(|(p, _)| p.clone()).collect();
        if list.is_empty() {
            continue;
        }
        *counters.entry(list).or_insert(0.0) += r.importance;
    }
    let best = counters.into_iter().max_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            // Deterministic tie-break: lexicographically smaller list wins.
            .then_with(|| b.0.cmp(&a.0))
    });
    match best {
        None => Vec::new(),
        Some((list, score)) => list
            .into_iter()
            .map(|package| RankedPackage { package, score })
            .collect(),
    }
}

/// Dispatches to the aggregation matching the chosen semantics.
pub fn aggregate(
    semantics: RankingSemantics,
    results: &[PerSampleRanking],
    k: usize,
) -> Vec<RankedPackage> {
    match semantics {
        RankingSemantics::Exp => aggregate_exp(results, k),
        RankingSemantics::Tkp { sigma } => aggregate_tkp(results, sigma, k),
        RankingSemantics::Mpo => aggregate_mpo(results, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the exact discrete distribution of Figure 2: three weight
    /// vectors with probabilities 0.3 / 0.4 / 0.3 and the six packages of the
    /// running example with their exact utilities.
    fn figure2_results() -> Vec<PerSampleRanking> {
        // Packages p1..p6 keyed by their item sets {0}, {1}, {2}, {0,1}, {1,2}, {0,2}.
        let packages: Vec<Package> = vec![
            Package::new(vec![0]).unwrap(),
            Package::new(vec![1]).unwrap(),
            Package::new(vec![2]).unwrap(),
            Package::new(vec![0, 1]).unwrap(),
            Package::new(vec![1, 2]).unwrap(),
            Package::new(vec![0, 2]).unwrap(),
        ];
        let utilities = [
            (0.3, vec![0.35, 0.3, 0.2, 0.575, 0.4, 0.475]),
            (0.4, vec![0.31, 0.54, 0.52, 0.475, 0.56, 0.455]),
            (0.3, vec![0.11, 0.14, 0.12, 0.175, 0.16, 0.155]),
        ];
        utilities
            .into_iter()
            .map(|(prob, utils)| {
                let mut ranked: Vec<(Package, f64)> = packages.iter().cloned().zip(utils).collect();
                ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                PerSampleRanking::new(prob, ranked)
            })
            .collect()
    }

    fn p(items: &[usize]) -> Package {
        Package::new(items.to_vec()).unwrap()
    }

    #[test]
    fn figure2_exp_top2_is_p4_then_p5() {
        let results = figure2_results();
        let top = aggregate_exp(&results, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].package, p(&[0, 1])); // p4
        assert!((top[0].score - 0.415).abs() < 1e-9);
        assert_eq!(top[1].package, p(&[1, 2])); // p5
        assert!((top[1].score - 0.392).abs() < 1e-9);
    }

    #[test]
    fn figure2_exp_expected_utility_of_p1_matches_paper() {
        let results = figure2_results();
        let all = aggregate_exp(&results, 6);
        let p1 = all.iter().find(|r| r.package == p(&[0])).unwrap();
        assert!(
            (p1.score - 0.262).abs() < 1e-9,
            "expected 0.262, got {}",
            p1.score
        );
    }

    #[test]
    fn figure2_tkp_top2_is_p5_then_p4() {
        let results = figure2_results();
        let top = aggregate_tkp(&results, 2, 2);
        assert_eq!(top[0].package, p(&[1, 2])); // p5 with probability 0.7
        assert!((top[0].score - 0.7).abs() < 1e-12);
        assert_eq!(top[1].package, p(&[0, 1])); // p4 with probability 0.6
        assert!((top[1].score - 0.6).abs() < 1e-12);
    }

    #[test]
    fn figure2_mpo_best_list_is_p5_p2() {
        let results = figure2_results();
        let best = aggregate_mpo(&results, 2);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].package, p(&[1, 2])); // p5
        assert_eq!(best[1].package, p(&[1])); // p2
        assert!((best[0].score - 0.4).abs() < 1e-12);
    }

    #[test]
    fn different_semantics_can_disagree() {
        // The summary sentence of Section 2.2: EXP, TKP and MPO produce
        // different top-2 lists on the running example.
        let results = figure2_results();
        let exp: Vec<Package> = aggregate(RankingSemantics::Exp, &results, 2)
            .into_iter()
            .map(|r| r.package)
            .collect();
        let tkp: Vec<Package> = aggregate(RankingSemantics::Tkp { sigma: 2 }, &results, 2)
            .into_iter()
            .map(|r| r.package)
            .collect();
        let mpo: Vec<Package> = aggregate(RankingSemantics::Mpo, &results, 2)
            .into_iter()
            .map(|r| r.package)
            .collect();
        assert_eq!(exp, vec![p(&[0, 1]), p(&[1, 2])]);
        assert_eq!(tkp, vec![p(&[1, 2]), p(&[0, 1])]);
        assert_eq!(mpo, vec![p(&[1, 2]), p(&[1])]);
    }

    #[test]
    fn importance_weights_shift_the_aggregate() {
        let a = PerSampleRanking::new(1.0, vec![(p(&[0]), 1.0), (p(&[1]), 0.5)]);
        let b = PerSampleRanking::new(10.0, vec![(p(&[1]), 1.0), (p(&[0]), 0.1)]);
        let top = aggregate_tkp(&[a.clone(), b.clone()], 1, 2);
        assert_eq!(top[0].package, p(&[1]));
        let exp = aggregate_exp(&[a, b], 1);
        // Weighted mean utility of {0}: (1*1 + 10*0.1)/11 ≈ 0.18;
        // of {1}: (1*0.5 + 10*1)/11 ≈ 0.95 — {1} wins.
        assert_eq!(exp[0].package, p(&[1]));
    }

    #[test]
    fn empty_results_yield_empty_rankings() {
        assert!(aggregate_exp(&[], 3).is_empty());
        assert!(aggregate_tkp(&[], 2, 3).is_empty());
        assert!(aggregate_mpo(&[], 3).is_empty());
        let empty_sample = PerSampleRanking::new(1.0, vec![]);
        assert!(aggregate_mpo(&[empty_sample], 3).is_empty());
    }

    #[test]
    fn ties_are_broken_deterministically_by_package() {
        let a = PerSampleRanking::new(1.0, vec![(p(&[3]), 0.5), (p(&[1]), 0.5)]);
        let top = aggregate_exp(&[a], 2);
        assert_eq!(top[0].package, p(&[1]));
        assert_eq!(top[1].package, p(&[3]));
    }

    #[test]
    fn semantics_labels() {
        assert_eq!(RankingSemantics::Exp.label(), "EXP");
        assert_eq!(RankingSemantics::Tkp { sigma: 5 }.label(), "TKP(σ=5)");
        assert_eq!(RankingSemantics::Mpo.label(), "MPO");
    }

    #[test]
    fn rankings_from_scores_preserve_order_and_read_kernel_utilities() {
        use crate::scoring::{score_batch, CandidateMatrix, WeightMatrix};

        // Candidates (1-D feature vectors) scored under two weight samples.
        let candidates = vec![p(&[0]), p(&[1]), p(&[2])];
        let vectors = CandidateMatrix::from_rows(1, &[vec![0.2], vec![0.8], vec![0.5]]);
        let mut weights = WeightMatrix::new(1);
        weights.push(&[1.0], 1.0);
        weights.push(&[-1.0], 3.0);
        let scores = score_batch(&vectors, &weights);
        // Sample 0 ranks descending feature, sample 1 ascending.
        let per_sample = vec![vec![1, 2, 0], vec![0, 2, 1]];
        let rankings = per_sample_rankings_from_scores(
            &candidates,
            &scores,
            weights.importances(),
            &per_sample,
        );
        assert_eq!(rankings.len(), 2);
        assert_eq!(rankings[0].importance, 1.0);
        assert_eq!(rankings[1].importance, 3.0);
        assert_eq!(rankings[0].ranked[0], (p(&[1]), 0.8));
        assert_eq!(rankings[1].ranked[0], (p(&[0]), -0.2));
        // The aggregation stack consumes them unchanged.
        let top = aggregate_tkp(&rankings, 1, 1);
        assert_eq!(top[0].package, p(&[0]));
    }

    #[test]
    fn mpo_groups_identical_lists_across_samples() {
        let list1 = vec![(p(&[0]), 0.9), (p(&[1]), 0.8)];
        let list2 = vec![(p(&[2]), 0.7), (p(&[0]), 0.6)];
        let results = vec![
            PerSampleRanking::new(0.3, list1.clone()),
            PerSampleRanking::new(0.3, list1.clone()),
            PerSampleRanking::new(0.39, list2),
        ];
        let best = aggregate_mpo(&results, 2);
        assert_eq!(best[0].package, p(&[0]));
        assert_eq!(best[1].package, p(&[1]));
        assert!((best[0].score - 0.6).abs() < 1e-12);
    }
}
