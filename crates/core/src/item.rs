//! Items and the item catalog.
//!
//! Section 2: "we are given a set T of n items, each item being described by a
//! set of m features … without loss of generality, we assume all feature
//! values are non-negative real numbers."

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// Identifier of an item: its index in the catalog.
pub type ItemId = usize;

/// The catalog `T` of items the packages are assembled from.
///
/// Items are stored densely as rows of a feature matrix; feature names are
/// optional metadata used by examples and experiment output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Catalog {
    /// Creates a catalog from a dense feature matrix.
    ///
    /// Every row must have the same length and every value must be finite and
    /// non-negative (the paper's standing assumption).
    pub fn new(feature_names: Vec<String>, rows: Vec<Vec<f64>>) -> Result<Self> {
        if rows.is_empty() {
            return Err(CoreError::EmptyCatalog);
        }
        let m = feature_names.len();
        if m == 0 {
            return Err(CoreError::DimensionMismatch {
                expected: 1,
                actual: 0,
            });
        }
        for row in &rows {
            if row.len() != m {
                return Err(CoreError::DimensionMismatch {
                    expected: m,
                    actual: row.len(),
                });
            }
            if row.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err(CoreError::InvalidConfig(
                    "item feature values must be finite and non-negative".into(),
                ));
            }
        }
        Ok(Catalog {
            feature_names,
            rows,
        })
    }

    /// Creates a catalog with auto-generated feature names `f1..fm`.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        let m = rows.first().map(|r| r.len()).unwrap_or(0);
        Catalog::new((1..=m).map(|i| format!("f{i}")).collect(), rows)
    }

    /// Number of items `n`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the catalog is empty (never true for a validated catalog).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features `m`.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Names of the features.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The feature vector of an item.
    pub fn item(&self, id: ItemId) -> Result<&[f64]> {
        self.rows
            .get(id)
            .map(|r| r.as_slice())
            .ok_or(CoreError::UnknownItem(id))
    }

    /// The feature vector of an item without bounds checking the id
    /// (panics on an invalid id).
    pub fn item_unchecked(&self, id: ItemId) -> &[f64] {
        &self.rows[id]
    }

    /// All rows of the catalog.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Iterator over `(id, feature vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &[f64])> + '_ {
        self.rows.iter().enumerate().map(|(i, r)| (i, r.as_slice()))
    }

    /// Per-feature maximum item value (used for normalising aggregates).
    pub fn feature_maxima(&self) -> Vec<f64> {
        let mut max = vec![0.0f64; self.num_features()];
        for row in &self.rows {
            for (j, v) in row.iter().enumerate() {
                if *v > max[j] {
                    max[j] = *v;
                }
            }
        }
        max
    }

    /// Per-feature minimum item value.
    pub fn feature_minima(&self) -> Vec<f64> {
        let mut min = vec![f64::INFINITY; self.num_features()];
        for row in &self.rows {
            for (j, v) in row.iter().enumerate() {
                if *v < min[j] {
                    min[j] = *v;
                }
            }
        }
        min
    }

    /// The `count` largest values of a feature, in non-increasing order
    /// (used to bound the best possible `sum` aggregate of a package).
    pub fn top_values(&self, feature: usize, count: usize) -> Vec<f64> {
        let mut values: Vec<f64> = self.rows.iter().map(|r| r[feature]).collect();
        values.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        values.truncate(count);
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        // The three items of Figure 1(a): f1 = cost, f2 = rating.
        Catalog::new(
            vec!["cost".into(), "rating".into()],
            vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.2, 0.4]],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert_eq!(
            Catalog::from_rows(vec![]).unwrap_err(),
            CoreError::EmptyCatalog
        );
        assert!(matches!(
            Catalog::new(vec![], vec![vec![]]),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Catalog::new(vec!["a".into()], vec![vec![1.0, 2.0]]),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(Catalog::from_rows(vec![vec![-1.0]]).is_err());
        assert!(Catalog::from_rows(vec![vec![f64::NAN]]).is_err());
    }

    #[test]
    fn accessors_expose_shape_and_rows() {
        let c = catalog();
        assert_eq!(c.len(), 3);
        assert_eq!(c.num_features(), 2);
        assert_eq!(
            c.feature_names(),
            &["cost".to_string(), "rating".to_string()]
        );
        assert_eq!(c.item(0).unwrap(), &[0.6, 0.2]);
        assert_eq!(c.item_unchecked(2), &[0.2, 0.4]);
        assert!(matches!(c.item(9), Err(CoreError::UnknownItem(9))));
        assert_eq!(c.iter().count(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn default_feature_names() {
        let c = Catalog::from_rows(vec![vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(
            c.feature_names(),
            &["f1".to_string(), "f2".into(), "f3".into()]
        );
    }

    #[test]
    fn feature_extrema() {
        let c = catalog();
        assert_eq!(c.feature_maxima(), vec![0.6, 0.4]);
        assert_eq!(c.feature_minima(), vec![0.2, 0.2]);
    }

    #[test]
    fn top_values_returns_sorted_prefix() {
        let c = catalog();
        assert_eq!(c.top_values(0, 2), vec![0.6, 0.4]);
        assert_eq!(c.top_values(1, 5), vec![0.4, 0.4, 0.2]);
        assert!(c.top_values(0, 0).is_empty());
    }
}
