//! Linear package utility functions (Equation 1 of the paper).

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::item::Catalog;
use crate::package::Package;
use crate::profile::{AggregationContext, PackageState};

/// A weight vector parameterising the linear utility; each component lies in
/// `[-1, 1]`, positive meaning "larger is better" on that feature and negative
/// meaning "smaller is better".
pub type WeightVector = Vec<f64>;

/// Dot product used for utility evaluation.
///
/// This is the unchecked inner loop of the scoring stack: release builds do
/// **not** verify that the operands agree on length (a mismatch would
/// zip-truncate).  Dimension agreement is enforced upstream, where vectors
/// enter the system — [`LinearUtility::new`] / [`LinearUtility::set_weights`]
/// and the matrix constructors of [`crate::scoring`] all check in release
/// builds — so every slice reaching this function is already validated.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Clamps every component of a weight vector into `[-1, 1]`.
pub fn clamp_weights(w: &[f64]) -> WeightVector {
    w.iter().map(|x| x.clamp(-1.0, 1.0)).collect()
}

/// Whether every component of a weight vector lies in `[-1, 1]` and is finite.
pub fn weights_in_range(w: &[f64]) -> bool {
    w.iter().all(|x| x.is_finite() && (-1.0..=1.0).contains(x))
}

/// A linear utility `U(p) = w · p` over normalised package feature vectors,
/// bound to an [`AggregationContext`] so it can be evaluated directly on
/// packages and on incremental [`PackageState`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearUtility {
    context: AggregationContext,
    weights: WeightVector,
}

impl LinearUtility {
    /// Creates a utility function; the weight vector must match the context's
    /// feature count.
    pub fn new(context: AggregationContext, weights: WeightVector) -> Result<Self> {
        if weights.len() != context.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: context.dim(),
                actual: weights.len(),
            });
        }
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(CoreError::InvalidConfig("weights must be finite".into()));
        }
        Ok(LinearUtility { context, weights })
    }

    /// Replaces the weight vector in place, revalidating dimension and
    /// finiteness — lets per-sample loops reuse one utility (and its bound
    /// context) instead of cloning the context for every sample.
    pub fn set_weights(&mut self, weights: &[f64]) -> Result<()> {
        if weights.len() != self.context.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.context.dim(),
                actual: weights.len(),
            });
        }
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(CoreError::InvalidConfig("weights must be finite".into()));
        }
        self.weights.clear();
        self.weights.extend_from_slice(weights);
        Ok(())
    }

    /// The aggregation context.
    pub fn context(&self) -> &AggregationContext {
        &self.context
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The maximum package size φ the context allows.
    pub fn max_package_size(&self) -> usize {
        self.context.max_package_size()
    }

    /// Utility of a normalised package feature vector.
    pub fn of_vector(&self, package_vector: &[f64]) -> f64 {
        dot(&self.weights, package_vector)
    }

    /// Utility of an incremental package state.
    pub fn of_state(&self, state: &PackageState) -> f64 {
        (0..self.dim())
            .map(|j| self.weights[j] * self.context.normalized_feature(state, j))
            .sum()
    }

    /// Utility of a package.
    pub fn of_package(&self, catalog: &Catalog, package: &Package) -> Result<f64> {
        Ok(self.of_vector(&self.context.package_vector(catalog, package)?))
    }

    /// Whether this utility is *set-monotone* (Section 4.1): adding items can
    /// never decrease it.  This holds when every feature's contribution is
    /// non-decreasing under item addition:
    ///
    /// * `sum`/`max` aggregates with non-negative weight,
    /// * `min` aggregates with non-positive weight,
    /// * `null` aggregates or zero weights, which contribute nothing.
    ///
    /// `avg` aggregates with a non-zero weight are never set-monotone because
    /// the average can move either way.
    pub fn is_set_monotone(&self) -> bool {
        (0..self.dim()).all(|j| {
            let w = self.weights[j];
            if w == 0.0 {
                return true;
            }
            let agg = self.context.profile().aggregate(j);
            if w > 0.0 {
                agg.is_monotone_increasing()
            } else {
                agg.is_monotone_decreasing()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{AggregateFn, Profile};

    fn figure1_catalog() -> Catalog {
        Catalog::new(
            vec!["cost".into(), "rating".into()],
            vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.2, 0.4]],
        )
        .unwrap()
    }

    fn figure1_utility(weights: Vec<f64>) -> LinearUtility {
        let ctx = AggregationContext::new(Profile::cost_quality(), &figure1_catalog(), 2).unwrap();
        LinearUtility::new(ctx, weights).unwrap()
    }

    #[test]
    fn helpers_behave() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, -1.0]), 1.0);
        assert_eq!(clamp_weights(&[2.0, -3.0, 0.5]), vec![1.0, -1.0, 0.5]);
        assert!(weights_in_range(&[0.5, -1.0, 1.0]));
        assert!(!weights_in_range(&[1.5]));
        assert!(!weights_in_range(&[f64::NAN]));
    }

    #[test]
    fn figure2_utilities_are_reproduced() {
        // Figure 2(c): utilities of p1..p6 under w1 = (0.5, 0.1).
        let catalog = figure1_catalog();
        let u = figure1_utility(vec![0.5, 0.1]);
        let packages = [
            (vec![0], 0.35),
            (vec![1], 0.3),
            (vec![2], 0.2),
            (vec![0, 1], 0.575),
            (vec![1, 2], 0.4),
            (vec![0, 2], 0.475),
        ];
        for (items, expected) in packages {
            let p = Package::new(items.clone()).unwrap();
            let got = u.of_package(&catalog, &p).unwrap();
            assert!(
                (got - expected).abs() < 1e-12,
                "package {items:?}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn figure2_utilities_under_second_and_third_weight_vectors() {
        let catalog = figure1_catalog();
        let cases = [
            (vec![0.1, 0.5], vec![0.31, 0.54, 0.52, 0.475, 0.56, 0.455]),
            (vec![0.1, 0.1], vec![0.11, 0.14, 0.12, 0.175, 0.16, 0.155]),
        ];
        let package_items: [Vec<usize>; 6] = [
            vec![0],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![1, 2],
            vec![0, 2],
        ];
        for (weights, expected) in cases {
            let u = figure1_utility(weights.clone());
            for (items, exp) in package_items.iter().zip(expected.iter()) {
                let p = Package::new(items.clone()).unwrap();
                let got = u.of_package(&catalog, &p).unwrap();
                assert!(
                    (got - exp).abs() < 1e-9,
                    "w {weights:?} package {items:?}: {got} vs {exp}"
                );
            }
        }
    }

    #[test]
    fn state_and_vector_evaluations_agree() {
        let catalog = figure1_catalog();
        let u = figure1_utility(vec![-0.5, 0.5]);
        let p = Package::new(vec![0, 2]).unwrap();
        let state = u.context().state_of(&catalog, p.items()).unwrap();
        let via_state = u.of_state(&state);
        let via_package = u.of_package(&catalog, &p).unwrap();
        assert!((via_state - via_package).abs() < 1e-12);
    }

    #[test]
    fn dimension_and_finiteness_validation() {
        let ctx = AggregationContext::new(Profile::cost_quality(), &figure1_catalog(), 2).unwrap();
        assert!(matches!(
            LinearUtility::new(ctx.clone(), vec![0.1]),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            LinearUtility::new(ctx, vec![0.1, f64::INFINITY]),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn weights_can_be_swapped_in_place() {
        let catalog = figure1_catalog();
        let mut u = figure1_utility(vec![0.5, 0.1]);
        u.set_weights(&[0.1, 0.5]).unwrap();
        assert_eq!(u.weights(), &[0.1, 0.5]);
        // Figure 2(c): p5 under w2 = (0.1, 0.5) scores 0.56.
        let p5 = Package::new(vec![1, 2]).unwrap();
        assert!((u.of_package(&catalog, &p5).unwrap() - 0.56).abs() < 1e-9);
        assert!(matches!(
            u.set_weights(&[0.1]),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            u.set_weights(&[0.1, f64::NAN]),
            Err(CoreError::InvalidConfig(_))
        ));
        // Failed swaps leave the previous weights intact.
        assert_eq!(u.weights(), &[0.1, 0.5]);
    }

    #[test]
    fn set_monotonicity_classification() {
        let catalog = Catalog::from_rows(vec![vec![1.0, 2.0, 3.0], vec![2.0, 1.0, 4.0]]).unwrap();
        let profile = Profile::new(vec![AggregateFn::Sum, AggregateFn::Min, AggregateFn::Avg]);
        let ctx = AggregationContext::new(profile, &catalog, 2).unwrap();
        // The paper's example: 0.5*sum1 - 0.5*min2 is set-monotone.
        let u = LinearUtility::new(ctx.clone(), vec![0.5, -0.5, 0.0]).unwrap();
        assert!(u.is_set_monotone());
        // Positive weight on a min aggregate is not monotone.
        let u = LinearUtility::new(ctx.clone(), vec![0.5, 0.5, 0.0]).unwrap();
        assert!(!u.is_set_monotone());
        // Any non-zero weight on an avg aggregate is not monotone.
        let u = LinearUtility::new(ctx.clone(), vec![0.5, 0.0, 0.1]).unwrap();
        assert!(!u.is_set_monotone());
        // Negative weight on sum is not monotone either.
        let u = LinearUtility::new(ctx, vec![-0.5, 0.0, 0.0]).unwrap();
        assert!(!u.is_set_monotone());
    }

    #[test]
    fn set_monotone_utility_never_decreases_when_adding_items() {
        let catalog = Catalog::from_rows(vec![
            vec![0.3, 0.9],
            vec![0.7, 0.2],
            vec![0.5, 0.5],
            vec![0.1, 0.4],
        ])
        .unwrap();
        let profile = Profile::new(vec![AggregateFn::Sum, AggregateFn::Max]);
        let ctx = AggregationContext::new(profile, &catalog, 4).unwrap();
        let u = LinearUtility::new(ctx, vec![0.6, 0.4]).unwrap();
        assert!(u.is_set_monotone());
        let mut state = PackageState::empty(2);
        let mut last = u.of_state(&state);
        for id in 0..4 {
            state.add_item(catalog.item(id).unwrap());
            let now = u.of_state(&state);
            assert!(now + 1e-12 >= last);
            last = now;
        }
    }
}
