//! Preference-elicitation sessions with a simulated user (Section 5.6).
//!
//! The paper's effectiveness study generates hidden ground-truth utility
//! functions, presents five recommended plus five random packages per round,
//! lets the (simulated) user click the shown package that maximises the hidden
//! utility, and counts how many clicks the system needs before its top-k list
//! stabilises.  This module provides the simulated user, the session driver
//! and the convergence/precision bookkeeping used by Figure 8.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::item::Catalog;
use crate::package::Package;
use crate::recommender::{Feedback, Recommender};
use crate::scoring::{score_batch, CandidateMatrix, WeightMatrix};
use crate::search::{top_k_packages, AggregatedSearchStats, SearchResult};
use crate::utility::{clamp_weights, LinearUtility, WeightVector};

/// A simulated user with a hidden ground-truth utility function.
#[derive(Debug, Clone)]
pub struct SimulatedUser {
    utility: LinearUtility,
    /// Probability that a click follows the true utility; with probability
    /// `1 - reliability` the user clicks a uniformly random shown package.
    reliability: f64,
}

impl SimulatedUser {
    /// Creates a perfectly reliable simulated user.
    pub fn new(utility: LinearUtility) -> Self {
        SimulatedUser {
            utility,
            reliability: 1.0,
        }
    }

    /// Creates a noisy simulated user that mis-clicks with probability
    /// `1 - reliability` (the click-noise counterpart of Section 7).
    pub fn with_reliability(utility: LinearUtility, reliability: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&reliability) {
            return Err(CoreError::InvalidConfig(
                "user reliability must lie in [0, 1]".into(),
            ));
        }
        Ok(SimulatedUser {
            utility,
            reliability,
        })
    }

    /// The hidden ground-truth utility.
    pub fn utility(&self) -> &LinearUtility {
        &self.utility
    }

    /// The hidden ground-truth weight vector.
    pub fn true_weights(&self) -> &[f64] {
        self.utility.weights()
    }

    /// The ground-truth top-k packages under the hidden utility.
    pub fn ground_truth_top_k(&self, catalog: &Catalog, k: usize) -> Result<SearchResult> {
        top_k_packages(&self.utility, catalog, k)
    }

    /// Picks the index of the shown package the user clicks.
    pub fn choose(
        &self,
        catalog: &Catalog,
        shown: &[Package],
        rng: &mut dyn RngCore,
    ) -> Result<usize> {
        if shown.is_empty() {
            return Err(CoreError::InvalidConfig(
                "nothing was shown to the user".into(),
            ));
        }
        if self.reliability < 1.0 && rng.gen::<f64>() > self.reliability {
            return Ok(rng.gen_range(0..shown.len()));
        }
        // Score every shown package against the (single) hidden weight vector
        // through the batched kernel; the argmax reduction breaks ties toward
        // the lower index, exactly as the old scalar scan did.
        let context = self.utility.context();
        let mut candidates = CandidateMatrix::new(self.utility.dim());
        for package in shown {
            candidates.push_row(&context.package_vector(catalog, package)?);
        }
        let mut weights = WeightMatrix::new(self.utility.dim());
        weights.push(self.utility.weights(), 1.0);
        Ok(score_batch(&candidates, &weights).top_candidate_per_sample()[0])
    }
}

/// Draws a random ground-truth weight vector in `[-1, 1]^m` (the "randomly
/// generated ground truth utility functions" of Section 5.6).
pub fn random_ground_truth_weights(dim: usize, rng: &mut dyn RngCore) -> WeightVector {
    clamp_weights(
        &(0..dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect::<Vec<f64>>(),
    )
}

/// Configuration of an elicitation session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElicitationConfig {
    /// Maximum number of rounds (clicks) before giving up.
    pub max_rounds: usize,
    /// The session is converged once the recommended top-k list is identical
    /// for this many consecutive rounds.
    pub stable_rounds: usize,
}

impl Default for ElicitationConfig {
    fn default() -> Self {
        ElicitationConfig {
            max_rounds: 25,
            stable_rounds: 2,
        }
    }
}

/// Outcome of an elicitation session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElicitationReport {
    /// Number of clicks (= rounds) performed.
    pub clicks: usize,
    /// Whether the top-k list stabilised before `max_rounds`.
    pub converged: bool,
    /// The final recommended top-k list.
    pub final_top_k: Vec<Package>,
    /// The ground-truth top-k list under the hidden utility.
    pub ground_truth_top_k: Vec<Package>,
    /// Fraction of the final recommendation that appears in the ground-truth
    /// top-k (set precision, order-insensitive).
    pub precision: f64,
    /// Aggregated `Top-k-Pkg` statistics accumulated by the recommender over
    /// this session (all zero for recommenders that never run the package
    /// search).
    pub search: AggregatedSearchStats,
}

/// Runs one elicitation session against any [`Recommender`]: present, click,
/// learn, repeat until the recommendation stabilises or the round budget is
/// exhausted.
///
/// The loop is generic over `&mut dyn Recommender`, so the elicitation engine
/// and every baseline adapter in `pkgrec-baselines` are compared round for
/// round through exactly the same driver (the setup of the paper's Figure 8).
pub fn run_elicitation(
    recommender: &mut dyn Recommender,
    user: &SimulatedUser,
    config: ElicitationConfig,
    rng: &mut dyn RngCore,
) -> Result<ElicitationReport> {
    if config.max_rounds == 0 || config.stable_rounds == 0 {
        return Err(CoreError::InvalidConfig(
            "max_rounds and stable_rounds must be at least 1".into(),
        ));
    }
    let start_state = recommender.state();
    let k = start_state.k;
    let catalog = recommender.catalog().clone();
    let ground_truth: Vec<Package> = user.ground_truth_top_k(&catalog, k)?.into_packages();

    let mut clicks = 0usize;
    let mut converged = false;
    let mut previous: Option<Vec<Package>> = None;
    let mut stable = 0usize;
    let mut last_recommendation: Vec<Package> = Vec::new();

    for _ in 0..config.max_rounds {
        let shown = recommender.present(rng)?;
        last_recommendation = shown.iter().take(k).cloned().collect();
        // Convergence check on the recommended (exploitation) part only.
        if previous.as_ref() == Some(&last_recommendation) {
            stable += 1;
            if stable + 1 >= config.stable_rounds {
                converged = true;
                break;
            }
        } else {
            stable = 0;
        }
        previous = Some(last_recommendation.clone());

        let choice = user.choose(&catalog, &shown, rng)?;
        recommender.record_feedback(&shown, Feedback::Click { index: choice }, rng)?;
        clicks += 1;
    }

    let hits = last_recommendation
        .iter()
        .filter(|p| ground_truth.contains(p))
        .count();
    let precision = if last_recommendation.is_empty() {
        0.0
    } else {
        hits as f64 / last_recommendation.len() as f64
    };
    Ok(ElicitationReport {
        clicks,
        converged,
        final_top_k: last_recommendation,
        ground_truth_top_k: ground_truth,
        precision,
        search: recommender.state().search.delta_since(&start_state.search),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RecommenderEngine;
    use crate::profile::{AggregationContext, Profile};
    use crate::ranking::RankingSemantics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
            vec![0.7, 0.1],
            vec![0.1, 0.3],
            vec![0.5, 0.9],
            vec![0.8, 0.5],
            vec![0.2, 0.8],
        ])
        .unwrap()
    }

    fn ground_truth_utility(weights: Vec<f64>) -> LinearUtility {
        let ctx = AggregationContext::new(Profile::cost_quality(), &catalog(), 3).unwrap();
        LinearUtility::new(ctx, weights).unwrap()
    }

    fn fast_engine() -> RecommenderEngine {
        RecommenderEngine::builder(catalog(), Profile::cost_quality())
            .max_package_size(3)
            .k(3)
            .num_random(3)
            .num_samples(40)
            .semantics(RankingSemantics::Exp)
            .build()
            .unwrap()
    }

    #[test]
    fn simulated_user_clicks_the_best_shown_package() {
        let user = SimulatedUser::new(ground_truth_utility(vec![-0.8, 0.6]));
        let cat = catalog();
        let shown = vec![
            Package::new(vec![3]).unwrap(), // expensive, good
            Package::new(vec![6]).unwrap(), // cheap, mediocre
            Package::new(vec![9]).unwrap(), // cheap, good
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let choice = user.choose(&cat, &shown, &mut rng).unwrap();
        assert_eq!(choice, 2);
        assert!(user.choose(&cat, &[], &mut rng).is_err());
        assert_eq!(user.true_weights(), &[-0.8, 0.6]);
    }

    #[test]
    fn unreliable_user_sometimes_misclicks() {
        let user =
            SimulatedUser::with_reliability(ground_truth_utility(vec![-0.8, 0.6]), 0.0).unwrap();
        let cat = catalog();
        let shown = vec![
            Package::new(vec![3]).unwrap(),
            Package::new(vec![6]).unwrap(),
            Package::new(vec![9]).unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..300 {
            counts[user.choose(&cat, &shown, &mut rng).unwrap()] += 1;
        }
        // A fully unreliable user clicks uniformly at random.
        for c in counts {
            assert!(c > 50, "counts {counts:?}");
        }
        assert!(
            SimulatedUser::with_reliability(ground_truth_utility(vec![0.0, 0.0]), 1.5).is_err()
        );
    }

    #[test]
    fn random_ground_truth_weights_stay_in_the_cube() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let w = random_ground_truth_weights(6, &mut rng);
            assert_eq!(w.len(), 6);
            assert!(w.iter().all(|x| (-1.0..=1.0).contains(x)));
        }
    }

    #[test]
    fn session_converges_within_a_few_clicks() {
        let mut rng = StdRng::seed_from_u64(4);
        let user = SimulatedUser::new(ground_truth_utility(vec![-0.7, 0.7]));
        let mut engine = fast_engine();
        let report =
            run_elicitation(&mut engine, &user, ElicitationConfig::default(), &mut rng).unwrap();
        assert!(report.converged, "session did not converge: {report:?}");
        assert!(report.clicks <= 15, "needed {} clicks", report.clicks);
        assert_eq!(report.final_top_k.len(), 3);
        assert_eq!(report.ground_truth_top_k.len(), 3);
        assert!(report.precision > 0.0);
        // The engine ran one Top-k-Pkg per pool sample per round, and the
        // session-scoped aggregate surfaces those counters.
        assert!(report.search.searches >= 40, "{:?}", report.search);
        assert!(report.search.sorted_accesses > 0);
        assert!(report.search.candidates_created > 0);
    }

    #[test]
    fn invalid_session_configuration_is_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let user = SimulatedUser::new(ground_truth_utility(vec![0.5, 0.5]));
        let mut engine = fast_engine();
        let bad = ElicitationConfig {
            max_rounds: 0,
            stable_rounds: 1,
        };
        assert!(run_elicitation(&mut engine, &user, bad, &mut rng).is_err());
    }

    #[test]
    fn feedback_improves_precision_over_the_prior() {
        // Compare the precision of the converged session with the precision of
        // the very first (prior-only) recommendation.
        let mut rng = StdRng::seed_from_u64(6);
        let user = SimulatedUser::new(ground_truth_utility(vec![-0.9, 0.8]));
        let mut engine = fast_engine();
        let ground_truth = user
            .ground_truth_top_k(engine.catalog(), 3)
            .unwrap()
            .into_packages();
        let first: Vec<Package> = engine
            .recommend(&mut rng)
            .unwrap()
            .into_iter()
            .map(|r| r.package)
            .collect();
        let first_hits = first.iter().filter(|p| ground_truth.contains(p)).count();
        let report =
            run_elicitation(&mut engine, &user, ElicitationConfig::default(), &mut rng).unwrap();
        let final_hits = (report.precision * report.final_top_k.len() as f64).round() as usize;
        assert!(
            final_hits >= first_hits,
            "precision degraded: {first_hits} -> {final_hits}"
        );
    }
}
