//! Sample maintenance against newly received feedback (Section 3.4).
//!
//! When a new preference `p1 ≻ p2` arrives, most samples in the pool usually
//! remain valid; only those with `w · (p2 - p1) > 0` have to be replaced.
//! Finding them can be done by
//!
//! * a **naive scan** over the pool,
//! * a **TA scan** (Algorithm 1) over per-feature sorted lists of the samples,
//!   which stops early when few samples violate the feedback, or
//! * a **hybrid** that starts as a TA scan and falls back to scanning the rest
//!   of the current list once `Cprocessed + Cremain ≥ (1 + γ)|S|`.
//!
//! After the violators are identified they are replaced by fresh samples drawn
//! against the *full* (updated) constraint set, so the pool keeps following
//! the posterior.

use pkgrec_gmm::GaussianMixture;
use pkgrec_topk::{SortedLists, ThresholdScanner};
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::constraints::ConstraintChecker;
use crate::error::Result;
use crate::preferences::Preference;
use crate::sampler::{SamplePool, WeightSampler};
use crate::scoring::{score_batch, CandidateMatrix};

/// Strategy for locating samples invalidated by a new preference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MaintenanceStrategy {
    /// Check every sample in the pool.
    Naive,
    /// Threshold-algorithm scan over per-feature sorted lists (Algorithm 1
    /// without the fallback).
    TopK,
    /// TA scan with fallback to a plain scan once the TA has processed
    /// `(1 + γ)|S|` entries (Algorithm 1).
    Hybrid {
        /// The fallback slack parameter γ.
        gamma: f64,
    },
}

impl MaintenanceStrategy {
    /// Short label used in experiment output.
    pub fn label(&self) -> String {
        match self {
            MaintenanceStrategy::Naive => "naive".to_string(),
            MaintenanceStrategy::TopK => "top-k".to_string(),
            MaintenanceStrategy::Hybrid { gamma } => format!("hybrid(γ={gamma})"),
        }
    }
}

/// Result of locating (and optionally replacing) invalidated samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceOutcome {
    /// Indices (into the pool) of samples violating the new preference,
    /// sorted ascending.
    pub violating: Vec<usize>,
    /// Number of samples whose score was explicitly evaluated.
    pub samples_checked: usize,
    /// Number of sorted-list accesses performed (0 for the naive strategy).
    pub sorted_accesses: usize,
    /// Number of samples replaced (0 when only detection was requested).
    pub replaced: usize,
}

/// The query vector of Algorithm 1: violators satisfy `w · (p2 - p1) > 0`.
fn violation_query(preference: &Preference) -> Vec<f64> {
    preference
        .worse
        .iter()
        .zip(preference.better.iter())
        .map(|(worse, better)| worse - better)
        .collect()
}

/// Builds the per-feature sorted-list index of a sample pool used by the TA
/// and hybrid strategies.  The index must be rebuilt (or incrementally
/// refreshed) whenever pool entries are replaced.
pub fn index_pool(pool: &SamplePool) -> SortedLists {
    let matrix = pool.weight_matrix();
    SortedLists::from_strided(pool.dim(), matrix.stride(), matrix.weights_flat())
}

/// Locates the samples of `pool` that violate `preference` using the given
/// strategy.  `index` is required by the TA and hybrid strategies and ignored
/// by the naive one; passing `None` silently falls back to the naive scan.
pub fn find_violating(
    pool: &SamplePool,
    index: Option<&SortedLists>,
    preference: &Preference,
    strategy: MaintenanceStrategy,
) -> MaintenanceOutcome {
    let query = violation_query(preference);
    match (strategy, index) {
        (MaintenanceStrategy::Naive, _) | (_, None) => {
            // The naive scan is one batched kernel call: score the violation
            // query against every pooled sample and keep the positive scores.
            let mut queries = CandidateMatrix::new(query.len());
            queries.push_row(&query);
            let scores = score_batch(&queries, pool.weight_matrix());
            MaintenanceOutcome {
                violating: scores.samples_above(0, 0.0),
                samples_checked: pool.len(),
                sorted_accesses: 0,
                replaced: 0,
            }
        }
        (MaintenanceStrategy::TopK, Some(index)) => {
            let result = ThresholdScanner::new(index, query, 0.0).run();
            MaintenanceOutcome {
                violating: result.matches,
                samples_checked: result.distinct_seen,
                sorted_accesses: result.sorted_accesses,
                replaced: 0,
            }
        }
        (MaintenanceStrategy::Hybrid { gamma }, Some(index)) => {
            let budget = ((1.0 + gamma.max(0.0)) * pool.len() as f64).ceil() as usize;
            let result = ThresholdScanner::new(index, query, 0.0).run_with_budget(budget);
            MaintenanceOutcome {
                violating: result.matches,
                samples_checked: result.distinct_seen,
                sorted_accesses: result.sorted_accesses,
                replaced: 0,
            }
        }
    }
}

/// Locates the samples violating `preference` and replaces them in place with
/// fresh samples drawn by `sampler` against the full updated constraint set
/// `checker` (which must already include the new preference).
///
/// Valid samples are retained untouched — the justification in Section 3.4 is
/// that the probability of every valid `w` still follows the prior regardless
/// of the new feedback.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 1's full parameter list
pub fn maintain_pool(
    pool: &mut SamplePool,
    index: Option<&SortedLists>,
    preference: &Preference,
    strategy: MaintenanceStrategy,
    sampler: &dyn WeightSampler,
    prior: &GaussianMixture,
    checker: &ConstraintChecker,
    rng: &mut dyn RngCore,
) -> Result<MaintenanceOutcome> {
    let mut outcome = find_violating(pool, index, preference, strategy);
    if outcome.violating.is_empty() {
        return Ok(outcome);
    }
    let replacements = sampler.generate(prior, checker, outcome.violating.len(), rng)?;
    for (slot, replacement) in outcome.violating.iter().zip(replacements.pool.samples()) {
        pool.set_sample(*slot, replacement.weights, replacement.importance);
    }
    outcome.replaced = outcome.violating.len();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ConstraintSource;
    use crate::sampler::{RejectionSampler, WeightSample};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pool(n: usize, dim: usize, seed: u64) -> SamplePool {
        let mut rng = StdRng::seed_from_u64(seed);
        SamplePool::from_samples(
            (0..n)
                .map(|_| {
                    WeightSample::unweighted((0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
                })
                .collect(),
        )
    }

    fn preference(better: Vec<f64>, worse: Vec<f64>) -> Preference {
        Preference::new(better, worse)
    }

    #[test]
    fn all_strategies_find_the_same_violators() {
        let pool = random_pool(500, 3, 42);
        let index = index_pool(&pool);
        let pref = preference(vec![0.7, 0.2, 0.5], vec![0.3, 0.6, 0.4]);
        let naive = find_violating(&pool, None, &pref, MaintenanceStrategy::Naive);
        let ta = find_violating(&pool, Some(&index), &pref, MaintenanceStrategy::TopK);
        let hybrid = find_violating(
            &pool,
            Some(&index),
            &pref,
            MaintenanceStrategy::Hybrid { gamma: 0.025 },
        );
        assert_eq!(naive.violating, ta.violating);
        assert_eq!(naive.violating, hybrid.violating);
        // The violators are exactly the samples a preference checker rejects.
        let expected: Vec<usize> = pool.violating_indices(|w| pref.satisfied_by(w));
        assert_eq!(naive.violating, expected);
    }

    #[test]
    fn violators_are_samples_preferring_the_worse_package() {
        let pool = SamplePool::from_samples(vec![
            WeightSample::unweighted(vec![1.0, 0.0]), // prefers better (higher f1)
            WeightSample::unweighted(vec![-1.0, 0.0]), // prefers worse
            WeightSample::unweighted(vec![0.0, 1.0]), // indifferent on f1, prefers worse on f2
        ]);
        let pref = preference(vec![0.8, 0.2], vec![0.2, 0.6]);
        let out = find_violating(&pool, None, &pref, MaintenanceStrategy::Naive);
        assert_eq!(out.violating, vec![1, 2]);
        assert_eq!(out.samples_checked, 3);
    }

    #[test]
    fn ta_strategy_stops_early_when_few_samples_violate() {
        // Pool concentrated deep inside the satisfied half-space, with a single
        // outlier violator.
        let mut samples: Vec<WeightSample> = (0..2000)
            .map(|i| WeightSample::unweighted(vec![0.5 + (i % 10) as f64 * 0.01, 0.0]))
            .collect();
        samples.push(WeightSample::unweighted(vec![-0.9, 0.0]));
        let pool = SamplePool::from_samples(samples);
        let index = index_pool(&pool);
        let pref = preference(vec![1.0, 0.0], vec![0.0, 0.0]);
        let ta = find_violating(&pool, Some(&index), &pref, MaintenanceStrategy::TopK);
        assert_eq!(ta.violating, vec![2000]);
        assert!(
            ta.sorted_accesses < pool.len() / 4,
            "TA should stop early, used {} accesses for {} samples",
            ta.sorted_accesses,
            pool.len()
        );
        let naive = find_violating(&pool, None, &pref, MaintenanceStrategy::Naive);
        assert_eq!(naive.samples_checked, pool.len());
    }

    #[test]
    fn hybrid_strategy_bounds_the_overhead_when_many_samples_violate() {
        // Every sample violates the preference; pure TA would walk whole lists.
        let pool = random_pool(1000, 2, 7);
        let index = index_pool(&pool);
        // better = worse on everything except the sign, so w·(worse-better) > 0
        // for roughly half the random pool; use an extreme preference where the
        // "worse" package dominates to force mass violation.
        let pref = preference(vec![0.0, 0.0], vec![1.0, 1.0]);
        let naive = find_violating(&pool, None, &pref, MaintenanceStrategy::Naive);
        let hybrid = find_violating(
            &pool,
            Some(&index),
            &pref,
            MaintenanceStrategy::Hybrid { gamma: 0.025 },
        );
        assert_eq!(naive.violating, hybrid.violating);
        // The hybrid's total work (sorted accesses plus explicit checks) stays
        // within (1 + γ)|S| plus the final fallback scan.
        assert!(hybrid.sorted_accesses <= ((1.025 * pool.len() as f64) as usize) + 2);
    }

    #[test]
    fn strategy_labels_are_stable() {
        assert_eq!(MaintenanceStrategy::Naive.label(), "naive");
        assert_eq!(MaintenanceStrategy::TopK.label(), "top-k");
        assert_eq!(
            MaintenanceStrategy::Hybrid { gamma: 0.05 }.label(),
            "hybrid(γ=0.05)"
        );
    }

    #[test]
    fn maintain_pool_replaces_only_violators() {
        let mut rng = StdRng::seed_from_u64(11);
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        // Pool drawn without constraints.
        let sampler = RejectionSampler::default();
        let empty_checker = ConstraintChecker::from_constraints(2, vec![], ConstraintSource::Full);
        let mut pool = sampler
            .generate(&prior, &empty_checker, 300, &mut rng)
            .unwrap()
            .pool;
        // New feedback: packages (0.9, 0.1) ≻ (0.1, 0.9).
        let pref = preference(vec![0.9, 0.1], vec![0.1, 0.9]);
        let constraint_checker =
            ConstraintChecker::from_constraints(2, vec![pref.constraint()], ConstraintSource::Full);
        let index = index_pool(&pool);
        let valid_before: Vec<Vec<f64>> = pool
            .samples()
            .filter(|s| pref.satisfied_by(s.weights))
            .map(|s| s.weights.to_vec())
            .collect();
        let outcome = maintain_pool(
            &mut pool,
            Some(&index),
            &pref,
            MaintenanceStrategy::TopK,
            &sampler,
            &prior,
            &constraint_checker,
            &mut rng,
        )
        .unwrap();
        assert!(outcome.replaced > 0);
        assert_eq!(outcome.replaced, outcome.violating.len());
        // After maintenance every sample satisfies the new preference.
        assert!(pool.samples().all(|s| pref.satisfied_by(s.weights)));
        // Samples that were already valid are untouched.
        let valid_after: Vec<Vec<f64>> = pool
            .samples()
            .map(|s| s.weights.to_vec())
            .filter(|w| valid_before.contains(w))
            .collect();
        assert_eq!(valid_after.len(), valid_before.len());
    }

    #[test]
    fn maintain_pool_is_a_noop_when_nothing_violates() {
        let mut rng = StdRng::seed_from_u64(13);
        let prior = GaussianMixture::default_prior(2, 1, 0.5).unwrap();
        let sampler = RejectionSampler::default();
        let mut pool = SamplePool::from_samples(vec![
            WeightSample::unweighted(vec![0.5, 0.1]),
            WeightSample::unweighted(vec![0.9, 0.4]),
        ]);
        let before = pool.clone();
        let pref = preference(vec![1.0, 0.0], vec![0.0, 0.0]);
        let checker =
            ConstraintChecker::from_constraints(2, vec![pref.constraint()], ConstraintSource::Full);
        let outcome = maintain_pool(
            &mut pool,
            None,
            &pref,
            MaintenanceStrategy::Naive,
            &sampler,
            &prior,
            &checker,
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.replaced, 0);
        assert!(outcome.violating.is_empty());
        assert_eq!(pool, before);
    }
}
