//! Baseline coverage through the public API: the exhaustive re-export, the
//! raw skyline scan, and — the real surface — every session adapter driven
//! for three elicitation rounds through `&mut dyn Recommender`, exactly the
//! way session drivers (`run_elicitation`, the fig8 harness, the serving
//! store) consume them.

use pkgrec_baselines::exhaustive::top_k_packages_exhaustive;
use pkgrec_baselines::skyline::FeatureDirection;
use pkgrec_baselines::{
    skyline_packages, BaselineSpec, BudgetConstraint, EmRefitConfig, EmRefitSession,
    HardConstraintSession, SkylineSession,
};
use pkgrec_core::{
    AggregationContext, Catalog, Feedback, LinearUtility, Profile, Recommender, SimulatedUser,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn catalog() -> Catalog {
    Catalog::from_rows(vec![
        vec![0.6, 0.2],
        vec![0.4, 0.4],
        vec![0.2, 0.4],
        vec![0.9, 0.8],
        vec![0.3, 0.7],
        vec![0.1, 0.3],
        vec![0.5, 0.9],
        vec![0.7, 0.1],
    ])
    .expect("valid catalog")
}

#[test]
fn exhaustive_and_skyline_smoke() {
    let catalog = Catalog::from_rows(vec![vec![0.9, 0.1], vec![0.5, 0.5], vec![0.1, 0.9]])
        .expect("valid catalog");
    let context =
        AggregationContext::new(Profile::cost_quality(), &catalog, 2).expect("valid context");

    let utility = LinearUtility::new(context.clone(), vec![-0.5, 1.0]).expect("valid weights");
    let top = top_k_packages_exhaustive(&utility, &catalog, 3).expect("search succeeds");
    assert!(!top.is_empty());
    // Best-first ordering.
    for pair in top.windows(2) {
        assert!(pair[0].1 >= pair[1].1);
    }

    let dirs = [FeatureDirection::Minimize, FeatureDirection::Maximize];
    let (packages, stats) =
        skyline_packages(&context, &catalog, 2, &dirs).expect("skyline succeeds");
    assert_eq!(packages.len(), stats.skyline_size);
    assert!(stats.skyline_size >= 1);
}

/// Drives a session for three elicitation rounds through the trait object
/// (clicks follow a hidden utility, so feedback stays satisfiable) and
/// checks the invariants every adapter must uphold: non-empty, duplicate-free
/// recommendations of the configured size, and a `state()` summary that
/// tracks the rounds consistently.
fn drive_three_rounds(recommender: &mut dyn Recommender, expected_label: &str, k: usize) {
    let catalog = recommender.catalog().clone();
    let context =
        AggregationContext::new(Profile::cost_quality(), &catalog, 2).expect("valid context");
    let user = SimulatedUser::new(LinearUtility::new(context, vec![-0.7, 0.6]).unwrap());
    let mut rng = StdRng::seed_from_u64(61);

    let initial = recommender.state();
    assert_eq!(initial.label, expected_label);
    assert_eq!(initial.k, k);
    assert_eq!(initial.rounds, 0);

    for round in 1..=3 {
        let shown = recommender.present(&mut rng).expect("present succeeds");
        assert!(!shown.is_empty(), "{expected_label}: empty presentation");
        let choice = user.choose(&catalog, &shown, &mut rng).unwrap();
        recommender
            .record_feedback(&shown, Feedback::Click { index: choice }, &mut rng)
            .expect("feedback is absorbed");
        let state = recommender.state();
        assert_eq!(state.rounds, round, "{expected_label}: rounds drifted");
        assert_eq!(state.label, expected_label);

        let recs = recommender.recommend(&mut rng).expect("recommend succeeds");
        assert!(
            !recs.is_empty() && recs.len() <= k,
            "{expected_label}: {} recommendations for k = {k}",
            recs.len()
        );
        let mut unique = recs.iter().map(|r| r.package.clone()).collect::<Vec<_>>();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), recs.len(), "{expected_label}: duplicates");
        // Scores arrive best-first.
        for pair in recs.windows(2) {
            assert!(pair[0].score >= pair[1].score, "{expected_label}: order");
        }
    }

    let end = recommender.state();
    assert_eq!(end.rounds, 3);
    // Learning adapters accumulated preferences; static ones stayed at 0.
    if expected_label == "em-refit" {
        assert!(end.preferences > 0, "em-refit absorbed nothing");
        assert!(end.pool_size > 0, "em-refit lost its pool");
        assert!(end.search.searches > 0, "em-refit never ran Top-k-Pkg");
    } else {
        assert_eq!(end.preferences, 0, "{expected_label} cannot learn");
        assert_eq!(end.search.searches, 0);
    }
}

#[test]
fn em_refit_session_runs_three_rounds_through_the_trait() {
    let mut session = EmRefitSession::new(
        catalog(),
        Profile::cost_quality(),
        2,
        EmRefitConfig {
            k: 3,
            num_random: 2,
            num_samples: 30,
            samples_per_refit: 60,
            ..EmRefitConfig::default()
        },
    )
    .expect("valid configuration");
    drive_three_rounds(&mut session, "em-refit", 3);
    assert!(session.stats().refits >= 1);
}

#[test]
fn hard_constraint_session_runs_three_rounds_through_the_trait() {
    let mut session = HardConstraintSession::new(
        catalog(),
        Profile::cost_quality(),
        2,
        1,
        vec![BudgetConstraint {
            feature: 0,
            max_value: 0.9,
        }],
        3,
    )
    .expect("valid configuration");
    drive_three_rounds(&mut session, "hard-constraint", 3);
}

#[test]
fn skyline_session_runs_three_rounds_through_the_trait() {
    let mut session = SkylineSession::new(
        catalog(),
        Profile::cost_quality(),
        2,
        2,
        vec![FeatureDirection::Minimize, FeatureDirection::Maximize],
        3,
    )
    .expect("valid configuration");
    drive_three_rounds(&mut session, "skyline", 3);
}

#[test]
fn baseline_spec_factory_builds_every_adapter() {
    let specs = [
        BaselineSpec::EmRefit(EmRefitConfig {
            k: 2,
            num_random: 1,
            num_samples: 15,
            samples_per_refit: 30,
            ..EmRefitConfig::default()
        }),
        BaselineSpec::HardConstraint {
            objective_feature: 1,
            budgets: vec![BudgetConstraint {
                feature: 0,
                max_value: 0.9,
            }],
            k: 2,
        },
        BaselineSpec::Skyline {
            cardinality: 2,
            directions: vec![FeatureDirection::Minimize, FeatureDirection::Maximize],
            k: 2,
        },
    ];
    let mut rng = StdRng::seed_from_u64(5);
    for spec in specs {
        let mut session = spec
            .build(catalog(), Profile::cost_quality(), 2)
            .expect("spec builds");
        assert_eq!(session.state().label, spec.label());
        assert!(!session.present(&mut rng).unwrap().is_empty());
    }
}
