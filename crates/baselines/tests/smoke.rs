//! Manifest smoke test: the exhaustive ground-truth re-export and the skyline
//! baseline, driven through the public API.

use pkgrec_baselines::exhaustive::top_k_packages_exhaustive;
use pkgrec_baselines::skyline::FeatureDirection;
use pkgrec_baselines::skyline_packages;
use pkgrec_core::{AggregationContext, Catalog, LinearUtility, Profile};

#[test]
fn exhaustive_and_skyline_smoke() {
    let catalog = Catalog::from_rows(vec![vec![0.9, 0.1], vec![0.5, 0.5], vec![0.1, 0.9]])
        .expect("valid catalog");
    let context =
        AggregationContext::new(Profile::cost_quality(), &catalog, 2).expect("valid context");

    let utility = LinearUtility::new(context.clone(), vec![-0.5, 1.0]).expect("valid weights");
    let top = top_k_packages_exhaustive(&utility, &catalog, 3).expect("search succeeds");
    assert!(!top.is_empty());
    // Best-first ordering.
    for pair in top.windows(2) {
        assert!(pair[0].1 >= pair[1].1);
    }

    let dirs = [FeatureDirection::Minimize, FeatureDirection::Maximize];
    let (packages, stats) =
        skyline_packages(&context, &catalog, 2, &dirs).expect("skyline succeeds");
    assert_eq!(packages.len(), stats.skyline_size);
    assert!(stats.skyline_size >= 1);
}
