//! Session adapters: every baseline as a drop-in [`Recommender`] comparator.
//!
//! The paper's experiments compare the elicitation engine against the
//! EM-refit, hard-constraint and skyline baselines *round for round*, so each
//! baseline is wrapped in a session type implementing
//! [`pkgrec_core::recommender::Recommender`].  Any driver that takes
//! `&mut dyn Recommender` — [`pkgrec_core::elicitation::run_elicitation`],
//! the Figure 8 harness, an interactive frontend — can then swap the engine
//! for a baseline without touching its loop:
//!
//! * [`EmRefitSession`] — learns from feedback by refitting its
//!   Gaussian-mixture belief with EM after every round (the Section 2.1
//!   "expensive alternative", wrapping [`EmRefitRecommender`]),
//! * [`HardConstraintSession`] — recommends the budget-constrained optima of
//!   one aggregate feature; it ignores feedback, which is exactly the
//!   criticism the introduction levels at it,
//! * [`SkylineSession`] — presents Pareto-optimal packages of a fixed
//!   cardinality; it also ignores feedback.

use pkgrec_core::ranking::{aggregate, RankedPackage, RankingSemantics};
use pkgrec_core::recommender::{
    extend_with_random_packages, per_sample_rankings_indexed, Feedback, Recommender,
    RecommenderState,
};
use pkgrec_core::sampler::SamplePool;
use pkgrec_core::{
    AggregatedSearchStats, AggregationContext, Catalog, CoreError, Package, Preference, Profile,
    Result,
};
use pkgrec_topk::SortedLists;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::em_refit::{EmRefitRecommender, EmRefitStats};
use crate::hard_constraint::{hard_constraint_top_k, BudgetConstraint};
use crate::skyline::{skyline_packages, FeatureDirection};

/// Configuration of an [`EmRefitSession`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmRefitConfig {
    /// Number of packages recommended per round.
    pub k: usize,
    /// Number of random exploration packages presented per round.
    pub num_random: usize,
    /// Number of belief samples used to rank packages each round.
    pub num_samples: usize,
    /// Number of Gaussians in the belief mixture.
    pub components: usize,
    /// Standard deviation of the uninformative prior components.
    pub prior_sigma: f64,
    /// Constrained samples drawn to feed every EM refit.
    pub samples_per_refit: usize,
    /// Ranking semantics used to aggregate per-sample results.
    pub semantics: RankingSemantics,
}

impl Default for EmRefitConfig {
    fn default() -> Self {
        EmRefitConfig {
            k: 5,
            num_random: 5,
            num_samples: 100,
            components: 1,
            prior_sigma: 0.5,
            samples_per_refit: 200,
            semantics: RankingSemantics::Exp,
        }
    }
}

/// The EM-refit baseline as an interactive session: after every feedback
/// round the Gaussian-mixture belief is refit with EM (see
/// [`EmRefitRecommender`]), then packages are ranked from fresh belief
/// samples.
#[derive(Debug, Clone)]
pub struct EmRefitSession {
    catalog: Catalog,
    context: AggregationContext,
    /// Catalog-cached per-feature sorted lists shared by every per-sample
    /// package search (weight-independent, so built once per session).
    sorted_lists: SortedLists,
    inner: EmRefitRecommender,
    config: EmRefitConfig,
    pool: SamplePool,
    preferences: usize,
    rounds: usize,
    search_stats: AggregatedSearchStats,
}

impl EmRefitSession {
    /// Creates the session over a catalog with the given profile and maximum
    /// package size φ.
    pub fn new(
        catalog: Catalog,
        profile: Profile,
        max_package_size: usize,
        config: EmRefitConfig,
    ) -> Result<Self> {
        if config.k == 0 {
            return Err(CoreError::InvalidConfig("k must be at least 1".into()));
        }
        if config.num_samples == 0 {
            return Err(CoreError::InvalidConfig(
                "num_samples must be at least 1".into(),
            ));
        }
        let context = AggregationContext::new(profile, &catalog, max_package_size)?;
        let inner = EmRefitRecommender::new(
            context.dim(),
            config.components,
            config.prior_sigma,
            config.samples_per_refit,
        )?;
        let sorted_lists = SortedLists::new(catalog.rows());
        Ok(EmRefitSession {
            catalog,
            context,
            sorted_lists,
            inner,
            config,
            pool: SamplePool::new(),
            preferences: 0,
            rounds: 0,
            search_stats: AggregatedSearchStats::default(),
        })
    }

    /// The wrapped EM-refit recommender.
    pub fn inner(&self) -> &EmRefitRecommender {
        &self.inner
    }

    /// Cumulative refit cost statistics.
    pub fn stats(&self) -> &EmRefitStats {
        self.inner.stats()
    }

    fn ensure_pool(&mut self, rng: &mut dyn RngCore) {
        if self.pool.is_empty() {
            self.pool = self.inner.sample_pool(self.config.num_samples, rng);
        }
    }

    fn rank_pool(&mut self) -> Result<Vec<RankedPackage>> {
        let (rankings, stats) = per_sample_rankings_indexed(
            &self.context,
            &self.catalog,
            &self.sorted_lists,
            &self.pool,
            self.config.semantics.per_sample_depth(self.config.k),
            1,
        )?;
        self.search_stats.merge(&stats);
        Ok(aggregate(self.config.semantics, &rankings, self.config.k))
    }

    fn preferences_from(&self, shown: &[Package], feedback: Feedback) -> Result<Vec<Preference>> {
        feedback.validate(shown)?;
        match feedback {
            Feedback::Click { index } => {
                let clicked = &shown[index];
                let clicked_vector = self.context.package_vector(&self.catalog, clicked)?;
                let mut prefs = Vec::new();
                for other in shown {
                    if other == clicked {
                        continue;
                    }
                    let other_vector = self.context.package_vector(&self.catalog, other)?;
                    prefs.push(Preference::new(clicked_vector.clone(), other_vector));
                }
                Ok(prefs)
            }
            Feedback::Pairwise { preferred, over } => {
                let better = self
                    .context
                    .package_vector(&self.catalog, &shown[preferred])?;
                let worse = self.context.package_vector(&self.catalog, &shown[over])?;
                Ok(vec![Preference::new(better, worse)])
            }
            Feedback::Skip => Ok(Vec::new()),
        }
    }
}

impl Recommender for EmRefitSession {
    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn present(&mut self, rng: &mut dyn RngCore) -> Result<Vec<Package>> {
        let mut shown: Vec<Package> = self
            .recommend(rng)?
            .into_iter()
            .map(|r| r.package)
            .collect();
        extend_with_random_packages(
            &mut shown,
            self.config.k + self.config.num_random,
            self.catalog.len(),
            self.context.max_package_size(),
            rng,
        );
        Ok(shown)
    }

    fn record_feedback(
        &mut self,
        shown: &[Package],
        feedback: Feedback,
        rng: &mut dyn RngCore,
    ) -> Result<usize> {
        let prefs = self.preferences_from(shown, feedback)?;
        let mut absorbed = 0usize;
        if !prefs.is_empty() {
            match self.inner.absorb_feedback(&prefs, rng) {
                Ok(()) => {
                    absorbed = prefs.len();
                    self.preferences += absorbed;
                    self.pool = SamplePool::new();
                }
                // The refit's rejection sampler can run dry when feedback is
                // contradictory under the current belief; the baseline then
                // keeps its belief for this round (nothing absorbed) rather
                // than aborting the session.
                Err(CoreError::SamplingExhausted { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        self.rounds += 1;
        Ok(absorbed)
    }

    fn recommend(&mut self, rng: &mut dyn RngCore) -> Result<Vec<RankedPackage>> {
        self.ensure_pool(rng);
        self.rank_pool()
    }

    fn state(&self) -> RecommenderState {
        RecommenderState {
            label: "em-refit".to_string(),
            k: self.config.k,
            preferences: self.preferences,
            pool_size: self.pool.len(),
            rounds: self.rounds,
            search: self.search_stats,
        }
    }
}

/// The hard-constraint baseline (RecSys 2010 style) as a session: optimise
/// one aggregate feature subject to budgets on others.  Feedback is ignored —
/// the recommendation never adapts, which is the behaviour the paper's
/// introduction criticises.
#[derive(Debug, Clone)]
pub struct HardConstraintSession {
    catalog: Catalog,
    context: AggregationContext,
    objective_feature: usize,
    budgets: Vec<BudgetConstraint>,
    k: usize,
    cached: Option<Vec<RankedPackage>>,
    rounds: usize,
}

impl HardConstraintSession {
    /// Creates the session: maximise `objective_feature` subject to `budgets`.
    pub fn new(
        catalog: Catalog,
        profile: Profile,
        max_package_size: usize,
        objective_feature: usize,
        budgets: Vec<BudgetConstraint>,
        k: usize,
    ) -> Result<Self> {
        if k == 0 {
            return Err(CoreError::InvalidConfig("k must be at least 1".into()));
        }
        let context = AggregationContext::new(profile, &catalog, max_package_size)?;
        if objective_feature >= context.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: context.dim(),
                actual: objective_feature,
            });
        }
        for b in &budgets {
            if b.feature >= context.dim() {
                return Err(CoreError::DimensionMismatch {
                    expected: context.dim(),
                    actual: b.feature,
                });
            }
        }
        Ok(HardConstraintSession {
            catalog,
            context,
            objective_feature,
            budgets,
            k,
            cached: None,
            rounds: 0,
        })
    }

    fn top(&mut self) -> Result<Vec<RankedPackage>> {
        if self.cached.is_none() {
            let (top, _feasible) = hard_constraint_top_k(
                &self.context,
                &self.catalog,
                self.objective_feature,
                &self.budgets,
                self.k,
            )?;
            self.cached = Some(
                top.into_iter()
                    .map(|(package, score)| RankedPackage { package, score })
                    .collect(),
            );
        }
        Ok(self.cached.clone().expect("cache was just filled"))
    }
}

impl Recommender for HardConstraintSession {
    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn present(&mut self, _rng: &mut dyn RngCore) -> Result<Vec<Package>> {
        Ok(self.top()?.into_iter().map(|r| r.package).collect())
    }

    fn record_feedback(
        &mut self,
        shown: &[Package],
        feedback: Feedback,
        _rng: &mut dyn RngCore,
    ) -> Result<usize> {
        // Validate the feedback so misuse is caught identically to every
        // other recommender, then drop it: this baseline cannot learn.
        feedback.validate(shown)?;
        self.rounds += 1;
        Ok(0)
    }

    fn recommend(&mut self, _rng: &mut dyn RngCore) -> Result<Vec<RankedPackage>> {
        self.top()
    }

    fn state(&self) -> RecommenderState {
        RecommenderState {
            label: "hard-constraint".to_string(),
            k: self.k,
            preferences: 0,
            pool_size: 0,
            rounds: self.rounds,
            search: AggregatedSearchStats::default(),
        }
    }
}

/// The skyline baseline as a session: recommend Pareto-optimal packages of a
/// fixed cardinality.  Like the hard-constraint baseline it ignores feedback;
/// its `k` recommendations are the skyline entries with the best
/// direction-oriented mean feature value (a neutral scalarisation used only
/// to pick which of the many skyline packages to present).
#[derive(Debug, Clone)]
pub struct SkylineSession {
    catalog: Catalog,
    context: AggregationContext,
    cardinality: usize,
    directions: Vec<FeatureDirection>,
    k: usize,
    cached: Option<Vec<RankedPackage>>,
    rounds: usize,
}

impl SkylineSession {
    /// Creates the session over packages of exactly `cardinality` items.
    pub fn new(
        catalog: Catalog,
        profile: Profile,
        max_package_size: usize,
        cardinality: usize,
        directions: Vec<FeatureDirection>,
        k: usize,
    ) -> Result<Self> {
        if k == 0 {
            return Err(CoreError::InvalidConfig("k must be at least 1".into()));
        }
        if cardinality == 0 || cardinality > max_package_size {
            return Err(CoreError::InvalidConfig(format!(
                "skyline cardinality must lie in 1..={max_package_size}, got {cardinality}"
            )));
        }
        let context = AggregationContext::new(profile, &catalog, max_package_size)?;
        if directions.len() != context.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: context.dim(),
                actual: directions.len(),
            });
        }
        Ok(SkylineSession {
            catalog,
            context,
            cardinality,
            directions,
            k,
            cached: None,
            rounds: 0,
        })
    }

    fn top(&mut self) -> Result<Vec<RankedPackage>> {
        if self.cached.is_none() {
            let (entries, _stats) = skyline_packages(
                &self.context,
                &self.catalog,
                self.cardinality,
                &self.directions,
            )?;
            let mut ranked: Vec<RankedPackage> = entries
                .into_iter()
                .map(|(package, vector)| {
                    let oriented: f64 = vector
                        .iter()
                        .zip(self.directions.iter())
                        .map(|(v, d)| match d {
                            FeatureDirection::Maximize => *v,
                            FeatureDirection::Minimize => -*v,
                        })
                        .sum();
                    RankedPackage {
                        package,
                        score: oriented / self.directions.len() as f64,
                    }
                })
                .collect();
            ranked.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.package.cmp(&b.package))
            });
            ranked.truncate(self.k);
            self.cached = Some(ranked);
        }
        Ok(self.cached.clone().expect("cache was just filled"))
    }
}

impl Recommender for SkylineSession {
    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn present(&mut self, _rng: &mut dyn RngCore) -> Result<Vec<Package>> {
        Ok(self.top()?.into_iter().map(|r| r.package).collect())
    }

    fn record_feedback(
        &mut self,
        shown: &[Package],
        feedback: Feedback,
        _rng: &mut dyn RngCore,
    ) -> Result<usize> {
        feedback.validate(shown)?;
        self.rounds += 1;
        Ok(0)
    }

    fn recommend(&mut self, _rng: &mut dyn RngCore) -> Result<Vec<RankedPackage>> {
        self.top()
    }

    fn state(&self) -> RecommenderState {
        RecommenderState {
            label: "skyline".to_string(),
            k: self.k,
            preferences: 0,
            pool_size: 0,
            rounds: self.rounds,
            search: AggregatedSearchStats::default(),
        }
    }
}

/// A serialisable recipe for constructing a baseline session — the
/// store-constructible factory consumed by the serving layer (`pkgrec-serve`).
///
/// Each variant carries exactly the catalog-independent parameters of the
/// matching adapter constructor; [`BaselineSpec::build`] combines them with a
/// catalog, a profile and φ into a boxed [`Recommender`], so a session store
/// can persist the spec (it is plain serde data) and rebuild the session on
/// demand — e.g. when replaying a session journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BaselineSpec {
    /// An [`EmRefitSession`] with the given configuration.
    EmRefit(EmRefitConfig),
    /// A [`HardConstraintSession`]: maximise one feature subject to budgets.
    HardConstraint {
        /// Index of the aggregate feature to maximise.
        objective_feature: usize,
        /// Upper bounds on other aggregate features.
        budgets: Vec<BudgetConstraint>,
        /// Number of packages recommended per round.
        k: usize,
    },
    /// A [`SkylineSession`] over packages of a fixed cardinality.
    Skyline {
        /// Exact number of items per presented package.
        cardinality: usize,
        /// Optimisation direction per aggregate feature.
        directions: Vec<FeatureDirection>,
        /// Number of packages recommended per round.
        k: usize,
    },
}

impl BaselineSpec {
    /// The session label this spec builds (matches
    /// [`RecommenderState::label`]).
    pub fn label(&self) -> &'static str {
        match self {
            BaselineSpec::EmRefit(_) => "em-refit",
            BaselineSpec::HardConstraint { .. } => "hard-constraint",
            BaselineSpec::Skyline { .. } => "skyline",
        }
    }

    /// Constructs the session over a catalog: the factory behind
    /// [`pkgrec_core::recommender::Recommender`]-typed session stores.  The
    /// box is `Send` so stores can move sessions across shard threads.
    pub fn build(
        &self,
        catalog: Catalog,
        profile: Profile,
        max_package_size: usize,
    ) -> Result<Box<dyn Recommender + Send>> {
        Ok(match self {
            BaselineSpec::EmRefit(config) => Box::new(EmRefitSession::new(
                catalog,
                profile,
                max_package_size,
                config.clone(),
            )?),
            BaselineSpec::HardConstraint {
                objective_feature,
                budgets,
                k,
            } => Box::new(HardConstraintSession::new(
                catalog,
                profile,
                max_package_size,
                *objective_feature,
                budgets.clone(),
                *k,
            )?),
            BaselineSpec::Skyline {
                cardinality,
                directions,
                k,
            } => Box::new(SkylineSession::new(
                catalog,
                profile,
                max_package_size,
                *cardinality,
                directions.clone(),
                *k,
            )?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::elicitation::{run_elicitation, ElicitationConfig, SimulatedUser};
    use pkgrec_core::LinearUtility;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
            vec![0.1, 0.3],
            vec![0.5, 0.9],
        ])
        .unwrap()
    }

    fn hidden_user(weights: Vec<f64>) -> SimulatedUser {
        let context = AggregationContext::new(Profile::cost_quality(), &catalog(), 2).unwrap();
        SimulatedUser::new(LinearUtility::new(context, weights).unwrap())
    }

    fn fast_em_config() -> EmRefitConfig {
        EmRefitConfig {
            k: 2,
            num_random: 2,
            num_samples: 40,
            samples_per_refit: 80,
            ..EmRefitConfig::default()
        }
    }

    #[test]
    fn em_refit_session_learns_through_the_generic_loop() {
        let mut rng = StdRng::seed_from_u64(51);
        let mut session =
            EmRefitSession::new(catalog(), Profile::cost_quality(), 2, fast_em_config()).unwrap();
        let user = hidden_user(vec![-0.7, 0.6]);
        let report = run_elicitation(
            &mut session,
            &user,
            ElicitationConfig {
                max_rounds: 6,
                stable_rounds: 2,
            },
            &mut rng,
        )
        .unwrap();
        assert!(report.clicks >= 1);
        assert_eq!(report.final_top_k.len(), 2);
        let state = session.state();
        assert_eq!(state.label, "em-refit");
        assert!(state.preferences >= 3, "state: {state:?}");
        assert!(session.stats().refits >= 1);
    }

    #[test]
    fn em_refit_session_validates_configuration_and_indices() {
        assert!(EmRefitSession::new(
            catalog(),
            Profile::cost_quality(),
            2,
            EmRefitConfig {
                k: 0,
                ..fast_em_config()
            },
        )
        .is_err());
        let mut rng = StdRng::seed_from_u64(52);
        let mut session =
            EmRefitSession::new(catalog(), Profile::cost_quality(), 2, fast_em_config()).unwrap();
        let shown = session.present(&mut rng).unwrap();
        assert_eq!(shown.len(), 4);
        assert!(session
            .record_feedback(&shown, Feedback::Click { index: 99 }, &mut rng)
            .is_err());
        assert_eq!(
            session
                .record_feedback(&shown, Feedback::Skip, &mut rng)
                .unwrap(),
            0
        );
        assert_eq!(
            session
                .record_feedback(
                    &shown,
                    Feedback::Pairwise {
                        preferred: 1,
                        over: 0
                    },
                    &mut rng
                )
                .unwrap(),
            1
        );
    }

    #[test]
    fn static_baselines_converge_instantly_in_the_generic_loop() {
        let mut rng = StdRng::seed_from_u64(53);
        let user = hidden_user(vec![-0.7, 0.6]);
        let mut hard = HardConstraintSession::new(
            catalog(),
            Profile::cost_quality(),
            2,
            1,
            vec![BudgetConstraint {
                feature: 0,
                max_value: 0.8,
            }],
            2,
        )
        .unwrap();
        let mut sky = SkylineSession::new(
            catalog(),
            Profile::cost_quality(),
            2,
            2,
            vec![FeatureDirection::Minimize, FeatureDirection::Maximize],
            2,
        )
        .unwrap();
        let comparators: [&mut dyn Recommender; 2] = [&mut hard, &mut sky];
        for recommender in comparators {
            let report = run_elicitation(
                recommender,
                &user,
                ElicitationConfig {
                    max_rounds: 10,
                    stable_rounds: 2,
                },
                &mut rng,
            )
            .unwrap();
            // A static list is identical every round: converged after 1 click.
            assert!(report.converged, "{}", recommender.state().label);
            assert_eq!(report.clicks, 1, "{}", recommender.state().label);
            assert_eq!(recommender.state().preferences, 0);
        }
    }

    #[test]
    fn static_baseline_construction_is_validated() {
        assert!(
            HardConstraintSession::new(catalog(), Profile::cost_quality(), 2, 7, vec![], 2)
                .is_err()
        );
        assert!(SkylineSession::new(
            catalog(),
            Profile::cost_quality(),
            2,
            3,
            vec![FeatureDirection::Minimize, FeatureDirection::Maximize],
            2,
        )
        .is_err());
        assert!(SkylineSession::new(
            catalog(),
            Profile::cost_quality(),
            2,
            2,
            vec![FeatureDirection::Minimize],
            2,
        )
        .is_err());
    }
}
