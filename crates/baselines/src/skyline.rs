//! Skyline (Pareto-optimal) packages of fixed cardinality.
//!
//! The paper's introduction argues that returning *all* skyline packages —
//! packages not dominated on every aggregate feature by another package — is
//! impractical because "the number of skyline packages can be in the hundreds
//! or even thousands for a reasonably-sized dataset" (\[20\], \[29\]).  This module
//! implements that baseline so the claim can be measured: enumerate all
//! packages of a given size, compute their aggregate feature vectors, and keep
//! the non-dominated ones.
//!
//! Domination is direction-aware: for each feature the caller states whether
//! larger or smaller values are preferred (e.g. cost is minimised, rating is
//! maximised).

use pkgrec_core::item::Catalog;
use pkgrec_core::package::Package;
use pkgrec_core::profile::AggregationContext;
use pkgrec_core::Result;
use serde::{Deserialize, Serialize};

/// Preference direction per feature for skyline domination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureDirection {
    /// Larger aggregate values are better (e.g. average rating).
    Maximize,
    /// Smaller aggregate values are better (e.g. total cost).
    Minimize,
}

/// Statistics of a skyline computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkylineStats {
    /// Number of candidate packages of the requested cardinality.
    pub candidates: usize,
    /// Number of skyline (non-dominated) packages.
    pub skyline_size: usize,
}

/// `a` dominates `b` if it is at least as good on every feature and strictly
/// better on at least one.
fn dominates(a: &[f64], b: &[f64], directions: &[FeatureDirection]) -> bool {
    let mut strictly_better = false;
    for ((&av, &bv), dir) in a.iter().zip(b.iter()).zip(directions.iter()) {
        let (better, worse) = match dir {
            FeatureDirection::Maximize => (av > bv, av < bv),
            FeatureDirection::Minimize => (av < bv, av > bv),
        };
        if worse {
            return false;
        }
        if better {
            strictly_better = true;
        }
    }
    strictly_better
}

/// A skyline package together with its aggregate feature vector.
pub type SkylineEntry = (Package, Vec<f64>);

/// Computes the skyline packages of exactly `cardinality` items.
///
/// Returns the skyline packages with their aggregate feature vectors and the
/// size statistics.  The candidate space is `C(n, cardinality)`, so this is
/// exactly as expensive as the paper says it is — use small catalogs.
pub fn skyline_packages(
    context: &AggregationContext,
    catalog: &Catalog,
    cardinality: usize,
    directions: &[FeatureDirection],
) -> Result<(Vec<SkylineEntry>, SkylineStats)> {
    let candidates: Vec<(Package, Vec<f64>)> =
        pkgrec_core::enumerate_packages(catalog.len(), cardinality)
            .into_iter()
            .filter(|p| p.len() == cardinality)
            .map(|p| {
                let v = context.package_vector(catalog, &p)?;
                Ok((p, v))
            })
            .collect::<Result<_>>()?;
    let mut skyline = Vec::new();
    'outer: for (i, (package, vector)) in candidates.iter().enumerate() {
        for (j, (_, other)) in candidates.iter().enumerate() {
            if i != j && dominates(other, vector, directions) {
                continue 'outer;
            }
        }
        skyline.push((package.clone(), vector.clone()));
    }
    let stats = SkylineStats {
        candidates: candidates.len(),
        skyline_size: skyline.len(),
    };
    Ok((skyline, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::profile::Profile;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn figure1_setup() -> (Catalog, AggregationContext) {
        let catalog = Catalog::new(
            vec!["cost".into(), "rating".into()],
            vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.2, 0.4]],
        )
        .unwrap();
        let ctx = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
        (catalog, ctx)
    }

    #[test]
    fn domination_is_direction_aware() {
        let dirs = [FeatureDirection::Minimize, FeatureDirection::Maximize];
        assert!(dominates(&[0.2, 0.9], &[0.5, 0.5], &dirs));
        assert!(!dominates(&[0.5, 0.5], &[0.2, 0.9], &dirs));
        // Incomparable points do not dominate each other.
        assert!(!dominates(&[0.2, 0.4], &[0.5, 0.9], &dirs));
        assert!(!dominates(&[0.5, 0.9], &[0.2, 0.4], &dirs));
        // Equal points do not dominate.
        assert!(!dominates(&[0.3, 0.3], &[0.3, 0.3], &dirs));
    }

    #[test]
    fn skyline_of_the_running_example() {
        let (catalog, ctx) = figure1_setup();
        let dirs = [FeatureDirection::Minimize, FeatureDirection::Maximize];
        let (skyline, stats) = skyline_packages(&ctx, &catalog, 2, &dirs).unwrap();
        assert_eq!(stats.candidates, 3);
        // Size-2 packages: {t1,t2} = (1.0, 0.75), {t1,t3} = (0.8, 0.75),
        // {t2,t3} = (0.6, 1.0).  {t2,t3} dominates both others (cheaper and
        // better rated), so it is the only skyline package.
        assert_eq!(stats.skyline_size, 1);
        assert_eq!(skyline[0].0, Package::new(vec![1, 2]).unwrap());
    }

    #[test]
    fn every_non_skyline_package_is_dominated_by_a_skyline_package() {
        let mut rng = StdRng::seed_from_u64(9);
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let catalog = Catalog::from_rows(rows).unwrap();
        let ctx = AggregationContext::new(Profile::cost_quality(), &catalog, 3).unwrap();
        let dirs = [FeatureDirection::Minimize, FeatureDirection::Maximize];
        let (skyline, stats) = skyline_packages(&ctx, &catalog, 3, &dirs).unwrap();
        assert_eq!(stats.candidates, 120);
        assert!(stats.skyline_size >= 1);
        // Check the defining property on every candidate.
        for p in pkgrec_core::enumerate_packages(catalog.len(), 3) {
            if p.len() != 3 {
                continue;
            }
            let v = ctx.package_vector(&catalog, &p).unwrap();
            let in_skyline = skyline.iter().any(|(sp, _)| *sp == p);
            let dominated = skyline.iter().any(|(_, sv)| dominates(sv, &v, &dirs));
            assert!(
                in_skyline || dominated,
                "package {p} neither in skyline nor dominated"
            );
        }
    }

    #[test]
    fn skyline_grows_with_anti_correlated_features() {
        // The motivation for the paper: with anti-correlated features the
        // skyline quickly becomes large relative to the candidate count.
        let mut rng = StdRng::seed_from_u64(10);
        let anti: Vec<Vec<f64>> = (0..12)
            .map(|_| {
                let a: f64 = rng.gen_range(0.0..1.0);
                vec![a, 1.0 - a]
            })
            .collect();
        let correlated: Vec<Vec<f64>> = (0..12)
            .map(|_| {
                let a: f64 = rng.gen_range(0.0..1.0);
                vec![a, (a + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0)]
            })
            .collect();
        let dirs = [FeatureDirection::Maximize, FeatureDirection::Maximize];
        let cat_anti = Catalog::from_rows(anti).unwrap();
        let cat_cor = Catalog::from_rows(correlated).unwrap();
        let ctx_anti = AggregationContext::new(Profile::all_sum(2), &cat_anti, 2).unwrap();
        let ctx_cor = AggregationContext::new(Profile::all_sum(2), &cat_cor, 2).unwrap();
        let (_, anti_stats) = skyline_packages(&ctx_anti, &cat_anti, 2, &dirs).unwrap();
        let (_, cor_stats) = skyline_packages(&ctx_cor, &cat_cor, 2, &dirs).unwrap();
        assert!(
            anti_stats.skyline_size > cor_stats.skyline_size,
            "anti-correlated skyline ({}) should exceed correlated skyline ({})",
            anti_stats.skyline_size,
            cor_stats.skyline_size
        );
    }
}
