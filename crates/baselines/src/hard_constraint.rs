//! Hard-constraint package recommendation (the RecSys 2010 baseline).
//!
//! "We could require the total cost of a package to be at most $500, and then
//! find packages with maximum average rating, subject to this cost
//! constraint."  The introduction criticises this style of recommendation
//! because users rarely know the right budget: a tight budget yields
//! sub-optimal packages, a loose one yields an unmanageable number of
//! candidates.  This module implements the baseline so that criticism can be
//! demonstrated quantitatively in the benchmarks.

use pkgrec_core::item::Catalog;
use pkgrec_core::package::{enumerate_packages, Package};
use pkgrec_core::profile::AggregationContext;
use pkgrec_core::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// A budget constraint on one aggregate feature of the package.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetConstraint {
    /// Index of the constrained feature.
    pub feature: usize,
    /// Maximum allowed (normalised) aggregate value on that feature.
    pub max_value: f64,
}

/// Finds the top-k packages maximising the (normalised) aggregate value of
/// `objective_feature`, subject to every budget constraint, by enumerating the
/// package space of size `1..=φ`.
///
/// Returns the qualifying packages best-first along with the number of
/// packages that satisfied the budgets — the quantity that explodes when the
/// budget is set generously.
pub fn hard_constraint_top_k(
    context: &AggregationContext,
    catalog: &Catalog,
    objective_feature: usize,
    budgets: &[BudgetConstraint],
    k: usize,
) -> Result<(Vec<(Package, f64)>, usize)> {
    if objective_feature >= context.dim() {
        return Err(CoreError::DimensionMismatch {
            expected: context.dim(),
            actual: objective_feature,
        });
    }
    for b in budgets {
        if b.feature >= context.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: context.dim(),
                actual: b.feature,
            });
        }
    }
    let mut feasible: Vec<(Package, f64)> = Vec::new();
    for package in enumerate_packages(catalog.len(), context.max_package_size()) {
        let vector = context.package_vector(catalog, &package)?;
        if budgets.iter().all(|b| vector[b.feature] <= b.max_value) {
            feasible.push((package, vector[objective_feature]));
        }
    }
    let feasible_count = feasible.len();
    feasible.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    feasible.truncate(k);
    Ok((feasible, feasible_count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::profile::Profile;

    fn setup() -> (Catalog, AggregationContext) {
        let catalog = Catalog::new(
            vec!["cost".into(), "rating".into()],
            vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.2, 0.4]],
        )
        .unwrap();
        let ctx = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
        (catalog, ctx)
    }

    #[test]
    fn tight_budget_limits_the_feasible_set() {
        let (catalog, ctx) = setup();
        // Normalised cost budget of 0.45 admits only the cheapest packages.
        let budget = BudgetConstraint {
            feature: 0,
            max_value: 0.45,
        };
        let (top, feasible) = hard_constraint_top_k(&ctx, &catalog, 1, &[budget], 10).unwrap();
        // Feasible packages: {t2} (0.4), {t3} (0.2) — every 2-item package costs
        // at least 0.6 normalised.
        assert_eq!(feasible, 2);
        // Both have the same normalised rating 1.0; tie broken by item id.
        assert_eq!(top[0].0, Package::new(vec![1]).unwrap());
        assert!((top[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loose_budget_floods_the_feasible_set() {
        let (catalog, ctx) = setup();
        let tight = BudgetConstraint {
            feature: 0,
            max_value: 0.3,
        };
        let loose = BudgetConstraint {
            feature: 0,
            max_value: 1.0,
        };
        let (_, tight_count) = hard_constraint_top_k(&ctx, &catalog, 1, &[tight], 3).unwrap();
        let (_, loose_count) = hard_constraint_top_k(&ctx, &catalog, 1, &[loose], 3).unwrap();
        assert!(tight_count < loose_count);
        assert_eq!(loose_count, 6);
    }

    #[test]
    fn tight_budget_can_exclude_the_globally_best_package() {
        // The introduction's criticism: with the budget set too low the truly
        // best package is unreachable and the user only sees sub-optimal ones.
        // Use summed ratings so that the two-item package {t2, t3} is strictly
        // the best, then forbid it with a cost budget.
        let (catalog, _) = setup();
        let ctx = AggregationContext::new(Profile::all_sum(2), &catalog, 2).unwrap();
        let unbounded = BudgetConstraint {
            feature: 0,
            max_value: 1.0,
        };
        let (unconstrained, _) = hard_constraint_top_k(&ctx, &catalog, 1, &[unbounded], 1).unwrap();
        assert_eq!(unconstrained[0].0, Package::new(vec![1, 2]).unwrap());
        let tight = BudgetConstraint {
            feature: 0,
            max_value: 0.45,
        };
        let (top, _) = hard_constraint_top_k(&ctx, &catalog, 1, &[tight], 1).unwrap();
        assert_ne!(top[0].0, Package::new(vec![1, 2]).unwrap());
        // The best feasible objective value is strictly below the optimum.
        assert!(top[0].1 < unconstrained[0].1);
    }

    #[test]
    fn invalid_feature_indices_are_rejected() {
        let (catalog, ctx) = setup();
        assert!(hard_constraint_top_k(&ctx, &catalog, 5, &[], 1).is_err());
        let bad = BudgetConstraint {
            feature: 9,
            max_value: 0.5,
        };
        assert!(hard_constraint_top_k(&ctx, &catalog, 0, &[bad], 1).is_err());
    }

    #[test]
    fn no_budget_means_pure_objective_maximisation() {
        let (catalog, ctx) = setup();
        let (top, feasible) = hard_constraint_top_k(&ctx, &catalog, 1, &[], 2).unwrap();
        assert_eq!(feasible, 6);
        assert_eq!(top.len(), 2);
        assert!((top[0].1 - 1.0).abs() < 1e-12);
    }
}
