//! Baseline package recommenders.
//!
//! The introduction and related-work sections of the paper position the
//! elicitation-based recommender against three earlier approaches, and
//! Section 2.1 dismisses a fourth (refitting the Gaussian mixture with EM
//! after every feedback) as too expensive.  To reproduce those comparisons the
//! crate implements all of them on top of `pkgrec-core`'s data model:
//!
//! * [`skyline`] — all *skyline packages* of a fixed cardinality (Zhang &
//!   Chomicki; Li et al.), whose sheer number is the paper's motivation for a
//!   quantitative ranking,
//! * [`hard_constraint`] — "optimise one aggregate subject to a budget on
//!   another" (Xie et al., RecSys 2010), the hard-constraint alternative whose
//!   budget sensitivity the introduction criticises,
//! * [`exhaustive`] — re-export of the exhaustive top-k package solver used as
//!   ground truth,
//! * [`em_refit`] — the EM-refit elicitation baseline: after every feedback the
//!   posterior is re-approximated by fitting a fresh Gaussian mixture to
//!   constrained samples, instead of maintaining the sample pool directly.
//!
//! The [`adapters`] module additionally wraps each baseline in a session type
//! implementing [`pkgrec_core::recommender::Recommender`], so the baselines
//! are drop-in comparators for any driver that takes `&mut dyn Recommender`
//! (e.g. [`pkgrec_core::elicitation::run_elicitation`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod em_refit;
pub mod hard_constraint;
pub mod skyline;

/// Exhaustive top-k package enumeration (ground truth for small instances).
pub mod exhaustive {
    pub use pkgrec_core::search::exhaustive::top_k_packages_exhaustive;
}

pub use adapters::{
    BaselineSpec, EmRefitConfig, EmRefitSession, HardConstraintSession, SkylineSession,
};
pub use em_refit::{EmRefitRecommender, EmRefitStats};
pub use hard_constraint::{hard_constraint_top_k, BudgetConstraint};
pub use skyline::{skyline_packages, FeatureDirection, SkylineStats};
